#!/usr/bin/env python3
"""Docs honesty checker: internal links resolve, documented flags exist.

Two stdlib-only checks over ``README.md`` and ``docs/*.md`` (the CI ``docs``
job and ``tests/test_docs.py`` both run them):

1. **Internal links** -- every relative markdown link target must exist on
   disk, and every ``#anchor`` (bare or ``file.md#anchor``) must match a
   heading in the target file, using GitHub's slug rules (lowercase,
   punctuation stripped, spaces to hyphens).  External ``http(s)``/``mailto``
   links are skipped: CI must not depend on the network.

2. **CLI flags** -- every ``--flag`` the operations runbook shows in a
   ``pitex`` invocation (fenced code blocks, following shell line
   continuations) or names in inline code must exist on some ``pitex``
   subcommand, resolved from the real ``repro.cli`` parser -- never a
   hardcoded list, so a renamed flag fails CI instead of rotting the docs.
   Non-``pitex`` commands in the same blocks (pytest, ruff, pitexlint) are
   ignored.

Exit status 0 when clean; findings print as ``file:line: message``.
"""

import argparse
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FLAG_RE = re.compile(r"--[a-z][a-z0-9-]*")
INLINE_CODE_RE = re.compile(r"`([^`]+)`")


def doc_files():
    """README plus every markdown file under docs/."""
    files = [os.path.join(REPO_ROOT, "README.md")]
    docs_dir = os.path.join(REPO_ROOT, "docs")
    if os.path.isdir(docs_dir):
        for name in sorted(os.listdir(docs_dir)):
            if name.endswith(".md"):
                files.append(os.path.join(docs_dir, name))
    return files


def heading_slugs(path):
    """GitHub-style anchor slugs for every markdown heading in ``path``."""
    slugs = set()
    in_fence = False
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence or not line.startswith("#"):
                continue
            text = line.lstrip("#").strip()
            text = re.sub(r"[*_`\[\]()]", "", text)
            slug = re.sub(r"[^\w\- ]", "", text.lower()).strip().replace(" ", "-")
            slugs.add(slug)
    return slugs


def check_links(path, problems):
    """Every relative link target (and anchor) in ``path`` must resolve."""
    base = os.path.dirname(path)
    with open(path, encoding="utf-8") as handle:
        lines = handle.readlines()
    in_fence = False
    for number, line in enumerate(lines, start=1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for target in LINK_RE.findall(line):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            file_part, _, anchor = target.partition("#")
            resolved = path if not file_part else os.path.normpath(
                os.path.join(base, file_part)
            )
            if not os.path.exists(resolved):
                problems.append(f"{rel(path)}:{number}: broken link target {target!r}")
                continue
            if anchor and resolved.endswith(".md"):
                if anchor not in heading_slugs(resolved):
                    problems.append(
                        f"{rel(path)}:{number}: anchor #{anchor} not found in {rel(resolved)}"
                    )


def pitex_flags():
    """Every option string of every ``pitex`` subcommand, from the real parser."""
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    from repro.cli import _build_parser

    flags = set()
    parser = _build_parser()
    stack = [parser]
    while stack:
        current = stack.pop()
        for action in current._actions:
            flags.update(option for option in action.option_strings if option.startswith("--"))
            if isinstance(action, argparse._SubParsersAction):
                stack.extend(action.choices.values())
    return flags


def documented_pitex_flags(path):
    """(line, flag) pairs the runbook ties to ``pitex``.

    Fenced code blocks: flags on lines that belong to a ``pitex`` invocation
    (including backslash continuations).  Prose: flags inside inline code
    spans -- the runbook only inline-codes flags of the ``pitex`` CLI.
    """
    found = []
    in_fence = False
    continuing_pitex = False
    with open(path, encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if stripped.startswith("```"):
                in_fence = not in_fence
                continuing_pitex = False
                continue
            if in_fence:
                is_pitex = stripped.startswith("pitex ") or continuing_pitex
                if is_pitex:
                    found.extend((number, flag) for flag in FLAG_RE.findall(stripped))
                continuing_pitex = is_pitex and stripped.endswith("\\")
            else:
                for span in INLINE_CODE_RE.findall(line):
                    found.extend((number, flag) for flag in FLAG_RE.findall(span))
    return found


def check_flags(path, problems):
    """Every documented pitex flag must exist on some subcommand."""
    known = pitex_flags()
    for number, flag in documented_pitex_flags(path):
        if flag not in known:
            problems.append(
                f"{rel(path)}:{number}: flag {flag} does not exist on any pitex subcommand"
            )


def rel(path):
    return os.path.relpath(path, REPO_ROOT)


def main():
    """Run both checks; return a process exit status."""
    problems = []
    for path in doc_files():
        check_links(path, problems)
    operations = os.path.join(REPO_ROOT, "docs", "operations.md")
    if os.path.exists(operations):
        check_flags(operations, problems)
    else:
        problems.append("docs/operations.md: missing (the flag check has nothing to verify)")
    for problem in problems:
        print(problem)
    if not problems:
        print(f"docs check: {len(doc_files())} files clean")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
