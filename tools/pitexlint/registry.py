"""Rule scopes, allowlists and the guard-wired class registry.

Everything path-shaped here is a *repo-relative posix path prefix* matched
against the file being linted (or against its ``# pitexlint: path=...``
override, which is how the fixture corpus emulates in-tree locations without
living in ``src/``).  Keeping the configuration in one module makes the
linter's policy reviewable at a glance and keeps the rule implementations
mechanical.
"""

from __future__ import annotations

# --------------------------------------------------------------------- rules
RULES = {
    "DET001": (
        "direct numpy RNG use; route randomness through "
        "repro.utils.rng.RandomSource / spawn_rng"
    ),
    "DET002": (
        "stdlib `random` module use; route randomness through "
        "repro.utils.rng.RandomSource (process-stable, spawnable streams)"
    ),
    "DET003": (
        "builtin hash() in seed/key derivation; hash() is randomized per "
        "process (PYTHONHASHSEED) -- use zlib.crc32/hashlib over a stable label"
    ),
    "DET004": (
        "wall clock time.time() in a compute path; use a caller-supplied "
        "timestamp or utils.timer.Stopwatch for durations"
    ),
    "FRZ001": (
        "guard-wired class mutates shared state without a guard_check "
        "tripwire; add guard_check(self, ...) or an allowlist entry"
    ),
    "LCK001": (
        "lock-owning serve class writes shared state outside a `with "
        "<lock>` block"
    ),
    "OBS001": (
        "direct time.perf_counter() timing in the serving/core layer; time "
        "through repro.obs.clock (Clock/monotonic) or utils.timer.Stopwatch "
        "so spans and benchmarks share one clock seam (raw time.time() in "
        "the same modules is DET004)"
    ),
    "SUP001": "malformed pitexlint pragma (missing reason or unknown rule)",
    "PARSE001": "file could not be parsed",
}

# ---------------------------------------------------------------- rule scopes
# DET001/DET002/DET003 apply to library code; tests and benchmarks may build
# arbitrary adversarial inputs with whatever RNG they like.
DETERMINISM_SCOPE = ("src/repro/",)

# The one sanctioned numpy-RNG construction point: RandomSource itself.
NUMPY_RNG_ALLOW = ("src/repro/utils/rng.py",)

# DET004 applies to the deterministic compute core AND the serving/obs
# layers: since the obs subsystem landed, everything that legitimately needs
# a Unix timestamp routes through repro.obs.clock.wall_clock().
WALL_CLOCK_SCOPE = (
    "src/repro/sampling/",
    "src/repro/core/",
    "src/repro/index/",
    "src/repro/propagation/",
    "src/repro/serve/",
    "src/repro/obs/",
)
# The single sanctioned wall-clock home: obs.clock.wall_clock().  (This used
# to allowlist all of serve/store.py for its manifest timestamps; those now
# call wall_clock() instead.)
WALL_CLOCK_ALLOW = ("src/repro/obs/clock.py",)

FREEZE_SCOPE = ("src/repro/",)
LOCK_SCOPE = ("src/repro/serve/",)

# OBS001: serving/core modules must not grab time.perf_counter() directly --
# durations flow through the obs clock seam or utils.timer.Stopwatch, so
# trace spans, ServiceMetrics and benchmarks are all timed by one swappable
# source.  (repro.obs.clock and utils/timer.py are outside the scope: they
# ARE the sanctioned homes.)
OBS_TIMER_SCOPE = ("src/repro/serve/", "src/repro/core/")

# ------------------------------------------------------- determinism details
# numpy.random attributes whose direct use bypasses RandomSource.  Covers the
# generator factories, the legacy global-state samplers and explicit seeding.
NUMPY_RANDOM_ATTRS = frozenset(
    {
        "default_rng",
        "Generator",
        "RandomState",
        "PCG64",
        "Philox",
        "SFC64",
        "MT19937",
        "SeedSequence",
        "seed",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "choice",
        "shuffle",
        "permutation",
        "uniform",
        "normal",
        "standard_normal",
        "binomial",
        "geometric",
        "exponential",
        "poisson",
        "beta",
        "gamma",
        "dirichlet",
        "multinomial",
    }
)

# stdlib random attributes that draw from (or reseed) the module RNG.
STDLIB_RANDOM_ATTRS = frozenset(
    {
        "Random",
        "SystemRandom",
        "seed",
        "random",
        "randint",
        "randrange",
        "getrandbits",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "triangular",
        "betavariate",
        "expovariate",
        "gammavariate",
        "gauss",
        "normalvariate",
        "lognormvariate",
        "vonmisesvariate",
        "paretovariate",
        "weibullvariate",
    }
)

# -------------------------------------------------- freeze-safety registry
# Methods allowed to mutate on ANY guard-wired class: construction and the
# explicit freeze lifecycle (freeze/thaw run strictly outside the read-only
# window -- freeze() engages the guard only after warming).
FREEZE_GLOBAL_ALLOW = frozenset({"__init__", "__post_init__", "freeze", "thaw"})

# The guard-wired classes of PR 5 and their per-class allowlists.  An entry
# is a *justified* mutation escape: each listed method either builds a lazy
# cache that PitexEngine.freeze() warms before engaging the guard, or is a
# private helper reachable only through guard-checked callers.
GUARDED_CLASSES = {
    "TopicSocialGraph": frozenset(
        {
            # Lazy caches warmed by freeze() before the guard engages; they
            # cannot be invalidated afterwards because add_edge (the only
            # invalidator) is guard-checked.
            "csr",
            "probability_matrix",
            "max_edge_probabilities",
            "fingerprint",
        }
    ),
    "RRGraphIndex": frozenset(),
    "DelayedMaterializationIndex": frozenset(),
    "InfluenceEstimator": frozenset(),
    "MonteCarloEstimator": frozenset(),
    "ReverseReachableEstimator": frozenset(),
    "LazyPropagationEstimator": frozenset(),
    "TreeModelEstimator": frozenset(),
    "IndexEstimator": frozenset(),
    "PrunedIndexEstimator": frozenset(),
    "DelayedIndexEstimator": frozenset(),
    "PitexEngine": frozenset(
        {
            # Reachable only through attach_rr_index/attach_delayed_index,
            # both of which guard-check before calling it.
            "_drop_index_estimators",
        }
    ),
}

# Container methods that mutate their receiver in place.
MUTATING_CONTAINER_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "extend",
        "extendleft",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popleft",
        "popitem",
        "remove",
        "discard",
        "clear",
        "sort",
        "reverse",
        "move_to_end",
        "fill",
    }
)

# Substrings identifying a lock-ish `with` context expression (matched on the
# dotted source of the context manager, case-insensitive): `with self._lock`,
# `with self._condition`, `with gate.lock`, `with self._lock_for(...)` all
# qualify.
LOCKISH_TOKENS = ("lock", "condition", "mutex", "semaphore", "_cv")

# threading constructors whose assignment marks an attribute as a lock.
LOCK_CONSTRUCTORS = frozenset({"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"})


def in_scope(path: str, prefixes: tuple) -> bool:
    """Whether ``path`` (repo-relative posix) falls under any prefix."""
    return any(path == p or path.startswith(p) for p in prefixes)
