"""Lock-discipline rule (LCK001) for the serving layer.

A serve-layer class that *owns* a lock (it assigns ``threading.Lock()`` /
``RLock()`` / ``Condition()`` / a semaphore to an attribute) is declaring
that its shared state is touched concurrently.  From that declaration the
rule demands the obvious discipline: every write to ``self``-reachable state
outside ``__init__`` must happen lexically inside a ``with`` block whose
context manager looks lock-ish (``with self._lock:``, ``with
self._condition:``, ``with gate.lock:``, ``with self._lock_for(key, e):``).

The check is lexical, not an escape analysis: a helper that is *always
called* under the caller's lock still gets flagged and needs an inline
``# pitexlint: ignore[LCK001] -- <why>`` stating that contract -- which is
exactly the documentation the next reader needs.  Classes without a lock
attribute are exempt (they make no concurrency claim; the freeze-safety rule
covers the engine-side structures instead).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from pitexlint.core import Finding, SourceModule
from pitexlint.mutations import statement_mutations
from pitexlint.registry import LOCK_CONSTRUCTORS, LOCK_SCOPE, LOCKISH_TOKENS, in_scope


def _lock_attributes(class_node: ast.ClassDef) -> Set[str]:
    """Attributes assigned a threading Lock/RLock/Condition/Semaphore."""
    locks: Set[str] = set()
    for node in ast.walk(class_node):
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            continue
        func = node.value.func
        name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", None)
        if name not in LOCK_CONSTRUCTORS:
            continue
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                locks.add(target.attr)
    return locks


def _is_lockish(context_expr: ast.AST) -> bool:
    try:
        text = ast.unparse(context_expr).lower()
    except Exception:  # pragma: no cover - unparse failure on exotic nodes
        return False
    return any(token in text for token in LOCKISH_TOKENS)


class _MethodVisitor(ast.NodeVisitor):
    """Collect self-rooted mutations with their enclosing with-lock depth."""

    def __init__(self) -> None:
        self.lock_depth = 0
        self.unlocked: List = []

    def _visit_with(self, node) -> None:
        lockish = any(_is_lockish(item.context_expr) for item in node.items)
        if lockish:
            self.lock_depth += 1
        self.generic_visit(node)
        if lockish:
            self.lock_depth -= 1

    visit_With = _visit_with
    visit_AsyncWith = _visit_with

    def generic_visit(self, node: ast.AST) -> None:
        if self.lock_depth == 0:
            self.unlocked.extend(statement_mutations(node))
        super().generic_visit(node)


def check(module: SourceModule) -> Iterator[Finding]:
    """Yield LCK001 findings for one module."""
    if not in_scope(module.scope_path, LOCK_SCOPE):
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        locks = _lock_attributes(node)
        if not locks:
            continue
        lock_names = ", ".join(f"self.{name}" for name in sorted(locks))
        for method in node.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name in ("__init__", "__post_init__"):
                continue
            visitor = _MethodVisitor()
            visitor.visit(method)
            for mutation in visitor.unlocked:
                yield Finding(
                    file=module.display_path,
                    line=mutation.line,
                    col=mutation.col,
                    rule="LCK001",
                    message=(
                        f"{node.name}.{method.name} {mutation.description} outside a "
                        f"`with <lock>` block (class owns {lock_names}); hold the lock "
                        "or suppress with the invariant that makes the write safe"
                    ),
                )
