"""Shared AST helpers: detecting ``self``-rooted mutations.

Both the freeze-safety and the lock-discipline rules reduce to the same
question -- *does this statement mutate state reachable from ``self``?* -- so
the answer lives in one place.  A mutation is:

* an assignment (plain, augmented or annotated) whose target is an attribute
  or subscript rooted at ``self`` (``self.x = ...``, ``self.x[k] = ...``,
  ``self.x.y += ...``),
* a ``del`` of such a target, or
* a call to a known in-place container method on a receiver rooted at
  ``self`` (``self.cache.setdefault(...)``, ``self._queue.append(...)``).

Reads, local-variable writes, and method calls on ``self`` itself
(``self.rebuild()``) are not mutations -- the latter are checked at their own
definition site, which avoids double counting and keeps findings anchored
where the write happens.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, List, Optional

from pitexlint.registry import MUTATING_CONTAINER_METHODS


@dataclass
class Mutation:
    """One self-rooted write, with a human-readable description."""

    node: ast.AST
    description: str

    @property
    def line(self) -> int:
        return getattr(self.node, "lineno", 1)

    @property
    def col(self) -> int:
        return getattr(self.node, "col_offset", 0)


def root_name(node: ast.AST) -> Optional[str]:
    """The base ``Name`` of an attribute/subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _target_text(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse failure on exotic nodes
        return "<target>"


def _self_rooted_target(node: ast.AST) -> bool:
    """Attribute/subscript chains hanging off ``self`` (never bare ``self``)."""
    return isinstance(node, (ast.Attribute, ast.Subscript)) and root_name(node) == "self"


def statement_mutations(node: ast.AST) -> Iterator[Mutation]:
    """Mutations performed directly by one AST node (non-recursive)."""
    if isinstance(node, ast.Assign):
        for target in node.targets:
            targets = target.elts if isinstance(target, (ast.Tuple, ast.List)) else [target]
            for item in targets:
                if _self_rooted_target(item):
                    yield Mutation(node, f"assigns {_target_text(item)}")
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        if node.value is not None and _self_rooted_target(node.target):
            yield Mutation(node, f"assigns {_target_text(node.target)}")
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            if _self_rooted_target(target):
                yield Mutation(node, f"deletes {_target_text(target)}")
    elif isinstance(node, ast.Call):
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in MUTATING_CONTAINER_METHODS
            and _self_rooted_target(func.value)
        ):
            yield Mutation(node, f"calls {_target_text(func)}(...)")


def function_mutations(function: ast.AST) -> List[Mutation]:
    """All self-rooted mutations anywhere inside ``function`` (recursive)."""
    found: List[Mutation] = []
    for node in ast.walk(function):
        found.extend(statement_mutations(node))
    return found


def is_guard_call(node: ast.AST) -> bool:
    """``guard_check(...)`` or ``<something guard-ish>.check(...)``.

    The library uses two idioms: the free function
    ``repro.utils.freeze.guard_check(obj, action)`` on shared structures, and
    ``self._guard.check(action)`` on the engine's own
    :class:`~repro.utils.freeze.FrozenGuard` instance.
    """
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name) and func.id == "guard_check":
        return True
    if isinstance(func, ast.Attribute) and func.attr == "check":
        receiver = _target_text(func.value).lower()
        return "guard" in receiver
    return False
