"""Linter core: source model, suppression pragmas, runner and report.

The flow is deliberately small: a :class:`SourceModule` wraps one parsed file
(its AST, its comment pragmas, and the *effective path* used for rule
scoping), each rule module contributes a ``check(module)`` generator of
:class:`Finding` objects, and :func:`lint_source` applies the inline
suppressions before handing back the result.

Suppression pragma grammar (a comment on the offending line, or a standalone
comment on the line directly above it)::

    # pitexlint: ignore[RULE1,RULE2] -- why this exception is sound

The reason after ``--`` is **mandatory**: a suppression without one (or
naming an unknown rule) is itself reported as ``SUP001``.  Fixture files may
also carry ``# pitexlint: path=src/repro/...`` to override the path used for
rule scoping, which is how ``tools/pitexlint/fixtures/`` exercises rules
whose scope is limited to the library tree.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional

from pitexlint.registry import RULES

_PRAGMA_RE = re.compile(r"#\s*pitexlint\s*:\s*(?P<body>.*)$")
_IGNORE_RE = re.compile(
    r"^ignore\s*\[(?P<rules>[^\]]*)\]\s*(?:--\s*(?P<reason>.*\S))?\s*$"
)
_PATH_RE = re.compile(r"^path\s*=\s*(?P<path>\S+)\s*$")


@dataclass
class Finding:
    """One rule violation at a source location."""

    file: str
    line: int
    col: int
    rule: str
    message: str
    suppressed: bool = False
    reason: str = ""

    def render(self) -> str:
        """The canonical ``file:line:col: RULE message`` line."""
        return f"{self.file}:{self.line}:{self.col}: {self.rule} {self.message}"

    def as_dict(self) -> dict:
        """JSON-friendly form (used by the ``--json`` report)."""
        return {
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "suppressed": self.suppressed,
            "reason": self.reason,
        }


@dataclass
class _Suppression:
    line: int
    rules: frozenset
    reason: str
    standalone: bool = False  # comment-only line: also covers the next line


class SourceModule:
    """One parsed source file plus its pragmas and effective scoping path."""

    def __init__(self, text: str, display_path: str, scope_path: Optional[str] = None) -> None:
        self.text = text
        self.display_path = display_path
        self.tree: Optional[ast.AST] = None
        self.parse_error: Optional[Finding] = None
        self.pragma_findings: List[Finding] = []
        self.suppressions: Dict[int, _Suppression] = {}
        self._pragma_path: Optional[str] = None
        self._read_pragmas()
        # Effective path for scope matching: explicit override, then the
        # in-file pragma (fixtures), then the file's repo-relative path.
        self.scope_path = scope_path or self._pragma_path or display_path
        try:
            self.tree = ast.parse(text)
        except SyntaxError as exc:
            self.parse_error = Finding(
                file=display_path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule="PARSE001",
                message=f"{RULES['PARSE001']}: {exc.msg}",
            )

    # ------------------------------------------------------------- pragmas
    def _read_pragmas(self) -> None:
        """Collect pitexlint pragmas from the file's comment tokens.

        Tokenizing (instead of regex-scanning raw lines) keeps pragma-shaped
        text inside string literals and docstrings inert.
        """
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(self.text).readline))
        except (tokenize.TokenError, IndentationError, SyntaxError):
            return  # the ast.parse error will be reported instead
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _PRAGMA_RE.search(token.string)
            if not match:
                continue
            standalone = token.line[: token.start[1]].strip() == ""
            self._parse_pragma(match.group("body").strip(), token.start[0], standalone)

    def _parse_pragma(self, body: str, line: int, standalone: bool = False) -> None:
        path_match = _PATH_RE.match(body)
        if path_match:
            if self._pragma_path is None:
                self._pragma_path = path_match.group("path")
            return
        ignore_match = _IGNORE_RE.match(body)
        if not ignore_match:
            self._bad_pragma(line, f"unrecognized pragma {body!r}")
            return
        rules = frozenset(
            rule.strip() for rule in ignore_match.group("rules").split(",") if rule.strip()
        )
        reason = (ignore_match.group("reason") or "").strip()
        unknown = sorted(rule for rule in rules if rule != "*" and rule not in RULES)
        if not rules:
            self._bad_pragma(line, "ignore[] names no rules")
            return
        if unknown:
            self._bad_pragma(line, f"unknown rule(s) {', '.join(unknown)}")
            return
        if not reason:
            self._bad_pragma(
                line,
                f"ignore[{','.join(sorted(rules))}] has no reason; append "
                "`-- <why this exception is sound>`",
            )
            return
        self.suppressions[line] = _Suppression(
            line=line, rules=rules, reason=reason, standalone=standalone
        )

    def _bad_pragma(self, line: int, detail: str) -> None:
        self.pragma_findings.append(
            Finding(
                file=self.display_path,
                line=line,
                col=0,
                rule="SUP001",
                message=f"{RULES['SUP001']}: {detail}",
            )
        )

    # -------------------------------------------------------------- helpers
    @property
    def lines(self) -> List[str]:
        return self.text.splitlines()

    def suppression_for(self, finding: Finding) -> Optional[_Suppression]:
        candidates = [self.suppressions.get(finding.line)]
        above = self.suppressions.get(finding.line - 1)
        if above is not None and above.standalone:
            candidates.append(above)
        for suppression in candidates:
            if suppression and ("*" in suppression.rules or finding.rule in suppression.rules):
                return suppression
        return None


@dataclass
class LintReport:
    """Everything one lint run produced, ready for text or JSON output."""

    paths: List[str] = field(default_factory=list)
    files_scanned: int = 0
    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def as_dict(self) -> dict:
        from pitexlint import __version__

        return {
            "tool": "pitexlint",
            "version": __version__,
            "paths": self.paths,
            "files_scanned": self.files_scanned,
            "summary": {
                "findings": len(self.findings),
                "suppressed": len(self.suppressed),
                "by_rule": self._by_rule(),
            },
            "findings": [finding.as_dict() for finding in self.findings],
            "suppressed": [finding.as_dict() for finding in self.suppressed],
        }

    def _by_rule(self) -> dict:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))


def _rule_checkers():
    # Imported lazily: the rule modules import Finding from here.
    from pitexlint import determinism, freeze_safety, lock_discipline, observability

    return (determinism.check, freeze_safety.check, lock_discipline.check, observability.check)


def lint_source(
    text: str, display_path: str, scope_path: Optional[str] = None
) -> List[Finding]:
    """Lint one source blob; returns findings (suppressed ones marked)."""
    module = SourceModule(text, display_path, scope_path)
    if module.parse_error is not None:
        return [module.parse_error]
    raw: List[Finding] = list(module.pragma_findings)
    for checker in _rule_checkers():
        raw.extend(checker(module))
    for finding in raw:
        if finding.rule in ("SUP001", "PARSE001"):
            continue  # pragma problems cannot suppress themselves
        suppression = module.suppression_for(finding)
        if suppression is not None:
            finding.suppressed = True
            finding.reason = suppression.reason
    raw.sort(key=lambda f: (f.file, f.line, f.col, f.rule))
    return raw


def lint_file(path, root: Optional[Path] = None) -> List[Finding]:
    """Lint one file; ``root`` anchors the repo-relative display path."""
    path = Path(path)
    root = Path(root) if root is not None else Path.cwd()
    try:
        display = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        display = path.as_posix()
    return lint_source(path.read_text(encoding="utf-8"), display)


def iter_python_files(paths: Iterable) -> Iterator[Path]:
    """Expand files/directories into .py files, skipping cache/hidden dirs."""
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            for candidate in sorted(entry.rglob("*.py")):
                parts = candidate.parts
                if any(part == "__pycache__" or part.startswith(".") for part in parts):
                    continue
                yield candidate
        elif entry.suffix == ".py":
            yield entry


def lint_paths(paths: Iterable, root: Optional[Path] = None) -> LintReport:
    """Lint every .py file under ``paths`` and fold results into a report."""
    report = LintReport(paths=[str(p) for p in paths])
    for path in iter_python_files(paths):
        report.files_scanned += 1
        for finding in lint_file(path, root=root):
            (report.suppressed if finding.suppressed else report.findings).append(finding)
    return report
