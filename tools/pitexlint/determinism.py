"""Determinism rules (DET001-DET004).

The reproduction's headline property -- bitwise-reproducible answers across
processes, threads and arrival orders (PR 4/PR 5) -- holds only while every
random draw flows through seeded :class:`repro.utils.rng.RandomSource`
streams and no compute path reads ambient nondeterminism.  These rules flag
the four ways that property has been (or could be) broken:

* **DET001** -- constructing numpy generators directly
  (``np.random.default_rng(...)``, legacy ``np.random.*`` samplers).  Even a
  *seeded* direct construction bypasses the engine's stream-labeling scheme,
  which is exactly the ``tic_learner`` bug this rule first caught.
* **DET002** -- stdlib ``random`` module use: per-process global state, not
  spawnable, invisible to ``RandomSource`` seed plumbing.
* **DET003** -- builtin ``hash()`` feeding seeds or stream keys:
  ``PYTHONHASHSEED``-randomized per process (the PR 4 regression).
* **DET004** -- ``time.time()`` inside the compute core: wall-clock values in
  results or control flow make runs irreproducible by construction.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from pitexlint.core import Finding, SourceModule
from pitexlint.registry import (
    DETERMINISM_SCOPE,
    NUMPY_RANDOM_ATTRS,
    NUMPY_RNG_ALLOW,
    RULES,
    STDLIB_RANDOM_ATTRS,
    WALL_CLOCK_ALLOW,
    WALL_CLOCK_SCOPE,
    in_scope,
)


def dotted_name(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` as ``["a", "b", "c"]``; None for non-name-rooted chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return None


class _Imports(ast.NodeVisitor):
    """Name bindings relevant to the determinism rules."""

    def __init__(self) -> None:
        self.numpy_aliases: Set[str] = set()
        self.numpy_random_aliases: Set[str] = set()
        self.numpy_random_names: Set[str] = set()  # from numpy.random import X
        self.stdlib_random_aliases: Set[str] = set()
        self.stdlib_random_names: Set[str] = set()  # from random import X
        self.time_aliases: Set[str] = set()
        self.wall_clock_names: Set[str] = set()  # from time import time
        self.shadowed: Set[str] = set()  # module-level rebindings of builtins

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "numpy" or alias.name.startswith("numpy."):
                self.numpy_aliases.add(bound if alias.asname is None else bound)
            if alias.name == "numpy.random" and alias.asname:
                self.numpy_random_aliases.add(alias.asname)
            if alias.name == "random":
                self.stdlib_random_aliases.add(bound)
            if alias.name == "time":
                self.time_aliases.add(bound)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name
            if node.module == "numpy" and alias.name == "random":
                self.numpy_random_aliases.add(bound)
            elif node.module == "numpy.random":
                self.numpy_random_names.add(bound)
            elif node.module == "random":
                self.stdlib_random_names.add(bound)
            elif node.module == "time" and alias.name == "time":
                self.wall_clock_names.add(bound)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Name):
                self.shadowed.add(target.id)
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.shadowed.add(node.name)  # do not descend: only module-level names

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.shadowed.add(node.name)


def _finding(module: SourceModule, node: ast.AST, rule: str, detail: str) -> Finding:
    return Finding(
        file=module.display_path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        rule=rule,
        message=f"{detail}; {RULES[rule].split(';')[-1].strip()}",
    )


def check(module: SourceModule) -> Iterator[Finding]:
    """Yield DET001-DET004 findings for one module."""
    path = module.scope_path
    det_scope = in_scope(path, DETERMINISM_SCOPE)
    clock_scope = in_scope(path, WALL_CLOCK_SCOPE) and not in_scope(path, WALL_CLOCK_ALLOW)
    if not det_scope and not clock_scope:
        return
    imports = _Imports()
    imports.visit(module.tree)
    rng_factory_file = in_scope(path, NUMPY_RNG_ALLOW)

    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        chain = dotted_name(func)

        if det_scope and not rng_factory_file:
            yield from _check_numpy(module, node, chain, imports)
            yield from _check_stdlib_random(module, node, chain, imports)
            yield from _check_hash(module, func, imports)
        if clock_scope:
            yield from _check_wall_clock(module, node, chain, imports)


def _check_numpy(
    module: SourceModule, node: ast.Call, chain: Optional[List[str]], imports: _Imports
) -> Iterator[Finding]:
    func = node.func
    if isinstance(func, ast.Name) and func.id in imports.numpy_random_names:
        yield _finding(module, node, "DET001", f"direct numpy.random.{func.id}(...) call")
        return
    if not chain or len(chain) < 2:
        return
    attr = chain[-1]
    if attr not in NUMPY_RANDOM_ATTRS:
        return
    root = chain[0]
    if len(chain) >= 3 and root in imports.numpy_aliases and chain[1] == "random":
        yield _finding(module, node, "DET001", f"direct {'.'.join(chain)}(...) call")
    elif len(chain) == 2 and root in imports.numpy_random_aliases:
        yield _finding(module, node, "DET001", f"direct numpy.random.{attr}(...) call")


def _check_stdlib_random(
    module: SourceModule, node: ast.Call, chain: Optional[List[str]], imports: _Imports
) -> Iterator[Finding]:
    func = node.func
    if isinstance(func, ast.Name) and func.id in imports.stdlib_random_names:
        yield _finding(module, node, "DET002", f"stdlib random.{func.id}(...) call")
        return
    if (
        chain
        and len(chain) == 2
        and chain[0] in imports.stdlib_random_aliases
        and chain[1] in STDLIB_RANDOM_ATTRS
    ):
        yield _finding(module, node, "DET002", f"stdlib {'.'.join(chain)}(...) call")


def _check_hash(
    module: SourceModule, func: ast.AST, imports: _Imports
) -> Iterator[Finding]:
    if isinstance(func, ast.Name) and func.id == "hash" and "hash" not in imports.shadowed:
        yield _finding(
            module,
            func,
            "DET003",
            "builtin hash() call in seed/key derivation",
        )


def _check_wall_clock(
    module: SourceModule, node: ast.Call, chain: Optional[List[str]], imports: _Imports
) -> Iterator[Finding]:
    func = node.func
    if isinstance(func, ast.Name) and func.id in imports.wall_clock_names:
        yield _finding(module, node, "DET004", "wall clock time() call in a compute path")
        return
    if (
        chain
        and len(chain) == 2
        and chain[0] in imports.time_aliases
        and chain[1] == "time"
    ):
        yield _finding(module, node, "DET004", "wall clock time.time() call in a compute path")
