"""``python -m pitexlint`` entry point."""

import sys

from pitexlint.cli import main

sys.exit(main())
