"""Observability rule (OBS001).

The obs subsystem (PR 8) gives the serving layer exactly two sanctioned ways
to measure a duration: the swappable monotonic seam in ``repro.obs.clock``
(``Clock`` / ``monotonic()``, which trace spans use) and the accumulating
``repro.utils.timer.Stopwatch``.  A serving/core module that calls
``time.perf_counter()`` directly bypasses both -- its timings can't be faked
in tests, don't show up in spans, and fragment the "one clock" story the
telemetry determinism contract documents.

**OBS001** flags direct ``time.perf_counter()`` calls (including
``from time import perf_counter`` aliases) in modules under
:data:`~pitexlint.registry.OBS_TIMER_SCOPE`.  Raw ``time.time()`` in the same
modules is already DET004's business (the serving layer joined
``WALL_CLOCK_SCOPE`` in the same PR), so together the two rules enforce the
satellite requirement: serve/ and core/ may not call ``time.perf_counter()``
or ``time.time()`` directly.  ``time.monotonic()`` stays legal -- the service
queue timestamps lean on it and it carries no reproducibility or clock-seam
hazard.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from pitexlint.core import Finding, SourceModule
from pitexlint.determinism import dotted_name
from pitexlint.registry import OBS_TIMER_SCOPE, RULES, in_scope


class _TimeImports(ast.NodeVisitor):
    """Bindings through which ``time.perf_counter`` can be reached."""

    def __init__(self) -> None:
        self.time_aliases: Set[str] = set()
        self.perf_counter_names: Set[str] = set()  # from time import perf_counter

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "time":
                self.time_aliases.add(alias.asname or "time")

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            if node.module == "time" and alias.name == "perf_counter":
                self.perf_counter_names.add(alias.asname or alias.name)


def _finding(module: SourceModule, node: ast.AST, detail: str) -> Finding:
    return Finding(
        file=module.display_path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        rule="OBS001",
        message=f"{detail}; {RULES['OBS001'].split(';')[-1].strip()}",
    )


def check(module: SourceModule) -> Iterator[Finding]:
    """Yield OBS001 findings for one module."""
    if not in_scope(module.scope_path, OBS_TIMER_SCOPE):
        return
    imports = _TimeImports()
    imports.visit(module.tree)
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name) and func.id in imports.perf_counter_names:
            yield _finding(module, node, "direct perf_counter() timing call")
            continue
        chain: Optional[List[str]] = dotted_name(func)
        if (
            chain
            and len(chain) == 2
            and chain[0] in imports.time_aliases
            and chain[1] == "perf_counter"
        ):
            yield _finding(module, node, "direct time.perf_counter() timing call")
