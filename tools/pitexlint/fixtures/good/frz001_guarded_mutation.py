"""GOOD fixture: guard-wired class with every escape hatch accounted for.

FRZ001 must stay quiet -- mutating methods either call the ``guard_check``
tripwire (free-function or ``self._guard.check`` idiom), are lifecycle
methods (``__init__``/``thaw``), or are per-class allowlisted lazy cache
builders (``csr`` on ``TopicSocialGraph``).
"""

# pitexlint: path=src/repro/graph/fixture_frz001_ok.py

from repro.utils.freeze import guard_check


class TopicSocialGraph:
    def __init__(self, num_vertices):
        self.num_vertices = num_vertices
        self._edges = []
        self._csr_cache = None

    def add_edge(self, source, target, probabilities):
        guard_check(self, "add_edge")
        self._edges.append((source, target, probabilities))
        self._csr_cache = None

    def csr(self):
        if self._csr_cache is None:
            self._csr_cache = tuple(self._edges)
        return self._csr_cache

    def thaw(self):
        self._csr_cache = None

    def neighbors(self, vertex):
        return [edge for edge in self._edges if edge[0] == vertex]


class PitexEngine:
    def __init__(self, graph):
        self.graph = graph
        self._guard = None
        self._estimators = {}

    def attach_estimator(self, name, estimator):
        self._guard.check("attach_estimator")
        self._estimators[name] = estimator
