"""GOOD fixture: serving-layer timing through the sanctioned seams.

OBS001 stays quiet when durations come from the obs clock, a Stopwatch, or
plain ``time.monotonic()`` (queue timestamps -- no clock-seam hazard, and
reproducibility is not at stake for a duration).
"""

# pitexlint: path=src/repro/serve/good_timer.py

import time

from repro.obs.clock import monotonic
from repro.utils.timer import Stopwatch


def span_seconds(fn):
    started = monotonic()
    fn()
    return monotonic() - started


def stopwatch_seconds(fn):
    watch = Stopwatch().start()
    fn()
    watch.stop()
    return watch.elapsed


def queue_age(enqueued_monotonic):
    return time.monotonic() - enqueued_monotonic
