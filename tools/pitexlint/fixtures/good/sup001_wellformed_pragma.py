"""GOOD fixture: justified suppressions in both supported positions.

SUP001 must stay quiet and the DET002 findings must come back *suppressed*
(reasons attached): one pragma rides the offending line, one sits on a
standalone comment line directly above it.
"""

# pitexlint: path=src/repro/utils/fixture_sup001_ok.py

import random


def jitter():
    return random.random()  # pitexlint: ignore[DET002] -- fixture: same-line suppression with a reason


def shuffle_copy(rows):
    out = list(rows)
    # pitexlint: ignore[DET002] -- fixture: standalone line-above suppression with a reason
    random.shuffle(out)
    return out
