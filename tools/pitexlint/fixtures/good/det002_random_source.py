"""GOOD fixture: reservoir sampling without the stdlib ``random`` module.

DET002 must stay quiet -- replacement slots come from a seeded RandomSource,
the post-migration shape of ``utils/stats.py``.
"""

# pitexlint: path=src/repro/utils/fixture_det002_ok.py

from repro.utils.rng import RandomSource


class Reservoir:
    def __init__(self, capacity):
        self.capacity = capacity
        self.samples = []
        self.count = 0
        self._rng = RandomSource(0x51A75)

    def add(self, value):
        self.count += 1
        if len(self.samples) < self.capacity:
            self.samples.append(value)
            return
        slot = self._rng.integer(0, self.count)
        if slot < self.capacity:
            self.samples[slot] = value
