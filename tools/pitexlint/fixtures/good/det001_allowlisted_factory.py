"""GOOD fixture: the one sanctioned numpy-RNG construction point.

DET001 must stay quiet -- ``src/repro/utils/rng.py`` is the allowlisted
factory where ``np.random.default_rng`` is *supposed* to be called.
"""

# pitexlint: path=src/repro/utils/rng.py

import numpy as np


def normalize(seed):
    return np.random.default_rng(seed)
