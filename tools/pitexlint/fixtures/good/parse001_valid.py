"""GOOD fixture: a syntactically valid module.  PARSE001 must stay quiet."""

# pitexlint: path=src/repro/utils/fixture_parse001_ok.py


def intact():
    return 42
