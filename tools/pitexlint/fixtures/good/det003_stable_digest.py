"""GOOD fixture: process-stable seed derivation.

DET003 must stay quiet -- stream labels are digested with ``zlib.crc32``
(stable across processes), and a locally *defined* ``hash`` shadows the
builtin, so calls to it are not the randomized builtin.
"""

# pitexlint: path=src/repro/core/fixture_det003_ok.py

import zlib


def stream_seed(base_seed, label):
    return (base_seed ^ zlib.crc32(label.encode("utf-8"))) & 0xFFFFFFFFFFFFFFFF


def hash(value):  # noqa: A001 - deliberate shadow for the fixture
    return zlib.crc32(repr(value).encode("utf-8"))


def cache_key(query):
    return hash((query.vertex, tuple(query.topics)))
