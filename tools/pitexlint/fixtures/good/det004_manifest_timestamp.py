"""GOOD fixture: the sanctioned wall-clock home stays quiet.

DET004 now scopes over serve/ and obs/ with exactly one allowlisted module:
``src/repro/obs/clock.py``.  Inside it, both the ``time.time()`` wall-clock
read and the monotonic ``perf_counter`` duration source are legal -- that is
the whole point of having a single sanctioned home (and obs/ sits outside
the OBS001 timer scope for the same reason).
"""

# pitexlint: path=src/repro/obs/clock.py

import time


def wall_clock():
    return time.time()


def monotonic():
    return time.perf_counter()
