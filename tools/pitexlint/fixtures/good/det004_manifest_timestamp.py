"""GOOD fixture: wall clock outside the compute core, monotonic inside it.

DET004 must stay quiet twice over: ``src/repro/serve/store.py`` is the
allowlisted manifest-metadata writer (provenance timestamps, not compute
state), and duration measurement uses the monotonic ``perf_counter``.
"""

# pitexlint: path=src/repro/serve/store.py

import time


def manifest_metadata():
    return {"created_at": time.time()}


def measure(fn):
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started
