"""GOOD fixture: library code drawing through RandomSource streams.

DET001 must stay quiet -- every draw flows through the seeded RandomSource /
spawn_rng plumbing; no generator is constructed directly.
"""

# pitexlint: path=src/repro/sampling/fixture_det001_ok.py

from repro.utils.rng import RandomSource, spawn_rng


def bootstrap_matrix(seed, num_tags, num_topics):
    rng = RandomSource(seed)
    return rng.generator.uniform(0.5, 1.5, size=(num_tags, num_topics))


def labeled_stream(seed, salt):
    return spawn_rng(seed, salt)
