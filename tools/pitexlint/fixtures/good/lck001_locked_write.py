"""GOOD fixture: lock discipline done right in the serving layer.

LCK001 must stay quiet -- every shared write in the lock-owning class happens
inside ``with self._lock`` / ``with self._condition``, and the lock-free
class makes no concurrency claim (it owns no lock), so it is exempt.
"""

# pitexlint: path=src/repro/serve/fixture_lck001_ok.py

import threading


class RequestCounter:
    def __init__(self):
        self._lock = threading.Lock()
        self._condition = threading.Condition(self._lock)
        self._counts = {}
        self.total = 0

    def record(self, key):
        with self._lock:
            self.total += 1
            self._counts[key] = self._counts.get(key, 0) + 1

    def drain(self):
        with self._condition:
            snapshot = dict(self._counts)
            self._counts.clear()
            return snapshot


class SingleThreadedScratch:
    def __init__(self):
        self.rows = []

    def push(self, row):
        self.rows.append(row)
