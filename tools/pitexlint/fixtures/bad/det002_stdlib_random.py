"""BAD fixture: stdlib ``random`` use inside library code.

Must fire DET002 -- per-process global state invisible to RandomSource.
"""

# pitexlint: path=src/repro/utils/fixture_det002.py

import random
from random import randrange


def reservoir_slot(count):
    return random.Random(0x51A75).randrange(count)


def jitter():
    return random.random()


def from_imported(count):
    return randrange(count)
