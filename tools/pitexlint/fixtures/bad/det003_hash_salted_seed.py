"""BAD fixture: the PR 4 regression -- builtin ``hash()`` in seed derivation.

Must fire DET003.  ``hash()`` is PYTHONHASHSEED-randomized per process, so a
seed salted with it differs across runs even when every input is identical.
This fixture preserves the exact pattern so reintroducing it anywhere in the
library is caught statically.
"""

# pitexlint: path=src/repro/core/fixture_det003.py


def stream_seed(base_seed, label):
    return (base_seed ^ hash(label)) & 0xFFFFFFFFFFFFFFFF


def cache_key(query):
    return hash((query.vertex, tuple(query.topics)))
