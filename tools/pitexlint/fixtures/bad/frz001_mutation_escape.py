"""BAD fixture: a guard-wired class grows a mutating method with no tripwire.

Must fire FRZ001 -- ``TopicSocialGraph`` is registered as guard-wired, and
``add_edge_unchecked`` mutates self-reachable state without calling
``guard_check``, silently re-opening the frozen-engine hole.
"""

# pitexlint: path=src/repro/graph/fixture_frz001.py


class TopicSocialGraph:
    def __init__(self, num_vertices):
        self.num_vertices = num_vertices
        self._edges = []
        self._dirty = False

    def add_edge_unchecked(self, source, target, probabilities):
        self._edges.append((source, target, probabilities))
        self._dirty = True

    def reset_probabilities(self, value):
        for index in range(len(self._edges)):
            self._edges[index] = (*self._edges[index][:2], value)
