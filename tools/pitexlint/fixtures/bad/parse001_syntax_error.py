"""BAD fixture: unparseable file.  Must fire PARSE001."""


def broken(:
    return None
