"""BAD fixture: malformed suppression pragmas.

Must fire SUP001 for each malformed pragma: a suppression with no reason, one
naming an unknown rule, one naming no rules at all, and an unrecognized verb.
"""

# pitexlint: path=src/repro/utils/fixture_sup001.py

WIDTH = 120  # pitexlint: ignore[DET001]
DEPTH = 7  # pitexlint: ignore[NOPE999] -- not a real rule
COUNT = 3  # pitexlint: ignore[] -- names nothing
LABEL = "x"  # pitexlint: silence[DET001] -- unrecognized verb
