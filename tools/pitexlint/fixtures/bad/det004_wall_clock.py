"""BAD fixture: wall clock reads inside the deterministic compute core.

Must fire DET004 -- wall-clock values in results or control flow make runs
irreproducible by construction.
"""

# pitexlint: path=src/repro/index/fixture_det004.py

import time
from time import time as now


def build_with_deadline(budget_seconds):
    started = time.time()
    rows = []
    while time.time() - started < budget_seconds:
        rows.append(len(rows))
    return rows


def stamp():
    return now()
