"""BAD fixture: a serving module timing with a private perf_counter.

OBS001 must flag both spellings -- the attribute call and the
``from time import perf_counter`` alias.  Durations in serve/ and core/ go
through repro.obs.clock or utils.timer.Stopwatch so every span, metric and
benchmark shares one swappable clock seam.  (``time.time()`` is deliberately
absent here: that is DET004's finding, and this fixture must fire OBS001
alone.)
"""

# pitexlint: path=src/repro/serve/rogue_timer.py

import time
from time import perf_counter as tick


def measure(fn):
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


def measure_aliased(fn):
    started = tick()
    fn()
    return tick() - started
