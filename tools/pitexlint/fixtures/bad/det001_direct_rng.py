"""BAD fixture: direct numpy generator construction inside library code.

Must fire DET001 -- this is the exact shape of the ``tic_learner`` bug
(a *seeded* direct construction still bypasses RandomSource stream labeling).
"""

# pitexlint: path=src/repro/sampling/fixture_det001.py

import numpy as np
from numpy.random import default_rng


def bootstrap_matrix(num_tags, num_topics):
    rng = np.random.default_rng(13)
    return rng.uniform(0.5, 1.5, size=(num_tags, num_topics))


def legacy_sampler(n):
    return np.random.randint(0, n)


def from_imported(n):
    return default_rng(n)
