"""BAD fixture: a lock-owning serve class writes shared state lock-free.

Must fire LCK001 -- the class declares concurrency by owning ``self._lock``,
then mutates self-reachable state outside any ``with <lock>`` block.
"""

# pitexlint: path=src/repro/serve/fixture_lck001.py

import threading


class RequestCounter:
    def __init__(self):
        self._lock = threading.Lock()
        self._counts = {}
        self.total = 0

    def record(self, key):
        self.total += 1
        self._counts[key] = self._counts.get(key, 0) + 1

    def reset(self):
        with self._lock:
            self._counts.clear()
        self.total = 0
