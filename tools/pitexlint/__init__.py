"""``pitexlint``: AST-based invariant checks for the PITEX reproduction.

The serving stack's correctness rests on three *conventions* that runtime
tests only catch when a test happens to exercise the offending path:

* **determinism** -- all randomness flows through seeded
  :class:`repro.utils.rng.RandomSource` streams; no direct numpy/stdlib RNG
  construction, no ``hash()``-derived seeds, no wall clock in compute paths;
* **freeze-safety** -- guard-wired classes (the graph, the offline indexes,
  the estimators, the engine) never mutate shared state without a
  ``guard_check`` tripwire on the mutating method;
* **lock discipline** -- serve-layer classes that own a lock only write
  shared attributes while holding it.

``pitexlint`` enforces all three statically, at lint time::

    PYTHONPATH=tools python -m pitexlint src tests benchmarks

Findings print as ``file:line:col: RULE message``; ``--json report.json``
additionally writes a machine-readable report (uploaded as a CI artifact).
Intentional exceptions are suppressed inline with a mandatory reason::

    self._observed_modes[key] = mode  # pitexlint: ignore[LCK001] -- GIL-atomic dict store

See ``tools/pitexlint/registry.py`` for the rule scopes and the guard-wired
class registry, and ``tools/pitexlint/fixtures/`` for one good and one bad
example per rule (both exercised by ``tests/test_pitexlint.py``).
"""

from pitexlint.core import Finding, LintReport, lint_file, lint_paths, lint_source

__version__ = "1.0.0"

__all__ = [
    "Finding",
    "LintReport",
    "lint_file",
    "lint_paths",
    "lint_source",
    "__version__",
]
