"""Freeze-safety rule (FRZ001): the "mutation escape" detector.

PR 5's frozen-engine contract says every known mutation point of the
guard-wired classes (:data:`pitexlint.registry.GUARDED_CLASSES`) calls
``guard_check`` on entry, so a frozen engine turns any post-freeze mutation
into an :class:`~repro.exceptions.EngineFrozenError` instead of a silent
race.  The contract is only as good as its coverage: a *new* mutating method
added without the tripwire silently re-opens the hole, and no runtime test
fails until something races through it.

FRZ001 closes that gap statically.  For every registered class it flags any
method that mutates ``self``-reachable state (see
:mod:`pitexlint.mutations`) without a ``guard_check`` call, unless the
method is an allowlisted lifecycle/cache-build hook (``__init__``, ``thaw``,
``freeze``, or a per-class entry in the registry -- each of which documents
why the escape is sound).
"""

from __future__ import annotations

import ast
from typing import Iterator

from pitexlint.core import Finding, SourceModule
from pitexlint.mutations import function_mutations, is_guard_call
from pitexlint.registry import (
    FREEZE_GLOBAL_ALLOW,
    FREEZE_SCOPE,
    GUARDED_CLASSES,
    in_scope,
)


def _has_guard_call(function: ast.AST) -> bool:
    return any(is_guard_call(node) for node in ast.walk(function))


def check(module: SourceModule) -> Iterator[Finding]:
    """Yield FRZ001 findings for one module."""
    if not in_scope(module.scope_path, FREEZE_SCOPE):
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef) or node.name not in GUARDED_CLASSES:
            continue
        allowed = FREEZE_GLOBAL_ALLOW | GUARDED_CLASSES[node.name]
        for method in node.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name in allowed:
                continue
            mutations = function_mutations(method)
            if not mutations or _has_guard_call(method):
                continue
            first = mutations[0]
            extra = f" (+{len(mutations) - 1} more)" if len(mutations) > 1 else ""
            yield Finding(
                file=module.display_path,
                line=first.line,
                col=first.col,
                rule="FRZ001",
                message=(
                    f"{node.name}.{method.name} {first.description}{extra} without a "
                    "guard_check tripwire; call guard_check(self, ...) on entry, or "
                    "allowlist the method in pitexlint/registry.py with a justification"
                ),
            )
