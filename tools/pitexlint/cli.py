"""Command-line front-end: ``python -m pitexlint [paths...]``.

Exit codes: 0 -- clean (suppressed findings allowed), 1 -- at least one
unsuppressed finding, 2 -- usage error.  ``--json FILE`` writes the full
machine-readable report (CI uploads it as a workflow artifact next to the
bench JSONs).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from pitexlint.core import lint_paths
from pitexlint.registry import RULES

DEFAULT_PATHS = ("src", "tests", "benchmarks")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pitexlint",
        description=(
            "AST-based invariant checks for the PITEX reproduction: "
            "determinism (DET*), freeze-safety (FRZ*), lock discipline (LCK*)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help=f"files or directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--json",
        metavar="FILE",
        default=None,
        help="also write a machine-readable report to FILE",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="print suppressed findings (with their reasons) after the active ones",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule code with its description and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for code, description in sorted(RULES.items()):
            print(f"{code}  {description}")
        return 0
    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"pitexlint: path(s) not found: {', '.join(missing)}", file=sys.stderr)
        return 2
    report = lint_paths(args.paths)
    for finding in report.findings:
        print(finding.render())
    if args.show_suppressed:
        for finding in report.suppressed:
            print(f"{finding.render()} [suppressed: {finding.reason}]")
    summary = (
        f"pitexlint: {report.files_scanned} files, "
        f"{len(report.findings)} finding(s), {len(report.suppressed)} suppressed"
    )
    print(summary)
    if args.json:
        Path(args.json).write_text(json.dumps(report.as_dict(), indent=2) + "\n")
    return report.exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
