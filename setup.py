"""Setuptools entry point.

The canonical project metadata lives in ``pyproject.toml``; this file exists so
the package can be installed in environments without the ``wheel`` package
(``pip install -e . --no-use-pep517``).
"""

from setuptools import setup

setup()
