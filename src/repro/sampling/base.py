"""Common interface and sample-size formulas for influence estimation.

The enumeration framework of Sec. 4 (Algorithm 1) plugs any of the samplers
into ``EstimateInfluence``: first derive a sample budget ``theta_W`` from the
accuracy parameters (Lemma 2 / Lemma 3, Eqn. 2), then average realized spreads
over that many sample instances.  This module defines:

* :class:`SampleBudget` -- the accuracy parameters ``(epsilon, delta, k,
  num_tags)`` plus a practical cap, and the ``theta_W`` computation.
* :class:`InfluenceEstimate` -- value + provenance (samples used, edges
  visited) of one estimation.
* :class:`InfluenceEstimator` -- the abstract interface shared by MC / RR /
  lazy estimators and by the index-based estimators in :mod:`repro.index`.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.exceptions import InvalidParameterError
from repro.graph.digraph import TopicSocialGraph
from repro.obs.telemetry import counter
from repro.topics.model import TagTopicModel
from repro.utils.freeze import guard_check
from repro.utils.stats import log_binomial, log_sum_binomials
from repro.utils.validation import ensure_in_range, ensure_positive_int


def sample_size_online(
    epsilon: float,
    delta: float,
    num_tags: int,
    k: int,
    reachable_size: int,
    spread_lower_bound: float = 1.0,
) -> int:
    """Eqn. 2: the sample budget ``theta_W`` for MC / RR / lazy sampling.

    ``theta_W = (2+eps)/eps^2 * |R_W(u)| * (ln(delta) + ln C(|Omega|, k) + ln 2)
    / E[I(u|W)]``.  The unknown true spread is replaced by ``spread_lower_bound``
    (at least 1, since the seed is always active), which keeps the guarantee
    (a lower bound on the spread can only enlarge the budget).
    """
    epsilon = ensure_in_range(epsilon, "epsilon", 0.0, 1.0, inclusive=False)
    if delta <= 1.0:
        raise InvalidParameterError(f"delta must exceed 1 (failure probability is 1/delta), got {delta}")
    ensure_positive_int(num_tags, "num_tags")
    ensure_positive_int(k, "k")
    ensure_positive_int(reachable_size, "reachable_size")
    spread_lower_bound = max(1.0, float(spread_lower_bound))
    lam = (2.0 + epsilon) / (epsilon * epsilon) * (
        math.log(delta) + log_binomial(num_tags, min(k, num_tags)) + math.log(2.0)
    )
    return max(1, int(math.ceil(lam * reachable_size / spread_lower_bound)))


def sample_size_offline(
    epsilon: float,
    delta: float,
    num_tags: int,
    max_k: int,
    num_vertices: int,
) -> int:
    """Eqn. 7: the number of RR-Graphs the offline index must materialize.

    ``theta = (2+eps)/eps^2 * |V| * (ln(delta) + ln(phi_K) + ln 2)`` with
    ``phi_K = sum_{i=1..K} C(|Omega|, i)``.
    """
    epsilon = ensure_in_range(epsilon, "epsilon", 0.0, 1.0, inclusive=False)
    if delta <= 1.0:
        raise InvalidParameterError(f"delta must exceed 1 (failure probability is 1/delta), got {delta}")
    ensure_positive_int(num_tags, "num_tags")
    ensure_positive_int(max_k, "max_k")
    ensure_positive_int(num_vertices, "num_vertices")
    lam = (2.0 + epsilon) / (epsilon * epsilon) * (
        math.log(delta) + log_sum_binomials(num_tags, max_k) + math.log(2.0)
    )
    return max(1, int(math.ceil(lam * num_vertices)))


@dataclass
class SampleBudget:
    """Accuracy parameters of a PITEX query plus a practical sample cap.

    The theoretical budgets of Eqn. 2 / Eqn. 7 grow with ``|R_W(u)|`` or
    ``|V|`` and are enormous for interactive use, exactly as in the paper's
    implementation the practical sample counts are bounded.  ``max_samples``
    caps the budget (``None`` disables the cap); ``min_samples`` keeps noisy
    tiny budgets from under-sampling.
    """

    epsilon: float = 0.7
    delta: float = 1000.0
    k: int = 3
    num_tags: int = 50
    max_samples: Optional[int] = 2000
    min_samples: int = 64

    def __post_init__(self) -> None:
        ensure_in_range(self.epsilon, "epsilon", 0.0, 1.0, inclusive=False)
        if self.delta <= 1.0:
            raise InvalidParameterError(
                f"delta must exceed 1 (failure probability is 1/delta), got {self.delta}"
            )
        ensure_positive_int(self.k, "k")
        ensure_positive_int(self.num_tags, "num_tags")
        if self.max_samples is not None:
            ensure_positive_int(self.max_samples, "max_samples")
        ensure_positive_int(self.min_samples, "min_samples")

    def online_samples(self, reachable_size: int, spread_lower_bound: float = 1.0) -> int:
        """The capped ``theta_W`` for online sampling of one tag set."""
        theta = sample_size_online(
            self.epsilon,
            self.delta,
            self.num_tags,
            self.k,
            max(1, reachable_size),
            spread_lower_bound,
        )
        theta = max(self.min_samples, theta)
        if self.max_samples is not None:
            theta = min(theta, self.max_samples)
        return theta

    def offline_samples(self, num_vertices: int, max_k: Optional[int] = None) -> int:
        """The capped ``theta`` for offline RR-Graph materialization."""
        theta = sample_size_offline(
            self.epsilon,
            self.delta,
            self.num_tags,
            max_k if max_k is not None else self.k,
            num_vertices,
        )
        theta = max(self.min_samples, theta)
        if self.max_samples is not None:
            theta = min(theta, self.max_samples)
        return theta

    def approximation_ratio(self) -> float:
        """The ``(1 - eps) / (1 + eps)`` ratio of Theorem 2."""
        return (1.0 - self.epsilon) / (1.0 + self.epsilon)

    def with_overrides(self, **kwargs) -> "SampleBudget":
        """A copy of the budget with some fields replaced."""
        values = {
            "epsilon": self.epsilon,
            "delta": self.delta,
            "k": self.k,
            "num_tags": self.num_tags,
            "max_samples": self.max_samples,
            "min_samples": self.min_samples,
        }
        values.update(kwargs)
        return SampleBudget(**values)


@dataclass
class InfluenceEstimate:
    """The result of one influence estimation.

    Attributes
    ----------
    value:
        The estimated expected spread ``E-hat[I(u|W)]``.
    num_samples:
        Number of sample instances used.
    edges_visited:
        Number of edge probes performed (Fig. 13 instrumentation).
    reachable_size:
        ``|R_W(u)|`` when the estimator computed it, else 0.
    method:
        Short name of the estimator ("mc", "rr", "lazy", "lazy-batched",
        "index", ...).
    kernel:
        The sampling kernel that produced the estimate ("batched", "csr",
        "dict"), empty for estimators without a kernel choice.
    """

    value: float
    num_samples: int
    edges_visited: int = 0
    reachable_size: int = 0
    method: str = ""
    kernel: str = ""


class InfluenceEstimator(abc.ABC):
    """Abstract interface of every influence estimator.

    Concrete estimators hold the graph, the tag-topic model and a
    :class:`SampleBudget`; the engine calls :meth:`estimate` once per candidate
    tag set.
    """

    name: str = "abstract"

    def __init__(
        self,
        graph: TopicSocialGraph,
        model: TagTopicModel,
        budget: Optional[SampleBudget] = None,
    ) -> None:
        self.graph = graph
        self.model = model
        self.budget = budget if budget is not None else SampleBudget(num_tags=model.num_tags)
        self.total_edges_visited = 0
        self.total_samples = 0

    # ----------------------------------------------------------------- public
    def estimate(self, user: int, tag_set: Iterable) -> InfluenceEstimate:
        """Estimate ``E[I(user|tag_set)]``.

        Tag sets supported by no topic (``p(z|W) = 0`` everywhere) make every
        edge probability zero, so the spread is exactly 1 (the seed alone);
        this common case -- the source of the best-effort pruning power on
        sparse tag-topic matrices -- is answered without sampling.
        """
        return self.estimate_many(user, [tag_set])[0]

    def estimate_many(self, user: int, tag_sets: Sequence[Iterable]) -> list:
        """:meth:`estimate` for several tag sets of one user, batched.

        Semantically a loop of :meth:`estimate` calls (identical sampling
        order for the sequential kernels), but the per-row estimations flow
        through :meth:`estimate_many_with_probabilities`, so a batched-kernel
        estimator answers all tag sets from one shared event store.  The
        best-effort explorer drains runs of complete tag sets through this
        entry point.
        """
        guard_check(
            self, "estimate through a frozen engine's shared estimator (RNG + counters)"
        )
        results: list = [None] * len(tag_sets)
        rows = []
        slots = []
        for slot, tag_set in enumerate(tag_sets):
            posterior = self.model.topic_posterior(tag_set)
            if not posterior.any():
                results[slot] = InfluenceEstimate(
                    value=1.0,
                    num_samples=0,
                    edges_visited=0,
                    reachable_size=1,
                    method=self.name,
                    kernel=getattr(self, "kernel", ""),
                )
                continue
            rows.append(self.graph.edge_probabilities_under(posterior))
            slots.append(slot)
        batch_edges = 0
        batch_samples = 0
        if rows:
            estimates = self.estimate_many_with_probabilities(user, rows)
            for slot, estimate in zip(slots, estimates):
                if not estimate.kernel:
                    estimate.kernel = getattr(self, "kernel", "")
                self.total_edges_visited += estimate.edges_visited
                self.total_samples += estimate.num_samples
                batch_edges += estimate.edges_visited
                batch_samples += estimate.num_samples
                results[slot] = estimate
        # Per-method work counters: deterministic for a seeded workload, so
        # the thread and process backends must report identical totals.
        counter(f"estimator.{self.name}.estimates", len(tag_sets))
        counter(f"estimator.{self.name}.edges_visited", batch_edges)
        counter(f"estimator.{self.name}.samples", batch_samples)
        return results

    @abc.abstractmethod
    def estimate_with_probabilities(
        self, user: int, edge_probabilities: Sequence[float], num_samples: Optional[int] = None
    ) -> InfluenceEstimate:
        """Estimate the spread for explicit per-edge probabilities.

        ``num_samples`` overrides the budget-derived sample count; the
        convergence experiment (Fig. 6) uses this to sweep ``theta_W``.
        """

    def estimate_many_with_probabilities(
        self,
        user: int,
        edge_probability_rows: Sequence[Sequence[float]],
        num_samples: Optional[int] = None,
    ) -> list:
        """Estimate one user's spread under several probability assignments.

        The default runs one independent estimation per row.  Estimators with
        a batched kernel (:class:`repro.sampling.lazy.LazyPropagationEstimator`
        with ``kernel="batched"``) override this to advance all rows through a
        single shared event store; the best-effort explorer feeds the upper
        bounds of every child of one expansion through this entry point.
        """
        guard_check(
            self, "estimate through a frozen engine's shared estimator (RNG + counters)"
        )
        return [
            self.estimate_with_probabilities(user, row, num_samples)
            for row in edge_probability_rows
        ]

    def reset_counters(self) -> None:
        """Zero the cumulative edge / sample counters."""
        guard_check(self, "reset a frozen estimator's counters")
        self.total_edges_visited = 0
        self.total_samples = 0
