"""Online sampling estimators for influence spread.

Three estimators implement the paper's Sec. 4-5 machinery behind a common
:class:`~repro.sampling.base.InfluenceEstimator` interface:

* :class:`~repro.sampling.monte_carlo.MonteCarloEstimator` -- forward live-edge
  sampling (MC, Kempe et al. style).
* :class:`~repro.sampling.reverse_reachable.ReverseReachableEstimator` --
  reverse reachable set sampling (RR, Borgs et al. style).
* :class:`~repro.sampling.lazy.LazyPropagationEstimator` -- the paper's lazy
  propagation sampling (Algorithm 2) which probes edges only when a geometric
  schedule says they fire.

The module also exposes the sample-size formulas of Lemma 2 / Lemma 3 and the
edge-visit instrumentation used by Fig. 13.
"""

from repro.sampling.base import (
    InfluenceEstimate,
    InfluenceEstimator,
    SampleBudget,
    sample_size_online,
    sample_size_offline,
)
from repro.sampling.monte_carlo import MonteCarloEstimator
from repro.sampling.reverse_reachable import ReverseReachableEstimator
from repro.sampling.lazy import LazyPropagationEstimator
from repro.sampling.instrumentation import EstimatorInstrumentation, ConvergenceTrace

__all__ = [
    "InfluenceEstimate",
    "InfluenceEstimator",
    "SampleBudget",
    "sample_size_online",
    "sample_size_offline",
    "MonteCarloEstimator",
    "ReverseReachableEstimator",
    "LazyPropagationEstimator",
    "EstimatorInstrumentation",
    "ConvergenceTrace",
]
