"""Monte-Carlo (forward live-edge) influence estimation.

``MCSample`` of Algorithm 1: each sample instance performs a forward BFS from
the query user, keeping each positive-probability edge alive with probability
``p(e|W)``; the realized spread is the number of reached vertices and the
estimate is the average over ``theta_W`` instances.  Every positive-probability
out-edge of every activated vertex is probed in every instance, which is the
inefficiency Example 2 / Fig. 3(a) of the paper highlights and the lazy sampler
removes.

The default ``kernel="csr"`` runs every sample instance as a frontier-at-a-time
BFS over the graph's cached CSR arrays with one batched coin flip per frontier;
``kernel="dict"`` keeps the original per-edge Python walker as the reference
implementation.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.graph.algorithms import (
    live_edge_reachable,
    live_edge_world,
    reachable_mask,
    reachable_with_probabilities,
)
from repro.exceptions import InvalidParameterError
from repro.graph.digraph import TopicSocialGraph
from repro.sampling.base import InfluenceEstimate, InfluenceEstimator, SampleBudget
from repro.topics.model import TagTopicModel
from repro.utils.freeze import guard_check
from repro.utils.rng import SeedLike, spawn_rng

_KERNELS = ("csr", "dict")


class MonteCarloEstimator(InfluenceEstimator):
    """Forward Monte-Carlo sampling (the ``MC`` method of the paper)."""

    name = "mc"

    def __init__(
        self,
        graph: TopicSocialGraph,
        model: TagTopicModel,
        budget: Optional[SampleBudget] = None,
        seed: SeedLike = None,
        compute_reachable: bool = True,
        kernel: str = "csr",
    ) -> None:
        super().__init__(graph, model, budget)
        if kernel not in _KERNELS:
            raise InvalidParameterError(f"unknown kernel {kernel!r}; choose from {_KERNELS}")
        self._rng = spawn_rng(seed)
        self._compute_reachable = compute_reachable
        self.kernel = kernel

    def estimate_with_probabilities(
        self,
        user: int,
        edge_probabilities: Sequence[float],
        num_samples: Optional[int] = None,
    ) -> InfluenceEstimate:
        """Average realized spread over ``theta_W`` forward live-edge samples."""
        guard_check(self, "draw from a frozen engine's shared estimator RNG")
        probabilities = np.asarray(edge_probabilities, dtype=float)
        if self._compute_reachable or num_samples is None:
            if self.kernel == "csr":
                reachable_size = int(reachable_mask(self.graph, user, probabilities).sum())
            else:
                reachable_size = len(
                    reachable_with_probabilities(self.graph, user, probabilities, kernel="dict")
                )
        else:
            reachable_size = 0
        if num_samples is None:
            num_samples = self.budget.online_samples(reachable_size)

        total_spread = 0
        total_probes = 0
        if self.kernel == "csr":
            for _ in range(num_samples):
                activated, _, probes = live_edge_world(self.graph, user, probabilities, self._rng)
                total_spread += int(activated.sum())
                total_probes += probes
        else:
            uniform = self._rng.uniform
            for _ in range(num_samples):
                activated, probes = live_edge_reachable(self.graph, user, probabilities, uniform)
                total_spread += len(activated)
                total_probes += probes
        value = total_spread / float(num_samples)
        return InfluenceEstimate(
            value=value,
            num_samples=num_samples,
            edges_visited=total_probes,
            reachable_size=reachable_size,
            method=self.name,
        )

    def running_estimates(
        self,
        user: int,
        edge_probabilities: Sequence[float],
        checkpoints: Sequence[int],
    ) -> list:
        """Estimate values at increasing sample counts (Fig. 6 convergence sweep).

        ``checkpoints`` must be increasing; the samples are shared, i.e. the
        estimate at checkpoint ``c`` uses the first ``c`` sample instances.
        """
        guard_check(self, "draw from a frozen engine's shared estimator RNG")
        probabilities = np.asarray(edge_probabilities, dtype=float)
        uniform = self._rng.uniform
        results = []
        total_spread = 0
        drawn = 0
        for checkpoint in checkpoints:
            while drawn < checkpoint:
                if self.kernel == "csr":
                    activated, _, _ = live_edge_world(self.graph, user, probabilities, self._rng)
                    total_spread += int(activated.sum())
                else:
                    activated_set, _ = live_edge_reachable(self.graph, user, probabilities, uniform)
                    total_spread += len(activated_set)
                drawn += 1
            results.append(total_spread / float(drawn))
        return results
