"""Instrumentation for the sampling experiments (Fig. 6 and Fig. 13).

Two small helpers:

* :class:`ConvergenceTrace` -- estimate-vs-sample-count series gathered by the
  ``running_estimates`` methods of the samplers (Fig. 6).
* :class:`EstimatorInstrumentation` -- edge-visit accounting across a batch of
  queries, one record per method (Fig. 13 / Appendix D).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

from repro.sampling.base import InfluenceEstimate


@dataclass
class ConvergenceTrace:
    """Estimates of one method at increasing sample counts."""

    method: str
    sample_counts: List[int] = field(default_factory=list)
    estimates: List[float] = field(default_factory=list)

    def add(self, sample_count: int, estimate: float) -> None:
        """Record the estimate after ``sample_count`` samples."""
        self.sample_counts.append(int(sample_count))
        self.estimates.append(float(estimate))

    def final_estimate(self) -> float:
        """The estimate at the largest recorded sample count."""
        return self.estimates[-1] if self.estimates else 0.0

    def relative_spread(self) -> float:
        """Max relative deviation of the recorded estimates from the final one.

        Small values mean the method has converged over the recorded range.
        """
        final = self.final_estimate()
        if final == 0.0 or not self.estimates:
            return 0.0
        return max(abs(e - final) / final for e in self.estimates)

    def rows(self) -> List[tuple]:
        """``(method, theta, estimate)`` rows for tabular printing."""
        return [(self.method, c, e) for c, e in zip(self.sample_counts, self.estimates)]


@dataclass
class EstimatorInstrumentation:
    """Aggregated edge-visit counts per method across a query batch."""

    edge_visits: Dict[str, int] = field(default_factory=dict)
    sample_counts: Dict[str, int] = field(default_factory=dict)
    query_counts: Dict[str, int] = field(default_factory=dict)

    def record(self, estimate: InfluenceEstimate) -> None:
        """Add one estimation result to the per-method totals."""
        method = estimate.method or "unknown"
        self.edge_visits[method] = self.edge_visits.get(method, 0) + estimate.edges_visited
        self.sample_counts[method] = self.sample_counts.get(method, 0) + estimate.num_samples
        self.query_counts[method] = self.query_counts.get(method, 0) + 1

    def record_many(self, estimates: Iterable[InfluenceEstimate]) -> None:
        """Add several estimation results."""
        for estimate in estimates:
            self.record(estimate)

    def record_query_result(self, method: str, edges_visited: int, num_samples: int = 0) -> None:
        """Aggregate one full query's counters (e.g. from a ``PitexResult``).

        Queries aggregate many per-tag-set estimations; this entry point lets
        the CLI and the serving layer feed whole-query totals into the same
        per-method table without importing the core result types.
        """
        method = method or "unknown"
        self.edge_visits[method] = self.edge_visits.get(method, 0) + int(edges_visited)
        self.sample_counts[method] = self.sample_counts.get(method, 0) + int(num_samples)
        self.query_counts[method] = self.query_counts.get(method, 0) + 1

    def mean_edge_visits(self, method: str) -> float:
        """Average edge visits per query for ``method``."""
        queries = self.query_counts.get(method, 0)
        if queries == 0:
            return 0.0
        return self.edge_visits.get(method, 0) / float(queries)

    def mean_samples(self, method: str) -> float:
        """Average sample instances per query for ``method``."""
        queries = self.query_counts.get(method, 0)
        if queries == 0:
            return 0.0
        return self.sample_counts.get(method, 0) / float(queries)

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """JSON-ready per-method counters (used by ``pitex query --json``)."""
        return {
            method: {
                "edge_visits": self.edge_visits.get(method, 0),
                "mean_edge_visits": self.mean_edge_visits(method),
                "samples": self.sample_counts.get(method, 0),
                "queries": self.query_counts.get(method, 0),
            }
            for method in self.methods()
        }

    def methods(self) -> Sequence[str]:
        """All methods recorded so far."""
        return sorted(self.edge_visits)

    def rows(self) -> List[tuple]:
        """``(method, total_edge_visits, mean_edge_visits, total_samples)`` rows."""
        return [
            (
                method,
                self.edge_visits.get(method, 0),
                self.mean_edge_visits(method),
                self.sample_counts.get(method, 0),
            )
            for method in self.methods()
        ]
