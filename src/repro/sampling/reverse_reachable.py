"""Reverse-Reachable (RR) set influence estimation.

``RRSample`` of Algorithm 1: a sample instance uniformly picks a vertex ``v``
from ``R_W(u)`` (the vertices structurally reachable from the query user), then
grows a *reverse* live-edge set from ``v``; the indicator of whether ``u`` lands
in that set, scaled by ``|R_W(u)|``, is an unbiased estimate of the spread.

The reverse growth probes every positive-probability in-edge of every reached
vertex, which is the inefficiency Example 3 / Fig. 3(b) highlights for
celebrity-style hubs.

The default ``kernel="csr"`` computes ``R_W(u)`` and every reverse world with
the vectorized CSR kernels (the sample targets for all ``theta_W`` instances
are drawn in one batch); ``kernel="dict"`` keeps the original per-edge walker
as the reference implementation the equivalence tests and the Fig. 12
speedup benchmark compare against.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.graph.algorithms import (
    reachable_vertices,
    reachable_with_probabilities,
    reverse_live_edge_reachable,
    reverse_live_edge_world,
)
from repro.exceptions import InvalidParameterError
from repro.graph.digraph import TopicSocialGraph
from repro.sampling.base import InfluenceEstimate, InfluenceEstimator, SampleBudget
from repro.topics.model import TagTopicModel
from repro.utils.freeze import guard_check
from repro.utils.rng import SeedLike, spawn_rng

_KERNELS = ("csr", "dict")


class ReverseReachableEstimator(InfluenceEstimator):
    """Reverse-reachable set sampling (the ``RR`` method of the paper)."""

    name = "rr"

    def __init__(
        self,
        graph: TopicSocialGraph,
        model: TagTopicModel,
        budget: Optional[SampleBudget] = None,
        seed: SeedLike = None,
        kernel: str = "csr",
    ) -> None:
        super().__init__(graph, model, budget)
        if kernel not in _KERNELS:
            raise InvalidParameterError(f"unknown kernel {kernel!r}; choose from {_KERNELS}")
        self._rng = spawn_rng(seed)
        self.kernel = kernel

    def estimate_with_probabilities(
        self,
        user: int,
        edge_probabilities: Sequence[float],
        num_samples: Optional[int] = None,
    ) -> InfluenceEstimate:
        """Average hit-indicator over ``theta_W`` reverse samples, scaled by ``|R_W(u)|``."""
        guard_check(self, "draw from a frozen engine's shared estimator RNG")
        probabilities = np.asarray(edge_probabilities, dtype=float)
        if self.kernel == "csr":
            reachable = reachable_vertices(self.graph, user, probabilities)
        else:
            reachable = np.array(
                sorted(reachable_with_probabilities(self.graph, user, probabilities, kernel="dict")),
                dtype=np.int64,
            )
        reachable_size = len(reachable)
        if num_samples is None:
            num_samples = self.budget.online_samples(reachable_size)
        if reachable_size == 1:
            # Only the seed itself can ever be influenced.
            return InfluenceEstimate(
                value=1.0,
                num_samples=0,
                edges_visited=0,
                reachable_size=1,
                method=self.name,
            )

        hits = 0
        total_probes = 0
        if self.kernel == "csr":
            targets = reachable[self._rng.generator.integers(0, reachable_size, size=num_samples)]
            for target in targets:
                reached, probes = reverse_live_edge_world(
                    self.graph, int(target), probabilities, self._rng
                )
                total_probes += probes
                if reached[user]:
                    hits += 1
        else:
            uniform = self._rng.uniform
            for _ in range(num_samples):
                target = reachable[self._rng.integer(0, reachable_size)]
                reached, probes = reverse_live_edge_reachable(
                    self.graph, int(target), probabilities, uniform
                )
                total_probes += probes
                if user in reached:
                    hits += 1
        value = hits / float(num_samples) * reachable_size
        return InfluenceEstimate(
            value=value,
            num_samples=num_samples,
            edges_visited=total_probes,
            reachable_size=reachable_size,
            method=self.name,
        )

    def running_estimates(
        self,
        user: int,
        edge_probabilities: Sequence[float],
        checkpoints: Sequence[int],
    ) -> list:
        """Estimate values at increasing sample counts (Fig. 6 convergence sweep)."""
        guard_check(self, "draw from a frozen engine's shared estimator RNG")
        probabilities = np.asarray(edge_probabilities, dtype=float)
        if self.kernel == "csr":
            reachable = reachable_vertices(self.graph, user, probabilities)
        else:
            reachable = np.array(
                sorted(reachable_with_probabilities(self.graph, user, probabilities, kernel="dict")),
                dtype=np.int64,
            )
        reachable_size = len(reachable)
        if reachable_size == 1:
            return [1.0 for _ in checkpoints]
        uniform = self._rng.uniform
        results = []
        hits = 0
        drawn = 0
        for checkpoint in checkpoints:
            while drawn < checkpoint:
                target = int(reachable[self._rng.integer(0, reachable_size)])
                if self.kernel == "csr":
                    reached_mask, _ = reverse_live_edge_world(
                        self.graph, target, probabilities, self._rng
                    )
                    if reached_mask[user]:
                        hits += 1
                else:
                    reached, _ = reverse_live_edge_reachable(
                        self.graph, target, probabilities, uniform
                    )
                    if user in reached:
                        hits += 1
                drawn += 1
            results.append(hits / float(drawn) * reachable_size)
        return results
