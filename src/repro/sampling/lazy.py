"""Lazy propagation sampling (Algorithm 2 of the paper).

Plain Monte-Carlo probes every positive-probability out-edge of every activated
vertex in every sample instance, even though sparse influence graphs make most
probes fail.  Lazy propagation turns the per-instance Bernoulli trial of an
edge into a *schedule*: a geometric random variable tells after how many visits
of the source vertex the edge will fire next, so unsuccessful probes are never
executed at all.  Lemma 6 shows the two processes are statistically identical.

The per-vertex schedules (:class:`~repro.utils.heap.LazyEdgeHeap`) persist
across the ``theta_W`` sample instances of one estimation, which is exactly
where the savings come from -- the expected number of edge events per instance
drops from ``|E_W(u)| * E[I(u -> v_out)]`` to ``|R_W(u)| * E[I(u -> v*)]``
(Lemma 5 vs Lemma 7).

All ``theta_W`` instances of one estimation share the same probability array,
so the hot path is batched on top of the graph's CSR view: a vertex schedule
is created from two array slices (edge ids, targets) plus one vectorized
geometric draw for its whole out-neighbourhood, instead of one dict probe and
one Python-level geometric call per edge.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, Optional, Sequence

import numpy as np

from repro.graph.algorithms import (
    live_edge_world,
    reachable_mask,
    reachable_with_probabilities,
)
from repro.exceptions import InvalidParameterError
from repro.graph.digraph import TopicSocialGraph
from repro.sampling.base import InfluenceEstimate, InfluenceEstimator, SampleBudget
from repro.topics.model import TagTopicModel
from repro.utils.heap import LazyEdgeHeap
from repro.utils.rng import RandomSource, SeedLike, spawn_rng
from repro.utils.stats import log_binomial


class LazyPropagationEstimator(InfluenceEstimator):
    """Lazy propagation sampling (the ``LAZY`` method of the paper).

    Parameters
    ----------
    graph, model, budget:
        As for every :class:`~repro.sampling.base.InfluenceEstimator`.
    seed:
        Random seed.
    early_stopping:
        Enable the Algorithm 2 line-17 style early termination: once the total
        number of observed activations is large enough, the relative error of
        the running mean is already within the ``(1 ± eps)`` band with the
        required probability (martingale stopping rule of Tang et al.), so the
        remaining instances can be skipped.
    kernel:
        ``"csr"`` (default) builds vertex schedules and forward worlds on the
        CSR arrays with batched draws; ``"dict"`` keeps the per-edge reference
        path (dict adjacency probes, one scalar geometric per edge).
    """

    name = "lazy"

    def __init__(
        self,
        graph: TopicSocialGraph,
        model: TagTopicModel,
        budget: Optional[SampleBudget] = None,
        seed: SeedLike = None,
        early_stopping: bool = True,
        kernel: str = "csr",
    ) -> None:
        super().__init__(graph, model, budget)
        if kernel not in ("csr", "dict"):
            raise InvalidParameterError(f"unknown kernel {kernel!r}; choose from ('csr', 'dict')")
        self._rng = spawn_rng(seed)
        self.early_stopping = early_stopping
        self.kernel = kernel

    # ------------------------------------------------------------------ core
    def _stop_threshold(self) -> float:
        """Total-activation count at which the running estimate is already accurate."""
        budget = self.budget
        log_candidates = log_binomial(budget.num_tags, min(budget.k, budget.num_tags))
        lam = (2.0 + budget.epsilon) / (budget.epsilon**2) * (
            math.log(budget.delta) + log_candidates + math.log(2.0)
        )
        return (1.0 + budget.epsilon) * lam

    def _make_schedule(
        self, vertex: int, probabilities: np.ndarray, rng: RandomSource
    ) -> LazyEdgeHeap:
        """Build one vertex's lazy schedule.

        On the CSR kernel the whole out-neighbourhood is materialized with two
        array slices and its first-fire visit counts with one batched geometric
        draw; the dict kernel probes the adjacency per edge with one scalar
        geometric each, as the original implementation did.
        """
        if self.kernel == "dict":
            neighbors = []
            neighbor_probabilities = []
            # borrowed read-only adjacency, matching the original zero-copy path
            for edge_id in self.graph._out[vertex]:
                probability = probabilities[edge_id]
                if probability <= 0.0:
                    continue
                _, target = self.graph.edge_endpoints(edge_id)
                neighbors.append(target)
                neighbor_probabilities.append(float(probability))
            return LazyEdgeHeap(neighbors, neighbor_probabilities, rng.geometric)
        edge_ids, targets = self.graph.csr.out_slice(vertex)
        edge_probabilities = probabilities[edge_ids]
        positive = edge_probabilities > 0.0
        neighbors = targets[positive]
        neighbor_probabilities = edge_probabilities[positive]
        fires = rng.geometric_array(neighbor_probabilities)
        return LazyEdgeHeap(
            neighbors.tolist(),
            neighbor_probabilities.tolist(),
            rng.geometric,
            initial_fires=fires.tolist(),
        )

    def _reachable_size(self, user: int, probabilities: np.ndarray) -> int:
        if self.kernel == "dict":
            return len(reachable_with_probabilities(self.graph, user, probabilities, kernel="dict"))
        return int(reachable_mask(self.graph, user, probabilities).sum())

    def estimate_with_probabilities(
        self,
        user: int,
        edge_probabilities: Sequence[float],
        num_samples: Optional[int] = None,
    ) -> InfluenceEstimate:
        """Run ``theta_W`` lazy sample instances (possibly fewer with early stopping)."""
        probabilities = np.asarray(edge_probabilities, dtype=float)
        reachable_size = self._reachable_size(user, probabilities)
        if num_samples is None:
            num_samples = self.budget.online_samples(reachable_size)
        if reachable_size == 1:
            return InfluenceEstimate(
                value=1.0,
                num_samples=0,
                edges_visited=0,
                reachable_size=1,
                method=self.name,
            )

        schedules: Dict[int, LazyEdgeHeap] = {}
        edges_visited = 0
        total_activations = 0
        stop_threshold = self._stop_threshold() if self.early_stopping else math.inf
        instances_run = 0

        for _ in range(num_samples):
            instances_run += 1
            visited = {user}
            frontier = deque([user])
            while frontier:
                vertex = frontier.popleft()
                total_activations += 1
                schedule = schedules.get(vertex)
                if schedule is None:
                    schedule = self._make_schedule(vertex, probabilities, self._rng)
                    schedules[vertex] = schedule
                    edges_visited += schedule.pending()
                fired = schedule.visit()
                edges_visited += len(fired)
                for neighbor in fired:
                    if neighbor not in visited:
                        visited.add(neighbor)
                        frontier.append(neighbor)
            if total_activations >= stop_threshold:
                break

        value = total_activations / float(instances_run)
        return InfluenceEstimate(
            value=value,
            num_samples=instances_run,
            edges_visited=edges_visited,
            reachable_size=reachable_size,
            method=self.name,
        )

    # ------------------------------------------------------------ convergence
    def running_estimates(
        self,
        user: int,
        edge_probabilities: Sequence[float],
        checkpoints: Sequence[int],
    ) -> list:
        """Estimate values at increasing sample counts (Fig. 6 convergence sweep)."""
        probabilities = np.asarray(edge_probabilities, dtype=float)
        schedules: Dict[int, LazyEdgeHeap] = {}
        results = []
        total_activations = 0
        drawn = 0
        for checkpoint in checkpoints:
            while drawn < checkpoint:
                visited = {user}
                frontier = deque([user])
                while frontier:
                    vertex = frontier.popleft()
                    total_activations += 1
                    schedule = schedules.get(vertex)
                    if schedule is None:
                        schedule = self._make_schedule(vertex, probabilities, self._rng)
                        schedules[vertex] = schedule
                    fired = schedule.visit()
                    for neighbor in fired:
                        if neighbor not in visited:
                            visited.add(neighbor)
                            frontier.append(neighbor)
                drawn += 1
            results.append(total_activations / float(drawn))
        return results

    def sample_live_subgraph(self, user: int, edge_probabilities: Sequence[float]):
        """One lazy sample instance returning ``(activated_vertices, live_edges)``.

        Used by the delayed-materialization index (Algorithm 4) which needs the
        live edges of a forward sample, not just the activation count.  Fresh
        coins are used so the draw is independent of previous estimations; on
        the CSR kernel the world is realized with batched coin flips.
        """
        probabilities = np.asarray(edge_probabilities, dtype=float)
        if self.kernel == "dict":
            visited = {user}
            live_edges = []
            frontier = deque([user])
            while frontier:
                vertex = frontier.popleft()
                for edge_id in self.graph.out_edges(vertex):
                    probability = probabilities[edge_id]
                    if probability <= 0.0:
                        continue
                    _, target = self.graph.edge_endpoints(edge_id)
                    if self._rng.uniform() < probability:
                        live_edges.append(edge_id)
                        if target not in visited:
                            visited.add(target)
                            frontier.append(target)
            return visited, live_edges
        activated, live_edges, _ = live_edge_world(
            self.graph, user, probabilities, self._rng, collect_edges=True
        )
        return set(np.flatnonzero(activated).tolist()), live_edges.tolist()
