"""Lazy propagation sampling (Algorithm 2 of the paper).

Plain Monte-Carlo probes every positive-probability out-edge of every activated
vertex in every sample instance, even though sparse influence graphs make most
probes fail.  Lazy propagation turns the per-instance Bernoulli trial of an
edge into a *schedule*: a geometric random variable tells after how many visits
of the source vertex the edge will fire next, so unsuccessful probes are never
executed at all.  Lemma 6 shows the two processes are statistically identical.

The per-vertex schedules (:class:`~repro.utils.heap.LazyEdgeHeap`) persist
across the ``theta_W`` sample instances of one estimation, which is exactly
where the savings come from -- the expected number of edge events per instance
drops from ``|E_W(u)| * E[I(u -> v_out)]`` to ``|R_W(u)| * E[I(u -> v*)]``
(Lemma 5 vs Lemma 7).

All ``theta_W`` instances of one estimation share the same probability array,
so the hot path is batched on top of the graph's CSR view: a vertex schedule
is created from two array slices (edge ids, targets) plus one vectorized
geometric draw for its whole out-neighbourhood, instead of one dict probe and
one Python-level geometric call per edge.

Three kernels are provided:

* ``"batched"`` -- the array-backed multi-instance event queue
  (:class:`~repro.utils.heap.BatchedEventQueue`): all ``theta_W`` instances of
  one estimation advance frontier-at-a-time *simultaneously*, one numpy round
  per BFS level across the whole instance batch, with rescheduling done as
  batched geometric redraws.  The fastest kernel; also powers the best-effort
  explorer's batched child-bound estimation
  (:meth:`LazyPropagationEstimator.estimate_many_with_probabilities`).
* ``"csr"`` -- per-instance BFS with vertex schedules built from CSR slices
  and batched initial draws, but one Python ``LazyEdgeHeap.visit`` per
  activation (the PR-2 kernel).
* ``"dict"`` -- the per-edge reference walker (one dict probe and one scalar
  geometric per edge), kept for equivalence testing.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, Optional, Sequence

import numpy as np

from repro.graph.algorithms import (
    live_edge_world,
    reachable_mask,
    reachable_with_probabilities,
)
from repro.exceptions import InvalidParameterError
from repro.graph.digraph import TopicSocialGraph
from repro.sampling.base import InfluenceEstimate, InfluenceEstimator, SampleBudget
from repro.topics.model import TagTopicModel
from repro.utils.freeze import guard_check
from repro.utils.heap import BatchedEventQueue, LazyEdgeHeap
from repro.utils.rng import RandomSource, SeedLike, spawn_rng
from repro.utils.stats import log_binomial

LAZY_KERNELS = ("batched", "csr", "dict")


class LazyPropagationEstimator(InfluenceEstimator):
    """Lazy propagation sampling (the ``LAZY`` method of the paper).

    Parameters
    ----------
    graph, model, budget:
        As for every :class:`~repro.sampling.base.InfluenceEstimator`.
    seed:
        Random seed.
    early_stopping:
        Enable the Algorithm 2 line-17 style early termination: once the total
        number of observed activations is large enough, the relative error of
        the running mean is already within the ``(1 ± eps)`` band with the
        required probability (martingale stopping rule of Tang et al.), so the
        remaining instances can be skipped.
    kernel:
        ``"batched"`` advances all sample instances of one estimation through
        a single :class:`~repro.utils.heap.BatchedEventQueue` (the fastest
        path); ``"csr"`` (default) builds per-vertex schedules on the CSR
        arrays with batched draws but walks instances one at a time; ``"dict"``
        keeps the per-edge reference path (dict adjacency probes, one scalar
        geometric per edge).  All three draw from the same statistical process
        (Lemma 6), so estimates agree in distribution but not per-seed.
    batch_size:
        Instances advanced together per chunk of the batched kernel.  Chunking
        bounds the ``instances x vertices`` visited bitmap and gives the
        early-stopping rule a checkpoint between chunks (the sequential
        kernels check after every instance; every counted instance still runs
        to completion, so the estimate stays unbiased either way).  ``None``
        (default) sizes chunks adaptively so the bitmap stays around
        :data:`VISITED_CELL_BUDGET` cells: small graphs batch the whole
        ``theta_W`` at once, large graphs stay memory-bounded.
    """

    name = "lazy"

    #: Cap (in bool cells) on the batched kernel's per-chunk visited bitmap.
    VISITED_CELL_BUDGET = 32_000_000

    def __init__(
        self,
        graph: TopicSocialGraph,
        model: TagTopicModel,
        budget: Optional[SampleBudget] = None,
        seed: SeedLike = None,
        early_stopping: bool = True,
        kernel: str = "csr",
        batch_size: Optional[int] = None,
    ) -> None:
        super().__init__(graph, model, budget)
        if kernel not in LAZY_KERNELS:
            raise InvalidParameterError(f"unknown kernel {kernel!r}; choose from {LAZY_KERNELS}")
        self._rng = spawn_rng(seed)
        self.early_stopping = early_stopping
        self.kernel = kernel
        self.batch_size = max(1, int(batch_size)) if batch_size is not None else None
        if kernel == "batched":
            # Distinct method label so Fig. 13-style instrumentation and the
            # engine can track the batched series next to the csr/dict lazy one.
            self.name = "lazy-batched"

    def _chunk_size(self, instance_rows: int = 1) -> int:
        """Instances advanced per chunk (per parallel row of instances)."""
        if self.batch_size is not None:
            return self.batch_size
        cells = max(1, self.graph.num_vertices * max(1, instance_rows))
        return max(64, self.VISITED_CELL_BUDGET // cells)

    # ------------------------------------------------------------------ core
    def _stop_threshold(self) -> float:
        """Total-activation count at which the running estimate is already accurate."""
        budget = self.budget
        log_candidates = log_binomial(budget.num_tags, min(budget.k, budget.num_tags))
        lam = (2.0 + budget.epsilon) / (budget.epsilon**2) * (
            math.log(budget.delta) + log_candidates + math.log(2.0)
        )
        return (1.0 + budget.epsilon) * lam

    def _make_schedule(
        self, vertex: int, probabilities: np.ndarray, rng: RandomSource
    ) -> LazyEdgeHeap:
        """Build one vertex's lazy schedule.

        On the CSR kernel the whole out-neighbourhood is materialized with two
        array slices and its first-fire visit counts with one batched geometric
        draw; the dict kernel probes the adjacency per edge with one scalar
        geometric each, as the original implementation did.
        """
        if self.kernel == "dict":
            neighbors = []
            neighbor_probabilities = []
            # borrowed read-only adjacency, matching the original zero-copy path
            for edge_id in self.graph._out[vertex]:
                probability = probabilities[edge_id]
                if probability <= 0.0:
                    continue
                _, target = self.graph.edge_endpoints(edge_id)
                neighbors.append(target)
                neighbor_probabilities.append(float(probability))
            return LazyEdgeHeap(neighbors, neighbor_probabilities, rng.geometric)
        edge_ids, targets = self.graph.csr.out_slice(vertex)
        edge_probabilities = probabilities[edge_ids]
        positive = edge_probabilities > 0.0
        neighbors = targets[positive]
        neighbor_probabilities = edge_probabilities[positive]
        fires = rng.geometric_array(neighbor_probabilities)
        return LazyEdgeHeap(
            neighbors.tolist(),
            neighbor_probabilities.tolist(),
            rng.geometric,
            initial_fires=fires.tolist(),
        )

    def _reachable_size(self, user: int, probabilities: np.ndarray) -> int:
        if self.kernel == "dict":
            return len(reachable_with_probabilities(self.graph, user, probabilities, kernel="dict"))
        return int(reachable_mask(self.graph, user, probabilities).sum())

    def _reachable_sizes_batched(self, user: int, rows: np.ndarray) -> np.ndarray:
        """``|R_W(u)|`` for every probability row, multi-world BFS.

        The frontier lives in the flattened ``world * V + vertex`` key space,
        so one round expands every world's frontier with the same handful of
        numpy gathers instead of one :func:`reachable_mask` walk per world.
        Worlds are processed in chunks so the bitmap honours the same
        :data:`VISITED_CELL_BUDGET` the instance batching does.
        """
        num_worlds = rows.shape[0]
        worlds_per_chunk = max(1, self.VISITED_CELL_BUDGET // max(1, self.graph.num_vertices))
        if num_worlds > worlds_per_chunk:
            return np.concatenate(
                [
                    self._reachable_sizes_batched(user, rows[start : start + worlds_per_chunk])
                    for start in range(0, num_worlds, worlds_per_chunk)
                ]
            )
        csr = self.graph.csr
        num_vertices = self.graph.num_vertices
        visited = np.zeros(num_worlds * num_vertices, dtype=bool)
        frontier_worlds = np.arange(num_worlds, dtype=np.int64)
        frontier_vertices = np.full(num_worlds, user, dtype=np.int64)
        visited[frontier_worlds * num_vertices + user] = True
        while frontier_vertices.size:
            positions = csr.out_positions(frontier_vertices)
            if not positions.size:
                break
            counts = csr.out_indptr[frontier_vertices + 1] - csr.out_indptr[frontier_vertices]
            owner_world = np.repeat(frontier_worlds, counts)
            allowed = rows[owner_world, csr.out_edge_ids[positions]] > 0.0
            keys = (
                owner_world[allowed] * num_vertices + csr.out_targets[positions][allowed]
            )
            keys = np.unique(keys[~visited[keys]])
            if not keys.size:
                break
            visited[keys] = True
            frontier_worlds = keys // num_vertices
            frontier_vertices = keys - frontier_worlds * num_vertices
        return visited.reshape(num_worlds, num_vertices).sum(axis=1)

    # ------------------------------------------------------------ batched core
    def _make_queue(self, world_probabilities: np.ndarray) -> BatchedEventQueue:
        """One event queue over the graph's CSR arrays, one row per world."""
        csr = self.graph.csr
        return BatchedEventQueue(
            csr.out_indptr, csr.out_targets, csr.out_edge_ids, world_probabilities, self._rng
        )

    def _run_batched_chunk(
        self,
        queue: BatchedEventQueue,
        user: int,
        sizes: np.ndarray,
        worlds: np.ndarray,
    ) -> np.ndarray:
        """Run ``sizes[i]`` fresh instances of ``worlds[i]`` to completion.

        All instances advance together, one :meth:`BatchedEventQueue.advance`
        call per BFS level of the whole batch.  Returns per-world activation
        counts (indexed by world id, zeros for worlds not in ``worlds``);
        schedules persist on ``queue`` across chunks exactly like the shared
        :class:`LazyEdgeHeap` schedules of the sequential kernels.
        """
        num_vertices = self.graph.num_vertices
        worlds = np.asarray(worlds, dtype=np.int64)
        sizes = np.asarray(sizes, dtype=np.int64)
        num_rows = int(sizes.sum())
        world_of_row = np.repeat(worlds, sizes)
        single_world = queue.num_worlds == 1
        # Flat (instance-row x vertex) visited bitmap, indexed by row*V + vertex.
        visited = np.zeros(num_rows * num_vertices, dtype=bool)
        rows = np.arange(num_rows, dtype=np.int64)
        vertices = np.full(num_rows, user, dtype=np.int64)
        visited[rows * num_vertices + user] = True
        activations = np.zeros(queue.num_worlds, dtype=np.int64)
        while rows.size:
            if single_world:
                activations[0] += rows.size
            else:
                activations += np.bincount(world_of_row[rows], minlength=queue.num_worlds)
            fired_rows, fired_targets = queue.advance(world_of_row[rows], rows, vertices)
            if not fired_rows.size:
                break
            keys = fired_rows * num_vertices + fired_targets
            # Distinct edges can fire into the same (instance, target) pair in
            # one round; dedupe on the flattened pair key (sorted, so the next
            # round's frontier order is deterministic).
            keys = np.unique(keys[~visited[keys]])
            visited[keys] = True
            rows = keys // num_vertices
            vertices = keys - rows * num_vertices
        return activations

    def _estimate_batched(
        self, user: int, probabilities: np.ndarray, num_samples: Optional[int]
    ) -> InfluenceEstimate:
        """``estimate_with_probabilities`` on the multi-instance event queue.

        One estimation is the one-world case of the multi-world path, so the
        chunking / early-stopping policy lives in exactly one place.
        """
        return self.estimate_many_with_probabilities(user, probabilities[None, :], num_samples)[0]

    def estimate_many_with_probabilities(
        self,
        user: int,
        edge_probability_rows: Sequence[Sequence[float]],
        num_samples: Optional[int] = None,
    ) -> list:
        """Estimate one user's spread under several probability assignments.

        On the batched kernel every row becomes one *world* of a single shared
        :class:`~repro.utils.heap.BatchedEventQueue`, so the whole candidate
        batch advances through one frontier loop (the best-effort explorer uses
        this for the upper bounds of all children of one expansion); other
        kernels fall back to one independent estimation per row.
        """
        guard_check(
            self, "estimate through a frozen engine's shared estimator (RNG + counters)"
        )
        rows = np.atleast_2d(np.asarray(edge_probability_rows, dtype=float))
        if self.kernel != "batched":
            return super().estimate_many_with_probabilities(user, rows, num_samples)
        num_worlds = rows.shape[0]
        reachable = self._reachable_sizes_batched(user, rows)
        budgets = np.array(
            [
                num_samples if num_samples is not None else self.budget.online_samples(int(size))
                for size in reachable
            ],
            dtype=np.int64,
        )
        stop_threshold = self._stop_threshold() if self.early_stopping else math.inf
        queue = self._make_queue(rows)
        total_activations = np.zeros(num_worlds, dtype=np.int64)
        instances_run = np.zeros(num_worlds, dtype=np.int64)
        remaining = budgets.copy()
        remaining[reachable == 1] = 0  # spread is exactly 1, no sampling needed
        while True:
            active = np.flatnonzero(remaining > 0)
            if not active.size:
                break
            chunk_cap = self._chunk_size(len(active))
            if self.early_stopping:
                # Rate-adapted per-world chunks (see _estimate_batched): first
                # round probes with a small chunk, later rounds aim just past
                # each world's projected stopping point.
                rates = np.maximum(
                    total_activations[active]
                    / np.maximum(instances_run[active], 1).astype(float),
                    1.0,
                )
                needed = (stop_threshold - total_activations[active]) / rates
                sizes = np.where(
                    instances_run[active] > 0,
                    np.minimum(chunk_cap, np.maximum(8, (needed * 1.25).astype(np.int64) + 1)),
                    min(chunk_cap, 64),
                )
            else:
                sizes = np.full(len(active), chunk_cap, dtype=np.int64)
            sizes = np.minimum(sizes, remaining[active])
            counts = self._run_batched_chunk(queue, user, sizes, active)
            total_activations[active] += counts[active]
            instances_run[active] += sizes
            remaining[active] -= sizes
            remaining[total_activations >= stop_threshold] = 0
        estimates = []
        for world in range(num_worlds):
            if reachable[world] == 1:
                estimates.append(
                    InfluenceEstimate(
                        value=1.0,
                        num_samples=0,
                        edges_visited=0,
                        reachable_size=1,
                        method=self.name,
                        kernel=self.kernel,
                    )
                )
                continue
            estimates.append(
                InfluenceEstimate(
                    value=float(total_activations[world]) / float(instances_run[world]),
                    num_samples=int(instances_run[world]),
                    edges_visited=queue.edge_visits(world),
                    reachable_size=int(reachable[world]),
                    method=self.name,
                    kernel=self.kernel,
                )
            )
        return estimates

    def estimate_with_probabilities(
        self,
        user: int,
        edge_probabilities: Sequence[float],
        num_samples: Optional[int] = None,
    ) -> InfluenceEstimate:
        """Run ``theta_W`` lazy sample instances (possibly fewer with early stopping)."""
        guard_check(self, "draw from a frozen engine's shared estimator RNG")
        probabilities = np.asarray(edge_probabilities, dtype=float)
        if self.kernel == "batched":
            return self._estimate_batched(user, probabilities, num_samples)
        reachable_size = self._reachable_size(user, probabilities)
        if num_samples is None:
            num_samples = self.budget.online_samples(reachable_size)
        if reachable_size == 1:
            return InfluenceEstimate(
                value=1.0,
                num_samples=0,
                edges_visited=0,
                reachable_size=1,
                method=self.name,
                kernel=self.kernel,
            )

        schedules: Dict[int, LazyEdgeHeap] = {}
        edges_visited = 0
        total_activations = 0
        stop_threshold = self._stop_threshold() if self.early_stopping else math.inf
        instances_run = 0

        for _ in range(num_samples):
            instances_run += 1
            visited = {user}
            frontier = deque([user])
            while frontier:
                vertex = frontier.popleft()
                total_activations += 1
                schedule = schedules.get(vertex)
                if schedule is None:
                    schedule = self._make_schedule(vertex, probabilities, self._rng)
                    schedules[vertex] = schedule
                    edges_visited += schedule.pending()
                fired = schedule.visit()
                edges_visited += len(fired)
                for neighbor in fired:
                    if neighbor not in visited:
                        visited.add(neighbor)
                        frontier.append(neighbor)
            if total_activations >= stop_threshold:
                break

        value = total_activations / float(instances_run)
        return InfluenceEstimate(
            value=value,
            num_samples=instances_run,
            edges_visited=edges_visited,
            reachable_size=reachable_size,
            method=self.name,
            kernel=self.kernel,
        )

    # ------------------------------------------------------------ convergence
    def running_estimates(
        self,
        user: int,
        edge_probabilities: Sequence[float],
        checkpoints: Sequence[int],
    ) -> list:
        """Estimate values at increasing sample counts (Fig. 6 convergence sweep)."""
        guard_check(self, "draw from a frozen engine's shared estimator RNG")
        probabilities = np.asarray(edge_probabilities, dtype=float)
        if self.kernel == "batched":
            queue = self._make_queue(probabilities[None, :])
            results = []
            total_activations = 0
            drawn = 0
            chunk = self._chunk_size()
            for checkpoint in checkpoints:
                while drawn < checkpoint:
                    size = min(chunk, checkpoint - drawn)
                    counts = self._run_batched_chunk(
                        queue, user, np.array([size]), np.array([0])
                    )
                    total_activations += int(counts[0])
                    drawn += size
                results.append(total_activations / float(drawn))
            return results
        schedules: Dict[int, LazyEdgeHeap] = {}
        results = []
        total_activations = 0
        drawn = 0
        for checkpoint in checkpoints:
            while drawn < checkpoint:
                visited = {user}
                frontier = deque([user])
                while frontier:
                    vertex = frontier.popleft()
                    total_activations += 1
                    schedule = schedules.get(vertex)
                    if schedule is None:
                        schedule = self._make_schedule(vertex, probabilities, self._rng)
                        schedules[vertex] = schedule
                    fired = schedule.visit()
                    for neighbor in fired:
                        if neighbor not in visited:
                            visited.add(neighbor)
                            frontier.append(neighbor)
                drawn += 1
            results.append(total_activations / float(drawn))
        return results

    def sample_live_subgraph(self, user: int, edge_probabilities: Sequence[float]):
        """One lazy sample instance returning ``(activated_vertices, live_edges)``.

        Used by the delayed-materialization index (Algorithm 4) which needs the
        live edges of a forward sample, not just the activation count.  Fresh
        coins are used so the draw is independent of previous estimations; on
        the CSR kernel the world is realized with batched coin flips.
        """
        guard_check(self, "draw from a frozen engine's shared estimator RNG")
        probabilities = np.asarray(edge_probabilities, dtype=float)
        if self.kernel == "dict":
            visited = {user}
            live_edges = []
            frontier = deque([user])
            while frontier:
                vertex = frontier.popleft()
                for edge_id in self.graph.out_edges(vertex):
                    probability = probabilities[edge_id]
                    if probability <= 0.0:
                        continue
                    _, target = self.graph.edge_endpoints(edge_id)
                    if self._rng.uniform() < probability:
                        live_edges.append(edge_id)
                        if target not in visited:
                            visited.add(target)
                            frontier.append(target)
            return visited, live_edges
        activated, live_edges, _ = live_edge_world(
            self.graph, user, probabilities, self._rng, collect_edges=True
        )
        return set(np.flatnonzero(activated).tolist()), live_edges.tolist()
