"""Fingerprint-keyed answer memoization for frozen engines.

PR 5 established that a frozen engine's answer is a *pure function* of
``(engine seed, query fingerprint)``: the frozen query path derives its RNG
stream from :meth:`PitexEngine.query_fingerprint` alone, so two identical
requests against the same frozen engine produce bitwise-identical results.
That purity makes a full answer cache trivially correct -- this module is
that cache.

:class:`AnswerCache` is a thread-safe LRU keyed on
``(engine_key, graph.version, model.content_hash(), fingerprint)``.  The
``graph.version`` component rolls the epoch on any mutation (Berkholz et
al.'s update-keyed answering, PAPERS.md): a stale epoch can never *hit*, and
:meth:`AnswerCache.get_or_compute` sweeps the superseded entries out as soon
as the new epoch is observed, counting each as an ``invalidation``.

Determinism contract -- the part that earns ``answer_cache.*`` a seat in
:data:`~repro.obs.telemetry.DETERMINISTIC_PREFIXES`:

* ``get_or_compute`` is **single-flight per key** (the
  :class:`~repro.serve.cache.EngineCache` gate pattern): concurrent misses on
  one fingerprint run ``compute`` once while the rest wait and then hit.  A
  workload with U unique fingerprints and N occurrences therefore records
  exactly U misses and N - U hits *regardless of thread interleaving*.
* single-flight **waits** are scheduling noise, so they are kept in
  :class:`AnswerCacheStats` only and deliberately *not* mirrored into
  telemetry (same caveat as ``engine_cache.single_flight_wait``, which is
  excluded from cross-backend comparisons by never being emitted in replay
  runs -- see docs/observability.md).
* ``answer_cache.bytes`` counts the pickled size of every *inserted* result.
  Pickle encodes floats at fixed width, so the size is identical across
  backends even though wall-clock fields like ``elapsed_seconds`` differ.
* evictions only stay deterministic while the working set fits: once the LRU
  starts evicting under concurrency, recency order -- and therefore *which*
  key re-misses later -- depends on scheduling.  The default capacity is
  generous for exactly this reason; size it above the unique-fingerprint
  count of any workload whose telemetry you intend to compare.

Per-worker replicas inside :class:`~repro.serve.sharded.ProcessShardedService`
stay globally consistent with the shared thread-backend cache because the
request router shards *by user*: each fingerprint lands on exactly one
worker, so per-worker hit/miss tallies sum to the shared cache's totals.
"""

from __future__ import annotations

import hashlib
import pickle
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Iterable, Optional, Tuple

from repro.core.query import PitexResult
from repro.exceptions import InvalidParameterError
from repro.obs.telemetry import counter

DEFAULT_ANSWER_CAPACITY = 4096

_MISS = object()


def answer_key(engine, request, engine_key: Optional[Hashable] = None) -> tuple:
    """The cache key for ``request`` against frozen ``engine``.

    ``request`` is duck-typed (any object with the
    :class:`~repro.serve.service.QueryRequest` fields), so both backends and
    the benchmarks can share this helper without import cycles.  Budget
    defaults are resolved exactly as :meth:`PitexEngine.query` resolves them,
    so the fingerprint here is the one the frozen query path seeds from.
    """
    budget = engine.budget
    k = request.k if request.k is not None else budget.k
    epsilon = request.epsilon if request.epsilon is not None else budget.epsilon
    delta = request.delta if request.delta is not None else budget.delta
    fingerprint = engine.query_fingerprint(
        user=request.user,
        method=request.method,
        k=k,
        epsilon=epsilon,
        delta=delta,
        exploration=request.exploration,
    )
    key = engine_key if engine_key is not None else request.engine_key
    return (key, engine.graph.version, engine.model.content_hash(), fingerprint)


def answer_digest(results: Iterable[Optional[PitexResult]]) -> str:
    """A sha256 over the deterministic facets of ``results``, in order.

    Hashes user, method, tag ids/names, spread (exact ``float.hex``), the
    evaluated/pruned set counts and the work counters -- everything a frozen
    engine reproduces bit-for-bit -- while excluding wall-clock fields
    (``elapsed_seconds``) and the optional evaluation trace.  ``None``
    entries (failed queries) hash as an error marker so a failure cannot
    alias a success.  Two replays agree on this digest iff their answers are
    byte-identical, which is what the CI warm legs and ``bench_serving``
    gate on.
    """
    hasher = hashlib.sha256()
    for result in results:
        if result is None:
            hasher.update(b"<error>\x00")
            continue
        facet = "|".join(
            (
                str(result.query.user),
                result.method,
                ",".join(str(tag) for tag in result.tag_ids),
                ",".join(result.tags),
                float(result.spread).hex(),
                str(result.evaluated_tag_sets),
                str(result.pruned_tag_sets),
                str(result.edges_visited),
                str(result.samples_drawn),
            )
        )
        hasher.update(facet.encode("utf-8"))
        hasher.update(b"\x00")
    return hasher.hexdigest()


@dataclass
class AnswerCacheStats:
    """Counters describing answer-cache behaviour since construction.

    Every field except ``single_flight_waits`` is mirrored into the
    process-wide telemetry registry under ``answer_cache.*``; waits are
    scheduling-dependent and stay local (see the module docstring).
    ``bytes_cached`` tracks the pickled size of the *currently resident*
    entries (inserts add, evictions/invalidations subtract), while the
    ``answer_cache.bytes`` telemetry counter is cumulative-inserted and
    therefore monotone.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    bytes_cached: int = 0
    single_flight_waits: int = 0

    def as_dict(self) -> dict:
        """Plain-dict snapshot (JSON friendly)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "bytes_cached": self.bytes_cached,
            "single_flight_waits": self.single_flight_waits,
        }

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before the first lookup)."""
        lookups = self.hits + self.misses
        return (self.hits / lookups) if lookups else 0.0


@dataclass
class _CachedAnswer:
    result: PitexResult
    num_bytes: int


@dataclass
class _Gate:
    """Single-flight gate: one compute lock plus a waiter refcount.

    Same shape as the :class:`~repro.serve.cache.EngineCache` gate: the
    refcount lets the last leaving thread remove the gate, so a waiter can
    never be orphaned onto a gate a newcomer no longer sees.
    """

    lock: threading.Lock = field(default_factory=threading.Lock)
    refs: int = 0


class AnswerCache:
    """A thread-safe LRU of frozen-engine answers, keyed by fingerprint.

    Parameters
    ----------
    capacity:
        Maximum number of cached answers (LRU eviction beyond it).  Keep it
        above the unique-fingerprint count of workloads whose telemetry must
        compare across backends -- see the module docstring's eviction
        caveat.
    """

    def __init__(self, capacity: int = DEFAULT_ANSWER_CAPACITY) -> None:
        if capacity <= 0:
            raise InvalidParameterError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self.stats = AnswerCacheStats()
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple, _CachedAnswer]" = OrderedDict()
        # Latest observed (graph.version, model hash) per engine_key: a newer
        # epoch sweeps the older one's entries as invalidations.
        self._epochs: Dict[Hashable, Tuple[int, str]] = {}
        self._pending: dict = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------ core
    def get_or_compute(
        self, key: tuple, compute: Callable[[], PitexResult]
    ) -> Tuple[PitexResult, bool]:
        """The cached answer for ``key``, running ``compute`` once on a miss.

        Returns ``(result, hit)``.  Concurrent misses on the same key are
        single-flighted: one caller computes while the rest wait on its gate
        and then hit, so miss counts equal unique-key counts regardless of
        scheduling.  Failures propagate and are never cached.
        """
        with self._lock:
            self._observe_epoch_locked(key)
            cached = self._peek_locked(key)
            if cached is not _MISS:
                self.stats.hits += 1
                counter("answer_cache.hit")
                return cached, True
            gate = self._pending.get(key)
            if gate is None:
                gate = _Gate()
                self._pending[key] = gate
            else:
                # A compute for this key is already in flight; block on its
                # gate instead of recomputing.  Stats-only: mirroring waits
                # into telemetry would make the deterministic subset
                # scheduling-dependent.
                self.stats.single_flight_waits += 1
            gate.refs += 1
        try:
            with gate.lock:
                with self._lock:
                    cached = self._peek_locked(key)
                    if cached is not _MISS:
                        # The compute we waited behind satisfied this key.
                        self.stats.hits += 1
                        counter("answer_cache.hit")
                        return cached, True
                    self.stats.misses += 1
                    counter("answer_cache.miss")
                result = compute()
                self._put(key, result)
                return result, False
        finally:
            with self._lock:
                gate.refs -= 1
                if gate.refs == 0 and self._pending.get(key) is gate:
                    self._pending.pop(key)

    def clear(self) -> None:
        """Drop every entry, counting each as an invalidation (stats kept)."""
        with self._lock:
            dropped = len(self._entries)
            freed = sum(entry.num_bytes for entry in self._entries.values())
            self._entries.clear()
            if dropped:
                self.stats.invalidations += dropped
                self.stats.bytes_cached -= freed
                counter("answer_cache.invalidation", dropped)

    # -------------------------------------------------------------- internals
    def _peek_locked(self, key: tuple):
        """The cached result for ``key`` (refreshing recency) or ``_MISS``.

        Caller must hold ``self._lock``; records no stats.
        """
        entry = self._entries.get(key)
        if entry is None:
            return _MISS
        # pitexlint: ignore[LCK001] -- _locked helper: caller holds self._lock
        self._entries.move_to_end(key)
        return entry.result

    def _observe_epoch_locked(self, key: tuple) -> None:
        """Sweep entries of ``key``'s engine superseded by a newer epoch.

        Caller must hold ``self._lock``.  The epoch is ``(graph.version,
        model hash)``: a graph mutation bumps the version, a model swap
        changes the hash, and either rolls every cached answer for that
        engine key into ``invalidations``.
        """
        engine_key, version, model_hash = key[0], key[1], key[2]
        epoch = (version, model_hash)
        known = self._epochs.get(engine_key)
        if known == epoch:
            return
        # pitexlint: ignore[LCK001] -- _locked helper: caller holds self._lock
        self._epochs[engine_key] = epoch
        if known is None:
            return
        stale = [k for k in self._entries if k[0] == engine_key and (k[1], k[2]) != epoch]
        for stale_key in stale:
            # pitexlint: ignore[LCK001] -- _locked helper: caller holds self._lock
            entry = self._entries.pop(stale_key)
            # pitexlint: ignore[LCK001] -- _locked helper: caller holds self._lock
            self.stats.bytes_cached -= entry.num_bytes
        if stale:
            # pitexlint: ignore[LCK001] -- _locked helper: caller holds self._lock
            self.stats.invalidations += len(stale)
            counter("answer_cache.invalidation", len(stale))

    def _put(self, key: tuple, result: PitexResult) -> None:
        """Insert ``result``, accounting bytes and evicting beyond capacity."""
        num_bytes = len(pickle.dumps(result))
        with self._lock:
            self._entries[key] = _CachedAnswer(result=result, num_bytes=num_bytes)
            self._entries.move_to_end(key)
            self.stats.bytes_cached += num_bytes
            counter("answer_cache.bytes", num_bytes)
            while len(self._entries) > self.capacity:
                _, evicted = self._entries.popitem(last=False)
                self.stats.bytes_cached -= evicted.num_bytes
                self.stats.evictions += 1
                counter("answer_cache.eviction")
