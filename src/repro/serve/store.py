"""Persistent on-disk store for the offline PITEX indexes.

The paper's offline/online split (Sec. 6) pays an expensive RR-Graph
materialization once so every later query is cheap -- but the seed engine
re-paid that cost in every process.  :class:`IndexStore` extends the split
across process boundaries: a built :class:`~repro.index.rr_index.RRGraphIndex`
or :class:`~repro.index.delayed.DelayedMaterializationIndex` is serialized to
one compressed ``npz`` of flat arrays plus a JSON manifest, keyed on

* the graph *content fingerprint* (:meth:`TopicSocialGraph.fingerprint`),
* the graph ``version`` (mutation counter at build time),
* the tag-topic model's content hash, and
* the sampling parameter ``num_samples`` (theta).

A store lookup therefore hits only when the exact graph/model/parameters the
index was built for are presented again -- regenerating a synthetic dataset
from the same profile and seed reproduces the same fingerprint, which is what
makes the cold-process ``pitex serve-replay`` warm start work.

Layout on disk (one directory per entry)::

    <root>/<key>/manifest.json   # provenance + integrity fields
    <root>/<key>/arrays.npz      # the entry's flat arrays
    <root>/<key>/mapped/*.npy    # optional mmap sidecars (see open_mapped)

Writes go through a temporary directory and a final atomic rename, so a
crashed writer can never leave a half-entry that a later load would trust.

Beyond the two index kinds, the store also persists *shared graph bundles*
(``kind="shared-graph"``): the CSR adjacency arrays, the probability matrix
and the tag-topic model of one dataset, keyed on graph fingerprint + model
hash.  Bundles are what the process-sharded serving backend
(:mod:`repro.serve.sharded`) hands to worker processes, which reconstruct
engine replicas from the ``mapped/`` sidecars via
``np.load(..., mmap_mode="r")`` -- the float payload is then shared
page-cache memory across every worker instead of N copies.

Thread/process safety: the store holds no in-memory state beyond ``root``;
every method re-reads the disk, and writes are atomic-rename idempotent, so
any number of threads or processes may share one store directory.
"""

from __future__ import annotations

import json
import os
import shutil
import uuid
from dataclasses import dataclass
from hashlib import sha256
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.exceptions import InvalidParameterError, StoreError
from repro.graph.digraph import TopicSocialGraph
from repro.index.delayed import DelayedMaterializationIndex
from repro.index.rr_index import RRGraphIndex
from repro.obs.clock import wall_clock
from repro.obs.telemetry import counter
from repro.topics.model import TagTopicModel
from repro.utils.rng import SeedLike
from repro.utils.timer import Stopwatch

FORMAT_VERSION = 1
KIND_RR = "rr-graphs"
KIND_DELAYED = "delaymat"
KIND_SHARED_GRAPH = "shared-graph"
KINDS = (KIND_RR, KIND_DELAYED)

MANIFEST_NAME = "manifest.json"
ARRAYS_NAME = "arrays.npz"
MAPPED_DIR_NAME = "mapped"


@dataclass(frozen=True)
class StoreEntry:
    """One persisted index: its cache key, manifest and location."""

    key: str
    kind: str
    path: Path
    manifest: Dict

    @property
    def build_seconds(self) -> float:
        """Offline build time recorded at save time."""
        return float(self.manifest.get("build_seconds", 0.0))


def index_cache_key(
    kind: str,
    graph: TopicSocialGraph,
    model: TagTopicModel,
    num_samples: int,
) -> str:
    """The store key for an index of ``kind`` over (graph, model, theta)."""
    if kind not in KINDS:
        raise InvalidParameterError(f"unknown index kind {kind!r}; choose from {KINDS}")
    digest = sha256()
    digest.update(f"format={FORMAT_VERSION};kind={kind};".encode())
    digest.update(f"graph={graph.fingerprint()};version={graph.version};".encode())
    digest.update(f"model={model.content_hash()};theta={int(num_samples)}".encode())
    return digest.hexdigest()[:32]


def graph_bundle_key(graph: TopicSocialGraph, model: TagTopicModel) -> str:
    """The store key of the shared graph+model bundle for (graph, model)."""
    digest = sha256()
    digest.update(f"format={FORMAT_VERSION};kind={KIND_SHARED_GRAPH};".encode())
    digest.update(f"graph={graph.fingerprint()};version={graph.version};".encode())
    digest.update(f"model={model.content_hash()}".encode())
    return digest.hexdigest()[:32]


class IndexStore:
    """Load-or-build persistence for the offline indexes.

    Parameters
    ----------
    root:
        Directory holding the store (created on first save).
    """

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------ paths
    def entry_path(self, key: str) -> Path:
        """Directory of the entry with cache key ``key``."""
        return self.root / key

    def has(self, kind: str, graph: TopicSocialGraph, model: TagTopicModel, num_samples: int) -> bool:
        """Whether a matching entry exists on disk."""
        key = index_cache_key(kind, graph, model, num_samples)
        return (self.entry_path(key) / MANIFEST_NAME).is_file()

    def entries(self) -> List[StoreEntry]:
        """All readable entries currently in the store."""
        found: List[StoreEntry] = []
        if not self.root.is_dir():
            return found
        for child in sorted(self.root.iterdir()):
            if child.name.startswith("."):
                continue  # in-flight staging dirs (.tmp-*) are not entries
            manifest_path = child / MANIFEST_NAME
            if not manifest_path.is_file():
                continue
            try:
                manifest = json.loads(manifest_path.read_text())
            except (OSError, json.JSONDecodeError):
                continue
            found.append(
                StoreEntry(key=child.name, kind=manifest.get("kind", "?"), path=child, manifest=manifest)
            )
        return found

    def clear(self) -> int:
        """Delete every entry; returns the number removed.

        Staging directories abandoned by a crashed writer (``.tmp-*``) are
        swept as well but not counted -- they were never readable entries.
        """
        removed = 0
        for entry in self.entries():
            shutil.rmtree(entry.path, ignore_errors=True)
            removed += 1
        if self.root.is_dir():
            for child in self.root.iterdir():
                if child.name.startswith(".tmp-"):
                    shutil.rmtree(child, ignore_errors=True)
        return removed

    # ------------------------------------------------------------------- save
    def _write_entry(self, key: str, manifest: Dict, arrays: Dict[str, np.ndarray]) -> StoreEntry:
        """Write one entry (manifest + npz) through a staging dir + atomic rename."""
        self.root.mkdir(parents=True, exist_ok=True)
        staging = self.root / f".tmp-{key}-{uuid.uuid4().hex[:8]}"
        staging.mkdir(parents=True)
        final = self.entry_path(key)
        try:
            with open(staging / ARRAYS_NAME, "wb") as handle:
                np.savez_compressed(handle, **arrays)
            (staging / MANIFEST_NAME).write_text(json.dumps(manifest, indent=2, sort_keys=True))
            if final.exists():
                shutil.rmtree(final)
            try:
                os.replace(staging, final)
            except OSError:
                # A concurrent writer landed the same key between our rmtree
                # and replace.  Same key => same content; their entry is as
                # good as ours, so treat the save as idempotent.
                if not (final / MANIFEST_NAME).is_file():
                    raise
        finally:
            shutil.rmtree(staging, ignore_errors=True)
        return StoreEntry(
            key=key, kind=manifest["kind"], path=self.entry_path(key), manifest=manifest
        )

    def _save(
        self,
        kind: str,
        graph: TopicSocialGraph,
        model: TagTopicModel,
        num_samples: int,
        arrays: Dict[str, np.ndarray],
        build_seconds: float,
    ) -> StoreEntry:
        key = index_cache_key(kind, graph, model, num_samples)
        manifest = {
            "format": FORMAT_VERSION,
            "kind": kind,
            "key": key,
            "graph_fingerprint": graph.fingerprint(),
            "graph_version": graph.version,
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
            "model_hash": model.content_hash(),
            "num_samples": int(num_samples),
            "build_seconds": float(build_seconds),
            "created_unix": wall_clock(),
            "arrays_file": ARRAYS_NAME,
        }
        return self._write_entry(key, manifest, arrays)

    def save_rr_index(self, index: RRGraphIndex, model: TagTopicModel) -> StoreEntry:
        """Persist a built RR-Graph index."""
        return self._save(
            KIND_RR, index.graph, model, index.num_samples, index.to_arrays(), index.build_seconds
        )

    def save_delayed_index(self, index: DelayedMaterializationIndex, model: TagTopicModel) -> StoreEntry:
        """Persist a built delayed-materialization index."""
        return self._save(
            KIND_DELAYED, index.graph, model, index.num_samples, index.to_arrays(), index.build_seconds
        )

    # ------------------------------------------------------------------ mapped
    def open_mapped(self, key: str) -> Dict[str, np.ndarray]:
        """Read-only memory-mapped views of one entry's arrays.

        ``np.load(..., mmap_mode="r")`` cannot map members of an ``npz``
        archive (compressed or not), so on first call the members are
        extracted once into ``<entry>/mapped/<name>.npy`` sidecars -- written
        to a staging directory and landed with an atomic rename, so
        concurrent extractors (N forking workers) race benignly.  Every later
        call maps the sidecars directly: the arrays live in the page cache
        exactly once no matter how many processes open them.
        """
        entry = self.entry_path(key)
        arrays_path = entry / ARRAYS_NAME
        mapped_dir = entry / MAPPED_DIR_NAME
        if not mapped_dir.is_dir():
            if not arrays_path.is_file():
                raise StoreError(f"store entry {key!r} has no {ARRAYS_NAME} to map")
            staging = entry / f".tmp-{MAPPED_DIR_NAME}-{uuid.uuid4().hex[:8]}"
            staging.mkdir(parents=True)
            try:
                with np.load(arrays_path) as payload:
                    for name in payload.files:
                        np.save(staging / f"{name}.npy", payload[name], allow_pickle=False)
                try:
                    os.replace(staging, mapped_dir)
                except OSError:
                    # Another process landed the extraction first; same
                    # source npz => same sidecars, use theirs.
                    if not mapped_dir.is_dir():
                        raise
            finally:
                shutil.rmtree(staging, ignore_errors=True)
        mapped: Dict[str, np.ndarray] = {}
        for path in sorted(mapped_dir.glob("*.npy")):
            mapped[path.stem] = np.load(path, mmap_mode="r", allow_pickle=False)
        return mapped

    # ------------------------------------------------------------------- load
    def _load_arrays(
        self,
        kind: str,
        graph: TopicSocialGraph,
        model: TagTopicModel,
        num_samples: int,
        mmap: bool = False,
    ) -> Optional[Tuple[Dict[str, np.ndarray], Dict]]:
        key = index_cache_key(kind, graph, model, num_samples)
        entry = self.entry_path(key)
        manifest_path = entry / MANIFEST_NAME
        if not manifest_path.is_file():
            return None
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        # The key already encodes all of these; re-check so a hand-edited or
        # corrupted entry degrades to a miss instead of a wrong answer.
        if (
            manifest.get("format") != FORMAT_VERSION
            or manifest.get("kind") != kind
            or manifest.get("graph_fingerprint") != graph.fingerprint()
            or manifest.get("graph_version") != graph.version
            or manifest.get("model_hash") != model.content_hash()
            or manifest.get("num_samples") != int(num_samples)
        ):
            return None
        arrays_path = entry / manifest.get("arrays_file", ARRAYS_NAME)
        try:
            if mmap:
                arrays = self.open_mapped(key)
            else:
                with np.load(arrays_path) as payload:
                    arrays = {name: payload[name] for name in payload.files}
        except (OSError, ValueError, StoreError):
            return None
        return arrays, manifest

    def load_rr_index(
        self,
        graph: TopicSocialGraph,
        model: TagTopicModel,
        num_samples: int,
        mmap: bool = False,
    ) -> Optional[RRGraphIndex]:
        """The stored RR-Graph index for (graph, model, theta), or ``None``.

        With ``mmap=True`` the flat sample arrays are memory-mapped read-only
        through :meth:`open_mapped` instead of decompressed into fresh
        buffers; the reconstructed index answers bitwise-identically either
        way (covered by ``tests/test_serve_process.py``).
        """
        loaded = self._load_arrays(KIND_RR, graph, model, num_samples, mmap=mmap)
        if loaded is None:
            return None
        arrays, manifest = loaded
        return RRGraphIndex.from_arrays(
            graph,
            arrays,
            built_version=manifest["graph_version"],
            build_seconds=manifest.get("build_seconds", 0.0),
        )

    def load_delayed_index(
        self,
        graph: TopicSocialGraph,
        model: TagTopicModel,
        num_samples: int,
        seed: SeedLike = None,
        mmap: bool = False,
    ) -> Optional[DelayedMaterializationIndex]:
        """The stored delayed index for (graph, model, theta), or ``None``."""
        loaded = self._load_arrays(KIND_DELAYED, graph, model, num_samples, mmap=mmap)
        if loaded is None:
            return None
        arrays, manifest = loaded
        return DelayedMaterializationIndex.from_arrays(
            graph,
            arrays,
            built_version=manifest["graph_version"],
            build_seconds=manifest.get("build_seconds", 0.0),
            seed=seed,
        )

    # --------------------------------------------------------- load or build
    def load_or_build_rr(
        self,
        graph: TopicSocialGraph,
        model: TagTopicModel,
        num_samples: int,
        seed: SeedLike = None,
    ) -> Tuple[RRGraphIndex, bool, float]:
        """Load the RR-Graph index if stored, else build and persist it.

        Returns ``(index, loaded, seconds)`` where ``loaded`` says whether the
        disk path was taken and ``seconds`` is the wall-clock cost of that
        path (load time or build time) -- the numbers ``bench_serving``
        compares.
        """
        watch = Stopwatch().start()
        index = self.load_rr_index(graph, model, num_samples)
        if index is not None:
            watch.stop()
            counter("store.load_or_build.loaded")
            return index, True, watch.elapsed
        index = RRGraphIndex(graph, num_samples, seed=seed).build()
        self.save_rr_index(index, model)
        watch.stop()
        counter("store.load_or_build.built")
        return index, False, watch.elapsed

    def load_or_build_delayed(
        self,
        graph: TopicSocialGraph,
        model: TagTopicModel,
        num_samples: int,
        seed: SeedLike = None,
    ) -> Tuple[DelayedMaterializationIndex, bool, float]:
        """Load the delayed index if stored, else build and persist it."""
        watch = Stopwatch().start()
        index = self.load_delayed_index(graph, model, num_samples, seed=seed)
        if index is not None:
            watch.stop()
            counter("store.load_or_build.loaded")
            return index, True, watch.elapsed
        index = DelayedMaterializationIndex(graph, num_samples, seed=seed).build()
        self.save_delayed_index(index, model)
        watch.stop()
        counter("store.load_or_build.built")
        return index, False, watch.elapsed

    # --------------------------------------------------- shared graph bundles
    def save_graph_bundle(self, graph: TopicSocialGraph, model: TagTopicModel) -> StoreEntry:
        """Persist (graph, model) as a shared bundle; returns its entry.

        The bundle holds :meth:`TopicSocialGraph.to_shared_arrays` plus the
        model's matrix / prior / tag vocabulary, and is keyed by
        :func:`graph_bundle_key`.  Saving is idempotent: re-saving identical
        content lands on the same key.
        """
        arrays: Dict[str, np.ndarray] = dict(graph.to_shared_arrays())
        arrays["model_matrix"] = np.ascontiguousarray(model.tag_topic_matrix, dtype=float)
        arrays["model_prior"] = np.ascontiguousarray(model.topic_prior, dtype=float)
        arrays["model_tags"] = np.asarray(model.tags, dtype=np.str_)
        key = graph_bundle_key(graph, model)
        manifest = {
            "format": FORMAT_VERSION,
            "kind": KIND_SHARED_GRAPH,
            "key": key,
            "graph_fingerprint": graph.fingerprint(),
            "graph_version": graph.version,
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
            "num_topics": graph.num_topics,
            "model_hash": model.content_hash(),
            "created_unix": wall_clock(),
            "arrays_file": ARRAYS_NAME,
        }
        return self._write_entry(key, manifest, arrays)

    def load_graph_bundle(
        self, key: str, mmap: bool = True
    ) -> Tuple[TopicSocialGraph, TagTopicModel, Dict]:
        """Reconstruct the (graph, model) of a shared bundle entry.

        With ``mmap=True`` (the default -- this is the worker-process path)
        the CSR arrays and both float matrices are read-only memory maps
        shared across every process that opens the same bundle.  The
        reconstructed graph fingerprint and model content hash are verified
        against the manifest; a mismatch raises :class:`StoreError` rather
        than letting a corrupt bundle serve subtly wrong answers.
        """
        entry = self.entry_path(key)
        manifest_path = entry / MANIFEST_NAME
        if not manifest_path.is_file():
            raise StoreError(f"no shared graph bundle with key {key!r} in {self.root}")
        manifest = json.loads(manifest_path.read_text())
        if manifest.get("kind") != KIND_SHARED_GRAPH or manifest.get("format") != FORMAT_VERSION:
            raise StoreError(
                f"store entry {key!r} is kind={manifest.get('kind')!r} "
                f"format={manifest.get('format')!r}, not a shared graph bundle"
            )
        if mmap:
            arrays = self.open_mapped(key)
        else:
            with np.load(entry / manifest.get("arrays_file", ARRAYS_NAME)) as payload:
                arrays = {name: payload[name] for name in payload.files}
        graph = TopicSocialGraph.from_shared_arrays(arrays)
        model = TagTopicModel.from_shared_arrays(
            arrays["model_matrix"],
            arrays["model_prior"],
            [str(tag) for tag in arrays["model_tags"]],
        )
        if graph.fingerprint() != manifest.get("graph_fingerprint"):
            raise StoreError(f"bundle {key!r}: reconstructed graph fingerprint mismatch")
        if model.content_hash() != manifest.get("model_hash"):
            raise StoreError(f"bundle {key!r}: reconstructed model hash mismatch")
        return graph, model, manifest
