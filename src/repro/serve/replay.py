"""Workload replay against a :class:`~repro.serve.service.PitexService`.

Replays a :meth:`QueryWorkload.query_stream` -- a seeded, reproducible
sequence of ``(group, user)`` query events -- through the service and folds
the responses into a latency/throughput report: overall and per-group
p50/p95/p99 built on :class:`repro.utils.stats.LatencyAccumulator` and
rendered through the shared :func:`repro.bench.reporting.latency_result`
table helper.  This is the measurement loop behind ``pitex serve-replay`` and
``benchmarks/bench_serving.py``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.bench.reporting import ExperimentResult, latency_result
from repro.exceptions import InvalidParameterError
from repro.serve.answers import answer_digest
from repro.serve.service import DEFAULT_ENGINE_KEY, PitexService, QueryRequest, QueryResponse
from repro.utils.stats import LatencyAccumulator


@dataclass
class ReplayReport:
    """Outcome of one replay run: responses plus aggregated latency stats.

    ``num_workers``, ``mode`` and ``backend`` record *how* the run executed --
    ``"frozen-parallel"`` (read-only engine, no per-engine lock, requests fan
    across the thread pool), ``"serial"`` (unfrozen engine behind its
    identity lock) or ``"process-sharded"`` (one frozen replica per worker
    process) -- so a persisted latency artifact is self-describing: two
    reports are only comparable when all axes match.  ``host_cores`` stamps
    the machine's CPU count, which is what makes a 1-core CI artifact next to
    a skipped speedup gate self-explaining.
    """

    method: str
    num_queries: int
    wall_seconds: float
    num_workers: int = 1
    mode: str = "serial"
    backend: str = "thread"
    host_cores: int = field(default_factory=lambda: int(os.cpu_count() or 1))
    responses: List[QueryResponse] = field(default_factory=list)
    overall: LatencyAccumulator = field(default_factory=lambda: LatencyAccumulator(label="all"))
    by_group: Dict[str, LatencyAccumulator] = field(default_factory=dict)
    # Answer-cache accounting: the cold/warm split is over *service time*
    # (execute_seconds) -- a hit's queue wait is scheduling noise, and the
    # point of the split is measuring memoization, not queue depth.
    cache_hits: int = 0
    cold: LatencyAccumulator = field(default_factory=lambda: LatencyAccumulator(label="cold"))
    warm: LatencyAccumulator = field(default_factory=lambda: LatencyAccumulator(label="warm"))
    # sha256 over the deterministic answer facets in stream order
    # (repro.serve.answers.answer_digest): two replays agree iff their
    # answers are byte-identical, which is the cached-vs-oracle gate.
    answers_digest: str = ""
    # ServiceMetrics.telemetry() section captured by replay_stream.  Caveat:
    # process-backend worker shards only arrive at service close, so callers
    # wanting complete totals re-assign this after closing (the CLI does).
    telemetry: Dict = field(default_factory=dict)

    @property
    def failures(self) -> int:
        """Number of failed queries."""
        return sum(1 for response in self.responses if not response.ok)

    @property
    def hit_rate(self) -> float:
        """Answer-cache hits over replayed queries (0.0 when uncached)."""
        if self.num_queries <= 0:
            return 0.0
        return self.cache_hits / self.num_queries

    @property
    def throughput_qps(self) -> float:
        """Completed queries per wall-clock second."""
        if self.wall_seconds <= 0:
            return 0.0
        return (self.num_queries - self.failures) / self.wall_seconds

    def to_result(self) -> ExperimentResult:
        """The latency table (overall row first, then per-group rows)."""
        accumulators = [self.overall] + [self.by_group[name] for name in sorted(self.by_group)]
        spans = {accumulator.label: self.wall_seconds for accumulator in accumulators}
        result = latency_result(
            "serving",
            f"workload replay ({self.method}, {self.num_queries} queries)",
            accumulators,
            wall_seconds=spans,
        )
        result.add_note(
            f"wall={self.wall_seconds:.3f}s throughput={self.throughput_qps:.1f} qps "
            f"failures={self.failures} workers={self.num_workers} mode={self.mode} "
            f"backend={self.backend} cores={self.host_cores}"
        )
        return result

    def to_json(self) -> dict:
        """JSON-friendly summary (what the CI artifact stores)."""
        return {
            "method": self.method,
            "num_queries": self.num_queries,
            "num_workers": self.num_workers,
            "mode": self.mode,
            "backend": self.backend,
            "host_cores": self.host_cores,
            "wall_seconds": self.wall_seconds,
            "throughput_qps": self.throughput_qps,
            "failures": self.failures,
            "overall": self.overall.summary(),
            "groups": {name: acc.summary() for name, acc in sorted(self.by_group.items())},
            "answer_cache": {
                "hits": self.cache_hits,
                "hit_rate": self.hit_rate,
                "cold": self.cold.summary(),
                "warm": self.warm.summary(),
                "answers_digest": self.answers_digest,
            },
            "telemetry": self.telemetry,
        }


def replay_stream(
    service: PitexService,
    stream: Sequence[Tuple[str, int]],
    method: str = "indexest+",
    k: Optional[int] = None,
    engine_key: Hashable = DEFAULT_ENGINE_KEY,
    max_in_flight: Optional[int] = None,
) -> ReplayReport:
    """Fire a ``(group, user)`` stream at the service and aggregate latencies.

    All requests are submitted up-front (open-loop) unless ``max_in_flight``
    bounds the number of outstanding queries (closed-loop with a fixed
    concurrency window, which keeps queue-wait out of the tail when the
    point of the run is per-query service time).
    """
    if not stream:
        raise InvalidParameterError("replay_stream needs a non-empty query stream")
    if max_in_flight is not None and max_in_flight <= 0:
        raise InvalidParameterError(f"max_in_flight must be positive, got {max_in_flight}")
    started = time.monotonic()
    futures = []
    responses: List[QueryResponse] = []
    for group, user in stream:
        request = QueryRequest(user=user, k=k, method=method, engine_key=engine_key, group=group)
        futures.append(service.submit(request))
        if max_in_flight is not None and len(futures) >= max_in_flight:
            responses.append(futures.pop(0).result())
    for future in futures:
        responses.append(future.result())
    wall = time.monotonic() - started
    report = ReplayReport(
        method=method,
        num_queries=len(stream),
        wall_seconds=wall,
        num_workers=service.num_workers,
        mode=service.execution_mode(engine_key),
        backend=getattr(service, "backend", "thread"),
        responses=responses,
        telemetry=service.metrics.telemetry(),
    )
    for response in responses:
        report.overall.add(response.latency_seconds)
        if response.cache_hit:
            report.cache_hits += 1
            report.warm.add(response.execute_seconds)
        else:
            report.cold.add(response.execute_seconds)
        group = response.request.group or "all"
        accumulator = report.by_group.get(group)
        if accumulator is None:
            accumulator = LatencyAccumulator(label=group)
            report.by_group[group] = accumulator
        accumulator.add(response.latency_seconds)
    report.answers_digest = answer_digest(response.result for response in responses)
    return report
