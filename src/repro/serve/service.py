"""``PitexService``: a concurrent, batching PITEX query front-end.

The service accepts :class:`QueryRequest` submissions from any thread, queues
them, and has a small worker pool drain the queue in *batches grouped by
engine key*.  How a batch executes depends on the engine's lifecycle phase:

* a **frozen** engine (:meth:`PitexEngine.freeze`) is read-only -- its query
  path touches no shared mutable state -- so batches against it run with *no
  lock at all*: several workers answer requests for the same engine
  concurrently (true intra-engine parallelism);
* an **unfrozen** engine is not thread-safe (lazy index builds, estimator and
  ``DelayMat`` recovery caches, shared RNG streams), so all requests against
  it run under a per-engine identity lock, exactly as before.

Grouping consecutive same-engine requests into one batch keeps a warm engine
on one worker while other workers serve other engines (or, for frozen
engines, other slices of the same backlog).  Per-request queue wait and
execution latency feed the :class:`ServiceMetrics` accumulators (p50/p95/p99,
throughput), which is what ``pitex serve-replay`` and ``bench_serving``
report.
"""

from __future__ import annotations

import threading
import time
import weakref
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Hashable, List, Optional

from repro.core.engine import PitexEngine
from repro.core.query import PitexResult
from repro.exceptions import InvalidParameterError
from repro.serve.answers import AnswerCache, answer_key
from repro.obs.telemetry import deterministic_counters, get_telemetry, merge_snapshots
from repro.obs.trace import trace_span
from repro.utils.stats import LatencyAccumulator

DEFAULT_ENGINE_KEY = "default"


@dataclass(frozen=True)
class QueryRequest:
    """One PITEX query submitted to the service.

    ``engine_key`` routes the request to an engine of the service's provider;
    a single-engine service uses :data:`DEFAULT_ENGINE_KEY` for everything.
    ``group`` is a free-form label (the workload's out-degree group) carried
    into the per-group latency breakdown.
    """

    user: int
    k: Optional[int] = None
    method: str = "indexest+"
    exploration: str = "best-effort"
    epsilon: Optional[float] = None
    delta: Optional[float] = None
    engine_key: Hashable = DEFAULT_ENGINE_KEY
    group: str = ""


@dataclass
class QueryResponse:
    """The service's answer: the result plus its latency accounting.

    ``cache_hit`` marks answers served from the fingerprint-keyed
    :class:`~repro.serve.answers.AnswerCache` without touching the engine;
    :class:`ServiceMetrics` uses it to keep microsecond hits out of the
    execute percentiles.
    """

    request: QueryRequest
    result: Optional[PitexResult] = None
    error: Optional[str] = None
    queue_seconds: float = 0.0
    execute_seconds: float = 0.0
    batch_size: int = 1
    cache_hit: bool = False

    @property
    def ok(self) -> bool:
        """Whether the query produced a result."""
        return self.error is None and self.result is not None

    @property
    def latency_seconds(self) -> float:
        """Total time inside the service (queue wait + execution)."""
        return self.queue_seconds + self.execute_seconds


class ServiceMetrics:
    """Thread-safe request/latency instrumentation for the service."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.latency = LatencyAccumulator(label="total")
        self.queue_wait = LatencyAccumulator(label="queue")
        self.execution = LatencyAccumulator(label="execute")
        # Answer-cache hits land here instead of `execution`: a microsecond
        # hit averaged into the engine-execute percentiles would make p50
        # meaningless, so the split keeps `execution` engine-work-only.
        self.answer_hits = LatencyAccumulator(label="answer-hit")
        self.by_group: Dict[str, LatencyAccumulator] = {}
        # Per-worker-process execution shards (process backend only): each
        # worker measures its own execute latencies and ships the accumulator
        # at shutdown; merged here via the exact Chan/reservoir merge.
        self.worker_shards: Dict[str, LatencyAccumulator] = {}
        self.worker_execution = LatencyAccumulator(label="worker-execute")
        # Per-worker-process telemetry shards (process backend): snapshot
        # dicts shipped alongside the latency shards, merged by sum/max.
        self.worker_telemetry: Dict[str, dict] = {}
        self.completed = 0
        self.failed = 0
        self.batches = 0
        self._started_monotonic = time.monotonic()
        # Counter deltas, not absolutes: the process-wide registry outlives
        # any one service (engine builds, earlier services, test pollution),
        # so remember what it held at construction and report growth since.
        self._telemetry = get_telemetry()
        self._telemetry_baseline = self._telemetry.counters()

    def record(self, response: QueryResponse) -> None:
        """Fold one finished response into the accumulators."""
        with self._lock:
            if response.ok:
                self.completed += 1
            else:
                self.failed += 1
            self.latency.add(response.latency_seconds)
            self.queue_wait.add(response.queue_seconds)
            if response.cache_hit:
                self.answer_hits.add(response.execute_seconds)
            else:
                self.execution.add(response.execute_seconds)
            group = response.request.group or "all"
            accumulator = self.by_group.get(group)
            if accumulator is None:
                accumulator = LatencyAccumulator(label=group)
                self.by_group[group] = accumulator
            accumulator.add(response.latency_seconds)

    def record_batch(self) -> None:
        """Count one drained batch."""
        with self._lock:
            self.batches += 1

    def record_worker_shard(self, shard: LatencyAccumulator) -> None:
        """Merge one worker process's execution-latency shard.

        Kept separate from :attr:`execution` (which the parent records from
        its own clock as responses arrive) so worker- and parent-side views
        never double count; :meth:`snapshot` reports both.  The merge is
        exact for the moments (Chan's parallel formula) and
        reservoir-weighted for the percentile samples --
        :meth:`repro.utils.stats.LatencyAccumulator.merge`.
        """
        with self._lock:
            self.worker_shards[shard.label] = shard
            self.worker_execution.merge(shard)

    def record_worker_telemetry(self, label: str, snapshot: dict) -> None:
        """Store one worker process's telemetry shard.

        ``snapshot`` is a :meth:`repro.obs.telemetry.Telemetry.snapshot` dict
        shipped over the shutdown pipe.  Shards are kept per label *and*
        merged into the combined view by :meth:`telemetry`; merge order cannot
        matter (counters sum, gauges max).
        """
        with self._lock:
            self.worker_telemetry[label] = snapshot

    def telemetry(self) -> dict:
        """The service's telemetry section: local deltas + worker shards.

        ``counters``/``gauges`` are the merged totals, ``deterministic`` the
        backend-comparable subset (:data:`~repro.obs.telemetry.DETERMINISTIC_PREFIXES`),
        and ``workers`` the raw per-worker counter shards.  For the process
        backend the shards only arrive at shutdown, so read this *after*
        ``close()`` for complete totals.
        """
        with self._lock:
            return self._telemetry_locked()

    def _telemetry_locked(self) -> dict:
        """:meth:`telemetry` body; caller must hold ``self._lock``."""
        current = self._telemetry.counters()
        local = {
            name: current[name] - self._telemetry_baseline.get(name, 0)
            for name in sorted(current)
            if current[name] != self._telemetry_baseline.get(name, 0)
        }
        merged = merge_snapshots(
            {"counters": local, "gauges": self._telemetry.gauges()},
            *(self.worker_telemetry[label] for label in sorted(self.worker_telemetry)),
        )
        counters = {name: merged["counters"][name] for name in sorted(merged["counters"])}
        return {
            "counters": counters,
            "gauges": {name: merged["gauges"][name] for name in sorted(merged["gauges"])},
            "deterministic": deterministic_counters(counters),
            "workers": {
                label: dict(sorted(shard.get("counters", {}).items()))
                for label, shard in sorted(self.worker_telemetry.items())
            },
        }

    def snapshot(self) -> dict:
        """A JSON-friendly snapshot: counts, tails, throughput and telemetry."""
        with self._lock:
            elapsed = time.monotonic() - self._started_monotonic
            total = self.completed + self.failed
            return {
                "completed": self.completed,
                "failed": self.failed,
                "batches": self.batches,
                "elapsed_seconds": elapsed,
                "throughput_qps": (total / elapsed) if elapsed > 0 else 0.0,
                "latency": self.latency.summary(),
                "queue": self.queue_wait.summary(),
                "execute": self.execution.summary(),
                "answer_hits": self.answer_hits.summary(),
                "groups": {name: acc.summary() for name, acc in sorted(self.by_group.items())},
                "worker_shards": {
                    name: acc.summary() for name, acc in sorted(self.worker_shards.items())
                },
                "worker_execute": self.worker_execution.summary(),
                "telemetry": self._telemetry_locked(),
            }


@dataclass
class _Pending:
    request: QueryRequest
    future: "Future[QueryResponse]"
    enqueued_monotonic: float = field(default_factory=time.monotonic)


class PitexService:
    """Thread-pooled, batch-scheduled PITEX query answering.

    Parameters
    ----------
    engine_provider:
        Callable mapping an ``engine_key`` to a (warm) engine -- typically
        ``EngineCache.get_or_create`` partially applied, or a plain dict
        lookup.  Called from worker threads; must be thread-safe.
    num_workers:
        Worker threads draining the queue.  For frozen engines every worker
        can answer the same engine concurrently; for unfrozen engines more
        workers only help when the workload spans several distinct engines
        (an unfrozen engine serves serially, even when reached through
        several keys).
    max_batch:
        Upper bound on how many same-engine requests one worker claims at
        once.
    answer_cache:
        Optional :class:`~repro.serve.answers.AnswerCache` consulted before
        executing requests against *frozen* engines (whose answers are pure
        functions of the query fingerprint); unfrozen engines always execute.
        Hits skip the engine, the execute trace span and the ``query.*``
        telemetry, and are recorded as ``cache_hit`` responses.
    """

    backend = "thread"

    def __init__(
        self,
        engine_provider: Callable[[Hashable], PitexEngine],
        num_workers: int = 2,
        max_batch: int = 8,
        answer_cache: Optional[AnswerCache] = None,
    ) -> None:
        if num_workers <= 0:
            raise InvalidParameterError(f"num_workers must be positive, got {num_workers}")
        if max_batch <= 0:
            raise InvalidParameterError(f"max_batch must be positive, got {max_batch}")
        self._provider = engine_provider
        self.answer_cache = answer_cache
        self.max_batch = int(max_batch)
        self.metrics = ServiceMetrics()
        self._queue: Deque[_Pending] = deque()
        self._condition = threading.Condition()
        # Serialization is per engine *instance*, not per key: a provider may
        # map several keys to one engine (PitexService.for_engine does), and
        # engines are not thread-safe.  _key_locks mirrors each key's last
        # resolved engine lock so the batch claimer can prefer idle engines.
        self._identity_locks: "weakref.WeakKeyDictionary[PitexEngine, threading.Lock]" = (
            weakref.WeakKeyDictionary()
        )
        self._key_locks: Dict[Hashable, threading.Lock] = {}
        # Last execution mode observed per key (workers write, GIL-atomic).
        self._observed_modes: Dict[Hashable, str] = {}
        self._closed = False
        self._workers = [
            threading.Thread(target=self._worker_loop, name=f"pitex-serve-{i}", daemon=True)
            for i in range(int(num_workers))
        ]
        for worker in self._workers:
            worker.start()

    @classmethod
    def for_engine(
        cls,
        engine: PitexEngine,
        num_workers: int = 1,
        max_batch: int = 8,
        answer_cache: Optional[AnswerCache] = None,
    ) -> "PitexService":
        """A service that answers everything with one fixed engine."""
        return cls(
            lambda key: engine,
            num_workers=num_workers,
            max_batch=max_batch,
            answer_cache=answer_cache,
        )

    @property
    def num_workers(self) -> int:
        """Size of the worker pool."""
        return len(self._workers)

    def execution_mode(self, engine_key: Hashable = DEFAULT_ENGINE_KEY) -> str:
        """How requests for ``engine_key`` last executed.

        ``"frozen-parallel"`` -- the engine was frozen, so same-engine
        requests fanned across the worker pool with no lock; ``"serial"`` --
        the engine was unfrozen and serialized behind its identity lock;
        ``"unknown"`` -- no batch for the key has executed yet.  The mode is
        *observed* by the workers as they resolve engines, never probed
        through the provider -- probing could trigger a full engine build
        just to answer a status question.  Used by the replay report so
        benchmark artifacts are self-describing.
        """
        return self._observed_modes.get(engine_key, "unknown")

    # ----------------------------------------------------------------- submit
    def submit(self, request: QueryRequest) -> "Future[QueryResponse]":
        """Queue one request; the future resolves to a :class:`QueryResponse`."""
        future: "Future[QueryResponse]" = Future()
        with self._condition:
            if self._closed:
                raise RuntimeError("PitexService is closed")
            self._queue.append(_Pending(request=request, future=future))
            self._condition.notify()
        return future

    def query(
        self,
        user: int,
        k: Optional[int] = None,
        method: str = "indexest+",
        engine_key: Hashable = DEFAULT_ENGINE_KEY,
        **kwargs,
    ) -> PitexResult:
        """Synchronous convenience wrapper: submit, wait, unwrap or raise."""
        request = QueryRequest(user=user, k=k, method=method, engine_key=engine_key, **kwargs)
        response = self.submit(request).result()
        if not response.ok:
            raise RuntimeError(f"query failed: {response.error}")
        return response.result

    # ---------------------------------------------------------------- workers
    def _claim_batch(self) -> Optional[List[_Pending]]:
        """Block until work exists; claim up to ``max_batch`` same-key requests.

        The batch takes the key of the oldest queued request whose engine is
        not currently serving another worker (falling back to the oldest key
        outright when every queued key is busy), and collects the queued
        requests with that key in arrival order; other keys stay queued,
        order preserved, for the next worker.  Preferring free engines keeps
        one deep backlog against a single engine from parking every worker
        behind the same per-engine lock.
        """
        with self._condition:
            while not self._queue and not self._closed:
                self._condition.wait()
            if not self._queue:
                return None
            key = self._queue[0].request.engine_key
            for pending in self._queue:
                lock = self._key_locks.get(pending.request.engine_key)
                if lock is None or not lock.locked():
                    key = pending.request.engine_key
                    break
            batch: List[_Pending] = []
            rest: Deque[_Pending] = deque()
            while self._queue:
                pending = self._queue.popleft()
                if len(batch) < self.max_batch and pending.request.engine_key == key:
                    batch.append(pending)
                else:
                    rest.append(pending)
            self._queue = rest
            return batch

    def _lock_for(self, key: Hashable, engine: PitexEngine) -> threading.Lock:
        """The serialization lock of ``engine``, also remembered under ``key``."""
        with self._condition:
            lock = self._identity_locks.get(engine)
            if lock is None:
                lock = threading.Lock()
                self._identity_locks[engine] = lock
            self._key_locks[key] = lock
            return lock

    def _worker_loop(self) -> None:
        while True:
            batch = self._claim_batch()
            if batch is None:
                return
            key = batch[0].request.engine_key
            self.metrics.record_batch()
            try:
                engine = self._provider(key)
            except Exception as exc:  # engine build failed: fail the batch
                self._fail_batch(batch, f"engine {key!r} unavailable: {exc}")
                continue
            if getattr(engine, "is_frozen", False):
                # Read-only engine: no identity lock.  Another worker may be
                # executing a different slice of the same engine's backlog
                # right now -- that is the point of the frozen lifecycle.
                # Batching exists to keep an unfrozen engine on one worker,
                # which is exactly wrong here: keep only a fair share of the
                # claimed batch and return the tail to the queue so idle
                # workers fan out over it instead of waiting behind
                # max_batch.  The tail is merged back by enqueue timestamp,
                # not pushed to the front: front-requeueing would let a
                # steady frozen backlog repeatedly leapfrog an older request
                # for another (serial) key and starve it.
                # pitexlint: ignore[LCK001] -- GIL-atomic dict store; execution_mode() documents last-writer-wins
                self._observed_modes[key] = "frozen-parallel"
                share = max(1, -(-len(batch) // len(self._workers)))
                if len(batch) > share:
                    tail = batch[share:]
                    batch = batch[:share]
                    with self._condition:
                        merged = sorted(
                            list(self._queue) + tail,
                            key=lambda pending: pending.enqueued_monotonic,
                        )
                        self._queue = deque(merged)
                        self._condition.notify_all()
                for pending in batch:
                    self._execute(engine, pending, len(batch))
                continue
            # pitexlint: ignore[LCK001] -- GIL-atomic dict store; execution_mode() documents last-writer-wins
            self._observed_modes[key] = "serial"
            with self._lock_for(key, engine):
                for pending in batch:
                    self._execute(engine, pending, len(batch))

    def _run_query(self, engine: PitexEngine, request: QueryRequest, batch_size: int) -> PitexResult:
        """Execute ``request`` on ``engine`` inside the execute trace span."""
        with trace_span(
            "execute",
            engine_key=str(request.engine_key),
            user=request.user,
            method=request.method,
            group=request.group,
            batch_size=batch_size,
        ):
            return engine.query(
                user=request.user,
                k=request.k,
                method=request.method,
                exploration=request.exploration,
                epsilon=request.epsilon,
                delta=request.delta,
            )

    def _execute(self, engine: PitexEngine, pending: _Pending, batch_size: int) -> None:
        request = pending.request
        if not pending.future.set_running_or_notify_cancel():
            return  # client cancelled while queued; nothing to run or record
        started = time.monotonic()
        queue_seconds = started - pending.enqueued_monotonic
        cache_hit = False
        try:
            cache = self.answer_cache
            if cache is not None and getattr(engine, "is_frozen", False):
                # Frozen answers are pure functions of the fingerprint, so a
                # hit returns the memoized result without touching the
                # engine -- no query.* telemetry, no execute span.
                key = answer_key(engine, request)
                result, cache_hit = cache.get_or_compute(
                    key, lambda: self._run_query(engine, request, batch_size)
                )
            else:
                result = self._run_query(engine, request, batch_size)
            response = QueryResponse(
                request=request,
                result=result,
                queue_seconds=queue_seconds,
                execute_seconds=time.monotonic() - started,
                batch_size=batch_size,
                cache_hit=cache_hit,
            )
        except Exception as exc:
            response = QueryResponse(
                request=request,
                error=f"{type(exc).__name__}: {exc}",
                queue_seconds=queue_seconds,
                execute_seconds=time.monotonic() - started,
                batch_size=batch_size,
            )
        self.metrics.record(response)
        pending.future.set_result(response)

    def _fail_batch(self, batch: List[_Pending], message: str) -> None:
        now = time.monotonic()
        for pending in batch:
            if not pending.future.set_running_or_notify_cancel():
                continue  # cancelled while queued
            response = QueryResponse(
                request=pending.request,
                error=message,
                queue_seconds=now - pending.enqueued_monotonic,
                batch_size=len(batch),
            )
            self.metrics.record(response)
            pending.future.set_result(response)

    # ------------------------------------------------------------------ close
    def close(self, wait: bool = True) -> None:
        """Stop accepting requests; drain the queue, then stop the workers."""
        with self._condition:
            if self._closed:
                return
            self._closed = True
            self._condition.notify_all()
        if wait:
            for worker in self._workers:
                worker.join()

    def __enter__(self) -> "PitexService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
