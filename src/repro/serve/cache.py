"""Warm engine cache: LRU over (dataset, params) keys.

Building a :class:`~repro.core.engine.PitexEngine` is cheap, but the engine's
*warmth* is not: its offline indexes, its per-method estimator cache and the
``DelayMat`` per-user recovered graphs all accumulate across queries.  The
serving layer therefore keeps engines alive between requests in a small LRU
keyed by whatever identifies an engine configuration to the caller (the CLI
and the service use ``(dataset, scale, epsilon, delta, k, method knobs...)``
tuples).

Every cache hit is re-validated against the engine's graph ``version``: if the
graph mutated after the engine was cached, its indexes and estimators describe
a stale snapshot, so the entry is dropped and rebuilt instead of served.
All operations are thread-safe; ``get_or_create`` serializes factory calls for
the *same* key so concurrent requests cannot build one engine twice, while
different keys build in parallel.

By default ``get_or_create`` also **freezes** every factory-built engine
before inserting it (:meth:`PitexEngine.freeze`): a cached engine is by
definition shared across requests, and only a frozen engine can serve those
requests concurrently without the service's per-engine lock.  Pass
``freeze=False`` for the historical serialize-behind-a-lock behaviour, or
``freeze_methods`` to warm only the methods a deployment actually serves.
``put`` never freezes -- callers inserting an engine directly keep full
control over its lifecycle.

The cache is **process-local** by design: warm engines hold live numpy
arrays and locks, so nothing here is shared across processes.  Replicas in
other processes warm themselves from the :class:`~repro.serve.store.IndexStore`
instead (see :mod:`repro.serve.sharded`), which is the cross-process
equivalent of a cache hit.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Hashable, List, Optional, Sequence

from repro.core.engine import METHODS, PitexEngine
from repro.exceptions import InvalidParameterError
from repro.obs.telemetry import counter


@dataclass
class EngineCacheStats:
    """Counters describing cache behaviour since construction.

    Every increment is mirrored into the process-wide telemetry registry
    under ``engine_cache.*`` so service snapshots expose the same numbers
    without holding a cache reference.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    single_flight_waits: int = 0

    def as_dict(self) -> dict:
        """Plain-dict snapshot (JSON friendly)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "single_flight_waits": self.single_flight_waits,
        }


@dataclass
class _Entry:
    engine: PitexEngine
    graph_version: int


@dataclass
class _Gate:
    """Single-flight gate: one build lock plus a waiter refcount.

    The refcount lets the *last* leaving thread remove the gate from the
    pending table, so a waiter blocked on the lock can never be orphaned onto
    a gate a newcomer no longer sees (which would allow two concurrent
    factory runs after a failed build).
    """

    lock: threading.Lock = field(default_factory=threading.Lock)
    refs: int = 0


class EngineCache:
    """A thread-safe LRU cache of warm :class:`PitexEngine` instances.

    Parameters
    ----------
    capacity:
        Maximum number of cached engines (LRU eviction beyond it).
    freeze:
        Freeze factory-built engines before caching them (default), so the
        service can serve each cached engine from several workers at once.
    freeze_methods:
        Methods passed to :meth:`PitexEngine.freeze` on insert; ``None``
        warms every method.
    """

    def __init__(
        self,
        capacity: int = 8,
        freeze: bool = True,
        freeze_methods: Optional[Sequence[str]] = None,
    ) -> None:
        if capacity <= 0:
            raise InvalidParameterError(f"capacity must be positive, got {capacity}")
        if freeze_methods is not None:
            # Fail fast: a typo here would otherwise surface only after every
            # expensive factory build, and be re-paid on every retry.
            unknown = [m for m in freeze_methods if m.lower() not in METHODS]
            if unknown:
                raise InvalidParameterError(
                    f"unknown freeze_methods {unknown!r}; choose from {METHODS}"
                )
        self.capacity = int(capacity)
        self.freeze = bool(freeze)
        self.freeze_methods = tuple(freeze_methods) if freeze_methods is not None else None
        self.stats = EngineCacheStats()
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, _Entry]" = OrderedDict()
        self._pending: dict = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> List[Hashable]:
        """Cached keys, least-recently used first."""
        with self._lock:
            return list(self._entries)

    # ------------------------------------------------------------------ core
    def get(self, key: Hashable) -> Optional[PitexEngine]:
        """The cached engine for ``key`` (refreshing recency), or ``None``.

        A stale entry -- one whose graph mutated after caching -- is evicted
        and reported as a miss.
        """
        return self._lookup(key, record=True)

    def _lookup(self, key: Hashable, record: bool) -> Optional[PitexEngine]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                if record:
                    self.stats.misses += 1
                    counter("engine_cache.miss")
                return None
            if entry.engine.graph.version != entry.graph_version:
                del self._entries[key]
                self.stats.invalidations += 1
                counter("engine_cache.invalidation")
                if record:
                    self.stats.misses += 1
                    counter("engine_cache.miss")
                return None
            self._entries.move_to_end(key)
            if record:
                self.stats.hits += 1
                counter("engine_cache.hit")
            return entry.engine

    def put(self, key: Hashable, engine: PitexEngine) -> None:
        """Insert (or replace) an engine, evicting the LRU entry if full.

        A same-key replace never grows the cache, so it skips the
        over-capacity eviction pass entirely: replacing a resident entry must
        not evict (or count as evicting) the key's LRU neighbor.
        """
        with self._lock:
            replaced = key in self._entries
            self._entries[key] = _Entry(engine=engine, graph_version=engine.graph.version)
            self._entries.move_to_end(key)
            if replaced:
                return
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
                counter("engine_cache.eviction")

    def get_or_create(self, key: Hashable, factory: Callable[[], PitexEngine]) -> PitexEngine:
        """The cached engine for ``key``, building it with ``factory`` on a miss.

        Concurrent misses on the same key run ``factory`` once: the first
        caller builds under a per-key lock while the rest wait and then hit.
        When the cache was constructed with ``freeze=True`` (the default) the
        built engine is frozen -- still under the single-flight gate, so the
        warm-up work happens exactly once too -- before it becomes visible to
        other callers.
        """
        engine = self.get(key)
        if engine is not None:
            return engine
        with self._lock:
            gate = self._pending.get(key)
            if gate is None:
                gate = _Gate()
                self._pending[key] = gate
            else:
                # A build for this key is already in flight; we are about to
                # block on its gate instead of running the factory ourselves.
                self.stats.single_flight_waits += 1
                counter("engine_cache.single_flight_wait")
            gate.refs += 1
        try:
            with gate.lock:
                # Double-check: another thread may have built while we waited.
                engine = self._lookup(key, record=False)
                if engine is not None:
                    return engine
                engine = factory()
                if self.freeze and not engine.is_frozen:
                    engine.freeze(self.freeze_methods)
                self.put(key, engine)
                return engine
        finally:
            # The last thread through removes the gate -- also after a
            # double-check hit or a factory failure -- so _pending cannot
            # grow one gate per key forever.
            with self._lock:
                gate.refs -= 1
                if gate.refs == 0 and self._pending.get(key) is gate:
                    self._pending.pop(key)

    def invalidate(self, key: Hashable) -> bool:
        """Drop one entry; returns whether it existed."""
        with self._lock:
            if key in self._entries:
                del self._entries[key]
                self.stats.invalidations += 1
                counter("engine_cache.invalidation")
                return True
            return False

    def clear(self) -> None:
        """Drop every entry, counting each as an invalidation (stats are kept).

        ``clear`` is a bulk :meth:`invalidate`, so snapshots must account for
        the dropped entries the same way -- silently clearing would
        under-report drops in ``stats.invalidations`` and the mirrored
        ``engine_cache.invalidation`` telemetry.
        """
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            if dropped:
                self.stats.invalidations += dropped
                counter("engine_cache.invalidation", dropped)
