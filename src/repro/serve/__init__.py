"""Online serving subsystem: persist, warm-cache and concurrently serve PITEX.

The paper's whole design (Sec. 6) rests on an offline/online asymmetry: RR-Graph
materialization is expensive, answering from it is cheap.  This package carries
that asymmetry across process and query boundaries:

* :mod:`repro.serve.store` -- :class:`IndexStore`: offline indexes serialized
  to ``npz`` + JSON manifests keyed on graph fingerprint / version, model hash
  and theta, with load-or-build semantics.
* :mod:`repro.serve.cache` -- :class:`EngineCache`: an LRU of warm engines so
  repeated queries skip engine construction and index builds.
* :mod:`repro.serve.service` -- :class:`PitexService`: a thread-pooled query
  front-end that batches concurrent requests per engine and records
  p50/p95/p99 latency and throughput.
* :mod:`repro.serve.replay` -- workload replay: fire a seeded
  :meth:`QueryWorkload.query_stream` at a service and report a latency table
  (the ``pitex serve-replay`` command and ``bench_serving`` driver).
* :mod:`repro.serve.sharded` -- :class:`ProcessShardedService`: the
  process-pool backend -- one frozen engine replica per worker process,
  reconstructed from read-only ``mmap``'d store arrays, bitwise-equal to the
  thread backend (see ``docs/architecture.md``).

Safety contracts (details in each module's docstring): the store is safe to
share across threads *and* processes; the cache, both services and the
metrics objects are thread-safe; engines themselves are only safe for
concurrent queries once frozen.
"""

from repro.serve.store import (
    IndexStore,
    StoreEntry,
    graph_bundle_key,
    index_cache_key,
    KIND_DELAYED,
    KIND_RR,
    KIND_SHARED_GRAPH,
)
from repro.serve.cache import EngineCache, EngineCacheStats
from repro.serve.service import (
    DEFAULT_ENGINE_KEY,
    PitexService,
    QueryRequest,
    QueryResponse,
    ServiceMetrics,
)
from repro.serve.replay import ReplayReport, replay_stream
from repro.serve.sharded import (
    EngineSpec,
    ProcessShardedService,
    build_engine_from_spec,
    publish_engine_spec,
)

__all__ = [
    "IndexStore",
    "StoreEntry",
    "graph_bundle_key",
    "index_cache_key",
    "KIND_RR",
    "KIND_DELAYED",
    "KIND_SHARED_GRAPH",
    "EngineCache",
    "EngineCacheStats",
    "DEFAULT_ENGINE_KEY",
    "PitexService",
    "QueryRequest",
    "QueryResponse",
    "ServiceMetrics",
    "ReplayReport",
    "replay_stream",
    "EngineSpec",
    "ProcessShardedService",
    "build_engine_from_spec",
    "publish_engine_spec",
]
