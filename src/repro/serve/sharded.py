"""Process-sharded serving: one frozen engine replica per worker process.

The thread-pooled :class:`~repro.serve.service.PitexService` proved that
frozen engines answer concurrently *correctly* -- but not *faster*: the
pure-Python index-matching loop serializes behind the GIL (the ``bench_serving``
sweep measured 0.81x "speedup" at 4 threads).  Processes are the right
parallelism unit, and PR 5's freeze contract makes them cheap to be correct
about:

* a frozen engine's answer is a pure function of ``(engine seed, query
  fingerprint)`` (:meth:`PitexEngine.query_seed`), so a replica built in
  another process from the same seed and the same bytes returns bitwise the
  same answer -- no cross-process coordination, no shared RNG;
* :class:`~repro.serve.store.IndexStore` already persists every heavy
  structure (CSR graph arrays, probability matrix, index sample arrays) as
  flat numpy arrays, so replicas reconstruct from read-only ``mmap``'d views
  (:meth:`IndexStore.open_mapped` / :meth:`TopicSocialGraph.from_shared_arrays`)
  and the float payload lives in the page cache once, not N times.

:class:`EngineSpec` is the picklable recipe a worker needs (store root +
bundle key + engine/freeze parameters); :func:`build_engine_from_spec` turns
it into a frozen replica; :class:`ProcessShardedService` forks N workers,
shards requests by ``crc32(engine_key | user)`` (stable across processes --
never builtin ``hash()``), speaks a tuple protocol over per-worker pipes, and
merges each worker's :class:`~repro.utils.stats.LatencyAccumulator` shard
into the parent's :class:`~repro.serve.service.ServiceMetrics` on shutdown.

Concurrency contract: the parent object is thread-safe (``submit`` from any
thread; internal state is guarded by one condition variable).  Worker death
-- crash, unpicklable reply, failed replica build -- is detected via pipe
EOF and surfaces as a clean :class:`~repro.exceptions.WorkerError`-tagged
error response on every affected future instead of a hang.  The thread
backend remains the bitwise reference oracle; equivalence is enforced by
``tests/test_serve_process.py`` and the ``bench_serving`` process leg.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
import zlib
from concurrent.futures import Future
from dataclasses import dataclass, field
from multiprocessing import connection
from typing import Dict, Hashable, List, Optional, Tuple

from repro.core.engine import PitexEngine
from repro.exceptions import InvalidParameterError, StoreError, WorkerError
from repro.obs.telemetry import Telemetry, counter, get_telemetry, install
from repro.obs.trace import (
    TraceRecorder,
    get_recorder,
    install_recorder,
    trace_span,
    tracing_enabled,
)
from repro.serve.answers import DEFAULT_ANSWER_CAPACITY, AnswerCache, answer_key
from repro.serve.service import QueryRequest, QueryResponse, ServiceMetrics
from repro.serve.store import IndexStore
from repro.utils.stats import LatencyAccumulator

RR_METHODS = ("indexest", "indexest+")
DELAYED_METHODS = ("delaymat",)


@dataclass(frozen=True)
class EngineSpec:
    """The picklable recipe for reconstructing one frozen engine replica.

    A spec carries *references* (a store root and a bundle key), never
    arrays: pickling it onto a worker costs bytes, and every heavy structure
    is memory-mapped from the store on the other side.  ``engine_seed`` must
    be the same integer seed the reference engine was built with -- the
    stateless ``query_seed`` derivation then makes every replica answer
    bitwise identically to the thread oracle.
    """

    store_root: str
    bundle_key: str
    engine_seed: int
    epsilon: float = 0.7
    delta: float = 1000.0
    max_samples: Optional[int] = 2000
    index_samples: int = 100
    default_k: int = 3
    kernel: str = "csr"
    methods: Tuple[str, ...] = ("indexest",)
    ks: Tuple[int, ...] = ()
    mmap: bool = True
    # Build the freeze-time per-user tables (repro.index.tables) in every
    # replica; same-seed replicas derive identical tables, so this preserves
    # bitwise equality with the thread oracle.
    precompute_tables: bool = True


def publish_engine_spec(
    store: IndexStore,
    graph,
    model,
    *,
    engine_seed: int,
    index_samples: int,
    methods: Tuple[str, ...],
    ks: Tuple[int, ...] = (),
    epsilon: float = 0.7,
    delta: float = 1000.0,
    max_samples: Optional[int] = 2000,
    default_k: int = 3,
    kernel: str = "csr",
    index_seed=None,
    mmap: bool = True,
    precompute_tables: bool = True,
) -> EngineSpec:
    """Persist everything workers need and return the matching spec.

    Saves the shared graph+model bundle and load-or-builds the offline
    indexes the listed ``methods`` require, so a worker's
    :func:`build_engine_from_spec` is guaranteed to find every entry.
    Idempotent: re-publishing identical content lands on the same store keys.
    """
    entry = store.save_graph_bundle(graph, model)
    lowered = tuple(method.lower() for method in methods)
    if any(method in RR_METHODS for method in lowered):
        store.load_or_build_rr(graph, model, index_samples, seed=index_seed)
    if any(method in DELAYED_METHODS for method in lowered):
        store.load_or_build_delayed(graph, model, index_samples, seed=index_seed)
    return EngineSpec(
        store_root=str(store.root),
        bundle_key=entry.key,
        engine_seed=int(engine_seed),
        epsilon=epsilon,
        delta=delta,
        max_samples=max_samples,
        index_samples=int(index_samples),
        default_k=int(default_k),
        kernel=kernel,
        methods=lowered,
        ks=tuple(int(k) for k in ks),
        mmap=mmap,
        precompute_tables=precompute_tables,
    )


def build_engine_from_spec(spec: EngineSpec) -> PitexEngine:
    """Reconstruct and freeze one engine replica from a spec.

    Runs inside each worker process: the graph/model come back from the
    shared bundle (read-only mmap by default), offline indexes from the same
    store, and the engine is frozen on the spec's methods -- after which the
    replica is a pure function of its inputs and safe to query without locks.
    Raises :class:`StoreError` if a required entry is missing, which the
    worker reports as a fatal startup error instead of half-serving.
    """
    store = IndexStore(spec.store_root)
    graph, model, _ = store.load_graph_bundle(spec.bundle_key, mmap=spec.mmap)
    methods = tuple(method.lower() for method in spec.methods)
    rr_index = None
    delayed_index = None
    if any(method in RR_METHODS for method in methods):
        rr_index = store.load_rr_index(graph, model, spec.index_samples, mmap=spec.mmap)
        if rr_index is None:
            raise StoreError(
                f"no persisted RR index for bundle {spec.bundle_key!r} at "
                f"theta={spec.index_samples} in {spec.store_root!r}"
            )
    if any(method in DELAYED_METHODS for method in methods):
        delayed_index = store.load_delayed_index(
            graph, model, spec.index_samples, mmap=spec.mmap
        )
        if delayed_index is None:
            raise StoreError(
                f"no persisted delayed index for bundle {spec.bundle_key!r} at "
                f"theta={spec.index_samples} in {spec.store_root!r}"
            )
    engine = PitexEngine(
        graph,
        model,
        epsilon=spec.epsilon,
        delta=spec.delta,
        max_samples=spec.max_samples,
        index_samples=spec.index_samples,
        default_k=spec.default_k,
        seed=spec.engine_seed,
        kernel=spec.kernel,
        rr_index=rr_index,
        delayed_index=delayed_index,
    )
    engine.freeze(
        methods=methods, ks=spec.ks or None, precompute_tables=spec.precompute_tables
    )
    return engine


# --------------------------------------------------------------- worker side
def _serve_requests(
    engine: PitexEngine,
    worker_id: int,
    requests,
    replies,
    answer_cache: Optional[AnswerCache] = None,
):
    """Drain the request pipe until EOF/stop; returns the latency shard.

    Factored out of :func:`_worker_main` so the loop is unit-testable
    in-process (the fork-safety tests drive it with plain ``Pipe`` ends).
    An unpicklable result degrades to an error reply; a broken reply pipe
    ends the loop -- the parent sees EOF either way.

    ``answer_cache`` (when given) memoizes frozen answers per worker; the
    by-user request sharding routes every fingerprint to exactly one worker,
    so the per-worker caches behave like one shared cache.  Hits skip the
    engine, the execute span and the shard accumulator (hits must not drag
    the engine-execute percentiles down), and are flagged in the reply tuple.
    """
    shard = LatencyAccumulator(label=f"worker-{worker_id}")
    completed = 0
    failed = 0

    def run_query(request):
        with trace_span(
            "execute",
            engine_key=str(request.engine_key),
            user=request.user,
            method=request.method,
            group=request.group,
            worker=worker_id,
        ):
            return engine.query(
                user=request.user,
                k=request.k,
                method=request.method,
                exploration=request.exploration,
                epsilon=request.epsilon,
                delta=request.delta,
            )

    while True:
        try:
            message = requests.recv()
        except (EOFError, OSError):
            break
        if message[0] == "stop":
            break
        _, request_id, request = message
        started = time.monotonic()
        error: Optional[str] = None
        result = None
        cache_hit = False
        try:
            if answer_cache is not None and getattr(engine, "is_frozen", False):
                key = answer_key(engine, request)
                result, cache_hit = answer_cache.get_or_compute(
                    key, lambda: run_query(request)
                )
            else:
                result = run_query(request)
        except Exception as exc:
            error = f"{type(exc).__name__}: {exc}"
        execute_seconds = time.monotonic() - started
        if not cache_hit:
            shard.add(execute_seconds)
        if error is None:
            completed += 1
        else:
            failed += 1
        try:
            replies.send(
                ("result", worker_id, request_id, error, result, execute_seconds, cache_hit)
            )
        except OSError:
            break  # parent is gone; nothing left to answer to
        except Exception as exc:  # unpicklable result: degrade, don't die
            if error is None:
                completed -= 1
                failed += 1
            try:
                replies.send(
                    (
                        "result",
                        worker_id,
                        request_id,
                        f"WorkerError: worker {worker_id} could not serialize the "
                        f"result ({type(exc).__name__}: {exc})",
                        None,
                        execute_seconds,
                        cache_hit,
                    )
                )
            except (OSError, ValueError):
                break
    return shard, completed, failed


def _worker_main(
    worker_id: int,
    spec: EngineSpec,
    requests,
    replies,
    trace: bool = False,
    answer_cache_capacity: int = 0,
) -> None:
    """Entry point of one worker process: build the replica, then serve.

    Installs a **fresh** telemetry registry (and, with ``trace=True``, a
    fresh trace recorder) before doing any work: a forked child inherits the
    parent's counters, and shipping those back in the shutdown shard would
    double-count them.  The previous registry/recorder are restored on exit
    so the in-process fork-safety tests (which run this function in a thread)
    leave global state untouched.

    ``answer_cache_capacity`` > 0 equips the worker with a per-process
    :class:`~repro.serve.answers.AnswerCache` replica of that capacity;
    0 (the default) serves uncached.
    """
    previous_telemetry = install(Telemetry())
    previous_recorder = install_recorder(TraceRecorder() if trace else None)
    try:
        try:
            engine = build_engine_from_spec(spec)
        except BaseException as exc:
            try:
                replies.send(("fatal", worker_id, f"{type(exc).__name__}: {exc}"))
            except (OSError, ValueError):
                pass
            replies.close()
            return
        try:
            replies.send(("ready", worker_id))
        except (OSError, ValueError):
            replies.close()
            return
        answer_cache = (
            AnswerCache(capacity=answer_cache_capacity) if answer_cache_capacity > 0 else None
        )
        shard, completed, failed = _serve_requests(
            engine, worker_id, requests, replies, answer_cache=answer_cache
        )
        recorder = get_recorder()
        spans = recorder.spans() if recorder is not None else []
        try:
            replies.send(
                (
                    "shard",
                    worker_id,
                    shard,
                    completed,
                    failed,
                    get_telemetry().snapshot(),
                    spans,
                )
            )
        except (OSError, ValueError):
            pass
        replies.close()
    finally:
        install(previous_telemetry)
        install_recorder(previous_recorder)


# --------------------------------------------------------------- parent side
@dataclass
class _ProcPending:
    """One in-flight request on the parent side."""

    request: QueryRequest
    future: "Future[QueryResponse]"
    worker_id: int
    enqueued_monotonic: float = field(default_factory=time.monotonic)


class ProcessShardedService:
    """Fan queries out to N forked frozen-engine replicas, bitwise-safely.

    Mirrors the :class:`~repro.serve.service.PitexService` surface that
    :func:`~repro.serve.replay.replay_stream` consumes (``submit``,
    ``num_workers``, ``execution_mode``, ``metrics``, context manager), so
    the two backends are drop-in interchangeable for replay and benchmarks.

    Parameters
    ----------
    spec:
        The :class:`EngineSpec` every worker reconstructs its replica from
        (see :func:`publish_engine_spec`).
    num_workers:
        Number of worker processes.  Requests are sharded deterministically
        by ``crc32(engine_key | user) % num_workers``, so a given user always
        lands on the same replica -- cache-friendly and reproducible.
    start_method:
        ``multiprocessing`` start method; defaults to ``"fork"`` where
        available (cheap start, inherits nothing mutable that matters --
        replicas rebuild from the store) and the platform default elsewhere.
        ``"spawn"`` works too: the spec is picklable by design.
    startup_timeout:
        Seconds to wait for every worker to report its replica ready;
        a worker that dies or reports a build failure raises
        :class:`~repro.exceptions.WorkerError` from the constructor.
    answer_cache:
        Equip every worker with a per-process
        :class:`~repro.serve.answers.AnswerCache` replica.  The by-user
        sharding sends each fingerprint to exactly one worker, so hit/miss
        totals across the replicas equal a single shared cache's (what the
        cross-backend telemetry gate compares).
    answer_cache_capacity:
        Per-worker cache capacity when ``answer_cache`` is enabled.
    """

    backend = "process"

    def __init__(
        self,
        spec: EngineSpec,
        num_workers: int = 2,
        start_method: Optional[str] = None,
        startup_timeout: float = 300.0,
        answer_cache: bool = False,
        answer_cache_capacity: int = DEFAULT_ANSWER_CAPACITY,
    ) -> None:
        if num_workers <= 0:
            raise InvalidParameterError(f"num_workers must be positive, got {num_workers}")
        if start_method is None:
            available = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in available else multiprocessing.get_start_method()
        context = multiprocessing.get_context(start_method)
        self.spec = spec
        self.start_method = start_method
        self.metrics = ServiceMetrics()
        self._condition = threading.Condition()
        self._send_locks = [threading.Lock() for _ in range(int(num_workers))]
        self._pending: Dict[int, _ProcPending] = {}
        self._next_request_id = 0
        self._closed = False
        self._any_ready = False
        self._ready = [False] * int(num_workers)
        self._shard_received = [False] * int(num_workers)
        self._fatal: List[Optional[str]] = [None] * int(num_workers)
        self._request_conns = []
        self._reply_conns = []
        self._processes = []
        for worker_id in range(int(num_workers)):
            request_recv, request_send = context.Pipe(duplex=False)
            reply_recv, reply_send = context.Pipe(duplex=False)
            # Tracing is decided at construction time: workers install their
            # own recorder when the parent has one, and ship spans back in
            # the shutdown shard (works under fork *and* spawn).
            process = context.Process(
                target=_worker_main,
                args=(
                    worker_id,
                    spec,
                    request_recv,
                    reply_send,
                    tracing_enabled(),
                    int(answer_cache_capacity) if answer_cache else 0,
                ),
                name=f"pitex-shard-{worker_id}",
                daemon=True,
            )
            process.start()
            # Parent-side handles of the child's pipe ends must close so the
            # parent sees EOF when (and only when) the child is gone.
            request_recv.close()
            reply_send.close()
            self._request_conns.append(request_send)
            self._reply_conns.append(reply_recv)
            self._processes.append(process)
        self._drainer = threading.Thread(
            target=self._drain_loop, name="pitex-shard-drain", daemon=True
        )
        self._drainer.start()
        self._wait_until_ready(startup_timeout)

    # ------------------------------------------------------------- lifecycle
    def _wait_until_ready(self, timeout: float) -> None:
        deadline = time.monotonic() + timeout
        with self._condition:
            while True:
                failures = [
                    f"worker {worker_id}: {message}"
                    for worker_id, message in enumerate(self._fatal)
                    if message is not None
                ]
                if failures:
                    break
                if all(self._ready):
                    return
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    failures = [f"startup timed out after {timeout:.0f}s"]
                    break
                self._condition.wait(remaining)
        self.close(wait=True)
        raise WorkerError("process backend failed to start: " + "; ".join(failures))

    @property
    def num_workers(self) -> int:
        """Number of worker processes (live or dead)."""
        return len(self._processes)

    def execution_mode(self, engine_key: Hashable = None) -> str:
        """``"process-sharded"`` once any replica served, else ``"unknown"``.

        Mirrors :meth:`PitexService.execution_mode` so replay reports are
        self-describing across backends.
        """
        with self._condition:
            return "process-sharded" if self._any_ready else "unknown"

    def shard_of(self, request: QueryRequest) -> int:
        """Deterministic worker assignment for a request.

        ``crc32`` over a stable label -- builtin ``hash()`` is randomized per
        process (``PYTHONHASHSEED``) and would break the "same user, same
        replica" property across runs.
        """
        token = f"{request.engine_key}|{request.user}".encode()
        return zlib.crc32(token) % self.num_workers

    # ----------------------------------------------------------------- submit
    def submit(self, request: QueryRequest) -> "Future[QueryResponse]":
        """Queue one request on its shard; resolves to a :class:`QueryResponse`.

        A request sharded to a dead worker resolves immediately with a clean
        ``WorkerError`` message instead of hanging.  ``send`` applies natural
        backpressure: when a shard's pipe is full, ``submit`` blocks until
        the worker drains it.
        """
        future: "Future[QueryResponse]" = Future()
        worker_id = self.shard_of(request)
        dead_message: Optional[str] = None
        request_id = -1
        with self._condition:
            if self._closed:
                raise RuntimeError("ProcessShardedService is closed")
            if self._reply_conns[worker_id] is None:
                dead_message = self._fatal[worker_id] or "worker died"
            else:
                request_id = self._next_request_id
                self._next_request_id += 1
                self._pending[request_id] = _ProcPending(
                    request=request, future=future, worker_id=worker_id
                )
        if dead_message is not None:
            self._resolve_error(
                future, request, f"WorkerError: worker {worker_id} unavailable: {dead_message}"
            )
            return future
        try:
            with self._send_locks[worker_id]:
                self._request_conns[worker_id].send(("query", request_id, request))
        except (OSError, ValueError) as exc:
            with self._condition:
                pending = self._pending.pop(request_id, None)
            if pending is not None:
                self._resolve_error(
                    future,
                    request,
                    f"WorkerError: worker {worker_id} pipe broken: {type(exc).__name__}: {exc}",
                )
        return future

    def query(self, user: int, k: Optional[int] = None, method: str = "indexest+", **kwargs):
        """Synchronous convenience wrapper: submit, wait, unwrap or raise."""
        request = QueryRequest(user=user, k=k, method=method, **kwargs)
        response = self.submit(request).result()
        if not response.ok:
            raise WorkerError(f"query failed: {response.error}")
        return response.result

    def _resolve_error(self, future: "Future[QueryResponse]", request: QueryRequest, error: str) -> None:
        if not future.set_running_or_notify_cancel():
            return
        response = QueryResponse(request=request, error=error)
        self.metrics.record(response)
        future.set_result(response)

    # ---------------------------------------------------------------- drainer
    def _drain_loop(self) -> None:
        """Single reader of every reply pipe; EOF means the worker is gone."""
        while True:
            with self._condition:
                live = {
                    conn: worker_id
                    for worker_id, conn in enumerate(self._reply_conns)
                    if conn is not None
                }
            if not live:
                return
            for conn in connection.wait(list(live), timeout=0.5):
                worker_id = live[conn]
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    self._on_worker_eof(worker_id)
                    continue
                self._on_message(worker_id, message)

    def _on_message(self, worker_id: int, message: tuple) -> None:
        kind = message[0]
        if kind == "ready":
            with self._condition:
                self._ready[worker_id] = True
                self._any_ready = True
                self._condition.notify_all()
        elif kind == "fatal":
            with self._condition:
                self._fatal[worker_id] = message[2]
                self._condition.notify_all()
        elif kind == "shard":
            shard = message[2]
            self.metrics.record_worker_shard(shard)
            with self._condition:
                self._shard_received[worker_id] = True
            if len(message) >= 7:
                telemetry_snapshot, spans = message[5], message[6]
                self.metrics.record_worker_telemetry(shard.label, telemetry_snapshot)
                if spans:
                    recorder = get_recorder()
                    if recorder is not None:
                        recorder.extend(spans)
        elif kind == "result":
            request_id, error, result, execute_seconds = message[2:6]
            # Length-tolerant: pre-answer-cache workers sent 6-tuples.
            cache_hit = bool(message[6]) if len(message) > 6 else False
            with self._condition:
                pending = self._pending.pop(request_id, None)
            if pending is None:
                return  # cancelled or already failed over
            if not pending.future.set_running_or_notify_cancel():
                return
            queue_seconds = max(
                0.0,
                (time.monotonic() - pending.enqueued_monotonic) - execute_seconds,
            )
            response = QueryResponse(
                request=pending.request,
                result=result,
                error=error,
                queue_seconds=queue_seconds,
                execute_seconds=execute_seconds,
                cache_hit=cache_hit,
            )
            self.metrics.record(response)
            pending.future.set_result(response)

    def _on_worker_eof(self, worker_id: int) -> None:
        process = self._processes[worker_id]
        process.join(timeout=5.0)
        exit_code = process.exitcode
        with self._condition:
            conn = self._reply_conns[worker_id]
            if conn is not None:
                conn.close()
            self._reply_conns[worker_id] = None
            if self._fatal[worker_id] is None and not self._ready[worker_id]:
                self._fatal[worker_id] = f"died during startup (exit code {exit_code})"
            if not self._shard_received[worker_id]:
                # The worker is gone without delivering its shutdown shard; a
                # clean close always ships the shard before EOF (single FIFO
                # pipe, single drain thread), so this is a real death.  The
                # lost telemetry cannot be recovered -- count the loss
                # explicitly instead of silently under-reporting.
                counter("worker.deaths")
                if self._ready[worker_id]:
                    counter("worker.shards_lost")
            orphans = [
                (request_id, pending)
                for request_id, pending in self._pending.items()
                if pending.worker_id == worker_id
            ]
            for request_id, _ in orphans:
                del self._pending[request_id]
            self._condition.notify_all()
        for _, pending in orphans:
            self._resolve_error(
                pending.future,
                pending.request,
                f"WorkerError: worker {worker_id} died (exit code {exit_code}) "
                "with this request in flight",
            )

    # ------------------------------------------------------------------ close
    def close(self, wait: bool = True) -> None:
        """Stop accepting requests, drain in-flight work, reap the workers.

        Pipes are FIFO, so every request submitted before ``close`` is
        answered before the worker honors the ``stop`` -- same drain
        semantics as the thread backend.
        """
        with self._condition:
            first = not self._closed
            self._closed = True
        if first:
            for worker_id in range(self.num_workers):
                try:
                    with self._send_locks[worker_id]:
                        self._request_conns[worker_id].send(("stop",))
                        self._request_conns[worker_id].close()
                except (OSError, ValueError):
                    pass
        if not wait:
            return
        for process in self._processes:
            process.join(timeout=60.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        self._drainer.join(timeout=60.0)

    def __enter__(self) -> "ProcessShardedService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
