"""Query workload generation (Sec. 7.1).

The paper filters users with no outgoing edge, splits the rest into three
out-degree groups (top 1% = high, top 1-10% = mid, the rest = low) and runs 100
random queries per group.  :class:`QueryWorkload` reproduces that grouping and
draws reproducible query users per group.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.exceptions import InvalidParameterError
from repro.graph.algorithms import out_degree_groups
from repro.graph.digraph import TopicSocialGraph
from repro.utils.rng import RandomSource, SeedLike, spawn_rng

GROUPS = ("high", "mid", "low")


@dataclass
class QueryWorkload:
    """Pre-computed out-degree groups plus a seeded sampler of query users."""

    groups: Dict[str, List[int]]
    _rng: RandomSource = field(repr=False, default_factory=lambda: spawn_rng(0))

    def users(self, group: str, num_queries: int) -> List[int]:
        """Draw ``num_queries`` query users from ``group`` (with replacement if needed)."""
        group = group.lower()
        if group not in GROUPS:
            raise InvalidParameterError(f"group must be one of {GROUPS}, got {group!r}")
        members = self.groups.get(group, [])
        if not members:
            raise InvalidParameterError(f"group {group!r} is empty for this graph")
        if num_queries <= 0:
            raise InvalidParameterError(f"num_queries must be positive, got {num_queries}")
        if num_queries >= len(members):
            # Not enough distinct members: cycle deterministically.
            repeated = (members * ((num_queries // len(members)) + 1))[:num_queries]
            return repeated
        picked = set()
        result: List[int] = []
        while len(result) < num_queries:
            candidate = members[self._rng.integer(0, len(members))]
            if candidate not in picked:
                picked.add(candidate)
                result.append(candidate)
        return result

    def query_stream(
        self,
        num_queries: int,
        group_weights: Optional[Dict[str, float]] = None,
        seed: SeedLike = None,
        zipf_s: float = 0.0,
    ) -> List[Tuple[str, int]]:
        """A reproducible stream of ``(group, user)`` query events.

        This is the arrival sequence the serving layer replays
        (:mod:`repro.serve.replay`): each event first draws a group (by
        ``group_weights``, defaulting to equal weight on every non-empty
        group, mirroring the paper's per-group query batches) and then a
        user from that group.  Unlike :meth:`users`, the stream draws
        from its *own* seeded RNG, so the same ``seed`` always reproduces the
        same stream regardless of any earlier sampling on this workload.

        ``zipf_s`` skews the within-group user draw: the user at rank ``r``
        of the group's member list gets weight ``1 / (r + 1) ** zipf_s``, so
        larger ``s`` concentrates repeat traffic on the head of each group
        (the answer-cache warm legs dial hit rates with it).  ``zipf_s=0``
        (the default) keeps the historical uniform draw -- bit-for-bit the
        same stream as before the knob existed.
        """
        if num_queries <= 0:
            raise InvalidParameterError(f"num_queries must be positive, got {num_queries}")
        if zipf_s < 0:
            raise InvalidParameterError(f"zipf_s must be non-negative, got {zipf_s}")
        populated = [name for name in GROUPS if self.groups.get(name)]
        if not populated:
            raise InvalidParameterError("every out-degree group is empty for this graph")
        if group_weights is not None:
            unknown = set(group_weights) - set(GROUPS)
            if unknown:
                raise InvalidParameterError(f"unknown groups in group_weights: {sorted(unknown)}")
            weighted = [(name, float(group_weights.get(name, 0.0))) for name in populated]
            weighted = [(name, weight) for name, weight in weighted if weight > 0.0]
            if not weighted:
                raise InvalidParameterError("group_weights leaves no populated group selectable")
        else:
            weighted = [(name, 1.0) for name in populated]
        rng = spawn_rng(seed)
        names = [name for name, _ in weighted]
        weights = [weight for _, weight in weighted]
        rank_weights: Dict[str, List[float]] = {}
        if zipf_s > 0:
            for name in names:
                members = self.groups[name]
                rank_weights[name] = [
                    1.0 / (rank + 1) ** zipf_s for rank in range(len(members))
                ]
        stream: List[Tuple[str, int]] = []
        for _ in range(num_queries):
            group = names[rng.weighted_index(weights)]
            members = self.groups[group]
            if zipf_s > 0:
                stream.append((group, members[rng.weighted_index(rank_weights[group])]))
            else:
                stream.append((group, members[rng.integer(0, len(members))]))
        return stream

    def group_sizes(self) -> Dict[str, int]:
        """Number of users in each group."""
        return {name: len(members) for name, members in self.groups.items()}

    def group_of(self, user: int) -> str:
        """The group a given user belongs to ("unknown" if filtered out)."""
        for name in GROUPS:
            if user in self.groups.get(name, []):
                return name
        return "unknown"


def build_workload(
    graph: TopicSocialGraph,
    high_fraction: float = 0.01,
    mid_fraction: float = 0.10,
    seed: SeedLike = None,
) -> QueryWorkload:
    """Group users by out-degree and wrap them in a :class:`QueryWorkload`."""
    groups = out_degree_groups(graph, high_fraction, mid_fraction)
    return QueryWorkload(groups=groups, _rng=spawn_rng(seed))
