"""Synthetic dataset generation matching the paper's dataset profiles.

:func:`generate_dataset` (or the convenience :func:`load_dataset`) produces a
:class:`SyntheticDataset`: a power-law topic-aware graph, a tag-topic model
with the profile's tag-topic density, and a pre-computed query workload per
out-degree group.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.datasets.profiles import DatasetProfile, get_profile
from repro.datasets.workload import QueryWorkload, build_workload
from repro.exceptions import InvalidParameterError
from repro.graph.digraph import TopicSocialGraph
from repro.graph.generators import power_law_topic_graph
from repro.topics.model import TagTopicModel
from repro.utils.rng import SeedLike, spawn_rng


def make_tag_topic_matrix(
    num_tags: int,
    num_topics: int,
    density: float,
    seed: SeedLike = None,
) -> np.ndarray:
    """Build a ``p(w|z)`` matrix with (approximately) the requested density.

    Every tag receives at least one "home" topic with a large likelihood; extra
    non-zero entries are added uniformly at random until the target density is
    reached.  Columns are then normalized so each topic is a distribution over
    tags, matching the convention of LDA-learned matrices.
    """
    if not 0.0 < density <= 1.0:
        raise InvalidParameterError(f"density must lie in (0, 1], got {density}")
    rng = spawn_rng(seed)
    matrix = np.zeros((num_tags, num_topics))
    for tag in range(num_tags):
        home_topic = rng.integer(0, num_topics)
        matrix[tag, home_topic] = rng.uniform(0.5, 1.0)
    target_nonzero = int(round(density * num_tags * num_topics))
    current_nonzero = int(np.count_nonzero(matrix))
    attempts = 0
    while current_nonzero < target_nonzero and attempts < 50 * num_tags * num_topics:
        attempts += 1
        tag = rng.integer(0, num_tags)
        topic = rng.integer(0, num_topics)
        if matrix[tag, topic] == 0.0:
            matrix[tag, topic] = rng.uniform(0.05, 0.6)
            current_nonzero += 1
    column_sums = matrix.sum(axis=0)
    column_sums[column_sums == 0.0] = 1.0
    return matrix / column_sums


@dataclass
class SyntheticDataset:
    """A generated dataset: graph + model + workload, plus its profile."""

    name: str
    profile: DatasetProfile
    graph: TopicSocialGraph
    model: TagTopicModel
    query_workload: QueryWorkload
    seed: Optional[int] = None

    def workload(self, group: str = "mid", num_queries: int = 10) -> List[int]:
        """Query users drawn from the out-degree ``group`` ("high"/"mid"/"low")."""
        return self.query_workload.users(group, num_queries)

    def most_influential_user(self) -> int:
        """The user with the largest out-degree (used by the Fig. 6 convergence runs)."""
        degrees = self.graph.out_degrees()
        return int(np.argmax(degrees))

    def table2_row(self) -> tuple:
        """``(name, |V|, |E|, |E|/|V|, |Z|, |Omega|)`` of the generated instance."""
        return (
            self.name,
            self.graph.num_vertices,
            self.graph.num_edges,
            self.graph.density(),
            self.graph.num_topics,
            self.model.num_tags,
        )

    def describe(self) -> str:
        """One-line summary of the generated instance."""
        return (
            f"{self.name}: |V|={self.graph.num_vertices} |E|={self.graph.num_edges} "
            f"|Z|={self.graph.num_topics} |Omega|={self.model.num_tags} "
            f"density={self.model.tag_topic_density():.2f}"
        )


def generate_dataset(
    profile: DatasetProfile,
    scale: float = 1.0,
    num_tags: Optional[int] = None,
    num_topics: Optional[int] = None,
    seed: SeedLike = None,
) -> SyntheticDataset:
    """Generate a synthetic dataset from a profile.

    ``num_tags`` / ``num_topics`` override the profile values (used by the
    Fig. 12 scalability sweeps over |Omega| and |Z|).
    """
    rng = spawn_rng(seed)
    vertices = profile.scaled_vertices(scale)
    topics = num_topics if num_topics is not None else profile.num_topics
    tags = num_tags if num_tags is not None else profile.num_tags
    graph = power_law_topic_graph(
        num_vertices=vertices,
        average_degree=profile.average_degree,
        num_topics=topics,
        base_probability=profile.base_probability,
        reciprocity=profile.reciprocity,
        seed=rng.spawn(1),
    )
    matrix = make_tag_topic_matrix(tags, topics, profile.tag_topic_density, seed=rng.spawn(2))
    model = TagTopicModel(matrix, tags=[f"{profile.name}-tag{i}" for i in range(tags)])
    workload = build_workload(graph, seed=rng.spawn(3))
    return SyntheticDataset(
        name=profile.name,
        profile=profile,
        graph=graph,
        model=model,
        query_workload=workload,
        seed=rng.seed,
    )


def load_dataset(
    name: str,
    scale: float = 1.0,
    num_tags: Optional[int] = None,
    num_topics: Optional[int] = None,
    seed: SeedLike = None,
) -> SyntheticDataset:
    """Generate the synthetic analogue of a named paper dataset."""
    return generate_dataset(get_profile(name), scale, num_tags, num_topics, seed)
