"""Parameter profiles of the four evaluation datasets (Table 2).

Each profile records the *published* statistics of the corresponding real
dataset and a scaled-down default vertex count used by this reproduction.  The
scale factor only shrinks ``|V|`` -- density, topic count, vocabulary size and
tag-topic density are preserved because they are what drive the relative
behaviour of the compared methods (pruning power, index hit rates, sampling
cost).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.exceptions import InvalidParameterError


@dataclass(frozen=True)
class DatasetProfile:
    """Structural parameters of one dataset.

    Attributes
    ----------
    name:
        Dataset name as used in the paper (lastfm, diggs, dblp, twitter).
    paper_vertices / paper_edges:
        The |V| and |E| reported in Table 2.
    num_topics / num_tags:
        |Z| and |Omega| reported in Table 2.
    tag_topic_density:
        Fraction of non-zero ``p(w|z)`` entries reported in Sec. 7.3.
    default_vertices:
        The scaled-down |V| used by this reproduction's default runs.
    reciprocity:
        Probability of reciprocal (follow-back) edges in the generator; higher
        for conversational networks, lower for broadcast ones.
    base_probability:
        Baseline influence probability before in-degree scaling.
    """

    name: str
    paper_vertices: int
    paper_edges: int
    num_topics: int
    num_tags: int
    tag_topic_density: float
    default_vertices: int
    reciprocity: float
    base_probability: float

    @property
    def average_degree(self) -> float:
        """The |E|/|V| density of Table 2, preserved at every scale."""
        return self.paper_edges / self.paper_vertices

    def scaled_vertices(self, scale: float = 1.0) -> int:
        """Number of vertices after applying ``scale`` to the default size."""
        if scale <= 0:
            raise InvalidParameterError(f"scale must be positive, got {scale}")
        return max(10, int(round(self.default_vertices * scale)))

    def table2_row(self, scale: float = 1.0) -> tuple:
        """``(name, |V|, |E|estimate, |E|/|V|, |Z|, |Omega|)`` for the Table 2 bench."""
        vertices = self.scaled_vertices(scale)
        edges = int(round(vertices * self.average_degree))
        return (self.name, vertices, edges, self.average_degree, self.num_topics, self.num_tags)


PROFILES: Dict[str, DatasetProfile] = {
    "lastfm": DatasetProfile(
        name="lastfm",
        paper_vertices=1_300,
        paper_edges=12_000,
        num_topics=20,
        num_tags=50,
        tag_topic_density=0.16,
        default_vertices=1_300,
        reciprocity=0.5,
        base_probability=0.25,
    ),
    "diggs": DatasetProfile(
        name="diggs",
        paper_vertices=15_000,
        paper_edges=200_000,
        num_topics=20,
        num_tags=50,
        tag_topic_density=0.08,
        default_vertices=1_500,
        reciprocity=0.4,
        base_probability=0.2,
    ),
    "dblp": DatasetProfile(
        name="dblp",
        paper_vertices=500_000,
        paper_edges=6_000_000,
        num_topics=9,
        num_tags=276,
        tag_topic_density=0.32,
        default_vertices=2_000,
        reciprocity=0.8,
        base_probability=0.2,
    ),
    "twitter": DatasetProfile(
        name="twitter",
        paper_vertices=10_000_000,
        paper_edges=12_000_000,
        num_topics=50,
        num_tags=250,
        tag_topic_density=0.17,
        default_vertices=3_000,
        reciprocity=0.2,
        base_probability=0.3,
    ),
}


def profile_names() -> List[str]:
    """Names of the available dataset profiles, in the paper's order."""
    return ["lastfm", "diggs", "dblp", "twitter"]


def get_profile(name: str) -> DatasetProfile:
    """Look up a profile by name (case-insensitive)."""
    key = name.lower()
    if key not in PROFILES:
        raise InvalidParameterError(
            f"unknown dataset {name!r}; available: {sorted(PROFILES)}"
        )
    return PROFILES[key]
