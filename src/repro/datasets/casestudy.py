"""The dblp-style researcher case study (Table 4 of the paper).

The paper selects eight well-known computer scientists, runs PITEX with k=5 on
the dblp co-author graph (research fields as topics, conference keywords as
tags) and asks human annotators whether the returned tags reflect each
scientist's influential work.  Real dblp data and human annotators are not
available offline, so this module builds a synthetic equivalent with a
programmatic oracle:

* topics are research fields, tags are field keywords with a known
  field-of-origin;
* eight "renowned researchers", each a hub of the communities of their primary
  fields, plus field-specific community members co-authoring mostly inside
  their own field;
* the ground truth for a researcher is the set of keywords belonging to their
  primary fields, and accuracy is the fraction of the k returned tags that land
  in that ground-truth set -- the same ratio the human study computes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from repro.graph.digraph import TopicSocialGraph
from repro.topics.model import TagTopicModel
from repro.utils.rng import SeedLike, spawn_rng

#: Research fields (the case-study topics) and their keyword vocabulary.
FIELD_KEYWORDS: Dict[str, List[str]] = {
    "machine-learning": ["learning", "neural", "representation", "recognition", "inference"],
    "data-mining": ["mining", "patterns", "clustering", "structures", "society"],
    "databases": ["data", "management", "query", "storage", "transactions"],
    "theory": ["complexity", "algorithms", "combinatorial", "foundations", "automata"],
    "systems": ["systems", "distributed", "parallel", "dependable", "operating"],
    "networks": ["internet", "communications", "routing", "wireless", "protocols"],
    "vision": ["image", "video", "detection", "segmentation", "geometry"],
    "nlp": ["language", "speech", "translation", "parsing", "semantics"],
    "optimization": ["optimization", "programming", "convex", "scheduling", "approximation"],
}


@dataclass(frozen=True)
class Researcher:
    """One case-study researcher with their primary fields."""

    name: str
    fields: Tuple[str, ...]


#: The eight researchers of Table 4 with the fields their paper tags suggest.
RESEARCHERS: Tuple[Researcher, ...] = (
    Researcher("Michael Jordan", ("machine-learning", "nlp")),
    Researcher("Yann LeCun", ("machine-learning", "vision")),
    Researcher("Jiawei Han", ("data-mining", "optimization")),
    Researcher("Jure Leskovec", ("data-mining", "networks")),
    Researcher("Michael Stonebraker", ("databases", "systems")),
    Researcher("Jim Gray", ("databases", "systems")),
    Researcher("Richard Karp", ("theory", "optimization")),
    Researcher("Leslie Valiant", ("theory", "machine-learning")),
)


@dataclass
class CaseStudy:
    """The generated case-study instance."""

    graph: TopicSocialGraph
    model: TagTopicModel
    researchers: Tuple[Researcher, ...]
    researcher_vertex: Dict[str, int]
    ground_truth_tags: Dict[str, Set[str]]
    field_names: List[str]

    def vertex_of(self, researcher_name: str) -> int:
        """Vertex id of a researcher by name."""
        return self.researcher_vertex[researcher_name]

    def accuracy(self, researcher_name: str, returned_tags: Sequence[str]) -> float:
        """Fraction of returned tags that belong to the researcher's ground truth."""
        if not returned_tags:
            return 0.0
        truth = self.ground_truth_tags[researcher_name]
        hits = sum(1 for tag in returned_tags if tag in truth)
        return hits / float(len(returned_tags))


def build_case_study(
    members_per_field: int = 40,
    followers_per_researcher: int = 35,
    cross_field_probability: float = 0.05,
    seed: SeedLike = None,
) -> CaseStudy:
    """Build the synthetic dblp-like case-study graph.

    Layout: for each field a community of ``members_per_field`` researchers;
    the eight renowned researchers are extra vertices that influence
    ``followers_per_researcher`` members of each of their primary fields with
    relatively high probability under the field's topic.  Community members
    influence a few colleagues of their own field and occasionally someone
    from another field.
    """
    rng = spawn_rng(seed)
    field_names = list(FIELD_KEYWORDS)
    num_topics = len(field_names)
    field_index = {name: i for i, name in enumerate(field_names)}

    # --- vocabulary -----------------------------------------------------------
    tags: List[str] = []
    tag_field: List[int] = []
    for name in field_names:
        for keyword in FIELD_KEYWORDS[name]:
            tags.append(keyword)
            tag_field.append(field_index[name])
    matrix = np.zeros((len(tags), num_topics))
    for tag_id, home in enumerate(tag_field):
        matrix[tag_id, home] = rng.uniform(0.6, 1.0)
        # Light cross-field leakage so the posterior is not degenerate.
        other = rng.integer(0, num_topics)
        if other != home:
            matrix[tag_id, other] = rng.uniform(0.0, 0.15)
    column_sums = matrix.sum(axis=0)
    column_sums[column_sums == 0.0] = 1.0
    matrix = matrix / column_sums

    # --- vertices -------------------------------------------------------------
    num_members = members_per_field * num_topics
    researcher_names = [r.name for r in RESEARCHERS]
    num_vertices = num_members + len(RESEARCHERS)
    labels = [f"{field_names[v // members_per_field]}-member{v % members_per_field}" for v in range(num_members)]
    labels.extend(researcher_names)
    graph = TopicSocialGraph(num_vertices, num_topics, labels)
    researcher_vertex = {name: num_members + i for i, name in enumerate(researcher_names)}

    def member_vertices(field_name: str) -> List[int]:
        start = field_index[field_name] * members_per_field
        return list(range(start, start + members_per_field))

    def field_probability_vector(field_name: str, strength: float) -> np.ndarray:
        vector = np.zeros(num_topics)
        vector[field_index[field_name]] = strength
        return vector

    # --- community edges ------------------------------------------------------
    for field_name in field_names:
        members = member_vertices(field_name)
        for member in members:
            colleagues = rng.choice(members, size=min(4, len(members)), replace=False)
            for colleague in colleagues:
                if colleague == member or graph.has_edge(member, colleague):
                    continue
                graph.add_edge(
                    member, colleague, field_probability_vector(field_name, rng.uniform(0.05, 0.3))
                )
            if rng.uniform() < cross_field_probability:
                other_field = field_names[rng.integer(0, num_topics)]
                if other_field != field_name:
                    target = member_vertices(other_field)[rng.integer(0, members_per_field)]
                    if not graph.has_edge(member, target):
                        graph.add_edge(
                            member, target, field_probability_vector(other_field, rng.uniform(0.02, 0.1))
                        )

    # --- renowned researcher edges ---------------------------------------------
    for researcher in RESEARCHERS:
        vertex = researcher_vertex[researcher.name]
        for field_name in researcher.fields:
            members = member_vertices(field_name)
            followers = rng.choice(
                members, size=min(followers_per_researcher, len(members)), replace=False
            )
            for follower in followers:
                if graph.has_edge(vertex, follower):
                    continue
                graph.add_edge(
                    vertex,
                    follower,
                    field_probability_vector(field_name, rng.uniform(0.25, 0.6)),
                )
        # A couple of edges back from the community (low probability).
        for field_name in researcher.fields:
            members = member_vertices(field_name)
            for _ in range(3):
                member = members[rng.integer(0, len(members))]
                if not graph.has_edge(member, vertex):
                    graph.add_edge(
                        member, vertex, field_probability_vector(field_name, rng.uniform(0.01, 0.05))
                    )

    model = TagTopicModel(matrix, tags=tags)
    ground_truth = {
        researcher.name: {
            keyword
            for field_name in researcher.fields
            for keyword in FIELD_KEYWORDS[field_name]
        }
        for researcher in RESEARCHERS
    }
    return CaseStudy(
        graph=graph,
        model=model,
        researchers=RESEARCHERS,
        researcher_vertex=researcher_vertex,
        ground_truth_tags=ground_truth,
        field_names=field_names,
    )


def evaluate_case_study(
    case_study: CaseStudy,
    engine,
    k: int = 5,
    method: str = "indexest+",
) -> List[Tuple[str, List[str], float]]:
    """Run PITEX for every researcher and score against the ground truth.

    Returns ``(researcher, returned_tags, accuracy)`` rows, the programmatic
    analogue of Table 4.
    """
    rows: List[Tuple[str, List[str], float]] = []
    for researcher in case_study.researchers:
        vertex = case_study.vertex_of(researcher.name)
        result = engine.query(user=vertex, k=k, method=method)
        accuracy = case_study.accuracy(researcher.name, result.tags)
        rows.append((researcher.name, list(result.tags), accuracy))
    return rows
