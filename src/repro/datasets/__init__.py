"""Dataset substrate: synthetic analogues of the paper's four datasets.

The paper evaluates on lastfm, diggs, dblp and twitter with TIC/LDA-learned
probabilities.  Those datasets (and the learned parameters) are not
redistributable, so this package generates synthetic analogues whose structural
knobs match Table 2: number of vertices (scaled down so pure Python remains
interactive), edge density ``|E|/|V|``, number of topics ``|Z|``, vocabulary
size ``|Omega|`` and the tag-topic density reported in Sec. 7.3.

* :mod:`repro.datasets.profiles` -- the per-dataset parameter profiles.
* :mod:`repro.datasets.synthetic` -- the generator and the
  :class:`SyntheticDataset` bundle (graph + model + workload helper).
* :mod:`repro.datasets.workload` -- query workload generation by out-degree
  group (high / mid / low).
* :mod:`repro.datasets.casestudy` -- the dblp-style researcher case study with
  ground-truth field tags (Table 4).
"""

from repro.datasets.profiles import DatasetProfile, PROFILES, profile_names
from repro.datasets.synthetic import SyntheticDataset, generate_dataset, load_dataset
from repro.datasets.workload import QueryWorkload, build_workload
from repro.datasets.casestudy import CaseStudy, Researcher, build_case_study, evaluate_case_study

__all__ = [
    "DatasetProfile",
    "PROFILES",
    "profile_names",
    "SyntheticDataset",
    "generate_dataset",
    "load_dataset",
    "QueryWorkload",
    "build_workload",
    "CaseStudy",
    "Researcher",
    "build_case_study",
    "evaluate_case_study",
]
