"""The tag-topic model: ``p(w|z)``, ``p(z)`` and the Eqn. 1 posterior.

:class:`TagTopicModel` is the object every PITEX method queries to turn a tag
set ``W`` into the topic posterior ``p(z|W)`` and, combined with a
:class:`~repro.graph.digraph.TopicSocialGraph`, into per-edge activation
probabilities ``p(e|W)``.  It also hosts the per-tag "Jensen ratios" used by
the Lemma 8 upper bound of best-effort exploration.
"""

from __future__ import annotations

import hashlib
from itertools import combinations
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ModelError, UnknownTagError
from repro.graph.digraph import TopicSocialGraph


class TagTopicModel:
    """Tag vocabulary, tag-topic likelihoods and topic prior.

    Parameters
    ----------
    tag_topic_matrix:
        ``(|Omega|, |Z|)`` matrix of ``p(w|z)`` likelihoods.  Rows are tags,
        columns are topics.  Values must be non-negative; the model does not
        require columns to be normalized (only relative magnitudes matter for
        the posterior).
    topic_prior:
        Optional ``p(z)`` vector; defaults to the uniform prior used by the
        running example of the paper.
    tags:
        Optional list of tag strings; defaults to ``w0 .. w_{|Omega|-1}``.
    """

    def __init__(
        self,
        tag_topic_matrix: Sequence[Sequence[float]],
        topic_prior: Optional[Sequence[float]] = None,
        tags: Optional[Sequence[str]] = None,
    ) -> None:
        matrix = np.asarray(tag_topic_matrix, dtype=float)
        if matrix.ndim != 2:
            raise ModelError("tag_topic_matrix must be two-dimensional (tags x topics)")
        if np.any(matrix < 0.0):
            raise ModelError("tag_topic_matrix entries must be non-negative")
        self._matrix = matrix
        self._num_tags, self._num_topics = matrix.shape
        if topic_prior is None:
            prior = np.full(self._num_topics, 1.0 / self._num_topics)
        else:
            prior = np.asarray(topic_prior, dtype=float)
            if prior.shape != (self._num_topics,):
                raise ModelError(
                    f"topic_prior must have length {self._num_topics}, got {prior.shape}"
                )
            if np.any(prior < 0.0) or prior.sum() <= 0.0:
                raise ModelError("topic_prior must be non-negative and sum to a positive value")
            prior = prior / prior.sum()
        self._prior = prior
        if tags is None:
            self._tags = [f"w{i}" for i in range(self._num_tags)]
        else:
            if len(tags) != self._num_tags:
                raise ModelError(
                    f"expected {self._num_tags} tag names, got {len(tags)}"
                )
            if len(set(tags)) != len(tags):
                raise ModelError("tag names must be unique")
            self._tags = list(tags)
        self._tag_index: Dict[str, int] = {tag: i for i, tag in enumerate(self._tags)}
        self._posterior_cache: Dict[FrozenSet[int], np.ndarray] = {}
        self._jensen_ratios: Optional[np.ndarray] = None
        self._content_hash: Optional[str] = None

    # ----------------------------------------------------- shared-array codec
    @classmethod
    def from_shared_arrays(
        cls,
        tag_topic_matrix: Sequence[Sequence[float]],
        topic_prior: Sequence[float],
        tags: Sequence[str],
    ) -> "TagTopicModel":
        """Rebuild a model from persisted arrays, bitwise-exactly.

        The constructor re-normalizes any explicit ``topic_prior``; feeding an
        already-normalized persisted prior back through that division can
        perturb its last bits (e.g. the uniform prior over 3 topics sums to
        ``0.999...``), which would change :meth:`content_hash` and break the
        cross-process replica contract of :mod:`repro.serve.sharded`.  This
        path restores the prior verbatim instead -- the caller asserts it was
        taken from a model's :attr:`topic_prior`, i.e. already normalized.
        """
        model = cls(tag_topic_matrix, topic_prior=None, tags=list(tags))
        prior = np.asarray(topic_prior, dtype=float)
        if prior.shape != (model.num_topics,):
            raise ModelError(
                f"topic_prior must have length {model.num_topics}, got {prior.shape}"
            )
        model._prior = prior
        return model

    # ------------------------------------------------------------------ sizes
    @property
    def num_tags(self) -> int:
        """Vocabulary size ``|Omega|``."""
        return self._num_tags

    @property
    def num_topics(self) -> int:
        """Number of topics ``|Z|``."""
        return self._num_topics

    @property
    def tags(self) -> List[str]:
        """Tag vocabulary as a list of strings."""
        return list(self._tags)

    @property
    def topic_prior(self) -> np.ndarray:
        """The (normalized) topic prior ``p(z)``."""
        return self._prior

    @property
    def tag_topic_matrix(self) -> np.ndarray:
        """The ``p(w|z)`` matrix (tags x topics)."""
        return self._matrix

    # -------------------------------------------------------------- tag lookup
    def tag_id(self, tag: str) -> int:
        """Numeric id of a tag string."""
        try:
            return self._tag_index[tag]
        except KeyError as exc:
            raise UnknownTagError(f"unknown tag {tag!r}") from exc

    def tag_name(self, tag_id: int) -> str:
        """Tag string for a numeric id."""
        if not 0 <= tag_id < self._num_tags:
            raise UnknownTagError(f"tag id {tag_id} out of range")
        return self._tags[tag_id]

    def resolve_tags(self, tags: Iterable) -> Tuple[int, ...]:
        """Normalize a mixed iterable of tag strings / ids into a sorted id tuple."""
        resolved = []
        for tag in tags:
            if isinstance(tag, str):
                resolved.append(self.tag_id(tag))
            else:
                tag = int(tag)
                if not 0 <= tag < self._num_tags:
                    raise UnknownTagError(f"tag id {tag} out of range")
                resolved.append(tag)
        return tuple(sorted(set(resolved)))

    def tag_names(self, tag_ids: Iterable[int]) -> List[str]:
        """Tag strings for an iterable of ids."""
        return [self.tag_name(t) for t in tag_ids]

    # ---------------------------------------------------------------- posterior
    def topic_posterior(self, tag_set: Iterable) -> np.ndarray:
        """``p(z|W)`` for a tag set ``W`` (Eqn. 1 of the paper).

        ``p(z|W)`` is proportional to ``p(z) * prod_{w in W} p(w|z)``.  When the
        normalizer is zero (no topic supports all tags simultaneously), the
        posterior is defined as the all-zero vector, which makes every edge
        probability -- and therefore the influence beyond the seed -- zero.
        An empty tag set returns the prior.

        The cache insert uses ``setdefault`` so concurrent readers (frozen
        engines answer queries from several threads) racing on a miss all end
        up with the *same* cached array: the computation is a pure function of
        the immutable matrix/prior, so whichever thread wins stores a value
        bitwise identical to every loser's -- an idempotent, benign race under
        the GIL's atomic dict operations.
        """
        tag_ids = self.resolve_tags(tag_set)
        key = frozenset(tag_ids)
        cached = self._posterior_cache.get(key)
        if cached is not None:
            return cached
        if not tag_ids:
            posterior = self._prior.copy()
        else:
            likelihood = np.ones(self._num_topics)
            for tag in tag_ids:
                likelihood *= self._matrix[tag]
            weighted = likelihood * self._prior
            total = weighted.sum()
            posterior = weighted / total if total > 0.0 else np.zeros(self._num_topics)
        return self._posterior_cache.setdefault(key, posterior)

    def posterior_support(self, tag_set: Iterable) -> np.ndarray:
        """Boolean mask of topics with ``p(z|W) > 0``."""
        return self.topic_posterior(tag_set) > 0.0

    def edge_probabilities(self, graph: TopicSocialGraph, tag_set: Iterable) -> np.ndarray:
        """``p(e|W)`` for every edge of ``graph`` under tag set ``W``."""
        if graph.num_topics != self._num_topics:
            raise ModelError(
                f"graph has {graph.num_topics} topics but the model has {self._num_topics}"
            )
        posterior = self.topic_posterior(tag_set)
        return graph.edge_probabilities_under(posterior)

    def edge_probability(self, graph: TopicSocialGraph, source: int, target: int, tag_set: Iterable) -> float:
        """``p(e|W)`` for one edge identified by its endpoints."""
        edge_id = graph.edge_id(source, target)
        posterior = self.topic_posterior(tag_set)
        return graph.edge_probability_under(edge_id, posterior)

    # ------------------------------------------------------------ enumeration
    def candidate_tag_sets(self, k: int) -> Iterable[Tuple[int, ...]]:
        """All size-``k`` tag subsets of the vocabulary, as sorted id tuples."""
        if k <= 0:
            raise ModelError(f"k must be positive, got {k}")
        if k > self._num_tags:
            raise ModelError(f"k={k} exceeds the vocabulary size {self._num_tags}")
        return combinations(range(self._num_tags), k)

    def num_candidate_tag_sets(self, k: int) -> int:
        """``C(|Omega|, k)``."""
        from math import comb

        return comb(self._num_tags, k)

    # --------------------------------------------------- Lemma 8 upper bounds
    def jensen_ratios(self) -> np.ndarray:
        """Per-(tag, topic) ratios ``p(w|z) / prod_z' p(w|z')^{p(z')}``.

        These are the building blocks of the second (dense) term of the
        Lemma 8 upper bound: Jensen's inequality applied to the posterior
        normalizer (Appendix B.8) gives, for any completion ``W'`` of a partial
        tag set,

        ``p(z|W') <= p(z) * prod_{w in W'} ratio(w, z)``

        with the topic prior appearing exactly once as a prefactor.  Tags with
        a zero likelihood under some positive-prior topic have a zero
        geometric-mean denominator and get an infinite ratio, which the bound
        code later clamps at the trivial bound 1.
        """
        if self._jensen_ratios is not None:
            return self._jensen_ratios
        ratios = np.zeros_like(self._matrix)
        with np.errstate(divide="ignore"):
            log_matrix = np.where(self._matrix > 0.0, np.log(self._matrix), -np.inf)
        for tag in range(self._num_tags):
            # Geometric-mean denominator prod_z' p(w|z')^{p(z')}.
            logs = log_matrix[tag]
            if np.any(np.isneginf(logs[self._prior > 0.0])):
                denominator = 0.0
            else:
                denominator = float(np.exp(np.dot(self._prior, logs)))
            for topic in range(self._num_topics):
                numerator = self._matrix[tag, topic]
                if numerator <= 0.0:
                    ratios[tag, topic] = 0.0
                elif denominator <= 0.0:
                    ratios[tag, topic] = np.inf
                else:
                    ratios[tag, topic] = numerator / denominator
        self._jensen_ratios = ratios
        return ratios

    def topic_posterior_upper_bound(self, partial_tags: Iterable, k: int) -> np.ndarray:
        """Per-topic upper bound on ``p(z|W')`` over completions ``W' ⊇ W, |W'| = k``.

        For each topic in the support of the partial set the bound starts from
        the topic prior ``p(z)`` and multiplies the Jensen ratios of the
        already-selected tags with the largest ratios among the remaining tags
        (choosing exactly ``k - |W|`` of them), then clamps at 1 since a
        posterior can never exceed 1.  Topics outside the support get a bound
        of 0 -- adding tags can only shrink the support.
        """
        tag_ids = self.resolve_tags(partial_tags)
        if len(tag_ids) > k:
            raise ModelError(f"partial tag set of size {len(tag_ids)} exceeds k={k}")
        remaining = k - len(tag_ids)
        support = self.posterior_support(tag_ids) if tag_ids else self._prior > 0.0
        ratios = self.jensen_ratios()
        bounds = np.zeros(self._num_topics)
        available = [t for t in range(self._num_tags) if t not in tag_ids]
        for topic in range(self._num_topics):
            if not support[topic]:
                continue
            bound = float(self._prior[topic])
            for tag in tag_ids:
                bound *= ratios[tag, topic]
                if not np.isfinite(bound):
                    bound = np.inf
                    break
            if remaining > 0 and np.isfinite(bound):
                candidate_ratios = sorted(
                    (ratios[tag, topic] for tag in available), reverse=True
                )[:remaining]
                if len(candidate_ratios) < remaining:
                    # Cannot complete the tag set at all; no completion exists.
                    bounds[topic] = 0.0
                    continue
                for ratio in candidate_ratios:
                    bound *= ratio
                    if not np.isfinite(bound):
                        bound = np.inf
                        break
            bounds[topic] = min(1.0, bound) if np.isfinite(bound) else 1.0
        return bounds

    def upper_bound_edge_probabilities(
        self, graph: TopicSocialGraph, partial_tags: Iterable, k: int
    ) -> np.ndarray:
        """Lemma 8: ``p+(e|W) >= p(e|W')`` for every completion ``W'`` of ``W``.

        The bound is the minimum of two valid bounds:

        * the *sparse* term ``max_{z in supp(W)} p(e|z)``;
        * the *dense* term ``sum_{z in supp(W)} p(e|z) * bound_z`` where
          ``bound_z`` comes from :meth:`topic_posterior_upper_bound`.
        """
        if graph.num_topics != self._num_topics:
            raise ModelError(
                f"graph has {graph.num_topics} topics but the model has {self._num_topics}"
            )
        tag_ids = self.resolve_tags(partial_tags)
        support = self.posterior_support(tag_ids) if tag_ids else self._prior > 0.0
        matrix = graph.probability_matrix
        if matrix.shape[0] == 0:
            return np.zeros(0)
        masked = matrix[:, support]
        if masked.shape[1] == 0:
            return np.zeros(matrix.shape[0])
        sparse_term = masked.max(axis=1)
        posterior_bounds = self.topic_posterior_upper_bound(tag_ids, k)
        dense_term = matrix @ posterior_bounds
        return np.minimum(sparse_term, dense_term)

    def content_hash(self) -> str:
        """Content hash of the model (matrix, prior and vocabulary).

        Part of the persistent index-store cache key: an index answers queries
        through ``p(e|W)`` vectors computed from this model, so a different
        matrix/prior/vocabulary must never be matched against a stored index.
        The model is immutable, so the digest is computed once and cached
        (one store lookup hashes the key several times).
        """
        if self._content_hash is None:
            digest = hashlib.sha256()
            digest.update(np.ascontiguousarray(self._matrix, dtype=float).tobytes())
            digest.update(np.ascontiguousarray(self._prior, dtype=float).tobytes())
            digest.update("\x00".join(self._tags).encode())
            self._content_hash = digest.hexdigest()
        return self._content_hash

    # ----------------------------------------------------------------- metrics
    def tag_topic_density(self) -> float:
        """Fraction of non-zero ``p(w|z)`` entries (footnote 7 of the paper)."""
        return float(np.count_nonzero(self._matrix)) / float(self._matrix.size)

    def restrict_tags(self, tag_ids: Sequence[int]) -> "TagTopicModel":
        """A new model over a subset of the vocabulary (used by scalability sweeps)."""
        tag_ids = list(tag_ids)
        matrix = self._matrix[tag_ids, :]
        tags = [self._tags[t] for t in tag_ids]
        return TagTopicModel(matrix, self._prior, tags)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TagTopicModel(|Omega|={self._num_tags}, |Z|={self._num_topics})"
