"""A TIC-style parameter learner from propagation logs.

The paper does not re-derive the learning algorithm -- it relies on Barbieri et
al.'s Topic-aware Independent Cascade learning to obtain ``p(e|z)`` and
``p(w|z)`` from a log of past propagation, and on LDA for the twitter dataset.
This module provides a self-contained stand-in with the same inputs and
outputs:

1.  Topic responsibilities for each item are obtained from the item's tags via
    a seed tag-topic matrix (either known, or bootstrapped uniformly and then
    refined with an EM-like loop over item co-occurrence).
2.  ``p(w|z)`` is re-estimated from tag/topic co-occurrence counts across items.
3.  ``p(e|z)`` is estimated with the classic partial-credit frequency estimator
    of Goyal et al. (2010) extended with topic responsibilities: every adoption
    of an item by ``v`` at time ``t`` distributes credit to the in-neighbours of
    ``v`` that adopted the same item strictly earlier, weighted by the item's
    topic responsibility.

The learner is deliberately simple (no variational machinery) but exercises the
same code path the real system would: graph + log in, edge/tag topic
probabilities out, ready to be fed to the PITEX engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.exceptions import ModelError
from repro.graph.digraph import TopicSocialGraph
from repro.topics.action_log import ActionLog
from repro.topics.model import TagTopicModel
from repro.utils.rng import RandomSource, SeedLike


@dataclass
class TICLearningResult:
    """Output of :func:`learn_tic_model`.

    Attributes
    ----------
    graph:
        A new :class:`TopicSocialGraph` with the learned ``p(e|z)`` vectors
        (same structure as the input graph).
    model:
        A :class:`TagTopicModel` with the learned ``p(w|z)`` matrix and the
        empirical topic prior.
    topic_responsibilities:
        ``(num_items, num_topics)`` matrix of per-item topic responsibilities.
    iterations:
        Number of EM refinement iterations performed.
    """

    graph: TopicSocialGraph
    model: TagTopicModel
    topic_responsibilities: np.ndarray
    iterations: int


def _item_topic_responsibilities(
    log: ActionLog, tag_topic: np.ndarray, prior: np.ndarray
) -> np.ndarray:
    """Posterior topic responsibility of each item given its tags."""
    num_items = max(log.item_tags.keys(), default=-1) + 1
    num_topics = tag_topic.shape[1]
    responsibilities = np.zeros((num_items, num_topics))
    for item, tags in log.item_tags.items():
        likelihood = prior.copy()
        for tag in tags:
            likelihood = likelihood * tag_topic[tag]
        total = likelihood.sum()
        if total > 0:
            responsibilities[item] = likelihood / total
        else:
            responsibilities[item] = prior
    return responsibilities


def learn_tic_model(
    graph: TopicSocialGraph,
    log: ActionLog,
    num_topics: int,
    num_tags: Optional[int] = None,
    iterations: int = 5,
    smoothing: float = 0.01,
    max_probability: float = 0.9,
    seed: SeedLike = 13,
) -> TICLearningResult:
    """Learn ``p(e|z)`` and ``p(w|z)`` from a propagation log.

    Parameters
    ----------
    graph:
        The social graph structure (edges are trusted; only probabilities are
        re-learned).
    log:
        The propagation log.
    num_topics:
        Number of latent topics to learn.
    num_tags:
        Vocabulary size; inferred from the log when omitted.
    iterations:
        EM refinement rounds alternating topic responsibilities and the
        tag-topic matrix.
    smoothing:
        Additive smoothing applied to count matrices.
    max_probability:
        Cap applied to learned edge probabilities (credit estimators can reach
        1.0 on tiny logs, which would make downstream influence degenerate).
    seed:
        Seed for the EM bootstrap (any :data:`~repro.utils.rng.SeedLike`).
        The default ``13`` reproduces the historical bootstrap stream, so
        learned models are unchanged for callers that never passed a seed.
    """
    if num_topics <= 0:
        raise ModelError(f"num_topics must be positive, got {num_topics}")
    if log.num_items == 0:
        raise ModelError("cannot learn from an empty action log")
    if num_tags is None:
        observed = [tag for tags in log.item_tags.values() for tag in tags]
        num_tags = (max(observed) + 1) if observed else 1

    # --- bootstrap: tags spread uniformly over topics, refined by EM ---------
    rng = RandomSource(seed)
    tag_topic = rng.generator.uniform(0.5, 1.5, size=(num_tags, num_topics))
    tag_topic /= tag_topic.sum(axis=0, keepdims=True)
    prior = np.full(num_topics, 1.0 / num_topics)

    responsibilities = _item_topic_responsibilities(log, tag_topic, prior)
    performed = 0
    for _ in range(max(1, iterations)):
        performed += 1
        # M-step for p(w|z): expected tag/topic co-occurrence counts.
        counts = np.full((num_tags, num_topics), smoothing)
        for item, tags in log.item_tags.items():
            for tag in tags:
                counts[tag] += responsibilities[item]
        tag_topic = counts / counts.sum(axis=0, keepdims=True)
        # M-step for the prior: average responsibility mass.
        prior = responsibilities.mean(axis=0)
        total = prior.sum()
        prior = prior / total if total > 0 else np.full(num_topics, 1.0 / num_topics)
        # E-step.
        new_responsibilities = _item_topic_responsibilities(log, tag_topic, prior)
        if np.allclose(new_responsibilities, responsibilities, atol=1e-6):
            responsibilities = new_responsibilities
            break
        responsibilities = new_responsibilities

    # --- edge probabilities: topic-weighted partial credit -------------------
    # success[e, z] = expected number of times source activated target on topic z
    # trials[e, z]  = expected number of opportunities source had on topic z
    successes = np.zeros((graph.num_edges, num_topics))
    trials = np.zeros((graph.num_edges, num_topics))
    grouped = log.actions_by_item()
    for item, actions in grouped.items():
        responsibility = responsibilities[item]
        adoption_time: Dict[int, int] = {}
        for action in actions:
            adoption_time[action.user] = min(
                action.time, adoption_time.get(action.user, action.time)
            )
        adopters = set(adoption_time)
        for action in actions:
            user = action.user
            time = adoption_time[user]
            if time == 0:
                continue  # seeds were not influenced through an edge
            earlier_influencers = []
            for edge_id in graph.in_edges(user):
                source, _ = graph.edge_endpoints(edge_id)
                if source in adopters and adoption_time[source] < time:
                    earlier_influencers.append(edge_id)
            if not earlier_influencers:
                continue
            credit = 1.0 / len(earlier_influencers)
            for edge_id in earlier_influencers:
                successes[edge_id] += credit * responsibility
        # every edge whose source adopted the item had an opportunity to fire
        for edge_id in range(graph.num_edges):
            source, target = graph.edge_endpoints(edge_id)
            if source in adopters:
                trials[edge_id] += responsibility
    with np.errstate(divide="ignore", invalid="ignore"):
        probabilities = np.where(trials > 0, successes / np.maximum(trials, 1e-12), 0.0)
    probabilities = np.clip(probabilities, 0.0, max_probability)

    learned_graph = TopicSocialGraph(graph.num_vertices, num_topics, graph.vertex_labels)
    for edge_id in range(graph.num_edges):
        source, target = graph.edge_endpoints(edge_id)
        learned_graph.add_edge(source, target, probabilities[edge_id])

    model = TagTopicModel(tag_topic, prior)
    return TICLearningResult(
        graph=learned_graph,
        model=model,
        topic_responsibilities=responsibilities,
        iterations=performed,
    )
