"""A compact collapsed-Gibbs Latent Dirichlet Allocation.

The twitter pipeline of Sec. 7.1 treats all hashtags of a user as a document
and runs LDA to obtain per-user topic distributions, from which edge
probabilities are derived.  This module implements that ingredient from
scratch: a standard collapsed Gibbs sampler over documents of tag ids,
returning the document-topic and tag-topic matrices needed to build a
:class:`~repro.topics.model.TagTopicModel` and a topic-aware graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.exceptions import ModelError
from repro.topics.model import TagTopicModel
from repro.utils.rng import SeedLike, spawn_rng


@dataclass
class LDAResult:
    """Output of :meth:`LatentDirichletAllocation.fit`.

    Attributes
    ----------
    document_topic:
        ``(num_documents, num_topics)`` matrix of smoothed document-topic
        proportions (rows sum to 1).
    tag_topic:
        ``(num_tags, num_topics)`` matrix of smoothed topic-tag likelihoods
        (columns sum to 1), directly usable as ``p(w|z)``.
    topic_prior:
        Empirical topic proportions across the corpus, usable as ``p(z)``.
    log_likelihood_trace:
        Per-iteration corpus log-likelihood (up to a constant), used to check
        that the sampler made progress.
    """

    document_topic: np.ndarray
    tag_topic: np.ndarray
    topic_prior: np.ndarray
    log_likelihood_trace: List[float]

    def to_model(self, tags: Sequence[str] | None = None) -> TagTopicModel:
        """Wrap the learned matrices into a :class:`TagTopicModel`."""
        return TagTopicModel(self.tag_topic, self.topic_prior, tags)


class LatentDirichletAllocation:
    """Collapsed Gibbs sampling LDA over documents of tag ids.

    Parameters
    ----------
    num_topics:
        Number of latent topics.
    alpha:
        Symmetric Dirichlet prior on document-topic proportions.
    beta:
        Symmetric Dirichlet prior on topic-tag proportions.
    iterations:
        Number of Gibbs sweeps over the corpus.
    seed:
        Random seed.
    """

    def __init__(
        self,
        num_topics: int,
        alpha: float = 0.1,
        beta: float = 0.05,
        iterations: int = 50,
        seed: SeedLike = None,
    ) -> None:
        if num_topics <= 0:
            raise ModelError(f"num_topics must be positive, got {num_topics}")
        if alpha <= 0 or beta <= 0:
            raise ModelError("alpha and beta must be positive")
        if iterations <= 0:
            raise ModelError("iterations must be positive")
        self.num_topics = num_topics
        self.alpha = alpha
        self.beta = beta
        self.iterations = iterations
        self._rng = spawn_rng(seed)

    def fit(self, documents: Sequence[Sequence[int]], num_tags: int | None = None) -> LDAResult:
        """Run the Gibbs sampler on ``documents`` (lists of tag ids)."""
        documents = [list(doc) for doc in documents]
        if not documents:
            raise ModelError("LDA requires at least one document")
        observed = [tag for doc in documents for tag in doc]
        if not observed:
            raise ModelError("LDA requires at least one tag occurrence")
        if num_tags is None:
            num_tags = max(observed) + 1
        if min(observed) < 0 or max(observed) >= num_tags:
            raise ModelError("document tag ids must lie in [0, num_tags)")

        num_documents = len(documents)
        doc_topic_counts = np.zeros((num_documents, self.num_topics), dtype=np.int64)
        tag_topic_counts = np.zeros((num_tags, self.num_topics), dtype=np.int64)
        topic_counts = np.zeros(self.num_topics, dtype=np.int64)

        assignments: List[List[int]] = []
        for doc_id, doc in enumerate(documents):
            doc_assignments = []
            for tag in doc:
                topic = self._rng.integer(0, self.num_topics)
                doc_assignments.append(topic)
                doc_topic_counts[doc_id, topic] += 1
                tag_topic_counts[tag, topic] += 1
                topic_counts[topic] += 1
            assignments.append(doc_assignments)

        trace: List[float] = []
        for _ in range(self.iterations):
            for doc_id, doc in enumerate(documents):
                for position, tag in enumerate(doc):
                    topic = assignments[doc_id][position]
                    doc_topic_counts[doc_id, topic] -= 1
                    tag_topic_counts[tag, topic] -= 1
                    topic_counts[topic] -= 1

                    weights = (
                        (doc_topic_counts[doc_id] + self.alpha)
                        * (tag_topic_counts[tag] + self.beta)
                        / (topic_counts + self.beta * num_tags)
                    )
                    topic = self._rng.weighted_index(weights)

                    assignments[doc_id][position] = topic
                    doc_topic_counts[doc_id, topic] += 1
                    tag_topic_counts[tag, topic] += 1
                    topic_counts[topic] += 1
            trace.append(self._log_likelihood(doc_topic_counts, tag_topic_counts, topic_counts, documents, assignments))

        document_topic = doc_topic_counts + self.alpha
        document_topic = document_topic / document_topic.sum(axis=1, keepdims=True)
        tag_topic = tag_topic_counts + self.beta
        tag_topic = tag_topic / tag_topic.sum(axis=0, keepdims=True)
        prior = topic_counts + self.alpha
        prior = prior / prior.sum()
        return LDAResult(
            document_topic=document_topic,
            tag_topic=tag_topic,
            topic_prior=prior,
            log_likelihood_trace=trace,
        )

    def _log_likelihood(
        self,
        doc_topic_counts: np.ndarray,
        tag_topic_counts: np.ndarray,
        topic_counts: np.ndarray,
        documents: Sequence[Sequence[int]],
        assignments: Sequence[Sequence[int]],
    ) -> float:
        """Corpus log-likelihood of the current assignment (up to a constant)."""
        num_tags = tag_topic_counts.shape[0]
        phi = (tag_topic_counts + self.beta) / (topic_counts + self.beta * num_tags)
        theta = doc_topic_counts + self.alpha
        theta = theta / theta.sum(axis=1, keepdims=True)
        log_likelihood = 0.0
        for doc_id, doc in enumerate(documents):
            for tag in doc:
                probability = float(theta[doc_id] @ phi[tag])
                log_likelihood += np.log(max(probability, 1e-300))
        return log_likelihood
