"""Propagation ("action") logs and a synthetic log generator.

TIC-style models are learned from a "log of past propagation" (Sec. 3.1): a
record of which user re-shared which item at which time, together with the tags
describing the item.  Real logs (lastfm votes, diggs, tweets) are not
redistributable, so :func:`generate_action_log` produces a synthetic log by
running the very propagation model the library implements on a ground-truth
graph -- the learner in :mod:`repro.topics.tic_learner` then has to recover the
parameters from observations only, exactly like the real pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Set, Tuple

from repro.graph.digraph import TopicSocialGraph
from repro.topics.model import TagTopicModel
from repro.utils.rng import SeedLike, spawn_rng


@dataclass(frozen=True)
class Action:
    """One log entry: ``user`` adopted ``item`` at ``time`` (time steps are integers)."""

    user: int
    item: int
    time: int


@dataclass
class ActionLog:
    """A propagation log: items, their tags and the adoption actions.

    Attributes
    ----------
    item_tags:
        For each item id, the tag ids describing the propagated content.
    actions:
        All adoption actions, in arbitrary order.
    """

    item_tags: Dict[int, Tuple[int, ...]] = field(default_factory=dict)
    actions: List[Action] = field(default_factory=list)

    @property
    def num_items(self) -> int:
        """Number of distinct propagated items."""
        return len(self.item_tags)

    @property
    def num_actions(self) -> int:
        """Total number of adoption actions."""
        return len(self.actions)

    def add_item(self, item: int, tags: Sequence[int]) -> None:
        """Register an item and the tags describing it."""
        self.item_tags[item] = tuple(tags)

    def add_action(self, user: int, item: int, time: int) -> None:
        """Record that ``user`` adopted ``item`` at ``time``."""
        self.actions.append(Action(user=user, item=item, time=time))

    def actions_by_item(self) -> Dict[int, List[Action]]:
        """Group actions per item, sorted by time."""
        grouped: Dict[int, List[Action]] = {}
        for action in self.actions:
            grouped.setdefault(action.item, []).append(action)
        for item_actions in grouped.values():
            item_actions.sort(key=lambda a: (a.time, a.user))
        return grouped

    def adopters(self, item: int) -> Set[int]:
        """All users who adopted ``item``."""
        return {action.user for action in self.actions if action.item == item}

    def items_of_user(self, user: int) -> Set[int]:
        """All items adopted by ``user``."""
        return {action.item for action in self.actions if action.user == user}

    def __iter__(self) -> Iterator[Action]:
        return iter(self.actions)


def generate_action_log(
    graph: TopicSocialGraph,
    model: TagTopicModel,
    num_items: int,
    tags_per_item: int = 2,
    seeds_per_item: int = 1,
    max_steps: int = 8,
    seed: SeedLike = None,
) -> ActionLog:
    """Generate a synthetic propagation log by simulating IC cascades.

    For each item a random tag set is drawn, one or more seed users start the
    cascade and the IC process with probabilities ``p(e|W)`` unrolls for at most
    ``max_steps`` steps.  Every activation becomes a log action stamped with the
    step at which it happened.
    """
    rng = spawn_rng(seed)
    log = ActionLog()
    vertices = list(graph.vertices())
    for item in range(num_items):
        tag_count = min(tags_per_item, model.num_tags)
        tags = tuple(sorted(rng.choice(list(range(model.num_tags)), size=tag_count, replace=False)))
        log.add_item(item, tags)
        probabilities = model.edge_probabilities(graph, tags)
        active: Set[int] = set()
        frontier: List[int] = []
        for _ in range(seeds_per_item):
            seed_user = vertices[rng.integer(0, len(vertices))]
            if seed_user not in active:
                active.add(seed_user)
                frontier.append(seed_user)
                log.add_action(seed_user, item, 0)
        step = 0
        while frontier and step < max_steps:
            step += 1
            next_frontier: List[int] = []
            for user in frontier:
                for edge_id in graph.out_edges(user):
                    probability = probabilities[edge_id]
                    if probability <= 0.0:
                        continue
                    _, neighbor = graph.edge_endpoints(edge_id)
                    if neighbor in active:
                        continue
                    if rng.uniform() < probability:
                        active.add(neighbor)
                        next_frontier.append(neighbor)
                        log.add_action(neighbor, item, step)
            frontier = next_frontier
    return log
