"""Topic / tag model substrate.

The paper adopts the Topic-aware Independent Cascade (TIC) convention: topics
``Z`` are latent, tags ``Omega`` are observable keywords distributed over
topics through ``p(w|z)``, and each edge carries ``p(e|z)``.  Given a tag set
``W`` the posterior ``p(z|W)`` follows the bag-of-words Bayesian language model
(Eqn. 1), and ``p(e|W) = sum_z p(e|z) p(z|W)``.

This package provides:

* :class:`~repro.topics.model.TagTopicModel` -- ``p(w|z)``, ``p(z)``, tag
  vocabulary, ``p(z|W)`` posterior computation and the Lemma 8 upper bound
  machinery's per-tag ratios.
* :mod:`~repro.topics.action_log` -- the "log of past propagation" data model
  (who re-shared what, when, tagged with which tags) plus a synthetic log
  generator.
* :mod:`~repro.topics.tic_learner` -- a frequency/EM-style learner that
  extracts ``p(e|z)`` and ``p(w|z)`` from an action log, standing in for the
  TIC learning procedure of Barbieri et al. that the paper relies on.
* :mod:`~repro.topics.lda` -- a compact collapsed-Gibbs LDA used to derive
  per-user topic distributions from tag documents (the twitter pipeline of
  Sec. 7.1).
"""

from repro.topics.model import TagTopicModel
from repro.topics.action_log import Action, ActionLog, generate_action_log
from repro.topics.tic_learner import learn_tic_model, TICLearningResult
from repro.topics.lda import LatentDirichletAllocation, LDAResult

__all__ = [
    "TagTopicModel",
    "Action",
    "ActionLog",
    "generate_action_log",
    "learn_tic_model",
    "TICLearningResult",
    "LatentDirichletAllocation",
    "LDAResult",
]
