"""Deterministic random-number management.

Every stochastic component in the library (graph generators, samplers, index
construction) accepts either an integer seed, a :class:`numpy.random.Generator`
or ``None``.  :class:`RandomSource` normalizes these inputs so results are
reproducible when a seed is supplied and independent streams can be spawned for
sub-components without correlated sequences.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, "RandomSource"]


class RandomSource:
    """A thin, explicit wrapper around :class:`numpy.random.Generator`.

    The wrapper exists for three reasons:

    * normalizing the many seed types accepted by the public API,
    * providing the geometric / Bernoulli primitives used by the samplers with
      a single, well-tested implementation,
    * allowing deterministic child streams (``spawn``) so that, e.g., each
      RR-Graph drawn during index construction has its own reproducible stream.
    """

    __slots__ = ("_generator", "_seed")

    def __init__(self, seed: SeedLike = None) -> None:
        if isinstance(seed, RandomSource):
            self._generator = seed._generator
            self._seed = seed._seed
        elif isinstance(seed, np.random.Generator):
            self._generator = seed
            self._seed = None
        else:
            self._seed = seed
            self._generator = np.random.default_rng(seed)

    # ------------------------------------------------------------------ basic
    @property
    def generator(self) -> np.random.Generator:
        """The underlying numpy generator."""
        return self._generator

    @property
    def seed(self) -> Optional[int]:
        """The seed this source was created with (``None`` if unknown)."""
        return self._seed if isinstance(self._seed, int) else None

    def spawn(self, salt: int = 0) -> "RandomSource":
        """Create an independent child stream.

        Child streams are derived from fresh entropy of the parent generator,
        mixed with ``salt`` so repeated calls with distinct salts give distinct
        but reproducible streams.
        """
        child_seed = int(self._generator.integers(0, 2**63 - 1)) ^ (salt * 0x9E3779B97F4A7C15 & (2**63 - 1))
        return RandomSource(child_seed)

    # -------------------------------------------------------------- primitives
    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """A single uniform draw in ``[low, high)``."""
        return float(self._generator.uniform(low, high))

    def uniforms(self, size: int, low: float = 0.0, high: float = 1.0) -> np.ndarray:
        """A vector of uniform draws."""
        return self._generator.uniform(low, high, size=size)

    def bernoulli(self, probability: float) -> bool:
        """A single Bernoulli trial with success probability ``probability``."""
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return bool(self._generator.random() < probability)

    def geometric(self, probability: float) -> int:
        """Number of Bernoulli trials until (and including) the first success.

        Used by the lazy propagation sampler (Algorithm 2 / Lemma 6).  A zero
        probability returns a sentinel larger than any realistic sample count so
        the edge is never probed.
        """
        if probability >= 1.0:
            return 1
        if probability <= 0.0:
            return np.iinfo(np.int64).max
        return int(self._generator.geometric(probability))

    def geometrics(self, probability: float, size: int) -> np.ndarray:
        """A vector of geometric draws (see :meth:`geometric`)."""
        if probability >= 1.0:
            return np.ones(size, dtype=np.int64)
        if probability <= 0.0:
            return np.full(size, np.iinfo(np.int64).max, dtype=np.int64)
        return self._generator.geometric(probability, size=size).astype(np.int64)

    def geometric_array(self, probabilities: Sequence[float]) -> np.ndarray:
        """One geometric draw per (heterogeneous) success probability.

        The vectorized counterpart of calling :meth:`geometric` once per entry,
        via inverse-CDF sampling ``ceil(ln(1 - u) / ln(1 - p))``; used by the
        lazy sampler to initialize a whole vertex schedule with a single
        batched draw.  Zero probabilities map to the never-fires sentinel,
        probabilities >= 1 fire on the first visit.
        """
        probs = np.asarray(probabilities, dtype=float)
        draws = np.empty(probs.shape, dtype=np.int64)
        ones = probs >= 1.0
        zeros = probs <= 0.0
        middle = ~(ones | zeros)
        draws[ones] = 1
        draws[zeros] = np.iinfo(np.int64).max
        count = int(np.count_nonzero(middle))
        if count:
            uniforms = self._generator.random(count)
            sampled = np.ceil(np.log1p(-uniforms) / np.log1p(-probs[middle]))
            # Tiny probabilities can push the draw past int64 range (or to inf);
            # clamp into [1, 2^62] before the cast -- 2^62 visits is as good as
            # the never-fires sentinel for any realistic sample budget.
            sampled = np.where(np.isfinite(sampled), sampled, float(2**62))
            draws[middle] = np.clip(sampled, 1.0, float(2**62)).astype(np.int64)
        return draws

    def uniforms_upto(self, highs: Sequence[float]) -> np.ndarray:
        """Per-entry uniform draws in ``[0, highs[i])``."""
        highs = np.asarray(highs, dtype=float)
        return self._generator.random(highs.shape) * highs

    def integer(self, low: int, high: int) -> int:
        """A uniform integer in ``[low, high)``."""
        return int(self._generator.integers(low, high))

    def choice(self, items: Sequence, size: Optional[int] = None, replace: bool = True):
        """Uniform choice from a sequence (delegates to numpy)."""
        indices = self._generator.choice(len(items), size=size, replace=replace)
        if size is None:
            return items[int(indices)]
        return [items[int(i)] for i in np.atleast_1d(indices)]

    def weighted_index(self, weights: Sequence[float]) -> int:
        """Sample an index proportionally to non-negative ``weights``."""
        weights = np.asarray(weights, dtype=float)
        total = weights.sum()
        if total <= 0:
            raise ValueError("weighted_index requires at least one positive weight")
        return int(self._generator.choice(len(weights), p=weights / total))

    def permutation(self, n: int) -> np.ndarray:
        """A random permutation of ``range(n)``."""
        return self._generator.permutation(n)

    def shuffle(self, items: list) -> None:
        """In-place Fisher-Yates shuffle of a Python list."""
        for i in range(len(items) - 1, 0, -1):
            j = int(self._generator.integers(0, i + 1))
            items[i], items[j] = items[j], items[i]

    def dirichlet(self, alphas: Iterable[float]) -> np.ndarray:
        """A Dirichlet draw, used by the synthetic topic generators."""
        return self._generator.dirichlet(np.asarray(list(alphas), dtype=float))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomSource(seed={self._seed!r})"


def spawn_rng(seed: SeedLike, salt: int = 0) -> RandomSource:
    """Normalize ``seed`` into a :class:`RandomSource`, optionally salted.

    When ``seed`` is already a :class:`RandomSource` a *child* stream is
    spawned, so callers never accidentally share a stream with their caller.
    """
    source = RandomSource(seed)
    if isinstance(seed, RandomSource) or isinstance(seed, np.random.Generator):
        return source.spawn(salt)
    if salt:
        return source.spawn(salt)
    return source
