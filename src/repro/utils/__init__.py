"""Shared utilities used across the PITEX reproduction.

The utilities are intentionally small and dependency free (only ``numpy``):

* :mod:`repro.utils.rng` -- deterministic random number management.
* :mod:`repro.utils.heap` -- indexed and plain binary heaps used by the lazy
  propagation sampler and best-effort exploration.
* :mod:`repro.utils.timer` -- wall-clock timers and counters used by the
  benchmark harness.
* :mod:`repro.utils.stats` -- Chernoff/Hoeffding bounds, running statistics and
  confidence helpers used by sample-size derivations.
* :mod:`repro.utils.validation` -- argument checking helpers shared by public
  API entry points.
* :mod:`repro.utils.freeze` -- the frozen-engine mutation tripwire backing
  :meth:`repro.core.engine.PitexEngine.freeze`.
"""

from repro.utils.freeze import FrozenGuard, attach_freeze_guard, guard_check
from repro.utils.rng import RandomSource, spawn_rng
from repro.utils.heap import BatchedEventQueue, MinHeap, MaxHeap, LazyEdgeHeap
from repro.utils.timer import Stopwatch, Counter, TimingRecord
from repro.utils.stats import (
    LatencyAccumulator,
    RunningMean,
    chernoff_upper_tail,
    chernoff_lower_tail,
    hoeffding_sample_size,
    percentiles,
    relative_error,
)
from repro.utils.validation import (
    ensure_positive_int,
    ensure_probability,
    ensure_in_range,
    ensure_non_empty,
)

__all__ = [
    "FrozenGuard",
    "attach_freeze_guard",
    "guard_check",
    "RandomSource",
    "spawn_rng",
    "MinHeap",
    "MaxHeap",
    "LazyEdgeHeap",
    "BatchedEventQueue",
    "Stopwatch",
    "Counter",
    "TimingRecord",
    "LatencyAccumulator",
    "RunningMean",
    "chernoff_upper_tail",
    "chernoff_lower_tail",
    "hoeffding_sample_size",
    "percentiles",
    "relative_error",
    "ensure_positive_int",
    "ensure_probability",
    "ensure_in_range",
    "ensure_non_empty",
]
