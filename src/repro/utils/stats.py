"""Concentration bounds and running statistics.

The sample-size expressions of the paper (Lemma 2, Lemma 3, Eqn. 2 and Eqn. 7)
are instances of the Chernoff/Hoeffding bounds reproduced in Appendix B.2.
This module implements those bounds directly so the samplers and the index can
derive their sample budgets from first principles, and exposes the small
running-statistics helpers used by the convergence experiment (Fig. 6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List, Sequence

from repro.utils.rng import RandomSource


def chernoff_upper_tail(delta: float) -> float:
    """Upper-tail Chernoff exponent bound ``exp(-delta^2 / (2 + delta))``.

    For ``X`` the sum of ``theta`` i.i.d. random variables in ``[0, 1]`` with
    mean ``p``: ``Pr[X - theta*p >= delta*theta*p] <= exp(-delta^2/(2+delta) * theta*p)``.
    This helper returns the per-unit exponent factor used in those products.
    """
    if delta < 0:
        raise ValueError("delta must be non-negative")
    return math.exp(-(delta * delta) / (2.0 + delta))


def chernoff_lower_tail(delta: float) -> float:
    """Lower-tail Chernoff exponent bound ``exp(-delta^2 / 2)``."""
    if delta < 0:
        raise ValueError("delta must be non-negative")
    return math.exp(-(delta * delta) / 2.0)


def chernoff_failure_probability(theta: float, mean: float, epsilon: float) -> float:
    """Two-sided failure probability of an ``theta``-sample estimate.

    Probability that the empirical mean of ``theta`` i.i.d. variables in
    ``[0, 1]`` with true mean ``mean`` deviates from ``mean`` by more than a
    relative ``epsilon``, bounded by the sum of both Chernoff tails.
    """
    if theta <= 0 or mean <= 0:
        return 1.0
    exponent = theta * mean
    upper = math.exp(-(epsilon * epsilon) / (2.0 + epsilon) * exponent)
    lower = math.exp(-(epsilon * epsilon) / 2.0 * exponent)
    return min(1.0, upper + lower)


def hoeffding_sample_size(epsilon: float, delta: float) -> int:
    """Classic Hoeffding sample size for an additive ``epsilon`` error.

    ``theta >= ln(2/delta) / (2 epsilon^2)`` guarantees the empirical mean of
    bounded variables deviates from the true mean by at most ``epsilon`` with
    probability at least ``1 - delta``.  Used by tests as a reference point.
    """
    if not 0 < epsilon < 1:
        raise ValueError("epsilon must lie in (0, 1)")
    if not 0 < delta < 1:
        raise ValueError("delta must lie in (0, 1)")
    return int(math.ceil(math.log(2.0 / delta) / (2.0 * epsilon * epsilon)))


def log_binomial(n: int, k: int) -> float:
    """Natural logarithm of the binomial coefficient ``C(n, k)``.

    Computed through ``lgamma`` so the sample-size formulas stay finite even
    for the very large ``C(|Omega|, k)`` terms appearing in Eqn. 2 / Eqn. 7.
    """
    if k < 0 or k > n:
        return float("-inf")
    return math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)


def log_sum_binomials(n: int, max_k: int) -> float:
    """``log(sum_{i=1..max_k} C(n, i))`` computed stably (phi_K in Eqn. 7)."""
    if max_k <= 0:
        return float("-inf")
    max_k = min(max_k, n)
    logs = [log_binomial(n, i) for i in range(1, max_k + 1)]
    peak = max(logs)
    return peak + math.log(sum(math.exp(value - peak) for value in logs))


def percentiles(values: Iterable[float], qs: Sequence[float]) -> List[float]:
    """Linear-interpolation percentiles of ``values`` at each ``q`` in [0, 100].

    The same convention as ``numpy.percentile(..., method="linear")``, kept in
    pure Python so latency accounting does not allocate arrays per snapshot.
    Raises on an empty input -- a latency table with no observations is a bug,
    not a zero.
    """
    data = sorted(float(v) for v in values)
    if not data:
        raise ValueError("percentiles() requires at least one value")
    results: List[float] = []
    for q in qs:
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile rank must lie in [0, 100], got {q}")
        position = (len(data) - 1) * q / 100.0
        lower = math.floor(position)
        upper = math.ceil(position)
        if lower == upper:
            results.append(data[int(position)])
        else:
            fraction = position - lower
            results.append(data[lower] * (1.0 - fraction) + data[upper] * fraction)
    return results


LATENCY_PERCENTILES = (50.0, 95.0, 99.0)


def relative_error(estimate: float, truth: float) -> float:
    """``|estimate - truth| / truth`` with a guard for a zero ground truth."""
    if truth == 0:
        return abs(estimate)
    return abs(estimate - truth) / abs(truth)


@dataclass
class RunningMean:
    """Streaming mean / variance via Welford's algorithm.

    Used by the convergence experiment to track the influence estimate as a
    function of the number of samples without storing every sample.
    """

    count: int = 0
    mean: float = 0.0
    _m2: float = 0.0

    def add(self, value: float) -> None:
        """Incorporate one observation."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)

    def extend(self, values: Iterable[float]) -> None:
        """Incorporate several observations."""
        for value in values:
            self.add(value)

    def merge(self, other: "RunningMean") -> None:
        """Fold another accumulator's moments in exactly (Chan's formula)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count, self.mean, self._m2 = other.count, other.mean, other._m2
            return
        total = self.count + other.count
        delta = other.mean - self.mean
        self.mean += delta * other.count / total
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self.count = total

    @property
    def variance(self) -> float:
        """Sample variance (0.0 with fewer than two observations)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    def confidence_halfwidth(self, z: float = 1.96) -> float:
        """Normal-approximation confidence half-width around the mean."""
        if self.count == 0:
            return float("inf")
        return z * self.std / math.sqrt(self.count)


@dataclass
class LatencyAccumulator:
    """Streaming latency statistics: mean/std plus tail percentiles.

    The accumulator keeps a Welford :class:`RunningMean` for the exact
    moments, exact min/max, and a bounded reservoir (Vitter's Algorithm R,
    seeded so runs are reproducible) of at most ``max_samples`` observations
    for the percentile snapshot -- memory stays O(``max_samples``) no matter
    how long a service lives, and percentiles are exact until the reservoir
    first overflows.  One instance serves both the serving-layer
    instrumentation (:mod:`repro.serve.service`) and the benchmark reporting
    helpers (:mod:`repro.bench.reporting`).  Not thread-safe by itself;
    concurrent writers must hold their own lock (the service does).
    """

    label: str = "latency"
    max_samples: int = 65536
    _samples: List[float] = field(default_factory=list)
    _running: RunningMean = field(default_factory=RunningMean)
    _min: float = float("inf")
    _max: float = float("-inf")
    # Reservoir replacement draws are instrumentation-only randomness (they
    # shape the percentile snapshot past the cap, never a query answer), but
    # they still flow through RandomSource so the whole library has a single
    # seeded RNG idiom -- and runs stay reproducible bit-for-bit.
    _reservoir_rng: RandomSource = field(default_factory=lambda: RandomSource(0x51A75), repr=False)

    def add(self, seconds: float) -> None:
        """Record one latency observation (in seconds)."""
        value = float(seconds)
        self._running.add(value)
        self._min = min(self._min, value)
        self._max = max(self._max, value)
        if len(self._samples) < self.max_samples:
            self._samples.append(value)
        else:
            slot = self._reservoir_rng.integer(0, self._running.count)
            if slot < self.max_samples:
                self._samples[slot] = value

    def extend(self, values: Iterable[float]) -> None:
        """Record several observations."""
        for value in values:
            self.add(value)

    def merge(self, other: "LatencyAccumulator") -> None:
        """Fold another accumulator into this one.

        Count, mean, std and min/max combine exactly (Welford moments merge
        via Chan's formula); the percentile reservoir absorbs the other's
        reservoir samples, so tails stay representative but -- as always once
        a reservoir overflows -- approximate.
        """
        if other._running.count == 0:
            return
        self._running.merge(other._running)
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        for value in other._samples:
            if len(self._samples) < self.max_samples:
                self._samples.append(value)
            else:
                slot = self._reservoir_rng.integer(0, self._running.count)
                if slot < self.max_samples:
                    self._samples[slot] = value

    @property
    def count(self) -> int:
        """Number of recorded observations."""
        return self._running.count

    @property
    def mean(self) -> float:
        """Mean latency (0.0 when empty)."""
        return self._running.mean

    @property
    def total(self) -> float:
        """Sum of all recorded latencies."""
        return self._running.mean * self._running.count

    def percentile(self, q: float) -> float:
        """One percentile of the recorded latencies."""
        return percentiles(self._samples, [q])[0]

    def summary(self) -> dict:
        """Snapshot dict: count, mean, std, p50/p95/p99, min/max (seconds)."""
        if not self._samples:
            return {
                "label": self.label,
                "count": 0,
                "mean": 0.0,
                "std": 0.0,
                **{f"p{int(q)}": 0.0 for q in LATENCY_PERCENTILES},
                "min": 0.0,
                "max": 0.0,
            }
        tail = percentiles(self._samples, LATENCY_PERCENTILES)
        return {
            "label": self.label,
            "count": self.count,
            "mean": self.mean,
            "std": self._running.std,
            **{f"p{int(q)}": value for q, value in zip(LATENCY_PERCENTILES, tail)},
            "min": self._min,
            "max": self._max,
        }


@dataclass
class Series:
    """A labelled (x, y) series used by the reporting helpers."""

    label: str
    xs: List[float] = field(default_factory=list)
    ys: List[float] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        """Append one point."""
        self.xs.append(float(x))
        self.ys.append(float(y))

    def as_rows(self) -> List[tuple]:
        """Rows of ``(label, x, y)`` suitable for tabular printing."""
        return [(self.label, x, y) for x, y in zip(self.xs, self.ys)]
