"""Heap and event-queue data structures used by the samplers and the explorer.

Four structures are provided:

* :class:`MinHeap` / :class:`MaxHeap` -- thin, allocation-friendly wrappers over
  ``heapq`` with a stable tie-breaking counter so heterogeneous payloads never
  need to be comparable.
* :class:`LazyEdgeHeap` -- the per-vertex heap used by lazy propagation
  sampling (Algorithm 2 of the paper).  Each entry is ``(next_fire, neighbor)``
  where ``next_fire`` is the visit count of the owning vertex at which the edge
  to ``neighbor`` becomes live; geometric re-draws keep the schedule rolling.
* :class:`BatchedEventQueue` -- the array-backed multi-instance generalization
  of :class:`LazyEdgeHeap`: one flat numpy event store holds the lazy schedules
  of every (world, vertex) pair of an estimation, and one :meth:`advance` call
  consumes a whole frontier round of *all* sample instances at once, with
  rescheduling done as batched geometric redraws instead of one Python-level
  heap operation per event.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

import numpy as np


class MinHeap:
    """A binary min-heap keyed by a float priority with stable ordering."""

    __slots__ = ("_entries", "_tiebreak")

    def __init__(self) -> None:
        self._entries: List[Tuple[float, int, Any]] = []
        self._tiebreak = itertools.count()

    def push(self, priority: float, item: Any) -> None:
        """Insert ``item`` with the given ``priority``."""
        heapq.heappush(self._entries, (priority, next(self._tiebreak), item))

    def pop(self) -> Tuple[float, Any]:
        """Remove and return the ``(priority, item)`` pair with lowest priority."""
        priority, _, item = heapq.heappop(self._entries)
        return priority, item

    def peek(self) -> Tuple[float, Any]:
        """Return, without removing, the lowest-priority entry."""
        priority, _, item = self._entries[0]
        return priority, item

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __iter__(self) -> Iterator[Tuple[float, Any]]:
        """Yield ``(priority, item)`` pairs in ascending priority order.

        Iteration sorts a snapshot of the entries (ties resolved by insertion
        order), so it never exposes the raw ``heapq`` array layout and never
        mutates the heap.  Items are not compared: the internal tie-break
        counter is unique per entry.
        """
        return ((priority, item) for priority, _, item in sorted(self._entries))


class MaxHeap:
    """A binary max-heap implemented by negating priorities of a min-heap.

    Used by best-effort exploration (Algorithm 5) to pop the partial tag set
    with the largest influence upper bound first.
    """

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap = MinHeap()

    def push(self, priority: float, item: Any) -> None:
        """Insert ``item`` with the given ``priority``."""
        self._heap.push(-priority, item)

    def pop(self) -> Tuple[float, Any]:
        """Remove and return the ``(priority, item)`` pair with highest priority."""
        priority, item = self._heap.pop()
        return -priority, item

    def peek(self) -> Tuple[float, Any]:
        """Return, without removing, the highest-priority entry."""
        priority, item = self._heap.peek()
        return -priority, item

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __iter__(self) -> Iterator[Tuple[float, Any]]:
        """Yield ``(priority, item)`` pairs in descending priority order."""
        return ((-priority, item) for priority, item in self._heap)


class LazyEdgeHeap:
    """Per-vertex activation schedule for lazy propagation sampling.

    For a vertex ``v`` with out-neighbours ``n_1 .. n_d`` and edge activation
    probabilities ``p_1 .. p_d``, the heap stores, for each neighbour, the visit
    index of ``v`` at which the edge will next be live.  The visit indices are
    produced by summing i.i.d. geometric random variables, which Lemma 6 of the
    paper proves statistically identical to running an independent Bernoulli
    trial per visit.

    Parameters
    ----------
    neighbors:
        Target vertex identifiers for every out-edge of the owner.
    probabilities:
        Matching activation probabilities ``p(e|W)``.
    geometric:
        Callable ``p -> int`` drawing a geometric variate; injected so the heap
        stays deterministic under a seeded :class:`~repro.utils.rng.RandomSource`.
    initial_fires:
        Optional pre-drawn first fire visit per neighbor (same length as
        ``neighbors``).  The CSR fast path draws the whole schedule with one
        batched geometric call (:meth:`~repro.utils.rng.RandomSource.geometric_array`)
        instead of one Python call per edge; entries for zero-probability edges
        are ignored either way.
    """

    __slots__ = ("_heap", "_geometric", "visit_count")

    def __init__(
        self,
        neighbors: Sequence[int],
        probabilities: Sequence[float],
        geometric: Callable[[float], int],
        initial_fires: Optional[Sequence[int]] = None,
    ) -> None:
        self._geometric = geometric
        self.visit_count = 0
        entries: List[Tuple[int, int, int, float]] = []
        for order, (neighbor, probability) in enumerate(zip(neighbors, probabilities)):
            if probability <= 0.0:
                continue
            fire_at = initial_fires[order] if initial_fires is not None else geometric(probability)
            entries.append((int(fire_at), order, int(neighbor), float(probability)))
        heapq.heapify(entries)
        self._heap = entries

    def visit(self) -> List[int]:
        """Register one visit of the owning vertex and return fired neighbours.

        The owning vertex has now been visited ``visit_count + 1`` times; every
        scheduled edge whose ``next_fire`` equals the new visit count fires, is
        returned, and is re-scheduled ``geometric(p)`` visits into the future.
        """
        self.visit_count += 1
        fired: List[int] = []
        while self._heap and self._heap[0][0] <= self.visit_count:
            fire_at, order, neighbor, probability = heapq.heappop(self._heap)
            fired.append(neighbor)
            next_fire = fire_at + self._geometric(probability)
            heapq.heappush(self._heap, (next_fire, order, neighbor, probability))
        return fired

    def pending(self) -> int:
        """Number of edges still scheduled (edges with zero probability are dropped)."""
        return len(self._heap)

    def next_fire(self) -> Optional[int]:
        """The earliest scheduled visit index, or ``None`` if nothing is scheduled."""
        if not self._heap:
            return None
        return self._heap[0][0]


def concat_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenated ``[starts[i], starts[i] + counts[i])`` ranges, vectorized.

    The building block for gathering every event slot owned by a batch of
    (world, vertex) schedules without a Python-level loop; the event-store
    analogue of :func:`repro.graph.csr.slice_positions`.
    """
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    run_starts = np.zeros(len(counts), dtype=np.int64)
    np.cumsum(counts[:-1], out=run_starts[1:])
    return (
        np.arange(total, dtype=np.int64)
        - np.repeat(run_starts, counts)
        + np.repeat(starts, counts)
    )


class BatchedEventQueue:
    """Array-backed lazy-propagation event schedule for many instances at once.

    :class:`LazyEdgeHeap` answers "which edges of vertex ``v`` fire on its next
    visit?" one Python heap operation at a time.  This queue answers the same
    question for a whole frontier *round* -- every ``(world, instance, vertex)``
    activation of one BFS level across all sample instances of an estimation --
    with a handful of numpy gathers and batched geometric redraws.

    Terminology
    -----------
    world:
        One edge-probability assignment ``p(e|W)``.  A plain estimation uses a
        single world; the best-effort explorer batches the upper-bound
        estimations of all candidate children of one expansion into one queue,
        one world per candidate tag set.
    instance:
        One sample instance (one possible-world draw of the cascade).  Caller
        supplied, only used to attribute fires within a round; ids must be
        unique per world within a round.
    visit:
        Per ``(world, vertex)`` counter of activations, shared across the
        instances of that world exactly like the ``theta_W`` instances of one
        estimation share a :class:`LazyEdgeHeap` -- this is where the Lemma 7
        savings come from.

    Event-store layout
    ------------------
    One flat append-only store with three parallel arrays::

        _ev_fire   : (num_events,) int64   absolute visit index of the next fire
        _ev_target : (num_events,) int64   edge target vertex
        _ev_prob   : (num_events,) float   activation probability p(e|W)

    plus ``_sched_start`` / ``_sched_count`` / ``_visits`` arrays indexed by
    ``world * num_vertices + vertex`` mapping each lazily-initialized schedule
    to its contiguous run of events.  Zero-probability edges are never stored
    (Lemma 5: only ``R_W(u)``'s positive-probability out-edges are scheduled).

    Statistical model
    -----------------
    Each stored event performs the renewal process of Lemma 6: successive fire
    visits are separated by i.i.d. ``Geometric(p)`` gaps, so every visit of the
    owning vertex is an independent ``Bernoulli(p)`` trial for the edge no
    matter how visits are interleaved across instances.  Within a round the
    ``m`` instances activating a vertex are ordered by ascending instance id
    and assigned consecutive visit indices; instances are exchangeable, so the
    assignment does not perturb the marginals.
    """

    __slots__ = (
        "num_worlds",
        "num_vertices",
        "_indptr",
        "_targets",
        "_edge_ids",
        "_world_probs",
        "_rng",
        "_sched_start",
        "_sched_count",
        "_visits",
        "_ev_fire",
        "_ev_target",
        "_ev_prob",
        "_ev_log1mp",
        "_ev_len",
        "scheduled_events",
        "fired_events",
    )

    def __init__(
        self,
        out_indptr: np.ndarray,
        out_targets: np.ndarray,
        out_edge_ids: np.ndarray,
        world_probabilities: np.ndarray,
        rng,
    ) -> None:
        self._indptr = np.asarray(out_indptr, dtype=np.int64)
        self._targets = np.asarray(out_targets, dtype=np.int64)
        self._edge_ids = np.asarray(out_edge_ids, dtype=np.int64)
        probs = np.atleast_2d(np.asarray(world_probabilities, dtype=float))
        self._world_probs = probs
        self.num_worlds = int(probs.shape[0])
        self.num_vertices = int(len(self._indptr) - 1)
        self._rng = rng
        size = self.num_worlds * self.num_vertices
        self._sched_start = np.full(size, -1, dtype=np.int64)
        self._sched_count = np.zeros(size, dtype=np.int64)
        self._visits = np.zeros(size, dtype=np.int64)
        self._ev_fire = np.empty(64, dtype=np.int64)
        self._ev_target = np.empty(64, dtype=np.int64)
        self._ev_prob = np.empty(64, dtype=float)
        # Precomputed ln(1 - p) per event (-inf for p >= 1): the redraw of a
        # fired event is one inverse-CDF division instead of a full
        # geometric_array call with its extremes bookkeeping.
        self._ev_log1mp = np.empty(64, dtype=float)
        self._ev_len = 0
        #: Per-world number of events ever scheduled (the Lemma 5 term of the
        #: Fig. 13 edge-visit accounting: one per positive-probability out-edge
        #: of every activated vertex).
        self.scheduled_events = np.zeros(self.num_worlds, dtype=np.int64)
        #: Per-world number of fires (the Lemma 7 term: only edges whose
        #: geometric schedule lands inside a visit window are ever touched).
        self.fired_events = np.zeros(self.num_worlds, dtype=np.int64)

    # -------------------------------------------------------------- internals
    def _append_events(self, fires: np.ndarray, targets: np.ndarray, probs: np.ndarray) -> int:
        """Append events to the flat store (geometric growth); return the base slot."""
        base = self._ev_len
        needed = base + len(fires)
        if needed > len(self._ev_fire):
            capacity = max(needed, 2 * len(self._ev_fire))
            for name in ("_ev_fire", "_ev_target", "_ev_prob", "_ev_log1mp"):
                old = getattr(self, name)
                grown = np.empty(capacity, dtype=old.dtype)
                grown[:base] = old[:base]
                setattr(self, name, grown)
        self._ev_fire[base:needed] = fires
        self._ev_target[base:needed] = targets
        self._ev_prob[base:needed] = probs
        certain = probs >= 1.0
        self._ev_log1mp[base:needed] = np.where(
            certain, -np.inf, np.log1p(-np.where(certain, 0.0, probs))
        )
        self._ev_len = needed
        return base

    def _redraw(self, slots: np.ndarray) -> np.ndarray:
        """One geometric redraw per slot via the precomputed ``ln(1 - p)``.

        ``ceil(ln(1 - u) / ln(1 - p))`` with the same clamping as
        :meth:`repro.utils.rng.RandomSource.geometric_array`; ``p >= 1`` slots
        (``ln(1 - p) = -inf``) divide to ``-0`` and clamp up to 1.
        """
        uniforms = self._rng.generator.random(len(slots))
        draws = np.ceil(np.log1p(-uniforms) / self._ev_log1mp[slots])
        draws = np.where(np.isfinite(draws), draws, float(2**62))
        return np.clip(draws, 1.0, float(2**62)).astype(np.int64)

    def _ensure_scheduled(self, keys: np.ndarray) -> None:
        """Create schedules for the ``world * V + vertex`` keys not yet seen.

        The whole batch is initialized with two CSR gathers and a single
        vectorized geometric draw over every positive-probability out-edge of
        every new vertex, the multi-world counterpart of building one
        :class:`LazyEdgeHeap` from ``initial_fires``.
        """
        new = keys[self._sched_start[keys] < 0]
        if not new.size:
            return
        vertices = new % self.num_vertices
        worlds = new // self.num_vertices
        starts = self._indptr[vertices]
        counts = self._indptr[vertices + 1] - starts
        positions = concat_ranges(starts, counts)
        owner = np.repeat(np.arange(len(new), dtype=np.int64), counts)
        probs = self._world_probs[worlds[owner], self._edge_ids[positions]]
        positive = probs > 0.0
        positive_counts = np.bincount(owner[positive], minlength=len(new)).astype(np.int64)
        probs = probs[positive]
        fires = self._rng.geometric_array(probs)
        # Offset by the current visit count so late-initialized schedules stay
        # correct (first activation always has visits == 0, but stay general).
        fires = fires + np.repeat(self._visits[new], positive_counts)
        base = self._append_events(fires, self._targets[positions][positive], probs)
        run_starts = np.zeros(len(new), dtype=np.int64)
        np.cumsum(positive_counts[:-1], out=run_starts[1:])
        self._sched_start[new] = base + run_starts
        self._sched_count[new] = positive_counts
        np.add.at(self.scheduled_events, worlds, positive_counts)

    # ----------------------------------------------------------------- public
    def advance(
        self,
        world_ids: np.ndarray,
        instance_ids: np.ndarray,
        vertex_ids: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Consume one frontier round of activations; return the fired edges.

        Parameters
        ----------
        world_ids, instance_ids, vertex_ids:
            Parallel arrays, one entry per activation event ``(world, instance,
            vertex)`` of the round.  A vertex activated by ``m`` instances of
            one world advances that schedule by ``m`` visits.
        Returns
        -------
        ``(instances, targets)``: parallel arrays with one entry per fired
        edge, carrying the instance id the fire is attributed to and the edge's
        target vertex.  An edge can fire for several instances of one round
        (its renewal chain may land inside the visit window repeatedly),
        exactly like repeated ``LazyEdgeHeap.visit`` calls.

        The round is resolved without any per-fire loop by the memorylessness
        of the geometric schedule: an edge whose pending fire ``t0`` falls
        inside the round's visit window ``(visits, visits + m]`` fires at
        ``t0``, every later visit of the window is an independent
        ``Bernoulli(p)`` trial (one batched uniform draw), and the fire after
        the window is ``window_end + Geometric(p)`` (one batched geometric
        redraw) -- the same process :meth:`LazyEdgeHeap.visit` realizes one
        heap operation at a time.  Edges whose pending fire lies beyond the
        window are not touched at all (the Lemma 7 saving).
        """
        world_ids = np.asarray(world_ids, dtype=np.int64)
        instance_ids = np.asarray(instance_ids, dtype=np.int64)
        vertex_ids = np.asarray(vertex_ids, dtype=np.int64)
        empty = np.empty(0, dtype=np.int64)
        if not world_ids.size:
            return empty, empty
        if self.num_worlds == 1:
            keys = vertex_ids
        else:
            keys = world_ids * self.num_vertices + vertex_ids
        order = np.lexsort((instance_ids, keys))
        sorted_instances = instance_ids[order]
        sorted_keys = keys[order]
        # Group boundaries of the (now sorted) keys; np.unique would sort again.
        group_first = np.flatnonzero(
            np.concatenate(([True], sorted_keys[1:] != sorted_keys[:-1]))
        )
        group_keys = sorted_keys[group_first]
        group_mult = np.diff(np.append(group_first, len(sorted_keys)))
        self._ensure_scheduled(group_keys)
        visits_before = self._visits[group_keys]
        window_end = visits_before + group_mult
        sched_counts = self._sched_count[group_keys]
        slots = concat_ranges(self._sched_start[group_keys], sched_counts)
        groups = np.repeat(np.arange(len(group_keys), dtype=np.int64), sched_counts)
        live = self._ev_fire[slots] <= window_end[groups]
        slots, groups = slots[live], groups[live]
        self._visits[group_keys] = window_end
        if not slots.size:
            return empty, empty
        first_fire = self._ev_fire[slots]
        probabilities = self._ev_prob[slots]
        # Bernoulli trials for the window visits after each slot's first fire.
        remaining = window_end[groups] - first_fire
        trial_visits = concat_ranges(first_fire + 1, remaining)
        trial_owner = np.repeat(np.arange(len(slots), dtype=np.int64), remaining)
        hits = self._rng.uniforms(len(trial_owner)) < probabilities[trial_owner]
        fire_times = np.concatenate([first_fire, trial_visits[hits]])
        fire_owner = np.concatenate(
            [np.arange(len(slots), dtype=np.int64), trial_owner[hits]]
        )
        # fire_times lie in (visits, visits + mult]; attribute each fire to the
        # (fire_time - visits - 1)-th instance of its group, instances ordered
        # by ascending id (deterministic, and exchangeable by symmetry).
        fire_groups = groups[fire_owner]
        offsets = fire_times - visits_before[fire_groups] - 1
        fired_instance = sorted_instances[group_first[fire_groups] + offsets]
        fired_target = self._ev_target[slots][fire_owner]
        self.fired_events += np.bincount(
            group_keys[fire_groups] // self.num_vertices, minlength=self.num_worlds
        )
        # One batched redraw past the window (memoryless restart).
        self._ev_fire[slots] = window_end[groups] + self._redraw(slots)
        return fired_instance, fired_target

    # ------------------------------------------------------------ inspection
    def visit_count(self, world: int, vertex: int) -> int:
        """Accumulated visits of ``vertex`` in ``world`` (across instances)."""
        return int(self._visits[world * self.num_vertices + vertex])

    def pending(self, world: int, vertex: int) -> int:
        """Scheduled events of ``(world, vertex)``; 0 if never activated."""
        count = self._sched_count[world * self.num_vertices + vertex]
        return int(count) if self._sched_start[world * self.num_vertices + vertex] >= 0 else 0

    def next_fires(self, world: int, vertex: int) -> np.ndarray:
        """Current next-fire visit index of each scheduled event (test hook)."""
        key = world * self.num_vertices + vertex
        start = int(self._sched_start[key])
        if start < 0:
            return np.empty(0, dtype=np.int64)
        return self._ev_fire[start : start + int(self._sched_count[key])].copy()

    def edge_visits(self, world: Optional[int] = None) -> int:
        """Edge-visit count of ``world`` (or all worlds): scheduled + fired.

        Matches the :class:`LazyEdgeHeap` accounting of the lazy estimator --
        ``pending()`` once at schedule construction plus one per fire -- so the
        Fig. 13 instrumentation stays comparable across kernels.
        """
        if world is None:
            return int(self.scheduled_events.sum() + self.fired_events.sum())
        return int(self.scheduled_events[world] + self.fired_events[world])
