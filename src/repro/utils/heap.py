"""Heap data structures used by the samplers and the best-effort explorer.

Three heaps are provided:

* :class:`MinHeap` / :class:`MaxHeap` -- thin, allocation-friendly wrappers over
  ``heapq`` with a stable tie-breaking counter so heterogeneous payloads never
  need to be comparable.
* :class:`LazyEdgeHeap` -- the per-vertex heap used by lazy propagation
  sampling (Algorithm 2 of the paper).  Each entry is ``(next_fire, neighbor)``
  where ``next_fire`` is the visit count of the owning vertex at which the edge
  to ``neighbor`` becomes live; geometric re-draws keep the schedule rolling.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple


class MinHeap:
    """A binary min-heap keyed by a float priority with stable ordering."""

    __slots__ = ("_entries", "_tiebreak")

    def __init__(self) -> None:
        self._entries: List[Tuple[float, int, Any]] = []
        self._tiebreak = itertools.count()

    def push(self, priority: float, item: Any) -> None:
        """Insert ``item`` with the given ``priority``."""
        heapq.heappush(self._entries, (priority, next(self._tiebreak), item))

    def pop(self) -> Tuple[float, Any]:
        """Remove and return the ``(priority, item)`` pair with lowest priority."""
        priority, _, item = heapq.heappop(self._entries)
        return priority, item

    def peek(self) -> Tuple[float, Any]:
        """Return, without removing, the lowest-priority entry."""
        priority, _, item = self._entries[0]
        return priority, item

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __iter__(self) -> Iterator[Tuple[float, Any]]:
        return ((priority, item) for priority, _, item in sorted(self._entries))


class MaxHeap:
    """A binary max-heap implemented by negating priorities of a min-heap.

    Used by best-effort exploration (Algorithm 5) to pop the partial tag set
    with the largest influence upper bound first.
    """

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap = MinHeap()

    def push(self, priority: float, item: Any) -> None:
        """Insert ``item`` with the given ``priority``."""
        self._heap.push(-priority, item)

    def pop(self) -> Tuple[float, Any]:
        """Remove and return the ``(priority, item)`` pair with highest priority."""
        priority, item = self._heap.pop()
        return -priority, item

    def peek(self) -> Tuple[float, Any]:
        """Return, without removing, the highest-priority entry."""
        priority, item = self._heap.peek()
        return -priority, item

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class LazyEdgeHeap:
    """Per-vertex activation schedule for lazy propagation sampling.

    For a vertex ``v`` with out-neighbours ``n_1 .. n_d`` and edge activation
    probabilities ``p_1 .. p_d``, the heap stores, for each neighbour, the visit
    index of ``v`` at which the edge will next be live.  The visit indices are
    produced by summing i.i.d. geometric random variables, which Lemma 6 of the
    paper proves statistically identical to running an independent Bernoulli
    trial per visit.

    Parameters
    ----------
    neighbors:
        Target vertex identifiers for every out-edge of the owner.
    probabilities:
        Matching activation probabilities ``p(e|W)``.
    geometric:
        Callable ``p -> int`` drawing a geometric variate; injected so the heap
        stays deterministic under a seeded :class:`~repro.utils.rng.RandomSource`.
    initial_fires:
        Optional pre-drawn first fire visit per neighbor (same length as
        ``neighbors``).  The CSR fast path draws the whole schedule with one
        batched geometric call (:meth:`~repro.utils.rng.RandomSource.geometric_array`)
        instead of one Python call per edge; entries for zero-probability edges
        are ignored either way.
    """

    __slots__ = ("_heap", "_geometric", "visit_count")

    def __init__(
        self,
        neighbors: Sequence[int],
        probabilities: Sequence[float],
        geometric: Callable[[float], int],
        initial_fires: Optional[Sequence[int]] = None,
    ) -> None:
        self._geometric = geometric
        self.visit_count = 0
        entries: List[Tuple[int, int, int, float]] = []
        for order, (neighbor, probability) in enumerate(zip(neighbors, probabilities)):
            if probability <= 0.0:
                continue
            fire_at = initial_fires[order] if initial_fires is not None else geometric(probability)
            entries.append((int(fire_at), order, int(neighbor), float(probability)))
        heapq.heapify(entries)
        self._heap = entries

    def visit(self) -> List[int]:
        """Register one visit of the owning vertex and return fired neighbours.

        The owning vertex has now been visited ``visit_count + 1`` times; every
        scheduled edge whose ``next_fire`` equals the new visit count fires, is
        returned, and is re-scheduled ``geometric(p)`` visits into the future.
        """
        self.visit_count += 1
        fired: List[int] = []
        while self._heap and self._heap[0][0] <= self.visit_count:
            fire_at, order, neighbor, probability = heapq.heappop(self._heap)
            fired.append(neighbor)
            next_fire = fire_at + self._geometric(probability)
            heapq.heappush(self._heap, (next_fire, order, neighbor, probability))
        return fired

    def pending(self) -> int:
        """Number of edges still scheduled (edges with zero probability are dropped)."""
        return len(self._heap)

    def next_fire(self) -> Optional[int]:
        """The earliest scheduled visit index, or ``None`` if nothing is scheduled."""
        if not self._heap:
            return None
        return self._heap[0][0]
