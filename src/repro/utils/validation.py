"""Argument-validation helpers shared by public API entry points.

The helpers raise the library's own exception types (see
:mod:`repro.exceptions`) so callers can catch configuration problems separately
from runtime failures.
"""

from __future__ import annotations

from typing import Iterable, Sized

from repro.exceptions import InvalidParameterError


def ensure_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is an integer strictly greater than zero."""
    if not isinstance(value, (int,)) or isinstance(value, bool):
        raise InvalidParameterError(f"{name} must be an integer, got {type(value).__name__}")
    if value <= 0:
        raise InvalidParameterError(f"{name} must be positive, got {value}")
    return value


def ensure_non_negative_int(value: int, name: str) -> int:
    """Validate that ``value`` is an integer greater than or equal to zero."""
    if not isinstance(value, (int,)) or isinstance(value, bool):
        raise InvalidParameterError(f"{name} must be an integer, got {type(value).__name__}")
    if value < 0:
        raise InvalidParameterError(f"{name} must be non-negative, got {value}")
    return value


def ensure_probability(value: float, name: str) -> float:
    """Validate that ``value`` lies in the closed interval ``[0, 1]``."""
    try:
        value = float(value)
    except (TypeError, ValueError) as exc:
        raise InvalidParameterError(f"{name} must be a number, got {value!r}") from exc
    if not 0.0 <= value <= 1.0:
        raise InvalidParameterError(f"{name} must lie in [0, 1], got {value}")
    return value


def ensure_in_range(value: float, name: str, low: float, high: float, inclusive: bool = True) -> float:
    """Validate that ``value`` lies in ``[low, high]`` (or ``(low, high)``)."""
    try:
        value = float(value)
    except (TypeError, ValueError) as exc:
        raise InvalidParameterError(f"{name} must be a number, got {value!r}") from exc
    if inclusive:
        if not low <= value <= high:
            raise InvalidParameterError(f"{name} must lie in [{low}, {high}], got {value}")
    else:
        if not low < value < high:
            raise InvalidParameterError(f"{name} must lie in ({low}, {high}), got {value}")
    return value


def ensure_non_empty(items: Sized, name: str) -> Sized:
    """Validate that a sized collection contains at least one element."""
    if len(items) == 0:
        raise InvalidParameterError(f"{name} must not be empty")
    return items


def ensure_unique(items: Iterable, name: str) -> None:
    """Validate that an iterable contains no duplicated elements."""
    seen = set()
    for item in items:
        if item in seen:
            raise InvalidParameterError(f"{name} contains duplicate element {item!r}")
        seen.add(item)
