"""The frozen-engine tripwire: detect shared-state mutation after warm-up.

:meth:`repro.core.engine.PitexEngine.freeze` flips an engine into a read-only
serving mode: every configured method is warmed (indexes built, kernels
resolved), and from then on the query path derives all randomness statelessly
per query, so concurrent queries need no lock.  That contract is easy to break
silently -- a lazily built cache, a shared RNG draw, a counter increment -- and
the GIL usually hides the race instead of failing it.

:class:`FrozenGuard` makes the contract executable.  One guard instance is
shared by the engine and every structure it froze (graph, offline indexes,
warmed estimators); the known mutators of those structures call
:func:`guard_check` on entry, and once the guard is engaged any such call
records a violation and raises :class:`~repro.exceptions.EngineFrozenError`.
The concurrency harness (``tests/test_serve_concurrency.py``) asserts that a
full stress run trips the guard zero times.

The guard is a debug tripwire, not a memory barrier: it catches the library's
known mutation points (which is what a regression needs), not arbitrary writes
through numpy views.
"""

from __future__ import annotations

import threading
import weakref
from typing import List

from repro.exceptions import EngineFrozenError
from repro.obs.telemetry import counter

_GUARDS_ATTR = "_freeze_guards"

# Serializes attach/detach/prune of any object's guard list: two engines
# freezing concurrently over one shared graph must both land their guards
# (an unsynchronized read-modify-write could silently drop one, leaving an
# engine that believes it is guarded while its graph accepts mutations).
_registry_lock = threading.Lock()


class FrozenGuard:
    """Raises on registered mutations while engaged; records every violation.

    ``violations`` keeps the description of each attempted mutation even
    though the attempt also raises -- a stress test that swallows worker
    exceptions can still assert the list is empty afterwards.
    """

    __slots__ = ("owner", "engaged", "violations", "__weakref__")

    def __init__(self, owner: str = "engine") -> None:
        self.owner = owner
        self.engaged = False
        self.violations: List[str] = []

    def engage(self) -> None:
        """Start rejecting mutations (idempotent)."""
        self.engaged = True

    def disengage(self) -> None:
        """Stop rejecting mutations (past violations are kept)."""
        self.engaged = False

    def check(self, action: str) -> None:
        """Record and reject ``action`` if the guard is engaged."""
        if not self.engaged:
            return
        message = f"{self.owner} is frozen (read-only): attempted to {action}"
        self.violations.append(message)
        counter("guard.trips")
        raise EngineFrozenError(
            f"{message}; call thaw() first, or warm the structure in freeze()"
        )


def attach_freeze_guard(obj: object, guard: FrozenGuard) -> None:
    """Register ``guard`` on ``obj`` so its mutators start honouring it.

    Attaching is idempotent per guard instance.  An object may carry several
    guards (e.g. one graph shared by two frozen engines); a mutation is
    rejected while *any* of them is engaged.

    Guards are held through **weak references**: a guard lives exactly as
    long as the engine that owns it, so an engine dropped without ``thaw()``
    (e.g. evicted from an ``EngineCache``) stops guarding its shared graph as
    soon as it is collected, instead of blocking mutation forever.  Dead
    references are pruned on every attach/check, bounding the list.
    """
    with _registry_lock:
        refs = getattr(obj, _GUARDS_ATTR, None)
        if refs is None:
            refs = []
            setattr(obj, _GUARDS_ATTR, refs)
        live = [ref for ref in refs if ref() is not None]
        if guard not in (ref() for ref in live):
            live.append(weakref.ref(guard))
        refs[:] = live


def detach_freeze_guard(obj: object, guard: FrozenGuard) -> None:
    """Remove ``guard`` from ``obj`` (no-op when it was never attached).

    ``PitexEngine.thaw`` detaches its guard from every structure it froze, so
    a thawed engine leaves no trace on shared objects.
    """
    if getattr(obj, _GUARDS_ATTR, None) is None:
        return
    with _registry_lock:
        refs = getattr(obj, _GUARDS_ATTR, None)
        if refs:
            refs[:] = [ref for ref in refs if ref() is not None and ref() is not guard]


def guard_check(obj: object, action: str) -> None:
    """Reject ``action`` when any guard attached to ``obj`` is engaged.

    The fast path -- no guard ever attached -- is a single ``getattr`` with a
    default, so instrumenting a mutator costs nothing for unfrozen objects.
    Iteration runs over a snapshot so a concurrent attach/detach cannot skip
    or repeat guards mid-walk.
    """
    refs = getattr(obj, _GUARDS_ATTR, None)
    if not refs:
        return
    dead = False
    for ref in tuple(refs):
        guard = ref()
        if guard is None:
            dead = True
            continue
        guard.check(action)
    if dead:
        with _registry_lock:
            refs[:] = [ref for ref in refs if ref() is not None]
