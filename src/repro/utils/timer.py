"""Timing and counting helpers used by the benchmark harness.

The paper reports wall-clock time per query (Figs. 7, 9, 11, 12, 14), index
construction time (Table 3) and the number of edge probes performed by online
samplers (Fig. 13).  :class:`Stopwatch` and :class:`Counter` provide the two
measurement primitives; :class:`TimingRecord` aggregates repeated measurements
into the mean / percentile summaries printed by the harness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class Stopwatch:
    """A restartable wall-clock stopwatch.

    Usage::

        watch = Stopwatch()
        with watch:
            run_query()
        print(watch.elapsed)
    """

    __slots__ = ("_start", "elapsed")

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self.elapsed = 0.0

    def start(self) -> "Stopwatch":
        """Start (or restart) the stopwatch."""
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop the stopwatch and accumulate the elapsed time."""
        if self._start is None:
            raise RuntimeError("Stopwatch.stop() called before start()")
        self.elapsed += time.perf_counter() - self._start
        self._start = None
        return self.elapsed

    def reset(self) -> None:
        """Reset the accumulated time."""
        self._start = None
        self.elapsed = 0.0

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


class Counter:
    """A named bag of integer counters (edge probes, cache hits, prunes...)."""

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def increment(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (created lazily)."""
        self._counts[name] = self._counts.get(name, 0) + amount

    def get(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self._counts.get(name, 0)

    def reset(self, name: Optional[str] = None) -> None:
        """Reset one counter, or all counters when ``name`` is ``None``."""
        if name is None:
            self._counts.clear()
        else:
            self._counts.pop(name, None)

    def as_dict(self) -> Dict[str, int]:
        """A copy of all counters."""
        return dict(self._counts)

    def __getitem__(self, name: str) -> int:
        return self.get(name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self._counts!r})"


@dataclass
class TimingRecord:
    """Aggregates repeated measurements of one (method, setting) cell.

    The benchmark harness runs each configuration over many queries and reports
    the mean, which matches the paper's methodology ("average the results of
    the queries", Sec. 7.1).
    """

    label: str
    samples: List[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        """Record one measurement."""
        self.samples.append(float(value))

    @property
    def count(self) -> int:
        """Number of recorded measurements."""
        return len(self.samples)

    @property
    def total(self) -> float:
        """Sum of recorded measurements."""
        return float(sum(self.samples))

    @property
    def mean(self) -> float:
        """Mean of recorded measurements (0.0 when empty)."""
        return self.total / len(self.samples) if self.samples else 0.0

    @property
    def minimum(self) -> float:
        """Smallest recorded measurement (0.0 when empty)."""
        return min(self.samples) if self.samples else 0.0

    @property
    def maximum(self) -> float:
        """Largest recorded measurement (0.0 when empty)."""
        return max(self.samples) if self.samples else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (linear interpolation) of the measurements."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = (len(ordered) - 1) * (q / 100.0)
        low = int(rank)
        high = min(low + 1, len(ordered) - 1)
        fraction = rank - low
        return ordered[low] * (1 - fraction) + ordered[high] * fraction

    def merge(self, other: "TimingRecord") -> "TimingRecord":
        """Return a new record containing the samples of both records."""
        merged = TimingRecord(label=self.label)
        merged.samples = list(self.samples) + list(other.samples)
        return merged
