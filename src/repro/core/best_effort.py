"""Best-effort exploration (Sec. 5.2 and Appendix C, Algorithm 5).

Instead of evaluating all ``C(|Omega|, k)`` tag sets, the explorer grows
partial tag sets one tag at a time inside a max-heap ordered by an *upper
bound* on the influence any size-``k`` completion of the partial set can reach.
The upper bound combines:

* Lemma 8's per-edge bound ``p+(e|W) >= p(e|W')`` for every completion
  ``W' ⊇ W`` (implemented in
  :meth:`repro.topics.model.TagTopicModel.upper_bound_edge_probabilities`), and
* an influence bound on the graph weighted with ``p+(e|W)`` -- either the
  deterministic reachability count (every vertex reachable through positive
  ``p+`` edges, a hard upper bound) or a sampled spread estimate (cheaper to
  beat, tighter, but probabilistic like everything else in the framework).

A partial set is pruned when its upper bound cannot beat the best complete tag
set found so far, which removes entire sub-trees of the enumeration.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.core.query import PitexQuery, PitexResult, TagSetEvaluation
from repro.exceptions import InvalidParameterError
from repro.graph.algorithms import reachable_with_probabilities
from repro.sampling.base import InfluenceEstimator
from repro.topics.model import TagTopicModel
from repro.utils.heap import MaxHeap
from repro.utils.timer import Stopwatch

BOUND_METHODS = ("reach", "sample")


class BestEffortExplorer:
    """Branch-and-bound exploration over partial tag sets (Algorithm 5).

    Parameters
    ----------
    model, estimator:
        As for :class:`~repro.core.enumeration.EnumerationExplorer`.
    bound_method:
        ``"reach"`` uses the number of vertices reachable through edges with
        ``p+(e|W) > 0`` as the spread upper bound (deterministic, loose);
        ``"sample"`` estimates the spread on the ``p+``-weighted graph with a
        reduced sample count and inflates it by ``1 + eps`` (tighter, matches
        the paper's sampling-based ``EstimateUpperBound``).
    bound_sample_fraction:
        Fraction of the normal sample budget used for the sampled upper bound.
    keep_evaluations:
        Keep the per-tag-set evaluations on the result.
    """

    name = "best-effort"

    def __init__(
        self,
        model: TagTopicModel,
        estimator: InfluenceEstimator,
        bound_method: str = "sample",
        bound_sample_fraction: float = 0.25,
        keep_evaluations: bool = False,
    ) -> None:
        if bound_method not in BOUND_METHODS:
            raise InvalidParameterError(
                f"bound_method must be one of {BOUND_METHODS}, got {bound_method!r}"
            )
        self.model = model
        self.estimator = estimator
        self.bound_method = bound_method
        self.bound_sample_fraction = bound_sample_fraction
        self.keep_evaluations = keep_evaluations

    # ------------------------------------------------------------------ bound
    def _bound_samples(self) -> int:
        """Reduced sample count used by the sampled upper bound."""
        return max(
            8,
            int(
                self.estimator.budget.online_samples(self.estimator.graph.num_vertices)
                * self.bound_sample_fraction
            ),
        )

    def _upper_bound(
        self, query: PitexQuery, partial_tags: Tuple[int, ...]
    ) -> Tuple[float, int, int]:
        """Upper bound on the spread of any size-``k`` completion of ``partial_tags``.

        Returns ``(bound, edges_visited, samples_drawn)``.
        """
        return self._upper_bounds_many(query, [partial_tags])[0]

    def _upper_bounds_many(
        self, query: PitexQuery, partials: List[Tuple[int, ...]]
    ) -> List[Tuple[float, int, int]]:
        """Upper bounds for a batch of partial tag sets (one expansion's children).

        The ``p+`` probability rows of every partial set with a live completion
        are evaluated through the estimator's
        :meth:`~repro.sampling.base.InfluenceEstimator.estimate_many_with_probabilities`,
        so a batched-kernel estimator answers the whole candidate frontier from
        one shared event store; other kernels estimate row by row in the same
        order, preserving their sequential sampling paths.
        """
        graph = self.estimator.graph
        bounds: List[Optional[Tuple[float, int, int]]] = [None] * len(partials)
        sampled_rows: List[np.ndarray] = []
        sampled_slots: List[int] = []
        for slot, partial_tags in enumerate(partials):
            bound_probabilities = self.model.upper_bound_edge_probabilities(
                graph, partial_tags, query.k
            )
            if not np.any(bound_probabilities > 0.0):
                # No completion of this partial set can activate anyone beyond the seed.
                bounds[slot] = (1.0, 0, 0)
            elif self.bound_method == "reach":
                reachable = reachable_with_probabilities(graph, query.user, bound_probabilities)
                bounds[slot] = (float(len(reachable)), 0, 0)
            else:
                sampled_rows.append(bound_probabilities)
                sampled_slots.append(slot)
        if sampled_rows:
            estimates = self.estimator.estimate_many_with_probabilities(
                query.user, np.asarray(sampled_rows), num_samples=self._bound_samples()
            )
            for slot, estimate in zip(sampled_slots, estimates):
                inflated = estimate.value * (1.0 + query.epsilon)
                bounds[slot] = (float(inflated), estimate.edges_visited, estimate.num_samples)
        return bounds

    # ---------------------------------------------------------------- explore
    def explore(
        self,
        query: PitexQuery,
        candidate_tags: Optional[Iterable[int]] = None,
    ) -> PitexResult:
        """Answer ``query`` with best-effort exploration.

        ``candidate_tags`` optionally restricts the vocabulary (used by the
        scalability sweeps); by default every tag may be selected.
        """
        if query.k > self.model.num_tags:
            raise InvalidParameterError(
                f"k={query.k} exceeds the tag vocabulary size {self.model.num_tags}"
            )
        watch = Stopwatch().start()
        tags = (
            sorted(self.model.resolve_tags(candidate_tags))
            if candidate_tags is not None
            else list(range(self.model.num_tags))
        )
        if query.k > len(tags):
            raise InvalidParameterError(
                f"k={query.k} exceeds the number of candidate tags {len(tags)}"
            )

        heap = MaxHeap()
        root_bound, root_edges, root_samples = self._upper_bound(query, ())
        heap.push(root_bound, ())
        best_tags: Tuple[int, ...] = ()
        best_spread = -1.0
        evaluated = 0
        pruned = 0
        edges_visited = root_edges
        samples_drawn = root_samples
        evaluations: List[TagSetEvaluation] = []

        # A batched-kernel estimator evaluates runs of complete tag sets popped
        # from the heap together (one shared event store per drain).  Draining
        # delays incumbent updates within one run, which can only evaluate
        # *more* sets than the sequential order (never skip a better one), so
        # the returned tag set is unaffected; sequential kernels keep the exact
        # pop-one-evaluate-one reference behavior via a drain limit of 1.
        drain_limit = 32 if getattr(self.estimator, "kernel", None) == "batched" else 1
        while heap:
            bound, partial = heap.pop()
            if len(partial) == query.k:
                drained: List[Tuple[float, Tuple[int, ...]]] = [(bound, partial)]
                while len(drained) < drain_limit and heap and len(heap.peek()[1]) == query.k:
                    drained.append(heap.pop())
                to_evaluate: List[Tuple[int, ...]] = []
                for set_bound, tag_set in drained:
                    if set_bound <= best_spread and best_spread > 0.0:
                        # The bound is an upper bound on this set's own spread,
                        # so it cannot beat the incumbent; skip the estimation.
                        pruned += 1
                    else:
                        to_evaluate.append(tag_set)
                if not to_evaluate:
                    continue
                estimates = self.estimator.estimate_many(query.user, to_evaluate)
                for tag_set, estimate in zip(to_evaluate, estimates):
                    evaluated += 1
                    edges_visited += estimate.edges_visited
                    samples_drawn += estimate.num_samples
                    evaluation = TagSetEvaluation(
                        tag_ids=tuple(tag_set),
                        spread=estimate.value,
                        num_samples=estimate.num_samples,
                        edges_visited=estimate.edges_visited,
                    )
                    if self.keep_evaluations:
                        evaluations.append(evaluation)
                    if estimate.value > best_spread:
                        best_spread = estimate.value
                        best_tags = tuple(tag_set)
                continue
            if bound <= best_spread:
                pruned += self._completions_below(partial, tags, query.k)
                continue
            # Expand: only append tags larger than the current maximum so every
            # subset is generated exactly once (canonical ascending order).
            minimum_next = partial[-1] + 1 if partial else tags[0]
            children: List[Tuple[int, ...]] = []
            for tag in tags:
                if tag < minimum_next:
                    continue
                child = partial + (tag,)
                remaining_pool = sum(1 for t in tags if t > tag)
                if remaining_pool < query.k - len(child):
                    continue  # not enough tags left to complete the set
                children.append(child)
            # One batched bound evaluation for the whole expansion: a batched
            # estimator shares one event store across every child's p+ world.
            for child, (child_bound, child_edges, child_samples) in zip(
                children, self._upper_bounds_many(query, children)
            ):
                edges_visited += child_edges
                samples_drawn += child_samples
                if child_bound > best_spread or best_spread <= 0.0:
                    heap.push(child_bound, child)
                else:
                    pruned += self._completions_below(child, tags, query.k)
        watch.stop()
        return PitexResult(
            query=query,
            tag_ids=best_tags,
            tags=tuple(self.model.tag_names(best_tags)),
            spread=max(best_spread, 0.0),
            method=f"{self.name}:{self.estimator.name}",
            evaluated_tag_sets=evaluated,
            pruned_tag_sets=pruned,
            edges_visited=edges_visited,
            samples_drawn=samples_drawn,
            elapsed_seconds=watch.elapsed,
            evaluations=evaluations,
        )

    @staticmethod
    def _completions_below(partial: Tuple[int, ...], tags: List[int], k: int) -> int:
        """Number of complete tag sets represented by a pruned partial set."""
        from math import comb

        remaining_pool = sum(1 for t in tags if t > (partial[-1] if partial else -1))
        need = k - len(partial)
        if need <= 0:
            return 1
        if remaining_pool < need:
            return 0
        return comb(remaining_pool, need)
