"""``PitexEngine``: the public facade of the library.

The engine owns a graph, a tag-topic model and the accuracy parameters, builds
estimators / indexes on demand and answers PITEX queries with any of the
methods compared in the paper's experiments:

================  =============================================================
method            description
================  =============================================================
``mc``            enumeration + Monte-Carlo sampling (Sec. 4)
``rr``            enumeration + Reverse-Reachable sampling (Sec. 4)
``lazy``          enumeration + lazy propagation sampling (Sec. 5.1)
``lazy-batched``  lazy propagation on the multi-instance event-queue kernel
                  (always ``kernel="batched"``, regardless of engine kernel)
``tim``           enumeration + the tree-model baseline (Sec. 7.1)
``indexest``      RR-Graph index matching, Algorithm 3 (Sec. 6.1)
``indexest+``     RR-Graph index with edge-cut pruning (Sec. 6.2)
``delaymat``      delayed materialization, Algorithm 4 (Sec. 6.3)
================  =============================================================

All methods run under either exhaustive enumeration or best-effort exploration
(the paper's experiments run every method on top of best-effort; see Sec. 7.3).

Engine lifecycle
----------------
An engine starts *warm-up mutable*: indexes build lazily, estimators are
created and cached on first use, and every estimator draws from a shared
per-engine RNG stream -- which is why the serving layer historically
serialized all queries against one engine.  :meth:`PitexEngine.freeze` ends
that phase: it warms every configured method (offline indexes, estimator
cache, graph/model caches) and flips the engine read-only.  From then on
``query`` touches no shared mutable state -- each query runs on a fresh,
query-local estimator whose RNG root is derived *statelessly* from
``(engine seed, query fingerprint)``, so answers are bitwise independent of
arrival order and thread interleaving -- and a shared
:class:`~repro.utils.freeze.FrozenGuard` raises on any attempt to mutate the
graph, the indexes or the warmed estimators.  ``thaw`` returns the engine to
the mutable phase.
"""

from __future__ import annotations

import hashlib
import zlib
from typing import Dict, Iterable, Optional, Tuple

from repro.core.best_effort import BestEffortExplorer
from repro.core.enumeration import EnumerationExplorer
from repro.core.query import PitexQuery, PitexResult
from repro.core.tim import TreeModelEstimator
from repro.exceptions import EngineFrozenError, InvalidParameterError
from repro.graph.digraph import TopicSocialGraph
from repro.index.delayed import DelayedIndexEstimator, DelayedMaterializationIndex
from repro.index.pruning import PrunedIndexEstimator
from repro.index.rr_index import IndexEstimator, RRGraphIndex
from repro.index.tables import FrozenUserTables, build_delayed_tables, build_pruning_tables
from repro.obs.telemetry import counter
from repro.sampling.base import InfluenceEstimate, InfluenceEstimator, SampleBudget
from repro.sampling.lazy import LazyPropagationEstimator
from repro.sampling.monte_carlo import MonteCarloEstimator
from repro.sampling.reverse_reachable import ReverseReachableEstimator
from repro.topics.model import TagTopicModel
from repro.utils.freeze import FrozenGuard, attach_freeze_guard, detach_freeze_guard
from repro.utils.rng import RandomSource, SeedLike, spawn_rng

METHODS = ("mc", "rr", "lazy", "lazy-batched", "tim", "indexest", "indexest+", "delaymat")
EXPLORATIONS = ("enumeration", "best-effort")
KERNELS = ("batched", "csr", "dict")


def resolved_kernel(method: str, kernel: str) -> str:
    """The sampling kernel ``method`` actually runs on under engine ``kernel``.

    The single source of truth for the method-to-kernel mapping, shared by
    :meth:`PitexEngine.estimator` and the CLI's ``--json`` reporting:
    ``lazy-batched`` always uses the batched event queue, while MC/RR only
    know per-instance kernels and fall back to their (already
    frontier-batched) CSR walkers under an engine-wide ``"batched"`` kernel.
    """
    if method == "lazy-batched":
        return "batched"
    if method in ("mc", "rr") and kernel == "batched":
        return "csr"
    return kernel


class PitexEngine:
    """End-to-end PITEX query answering.

    Parameters
    ----------
    graph:
        The topic-aware social graph.
    model:
        The tag-topic model.
    epsilon, delta:
        Accuracy parameters (defaults match the paper: 0.7 and 1000).
    max_samples:
        Practical cap on per-tag-set online samples and on offline RR-Graphs.
    index_samples:
        Number of RR-Graphs materialized by the offline indexes; defaults to
        the capped Eqn. 7 value.
    default_k:
        Default number of tags per query.
    seed:
        Seed controlling every random choice of the engine.
    kernel:
        ``"csr"`` (default) runs the sampling estimators on the vectorized
        CSR kernels; ``"batched"`` additionally runs lazy propagation on the
        multi-instance event queue (MC/RR fall back to their CSR kernels,
        which are already frontier-batched); ``"dict"`` selects the per-edge
        reference walkers, kept for equivalence testing and for the
        kernel-vs-kernel benchmarks.  The ``lazy-batched`` *method* always
        uses the batched kernel so it can be compared against ``lazy`` on the
        same engine.
    rr_index, delayed_index:
        Optional *prebuilt* offline indexes (typically loaded from a
        :class:`repro.serve.store.IndexStore`).  A supplied index must have
        been built for this exact ``graph`` instance and still be fresh; the
        engine then skips the corresponding offline build entirely, which is
        the serving layer's warm-start path.
    """

    def __init__(
        self,
        graph: TopicSocialGraph,
        model: TagTopicModel,
        epsilon: float = 0.7,
        delta: float = 1000.0,
        max_samples: Optional[int] = 2000,
        index_samples: Optional[int] = None,
        default_k: int = 3,
        seed: SeedLike = None,
        kernel: str = "csr",
        rr_index: Optional[RRGraphIndex] = None,
        delayed_index: Optional[DelayedMaterializationIndex] = None,
    ) -> None:
        if graph.num_topics != model.num_topics:
            raise InvalidParameterError(
                f"graph has {graph.num_topics} topics but the model has {model.num_topics}"
            )
        if kernel not in KERNELS:
            raise InvalidParameterError(f"unknown kernel {kernel!r}; choose from {KERNELS}")
        self.kernel = kernel
        self.graph = graph
        self.model = model
        self.budget = SampleBudget(
            epsilon=epsilon,
            delta=delta,
            k=default_k,
            num_tags=model.num_tags,
            max_samples=max_samples,
        )
        self._seed = spawn_rng(seed)
        # One root draw, taken eagerly: every engine-owned stochastic
        # component (estimators, offline indexes) derives its stream from this
        # root and a stable label, so seeds do not depend on the *order* in
        # which components are first used (and never on PYTHONHASHSEED).
        self._stream_root = int(self._seed.generator.integers(0, 2**63 - 1))
        if index_samples is None:
            index_samples = self.budget.offline_samples(graph.num_vertices)
        self.index_samples = int(index_samples)
        self._rr_index: Optional[RRGraphIndex] = None
        self._delayed_index: Optional[DelayedMaterializationIndex] = None
        self._estimators: Dict[Tuple[str, float, float, int], InfluenceEstimator] = {}
        self._frozen = False
        self._frozen_methods: Tuple[str, ...] = ()
        self._frozen_ks: Tuple[int, ...] = ()
        self._user_tables: Optional[FrozenUserTables] = None
        self._guard = FrozenGuard(owner=f"PitexEngine@{id(self):x}")
        self._guarded_objects: list = []
        if rr_index is not None:
            self.attach_rr_index(rr_index)
        if delayed_index is not None:
            self.attach_delayed_index(delayed_index)

    def _stream(self, label: str) -> RandomSource:
        """A reproducible child stream for ``label`` (order-independent)."""
        digest = zlib.crc32(label.encode("utf-8"))
        return RandomSource((self._stream_root ^ (digest * 0x9E3779B97F4A7C15)) & (2**63 - 1))

    # ----------------------------------------------------------------- indexes
    @property
    def rr_index(self) -> RRGraphIndex:
        """The materialized RR-Graph index, built on first access."""
        if self._rr_index is None or not self._rr_index.is_built:
            self._guard.check("build the RR-Graph index after freeze()")
            self._rr_index = RRGraphIndex(
                self.graph, self.index_samples, seed=self._stream("rr-index")
            ).build()
        return self._rr_index

    @property
    def delayed_index(self) -> DelayedMaterializationIndex:
        """The delayed-materialization index, built on first access."""
        if self._delayed_index is None or not self._delayed_index.is_built:
            self._guard.check("build the delayed-materialization index after freeze()")
            self._delayed_index = DelayedMaterializationIndex(
                self.graph, self.index_samples, seed=self._stream("delayed-index")
            ).build()
        return self._delayed_index

    def build_indexes(self) -> None:
        """Eagerly build both offline indexes (otherwise built lazily)."""
        _ = self.rr_index
        _ = self.delayed_index

    def attach_rr_index(self, index: RRGraphIndex) -> None:
        """Adopt a prebuilt RR-Graph index (the load-from-store warm path).

        Any estimators built against the previous index are dropped so later
        queries cannot silently keep answering from the replaced snapshot.
        """
        self._guard.check("attach an RR-Graph index after freeze()")
        self._check_prebuilt(index, "rr_index")
        self._rr_index = index
        self._drop_index_estimators()

    def attach_delayed_index(self, index: DelayedMaterializationIndex) -> None:
        """Adopt a prebuilt delayed-materialization index."""
        self._guard.check("attach a delayed-materialization index after freeze()")
        self._check_prebuilt(index, "delayed_index")
        self._delayed_index = index
        self._drop_index_estimators()

    def _check_prebuilt(self, index, name: str) -> None:
        if index.graph is not self.graph:
            raise InvalidParameterError(
                f"prebuilt {name} was built for a different graph instance"
            )
        if not index.is_built:
            raise InvalidParameterError(
                f"prebuilt {name} is not built (or is stale for graph version "
                f"{self.graph.version}); load it against the current graph state"
            )
        if index.num_samples != self.index_samples:
            raise InvalidParameterError(
                f"prebuilt {name} holds {index.num_samples} samples but the engine "
                f"was configured with index_samples={self.index_samples}; mixing "
                "accuracies would silently change estimates (pass index_samples="
                f"{index.num_samples} to adopt the index's theta)"
            )

    def _drop_index_estimators(self) -> None:
        for key in [k for k in self._estimators if k[0] in ("indexest", "indexest+", "delaymat")]:
            del self._estimators[key]

    # -------------------------------------------------------------- estimators
    def estimator(
        self,
        method: str,
        epsilon: Optional[float] = None,
        delta: Optional[float] = None,
        k: Optional[int] = None,
    ) -> InfluenceEstimator:
        """Create (or fetch) the estimator behind ``method`` with the given accuracy."""
        method = method.lower()
        if method not in METHODS:
            raise InvalidParameterError(f"unknown method {method!r}; choose from {METHODS}")
        budget = self.budget.with_overrides(
            epsilon=epsilon if epsilon is not None else self.budget.epsilon,
            delta=delta if delta is not None else self.budget.delta,
            k=k if k is not None else self.budget.k,
        )
        key = (method, budget.epsilon, budget.delta, budget.k)
        cached = self._estimators.get(key)
        if cached is not None:
            return cached
        self._guard.check(
            f"cache a new estimator for {key!r} after freeze(); warm the method/k "
            "via freeze(methods=..., ks=...), or serve accuracy overrides through "
            "query()/estimate_influence() (the frozen path handles them statelessly)"
        )
        # A process-stable, creation-order-independent stream per estimator
        # key.  The previous hash()-salted spawn was randomized per process
        # (PYTHONHASHSEED) *and* shifted with the order estimators were first
        # requested, silently making engine results non-reproducible.
        estimator = self._build_estimator(method, budget, self._stream(repr(key)))
        self._estimators[key] = estimator
        return estimator

    def _build_estimator(
        self, method: str, budget: SampleBudget, seed: RandomSource
    ) -> InfluenceEstimator:
        """Construct one estimator instance for ``method`` (no caching).

        Shared by the warm-up path (which caches the instance) and the frozen
        query path (which builds a fresh, query-local instance per query so
        the engine's shared state stays untouched).  Construction is cheap --
        estimators hold references to the graph/model/indexes, never copies.
        """
        kernel = resolved_kernel(method, self.kernel)
        if method == "mc":
            return MonteCarloEstimator(self.graph, self.model, budget, seed, kernel=kernel)
        if method == "rr":
            return ReverseReachableEstimator(self.graph, self.model, budget, seed, kernel=kernel)
        if method in ("lazy", "lazy-batched"):
            return LazyPropagationEstimator(self.graph, self.model, budget, seed, kernel=kernel)
        if method == "tim":
            return TreeModelEstimator(self.graph, self.model, budget)
        if method == "indexest":
            return IndexEstimator(self.graph, self.model, self.rr_index, budget)
        tables = self._user_tables
        if method == "indexest+":
            return PrunedIndexEstimator(
                self.graph,
                self.model,
                self.rr_index,
                budget,
                shared_structures=tables.pruning if tables is not None else None,
            )
        # delaymat
        return DelayedIndexEstimator(
            self.graph,
            self.model,
            self.delayed_index,
            budget,
            seed=seed,
            shared_graphs=tables.delayed_graphs if tables is not None else None,
            shared_filters=tables.delayed_filters if tables is not None else None,
        )

    # ---------------------------------------------------------------- lifecycle
    @property
    def is_frozen(self) -> bool:
        """Whether :meth:`freeze` flipped this engine into read-only serving."""
        return self._frozen

    @property
    def freeze_guard(self) -> FrozenGuard:
        """The engine's mutation tripwire (``violations`` lists every trip)."""
        return self._guard

    @property
    def frozen_methods(self) -> Tuple[str, ...]:
        """The methods warmed by :meth:`freeze` (empty while unfrozen)."""
        return self._frozen_methods

    @property
    def frozen_user_tables(self) -> Optional[FrozenUserTables]:
        """The freeze-time per-user tables (``None`` while unfrozen or disabled)."""
        return self._user_tables

    def freeze(
        self,
        methods: Optional[Iterable[str]] = None,
        ks: Optional[Iterable[int]] = None,
        precompute_tables: bool = True,
    ) -> "PitexEngine":
        """Warm every configured method, then flip the engine read-only.

        Warming builds the offline indexes the listed ``methods`` need,
        resolves their kernels into the estimator cache (one entry per
        ``(method, default epsilon/delta, k)`` for each ``k`` in ``ks``), and
        materializes the lazily cached graph/model structures (CSR view,
        probability matrix, fingerprint, Jensen ratios) so no first-access
        build can happen on the serving path.

        With ``precompute_tables`` (the default) freezing also builds the
        read-only per-user tables of :mod:`repro.index.tables` for the warmed
        index methods, so even the first (cold, uncached) query for a user
        skips the per-query re-derivation of its cut structures
        (``indexest+``, bitwise-neutral) and recovered graphs (``delaymat``,
        drawn once from per-user label-derived streams shared by every
        same-seed replica).

        After ``freeze()``:

        * :meth:`query` and :meth:`estimate_influence` run on *query-local*
          estimators seeded by the stateless ``(seed, query fingerprint)``
          derivation of :meth:`query_seed` -- no shared RNG stream, no shared
          caches, no counters; concurrent queries from any number of threads
          return bitwise the same answers as a serial replay;
        * the :class:`~repro.utils.freeze.FrozenGuard` raises
          :class:`~repro.exceptions.EngineFrozenError` on any mutation of the
          graph, the indexes or the warmed estimators (including estimating
          *through* a warmed shared estimator, which would consume its RNG);
        * :meth:`estimator` keeps answering for warmed keys (introspection)
          and raises for combinations not covered by ``freeze``.

        ``methods`` defaults to every method; ``ks`` defaults to the engine's
        ``default_k``.  Re-freezing with a configuration already covered by
        the first freeze is a no-op (returns ``self``); asking an already
        frozen engine to warm *additional* methods or ``k`` values raises --
        warming mutates shared state, so the caller must ``thaw()`` first.

        The contract extends across *processes*: the stream root behind
        :meth:`query_seed` is drawn eagerly at construction, so a replica
        built in another process from the same integer seed and the same
        graph/model/index bytes answers every frozen query bitwise
        identically (what :mod:`repro.serve.sharded` relies on; see
        ``docs/architecture.md``).
        """
        if methods is None:
            method_list = list(METHODS)
        else:
            method_list = [method.lower() for method in methods]
            for method in method_list:
                if method not in METHODS:
                    raise InvalidParameterError(
                        f"unknown method {method!r}; choose from {METHODS}"
                    )
        k_list = sorted({int(k) for k in ks}) if ks is not None else [self.budget.k]
        for k in k_list:
            if k <= 0:
                raise InvalidParameterError(f"k must be positive, got {k}")
        if self._frozen:
            uncovered = [m for m in method_list if m not in self._frozen_methods]
            uncovered += [k for k in k_list if k not in self._frozen_ks]
            if uncovered:
                raise EngineFrozenError(
                    f"engine is already frozen without {uncovered!r} warmed; "
                    "thaw() before freezing a different configuration"
                )
            return self
        # Warm the shared lazily-built read-only structures.
        _ = self.graph.csr
        _ = self.graph.probability_matrix
        self.graph.max_edge_probabilities()
        self.graph.fingerprint()
        self.model.jensen_ratios()
        for method in method_list:
            for k in k_list:
                self.estimator(method, k=k)
        if precompute_tables:
            pruning_tables = None
            delayed_graphs = delayed_filters = None
            max_probabilities = self.graph.max_edge_probabilities()
            if "indexest+" in method_list:
                pruning_tables = build_pruning_tables(self.rr_index, max_probabilities)
            if "delaymat" in method_list:
                delayed_graphs, delayed_filters = build_delayed_tables(
                    self.delayed_index,
                    max_probabilities,
                    lambda user: self._stream(f"delaymat-table|{user}"),
                )
            if pruning_tables is not None or delayed_graphs is not None:
                self._user_tables = FrozenUserTables(
                    pruning=pruning_tables,
                    delayed_graphs=delayed_graphs,
                    delayed_filters=delayed_filters,
                )
        self._frozen_methods = tuple(dict.fromkeys(method_list))
        self._frozen_ks = tuple(k_list)
        self._frozen = True
        self._guarded_objects = [self.graph]
        for index in (self._rr_index, self._delayed_index):
            if index is not None:
                self._guarded_objects.append(index)
        self._guarded_objects.extend(self._estimators.values())
        for obj in self._guarded_objects:
            attach_freeze_guard(obj, self._guard)
        self._guard.engage()
        counter("engine.freeze")
        return self

    def thaw(self) -> "PitexEngine":
        """Return a frozen engine to the mutable warm-up phase.

        Disengages the guard and detaches it from every structure it froze
        (shared objects -- e.g. a graph served by several engines -- keep any
        *other* engine's guard), restoring the shared cached-estimator query
        path.  Past guard violations are preserved for inspection.
        """
        self._guard.disengage()
        for obj in self._guarded_objects:
            detach_freeze_guard(obj, self._guard)
        self._guarded_objects = []
        self._frozen = False
        self._frozen_methods = ()
        self._frozen_ks = ()
        self._user_tables = None
        counter("engine.thaw")
        return self

    def query_fingerprint(
        self,
        user: int,
        method: str,
        k: int,
        epsilon: float,
        delta: float,
        exploration: str = "best-effort",
        extra: str = "",
    ) -> str:
        """A stable hex digest identifying one query's full configuration.

        Pure function of its arguments -- no engine state is read beyond the
        immutable configuration -- so equal queries map to equal fingerprints
        in any process, thread or arrival order.
        """
        payload = "|".join(
            (
                str(int(user)),
                method.lower(),
                exploration,
                str(int(k)),
                repr(float(epsilon)),
                repr(float(delta)),
                extra,
            )
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def query_seed(
        self,
        user: int,
        method: str,
        k: int,
        epsilon: float,
        delta: float,
        exploration: str = "best-effort",
        extra: str = "",
    ) -> int:
        """The stateless per-query RNG root: ``(engine seed, fingerprint)``.

        Mixes the engine's eagerly drawn stream root with the query
        fingerprint.  Unlike the shared mutable streams of the warm-up phase,
        two engines with the same seed derive the same root for the same query
        no matter how many other queries ran before or concurrently -- the
        property the concurrency equivalence harness pins down.
        """
        fingerprint = self.query_fingerprint(
            user, method, k, epsilon, delta, exploration=exploration, extra=extra
        )
        return (self._stream_root ^ int(fingerprint[:15], 16)) & (2**63 - 1)

    def _check_frozen_method(self, method: str) -> str:
        """Reject methods :meth:`freeze` did not warm.

        Only the *method* set is fixed at freeze time -- it determines which
        offline indexes exist, the one shared structure the frozen path
        depends on.  ``k`` / ``epsilon`` / ``delta`` are deliberately
        unrestricted: every query runs on a query-local estimator whose
        budget and RNG derive statelessly from the request, so arbitrary
        accuracy overrides serve fine (and reproducibly) without touching
        shared state.

        The rejection raises *directly* (no guard trip): an unwarmed request
        is a routing error by the caller, not a shared-state mutation, so it
        must not poison the zero-violations invariant the stress harness and
        ``bench_serving`` assert.  Without this check the outcome would
        depend on implementation accident -- unwarmed index methods tripped
        the guard at the lazy index build while unwarmed sampling methods
        silently succeeded.
        """
        method = method.lower()
        if method not in METHODS:
            raise InvalidParameterError(f"unknown method {method!r}; choose from {METHODS}")
        if method not in self._frozen_methods:
            raise EngineFrozenError(
                f"frozen engine cannot serve unwarmed method {method!r} "
                f"(warmed: {self._frozen_methods}); include it in "
                "freeze(methods=...) or thaw() first"
            )
        return method

    def _query_estimator(
        self, method: str, query: PitexQuery, exploration: str
    ) -> InfluenceEstimator:
        """A fresh query-local estimator for the frozen read-only path."""
        method = self._check_frozen_method(method)
        budget = self.budget.with_overrides(
            epsilon=query.epsilon, delta=query.delta, k=query.k
        )
        seed = self.query_seed(
            query.user, method, query.k, query.epsilon, query.delta, exploration=exploration
        )
        return self._build_estimator(method, budget, RandomSource(seed))

    # ------------------------------------------------------------------ query
    def query(
        self,
        user: int,
        k: Optional[int] = None,
        method: str = "indexest+",
        exploration: str = "best-effort",
        epsilon: Optional[float] = None,
        delta: Optional[float] = None,
        candidate_tags: Optional[Iterable[int]] = None,
        keep_evaluations: bool = False,
    ) -> PitexResult:
        """Answer one PITEX query.

        Parameters
        ----------
        user:
            Target user (vertex id).
        k:
            Number of tags to select (default: engine's ``default_k``).
        method:
            One of :data:`METHODS`.
        exploration:
            ``"best-effort"`` (default, with Lemma 8 pruning) or
            ``"enumeration"`` (exhaustive).
        epsilon, delta:
            Per-query accuracy overrides.
        candidate_tags:
            Optional restriction of the tag vocabulary.
        keep_evaluations:
            Keep per-tag-set evaluations on the result.
        """
        if exploration not in EXPLORATIONS:
            raise InvalidParameterError(
                f"unknown exploration {exploration!r}; choose from {EXPLORATIONS}"
            )
        query = PitexQuery(
            user=user,
            k=k if k is not None else self.budget.k,
            epsilon=epsilon if epsilon is not None else self.budget.epsilon,
            delta=delta if delta is not None else self.budget.delta,
        )
        if self._frozen:
            # Read-only serving: a fresh estimator per query, seeded by the
            # stateless (seed, fingerprint) derivation -- nothing shared is
            # touched, so concurrent queries need no lock.
            estimator = self._query_estimator(method, query, exploration)
        else:
            estimator = self.estimator(method, query.epsilon, query.delta, query.k)
        if exploration == "enumeration":
            explorer = EnumerationExplorer(self.model, estimator, keep_evaluations)
            if candidate_tags is not None:
                from itertools import combinations

                candidates = combinations(sorted(self.model.resolve_tags(candidate_tags)), query.k)
                result = explorer.explore(query, candidates)
            else:
                result = explorer.explore(query)
        else:
            explorer = BestEffortExplorer(
                self.model, estimator, keep_evaluations=keep_evaluations
            )
            result = explorer.explore(query, candidate_tags)
        self._record_query_telemetry(method, result)
        return result

    def _record_query_telemetry(self, method: str, result: PitexResult) -> None:
        """Count one answered query's work in the telemetry registry.

        Every ``query.*`` counter is a deterministic function of the seeded
        query (see :data:`repro.obs.telemetry.DETERMINISTIC_PREFIXES`): the
        per-method totals must come out exactly equal whichever serving
        backend -- threads or sharded processes -- executed the queries.
        """
        name = method.lower()
        counter("query.count")
        counter(f"query.{name}.count")
        counter(f"query.{name}.edges_visited", result.edges_visited)
        counter(f"query.{name}.samples", result.samples_drawn)

    def estimate_influence(
        self,
        user: int,
        tags: Iterable,
        method: str = "lazy",
        epsilon: Optional[float] = None,
        delta: Optional[float] = None,
    ) -> InfluenceEstimate:
        """Estimate ``E[I(user|tags)]`` for one explicit tag set."""
        tag_ids = self.model.resolve_tags(tags)
        if self._frozen:
            budget = self.budget.with_overrides(
                epsilon=epsilon if epsilon is not None else self.budget.epsilon,
                delta=delta if delta is not None else self.budget.delta,
            )
            method = self._check_frozen_method(method)
            seed = self.query_seed(
                user,
                method,
                budget.k,
                budget.epsilon,
                budget.delta,
                exploration="estimate",
                extra=repr(tag_ids),
            )
            estimator = self._build_estimator(method, budget, RandomSource(seed))
            return estimator.estimate(user, tag_ids)
        estimator = self.estimator(method, epsilon, delta, None)
        return estimator.estimate(user, tag_ids)

    # ------------------------------------------------------------------ info
    def describe(self) -> str:
        """One-line description of the engine configuration."""
        return (
            f"PitexEngine(|V|={self.graph.num_vertices}, |E|={self.graph.num_edges}, "
            f"|Z|={self.graph.num_topics}, |Omega|={self.model.num_tags}, "
            f"eps={self.budget.epsilon}, delta={self.budget.delta}, "
            f"index_samples={self.index_samples}"
            f"{', frozen' if self._frozen else ''})"
        )
