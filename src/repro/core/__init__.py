"""The PITEX core: query answering on top of the samplers and indexes.

* :mod:`repro.core.query` -- :class:`PitexQuery` / :class:`PitexResult` value
  objects.
* :mod:`repro.core.enumeration` -- the Sec. 4 enumeration framework
  (Algorithm 1): evaluate every size-``k`` tag set with a pluggable estimator.
* :mod:`repro.core.best_effort` -- best-effort exploration (Algorithm 5) with
  the Lemma 8 upper bound to prune partial tag sets.
* :mod:`repro.core.tim` -- the TIM-style tree-based baseline used as a
  comparison method in Sec. 7.
* :mod:`repro.core.engine` -- :class:`PitexEngine`, the public facade that
  wires datasets, estimators, indexes and exploration strategies together.
"""

from repro.core.query import PitexQuery, PitexResult, TagSetEvaluation
from repro.core.enumeration import EnumerationExplorer
from repro.core.best_effort import BestEffortExplorer
from repro.core.tim import TreeModelEstimator
from repro.core.engine import PitexEngine, METHODS

__all__ = [
    "PitexQuery",
    "PitexResult",
    "TagSetEvaluation",
    "EnumerationExplorer",
    "BestEffortExplorer",
    "TreeModelEstimator",
    "PitexEngine",
    "METHODS",
]
