"""The enumeration-based PITEX framework (Sec. 4, Algorithm 1).

``EnumerationExplorer`` evaluates *every* size-``k`` tag set with a pluggable
influence estimator and returns the best one.  Theorem 2 gives the
``(1-eps)/(1+eps)`` approximation guarantee provided each estimate satisfies
the Lemma 2 / Lemma 3 error bound, which the estimators enforce through their
sample budgets.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.core.query import PitexQuery, PitexResult, TagSetEvaluation
from repro.exceptions import InvalidParameterError
from repro.sampling.base import InfluenceEstimator
from repro.topics.model import TagTopicModel
from repro.utils.timer import Stopwatch


class EnumerationExplorer:
    """Evaluate every candidate tag set and keep the best.

    Parameters
    ----------
    model:
        The tag-topic model (supplies the candidate tag sets and ``p(e|W)``).
    estimator:
        Any influence estimator implementing
        :class:`~repro.sampling.base.InfluenceEstimator`.
    keep_evaluations:
        When true, all per-tag-set evaluations are kept on the result (useful
        for reporting the full ranking, costs memory for large vocabularies).
    """

    name = "enumeration"

    def __init__(
        self,
        model: TagTopicModel,
        estimator: InfluenceEstimator,
        keep_evaluations: bool = False,
    ) -> None:
        self.model = model
        self.estimator = estimator
        self.keep_evaluations = keep_evaluations

    def explore(
        self,
        query: PitexQuery,
        candidate_tag_sets: Optional[Iterable[Tuple[int, ...]]] = None,
    ) -> PitexResult:
        """Answer ``query`` by exhaustive enumeration.

        ``candidate_tag_sets`` restricts the search space (used by tests and by
        the scalability experiments); by default all ``C(|Omega|, k)`` sets are
        evaluated.
        """
        if query.k > self.model.num_tags:
            raise InvalidParameterError(
                f"k={query.k} exceeds the tag vocabulary size {self.model.num_tags}"
            )
        watch = Stopwatch().start()
        candidates = (
            candidate_tag_sets
            if candidate_tag_sets is not None
            else self.model.candidate_tag_sets(query.k)
        )
        best_tags: Tuple[int, ...] = ()
        best_spread = -1.0
        evaluated = 0
        edges_visited = 0
        samples_drawn = 0
        evaluations: List[TagSetEvaluation] = []
        for tag_set in candidates:
            estimate = self.estimator.estimate(query.user, tag_set)
            evaluated += 1
            edges_visited += estimate.edges_visited
            samples_drawn += estimate.num_samples
            evaluation = TagSetEvaluation(
                tag_ids=tuple(tag_set),
                spread=estimate.value,
                num_samples=estimate.num_samples,
                edges_visited=estimate.edges_visited,
            )
            if self.keep_evaluations:
                evaluations.append(evaluation)
            if estimate.value > best_spread:
                best_spread = estimate.value
                best_tags = tuple(tag_set)
        watch.stop()
        return PitexResult(
            query=query,
            tag_ids=best_tags,
            tags=tuple(self.model.tag_names(best_tags)),
            spread=max(best_spread, 0.0),
            method=f"{self.name}:{self.estimator.name}",
            evaluated_tag_sets=evaluated,
            pruned_tag_sets=0,
            edges_visited=edges_visited,
            samples_drawn=samples_drawn,
            elapsed_seconds=watch.elapsed,
            evaluations=evaluations,
        )
