"""TIM-style tree-based influence estimation baseline.

The comparison method ``Tim`` in Sec. 7 adapts the tree-based influence model
of online topic-aware influence maximization (Chen et al., PVLDB'15, itself in
the MIA/PMIA family): the probability that the seed activates a vertex is
approximated by the *most probable single path*, computed with a Dijkstra-style
search on ``-log p(e|W)``, and paths whose probability falls below an influence
threshold are discarded.  The estimate of the spread is the sum of these
per-vertex path probabilities.

The model is fast -- one shortest-path search per tag set, no sampling -- but
ignores the combinatorial effect of multiple paths, so it has no approximation
guarantee; the experiments of the paper (Fig. 8) show it returns noticeably
lower-quality tag sets, which this implementation reproduces.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.graph.algorithms import single_source_max_probability_paths
from repro.graph.digraph import TopicSocialGraph
from repro.sampling.base import InfluenceEstimate, InfluenceEstimator, SampleBudget
from repro.topics.model import TagTopicModel
from repro.utils.rng import SeedLike


class TreeModelEstimator(InfluenceEstimator):
    """Maximum-influence-path (tree model) estimator -- the ``TIM`` baseline.

    Parameters
    ----------
    graph, model, budget:
        As for every estimator; the budget is only used for interface
        compatibility (no sampling happens).
    path_threshold:
        Minimum path probability kept by the tree model; smaller thresholds
        explore more of the graph (slower, slightly more accurate).
    """

    name = "tim"

    def __init__(
        self,
        graph: TopicSocialGraph,
        model: TagTopicModel,
        budget: Optional[SampleBudget] = None,
        path_threshold: float = 1e-3,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(graph, model, budget)
        self.path_threshold = path_threshold

    def estimate_with_probabilities(
        self,
        user: int,
        edge_probabilities: Sequence[float],
        num_samples: Optional[int] = None,
    ) -> InfluenceEstimate:
        """Sum of best-path activation probabilities from ``user``."""
        probabilities = np.asarray(edge_probabilities, dtype=float)
        best_paths = single_source_max_probability_paths(
            self.graph, user, probabilities, self.path_threshold
        )
        # Each settled vertex required relaxing its incoming best edge once; use
        # the number of settled vertices as the edge-visit proxy.
        spread = float(sum(best_paths.values()))
        return InfluenceEstimate(
            value=spread,
            num_samples=0,
            edges_visited=len(best_paths),
            reachable_size=len(best_paths),
            method=self.name,
        )
