"""Value objects describing PITEX queries and their answers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.exceptions import InvalidParameterError


@dataclass(frozen=True)
class PitexQuery:
    """A PITEX query: find the size-``k`` tag set maximizing ``E[I(user|W)]``.

    Attributes
    ----------
    user:
        The target user (vertex id) who is initially activated.
    k:
        Number of tags to select.
    epsilon:
        Relative error tolerance of the sampling estimates.
    delta:
        Inverse failure probability (the guarantee holds with probability
        ``1 - 1/delta``); the paper's default is 1000.
    """

    user: int
    k: int = 3
    epsilon: float = 0.7
    delta: float = 1000.0

    def __post_init__(self) -> None:
        if self.user < 0:
            raise InvalidParameterError(f"user must be a vertex id >= 0, got {self.user}")
        if self.k <= 0:
            raise InvalidParameterError(f"k must be positive, got {self.k}")
        if not 0.0 < self.epsilon < 1.0:
            raise InvalidParameterError(f"epsilon must lie in (0, 1), got {self.epsilon}")
        if self.delta <= 1.0:
            raise InvalidParameterError(f"delta must exceed 1, got {self.delta}")


@dataclass
class TagSetEvaluation:
    """The estimated influence of one candidate tag set."""

    tag_ids: Tuple[int, ...]
    spread: float
    num_samples: int = 0
    edges_visited: int = 0

    def __lt__(self, other: "TagSetEvaluation") -> bool:
        return self.spread < other.spread


@dataclass
class PitexResult:
    """The answer to a PITEX query.

    Attributes
    ----------
    query:
        The query that produced this result.
    tag_ids:
        Ids of the selected tags, sorted ascending.
    tags:
        Human-readable tag strings, in the same order as ``tag_ids``.
    spread:
        The estimated influence spread of the selected tag set.
    method:
        Name of the method that produced the answer ("lazy", "indexest+", ...).
    evaluated_tag_sets:
        Number of candidate tag sets whose influence was actually estimated
        (smaller than ``C(|Omega|, k)`` when pruning was effective).
    pruned_tag_sets:
        Number of candidate tag sets eliminated without estimation.
    edges_visited:
        Total edge probes across the whole query.
    samples_drawn:
        Total sample instances drawn across the whole query (complete-set
        estimations plus, for best-effort exploration, the sampled upper
        bounds).
    elapsed_seconds:
        Wall-clock time of the query.
    evaluations:
        Optionally, the per-tag-set evaluations (top results first) when the
        caller asked to keep them.
    """

    query: PitexQuery
    tag_ids: Tuple[int, ...]
    tags: Tuple[str, ...]
    spread: float
    method: str
    evaluated_tag_sets: int = 0
    pruned_tag_sets: int = 0
    edges_visited: int = 0
    samples_drawn: int = 0
    elapsed_seconds: float = 0.0
    evaluations: List[TagSetEvaluation] = field(default_factory=list)

    def top(self, n: int = 5) -> List[TagSetEvaluation]:
        """The ``n`` best evaluated tag sets (only populated when tracking is on)."""
        return sorted(self.evaluations, key=lambda e: -e.spread)[:n]

    def describe(self) -> str:
        """A one-line human readable summary."""
        tags = ", ".join(self.tags)
        return (
            f"user {self.query.user}: best {self.query.k}-tag set [{tags}] "
            f"spread={self.spread:.3f} via {self.method} "
            f"({self.evaluated_tag_sets} evaluated, {self.pruned_tag_sets} pruned, "
            f"{self.elapsed_seconds * 1000:.1f} ms)"
        )
