"""Deterministic-safe observability: counters, gauges, traces and clocks.

The serving layer's only window used to be a latency table; this package adds
the three primitives every upcoming serving feature (memoization hit rates,
incremental index maintenance, SLO gates) needs to gate on:

* :mod:`repro.obs.telemetry` -- a process-wide :class:`Telemetry` registry of
  named counters and gauges with commutative, lossless cross-process merge
  semantics (counters sum, gauges keep the max).
* :mod:`repro.obs.trace` -- structured per-query trace spans
  (:func:`trace_span`) collected by an optional :class:`TraceRecorder` and
  emitted as JSON Lines (``pitex serve-replay --trace trace.jsonl``).
* :mod:`repro.obs.clock` -- the **single sanctioned home** for wall-clock
  reads (:func:`wall_clock`) and the monotonic :class:`Clock` behind span
  durations; pitexlint's DET004/OBS001 rules allowlist exactly this module.

Determinism contract (asserted by tests, benchmarks and CI): counters that
describe *work* -- cache hits, guard trips, edge visits, sample counts -- are
deterministic functions of a seeded workload, so the thread and process
backends must report **exactly equal** values for them
(:func:`deterministic_counters`); wall-clock durations are the only fields
allowed to differ.  See ``docs/observability.md``.
"""

from repro.obs.clock import Clock, monotonic, wall_clock
from repro.obs.telemetry import (
    DETERMINISTIC_PREFIXES,
    Telemetry,
    counter,
    deterministic_counters,
    gauge,
    get_telemetry,
    install,
)
from repro.obs.trace import (
    TraceRecorder,
    get_recorder,
    install_recorder,
    trace_span,
    tracing_enabled,
)

__all__ = [
    "Clock",
    "monotonic",
    "wall_clock",
    "DETERMINISTIC_PREFIXES",
    "Telemetry",
    "counter",
    "deterministic_counters",
    "gauge",
    "get_telemetry",
    "install",
    "TraceRecorder",
    "get_recorder",
    "install_recorder",
    "trace_span",
    "tracing_enabled",
]
