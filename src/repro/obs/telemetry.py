"""Process-wide registry of named counters and gauges with exact merging.

One :class:`Telemetry` instance per process collects every named counter the
library increments -- engine cache hits, store load-or-build outcomes, frozen
guard trips, per-method estimator work (edge visits, sample counts: the
registry-shaped successor of
:class:`~repro.sampling.instrumentation.EstimatorInstrumentation`), worker
deaths.  The active instance is a module global reachable through
:func:`get_telemetry` / the :func:`counter` and :func:`gauge` conveniences, so
instrumentation points need no plumbing; worker processes
(:mod:`repro.serve.sharded`) :func:`install` a **fresh** instance right after
fork -- a forked child inherits the parent's counts, and shipping those back
in the shutdown shard would double-count them.

Merge semantics are the whole point: counters merge by **sum** and gauges by
**max**, so folding worker shards into a parent snapshot is commutative,
associative and lossless -- any arrival order of shards yields the same
totals, which is what lets the thread and process backends produce comparable
snapshots (:meth:`ServiceMetrics.telemetry`).

Determinism contract: counters under :data:`DETERMINISTIC_PREFIXES` describe
seeded work and must be bitwise-equal across backends for the same workload
(:func:`deterministic_counters` extracts that comparable subset); everything
else -- per-replica store loads, worker lifecycle -- may legitimately differ.

Thread-safety: every method takes the instance lock; increments are atomic.
"""

from __future__ import annotations

import threading
from typing import Dict, Mapping, Optional

# Counter prefixes whose values are deterministic functions of a seeded
# workload: equal across thread/process backends, worker counts and arrival
# orders.  Wall-clock durations are deliberately *not* counters, so nothing
# here can smuggle timing into the comparable subset.  answer_cache.* earns
# its seat through single-flight miss accounting plus per-user request
# sharding (see repro.serve.answers); scheduling-dependent wait counts stay
# out of telemetry entirely.
DETERMINISTIC_PREFIXES = ("query.", "estimator.", "guard.", "engine_cache.", "answer_cache.")


class Telemetry:
    """A named-counter/gauge registry with commutative, lossless merging."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}

    # ---------------------------------------------------------------- write
    def counter(self, name: str, amount: int = 1) -> int:
        """Add ``amount`` to counter ``name`` (creating it); returns the total."""
        with self._lock:
            value = self._counters.get(name, 0) + int(amount)
            self._counters[name] = value
            return value

    def gauge(self, name: str, value: float) -> float:
        """Set gauge ``name``; returns the stored value.

        Gauges merge by max (see :meth:`merge`), so treat them as high-water
        marks when they must survive a cross-process merge.
        """
        with self._lock:
            stored = float(value)
            self._gauges[name] = stored
            return stored

    # ----------------------------------------------------------------- read
    def counters(self) -> Dict[str, int]:
        """A point-in-time copy of every counter."""
        with self._lock:
            return dict(self._counters)

    def gauges(self) -> Dict[str, float]:
        """A point-in-time copy of every gauge."""
        with self._lock:
            return dict(self._gauges)

    def snapshot(self) -> dict:
        """A picklable/JSON-friendly ``{"counters": ..., "gauges": ...}``.

        This is the shard shape worker processes ship over the shutdown pipe
        and :meth:`merge` consumes.
        """
        with self._lock:
            return {"counters": dict(self._counters), "gauges": dict(self._gauges)}

    # ---------------------------------------------------------------- merge
    def merge(self, snapshot: Mapping) -> None:
        """Fold another registry's :meth:`snapshot` in: sum counters, max gauges.

        Sum and max are both commutative and associative, so shards merge to
        the same totals in any arrival order, and no shard's contribution can
        be lost or double-counted by reordering.
        """
        counters = snapshot.get("counters", {})
        gauges = snapshot.get("gauges", {})
        with self._lock:
            for name, value in counters.items():
                self._counters[name] = self._counters.get(name, 0) + int(value)
            for name, value in gauges.items():
                current = self._gauges.get(name)
                self._gauges[name] = (
                    float(value) if current is None else max(current, float(value))
                )

    def reset(self) -> None:
        """Drop every counter and gauge (test isolation helper)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()


def merge_snapshots(*snapshots: Mapping) -> dict:
    """Merge any number of :meth:`Telemetry.snapshot` dicts into one.

    Pure function over the shard dicts (order-insensitive by the sum/max
    semantics of :meth:`Telemetry.merge`); used by report assembly and the
    merge-semantics tests.
    """
    merged = Telemetry()
    for snapshot in snapshots:
        merged.merge(snapshot)
    return merged.snapshot()


def deterministic_counters(counters: Mapping[str, int]) -> Dict[str, int]:
    """The backend-comparable subset of ``counters``, sorted by name.

    Filters to :data:`DETERMINISTIC_PREFIXES` -- the counters that must be
    exactly equal between the thread and process backends for the same seeded
    workload.  CI and ``bench_serving`` compare these dicts directly.
    """
    return {
        name: counters[name]
        for name in sorted(counters)
        if name.startswith(DETERMINISTIC_PREFIXES)
    }


# ------------------------------------------------------------ active registry
_install_lock = threading.Lock()
_active = Telemetry()


def get_telemetry() -> Telemetry:
    """The process's active registry (instrumentation points write here)."""
    return _active


def install(telemetry: Optional[Telemetry] = None) -> Telemetry:
    """Swap the active registry; returns the previous one.

    ``None`` installs a fresh empty registry.  Worker processes call this
    immediately after fork so the shard they ship at shutdown contains only
    their own work, and tests use the returned previous instance to restore
    global state.
    """
    global _active
    with _install_lock:
        previous = _active
        _active = telemetry if telemetry is not None else Telemetry()
        return previous


def counter(name: str, amount: int = 1) -> int:
    """Increment ``name`` on the active registry; returns the new total."""
    return _active.counter(name, amount)


def gauge(name: str, value: float) -> float:
    """Set gauge ``name`` on the active registry; returns the stored value."""
    return _active.gauge(name, value)
