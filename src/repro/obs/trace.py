"""Structured trace spans: near-free when off, JSONL when on.

A *span* is one timed, labelled region of the serving path --
``trace_span("execute", engine_key=..., method=..., user=...)`` around an
engine query.  Spans only exist while a :class:`TraceRecorder` is installed
(``pitex serve-replay --trace trace.jsonl`` installs one); with no recorder,
:func:`trace_span` returns a shared no-op context manager whose cost is one
module-global read, which is what keeps tracing-disabled serving throughput
indistinguishable from the untraced baseline (measured by ``bench_serving``).

Span record schema (one JSON object per line in the JSONL output)::

    {"span": "execute", "seconds": 0.0123, "engine_key": "default",
     "method": "indexest", "user": 42, "worker": 3, ...}

``span`` (the name) and ``seconds`` (monotonic duration from
:class:`repro.obs.clock.Clock`) are always present; every other key is a
caller-supplied field.  ``seconds`` is the *only* run-dependent value -- the
fields describing the work are deterministic for a seeded workload, matching
the telemetry determinism contract (``docs/observability.md``).

Worker processes install their own recorder after fork and ship their span
lists back over the shutdown pipe (:mod:`repro.serve.sharded`), so process
sharding does not swallow traces.  Thread-safety: :class:`TraceRecorder`
appends under a lock; any number of service workers may record concurrently.
"""

from __future__ import annotations

import json
import threading
from typing import Dict, List, Optional

from repro.obs.clock import DEFAULT_CLOCK, Clock


class TraceRecorder:
    """Collects span records; drains to JSON Lines.

    Parameters
    ----------
    clock:
        Monotonic source for span durations (tests pass a scripted fake).
    """

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self.clock = clock if clock is not None else DEFAULT_CLOCK
        self._lock = threading.Lock()
        self._spans: List[dict] = []

    def record(self, span: dict) -> None:
        """Append one finished span record."""
        with self._lock:
            self._spans.append(span)

    def extend(self, spans) -> None:
        """Append many records at once (a worker's shipped span shard)."""
        with self._lock:
            self._spans.extend(spans)

    def spans(self) -> List[dict]:
        """A point-in-time copy of every recorded span."""
        with self._lock:
            return list(self._spans)

    def write_jsonl(self, path) -> int:
        """Write one JSON object per line to ``path``; returns the span count.

        Keys are sorted so two runs of the same seeded workload produce
        line-diffable files (modulo the ``seconds`` values).
        """
        spans = self.spans()
        with open(path, "w", encoding="utf-8") as handle:
            for span in spans:
                handle.write(json.dumps(span, sort_keys=True) + "\n")
        return len(spans)


class _Span:
    """Context manager timing one region and recording it on exit."""

    __slots__ = ("_recorder", "_name", "_fields", "_started")

    def __init__(self, recorder: TraceRecorder, name: str, fields: Dict) -> None:
        self._recorder = recorder
        self._name = name
        self._fields = fields
        self._started = 0.0

    def __enter__(self) -> "_Span":
        self._started = self._recorder.clock.monotonic()
        return self

    def __exit__(self, *exc_info) -> None:
        elapsed = self._recorder.clock.monotonic() - self._started
        record = {"span": self._name, "seconds": elapsed}
        record.update(self._fields)
        self._recorder.record(record)


class _NullSpan:
    """The shared do-nothing span used while no recorder is installed."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_SPAN = _NullSpan()

# The active recorder; None means tracing is off (the common case).
_recorder: Optional[TraceRecorder] = None
_install_lock = threading.Lock()


def install_recorder(recorder: Optional[TraceRecorder]) -> Optional[TraceRecorder]:
    """Install (or with ``None`` remove) the active recorder; returns the old one."""
    global _recorder
    with _install_lock:
        previous = _recorder
        _recorder = recorder
        return previous


def get_recorder() -> Optional[TraceRecorder]:
    """The active recorder, or ``None`` while tracing is off."""
    return _recorder


def tracing_enabled() -> bool:
    """Whether a recorder is installed (workers propagate this across fork/spawn)."""
    return _recorder is not None


def trace_span(name: str, **fields):
    """A context manager timing one named region with structured fields.

    With no recorder installed this returns a shared no-op object -- the
    disabled fast path costs one global read and no allocation.  Fields must
    be JSON-serializable; keep them deterministic (ids, labels, counts), the
    recorded ``seconds`` is the only place timing belongs.
    """
    recorder = _recorder
    if recorder is None:
        return _NULL_SPAN
    return _Span(recorder, name, fields)
