"""The sanctioned clocks: one wall-clock home, one monotonic span clock.

Wall-clock reads make results irreproducible when they leak into compute
paths, so pitexlint's DET004 rule bans ``time.time()`` across the library --
**except here**.  Everything that legitimately needs a Unix timestamp
(manifest provenance in :class:`~repro.serve.store.IndexStore`, trace
metadata) calls :func:`wall_clock`, which keeps the exception auditable as a
single allowlisted module instead of per-file escape hatches.

Durations are a different beast: they come from a monotonic source so clock
adjustments can never produce negative spans.  :class:`Clock` wraps that
source behind one seam so tests can substitute a fake and replay exact
durations; :data:`DEFAULT_CLOCK` is the shared instance the trace layer uses.
"""

from __future__ import annotations

import time


def wall_clock() -> float:
    """Current Unix timestamp -- for provenance metadata, never compute state.

    This is the library's only sanctioned ``time.time()`` call site (see the
    module docstring); route any new wall-clock need through here so the
    pitexlint DET004 allowlist stays one line long.
    """
    return time.time()


def monotonic() -> float:
    """A monotonic reading from the shared :data:`DEFAULT_CLOCK`."""
    return DEFAULT_CLOCK.monotonic()


class Clock:
    """Monotonic time source behind trace-span durations.

    ``perf_counter`` has the highest available resolution and is immune to
    wall-clock adjustments.  Tests substitute a subclass with a scripted
    ``monotonic`` to make span durations exact.
    """

    def monotonic(self) -> float:
        """A monotonically non-decreasing reading in fractional seconds."""
        return time.perf_counter()


DEFAULT_CLOCK = Clock()
