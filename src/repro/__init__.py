"""repro -- reproduction of "Discovering Your Selling Points: Personalized
Social Influential Tags Exploration" (Li, Tan, Fan, Zhang; SIGMOD 2017).

The top-level package re-exports the most commonly used entry points; see
``README.md`` for a quickstart and ``DESIGN.md`` for the full system inventory.

Typical usage::

    from repro import PitexEngine
    from repro.datasets import load_dataset

    dataset = load_dataset("lastfm", seed=7)
    engine = PitexEngine(dataset.graph, dataset.model, seed=7)
    result = engine.query(user=dataset.workload("mid", 1)[0], k=3, method="indexest+")
    print(result.describe())
"""

from repro.core.engine import PitexEngine, METHODS
from repro.core.query import PitexQuery, PitexResult
from repro.graph.digraph import TopicSocialGraph
from repro.sampling.base import SampleBudget
from repro.topics.model import TagTopicModel

__version__ = "1.0.0"

__all__ = [
    "PitexEngine",
    "PitexQuery",
    "PitexResult",
    "TopicSocialGraph",
    "TagTopicModel",
    "SampleBudget",
    "METHODS",
    "__version__",
]
