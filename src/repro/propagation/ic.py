"""The Independent Cascade (IC) model.

Under IC (Sec. 3.1), the target user becomes active at step 0; every newly
activated user gets a single chance to activate each inactive out-neighbour
with probability ``p(e|W)``; the process stops when no new activation happens.
The influence spread ``E[I(u|W)]`` is the expected number of active users at
termination (including the seed).
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.graph.digraph import TopicSocialGraph
from repro.propagation.cascade import CascadeTrace
from repro.utils.rng import RandomSource, SeedLike, spawn_rng


def simulate_ic_cascade(
    graph: TopicSocialGraph,
    seeds: Iterable[int],
    edge_probabilities: Sequence[float],
    rng: Optional[RandomSource] = None,
    max_steps: Optional[int] = None,
) -> CascadeTrace:
    """Simulate one IC cascade and return its trace.

    Parameters
    ----------
    graph:
        The social graph.
    seeds:
        Initially active vertices (step 0).
    edge_probabilities:
        ``p(e|W)`` per edge id.
    rng:
        Random source; a fresh unseeded source is used when omitted.
    max_steps:
        Optional cap on the number of propagation rounds.
    """
    rng = rng if rng is not None else spawn_rng(None)
    probabilities = np.asarray(edge_probabilities, dtype=float)
    trace = CascadeTrace(seeds=set(seeds))
    frontier = deque()
    for seed in trace.seeds:
        if seed not in trace.activation_step:
            trace.activation_step[seed] = 0
            frontier.append(seed)
    step = 0
    while frontier:
        if max_steps is not None and step >= max_steps:
            break
        step += 1
        next_frontier: deque = deque()
        while frontier:
            vertex = frontier.popleft()
            for edge_id in graph.out_edges(vertex):
                probability = probabilities[edge_id]
                if probability <= 0.0:
                    continue
                trace.edges_probed += 1
                _, target = graph.edge_endpoints(edge_id)
                if target in trace.activation_step:
                    continue
                if rng.uniform() < probability:
                    trace.activation_step[target] = step
                    next_frontier.append(target)
        frontier = next_frontier
    return trace


class IndependentCascadeModel:
    """Object-oriented facade over :func:`simulate_ic_cascade`.

    Keeps the graph and a random source, and exposes both single-cascade
    simulation and brute-force Monte-Carlo spread estimation (used as a slow
    but simple oracle in integration tests).
    """

    def __init__(self, graph: TopicSocialGraph, seed: SeedLike = None) -> None:
        self.graph = graph
        self._rng = spawn_rng(seed)

    def simulate(
        self,
        seeds: Iterable[int],
        edge_probabilities: Sequence[float],
        max_steps: Optional[int] = None,
    ) -> CascadeTrace:
        """Run one cascade from ``seeds``."""
        return simulate_ic_cascade(self.graph, seeds, edge_probabilities, self._rng, max_steps)

    def estimate_spread(
        self,
        seeds: Iterable[int],
        edge_probabilities: Sequence[float],
        num_samples: int,
    ) -> float:
        """Plain Monte-Carlo estimate of ``E[I(seeds|W)]`` over ``num_samples`` cascades."""
        seeds = list(seeds)
        total = 0
        for _ in range(num_samples):
            trace = self.simulate(seeds, edge_probabilities)
            total += trace.size
        return total / float(num_samples)

    def activation_frequencies(
        self,
        seeds: Iterable[int],
        edge_probabilities: Sequence[float],
        num_samples: int,
    ) -> np.ndarray:
        """Per-vertex activation frequency over ``num_samples`` cascades."""
        seeds = list(seeds)
        counts = np.zeros(self.graph.num_vertices)
        for _ in range(num_samples):
            trace = self.simulate(seeds, edge_probabilities)
            for vertex in trace.activated:
                counts[vertex] += 1
        return counts / float(num_samples)
