"""Cascade traces: the common result object of every propagation simulation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set


@dataclass
class CascadeTrace:
    """The outcome of one propagation simulation.

    Attributes
    ----------
    seeds:
        The initially activated vertices.
    activation_step:
        Map from activated vertex to the step at which it became active
        (seeds are at step 0).
    edges_probed:
        Number of edge-probe operations performed by the simulation; used by
        the Fig. 13 instrumentation.
    """

    seeds: Set[int] = field(default_factory=set)
    activation_step: Dict[int, int] = field(default_factory=dict)
    edges_probed: int = 0

    @property
    def activated(self) -> Set[int]:
        """All activated vertices, seeds included."""
        return set(self.activation_step)

    @property
    def size(self) -> int:
        """Number of activated vertices (the realized influence ``I_g(u|W)``)."""
        return len(self.activation_step)

    @property
    def num_steps(self) -> int:
        """Number of propagation steps after the seeding step."""
        if not self.activation_step:
            return 0
        return max(self.activation_step.values())

    def activated_at(self, step: int) -> List[int]:
        """Vertices activated exactly at ``step``."""
        return sorted(v for v, s in self.activation_step.items() if s == step)

    def frontier_sizes(self) -> List[int]:
        """Number of vertices activated at each step, starting with the seeds."""
        sizes: List[int] = []
        for step in range(self.num_steps + 1):
            sizes.append(len(self.activated_at(step)))
        return sizes
