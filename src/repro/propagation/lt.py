"""The Linear Threshold (LT) model.

In the LT model every vertex draws a uniform threshold in ``[0, 1]``; an
inactive vertex becomes active once the sum of incoming edge weights from its
already-active in-neighbours reaches the threshold.  Following Kempe et al.,
edge weights are the (tag-conditioned) influence probabilities normalized so
that the incoming weights of a vertex never exceed 1.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from repro.graph.digraph import TopicSocialGraph
from repro.propagation.cascade import CascadeTrace
from repro.utils.rng import RandomSource, SeedLike, spawn_rng


def _normalized_in_weights(
    graph: TopicSocialGraph, edge_probabilities: np.ndarray
) -> np.ndarray:
    """Scale edge weights so each vertex's total incoming weight is at most 1."""
    weights = edge_probabilities.astype(float).copy()
    for vertex in graph.vertices():
        in_edges = graph.in_edges(vertex)
        if not in_edges:
            continue
        total = float(sum(weights[e] for e in in_edges))
        if total > 1.0:
            for edge_id in in_edges:
                weights[edge_id] /= total
    return weights


def simulate_lt_cascade(
    graph: TopicSocialGraph,
    seeds: Iterable[int],
    edge_probabilities: Sequence[float],
    rng: Optional[RandomSource] = None,
    max_steps: Optional[int] = None,
) -> CascadeTrace:
    """Simulate one Linear Threshold cascade and return its trace."""
    rng = rng if rng is not None else spawn_rng(None)
    weights = _normalized_in_weights(graph, np.asarray(edge_probabilities, dtype=float))
    thresholds: Dict[int, float] = {}
    incoming_weight: Dict[int, float] = {}

    trace = CascadeTrace(seeds=set(seeds))
    frontier = deque()
    for seed in trace.seeds:
        if seed not in trace.activation_step:
            trace.activation_step[seed] = 0
            frontier.append(seed)

    step = 0
    while frontier:
        if max_steps is not None and step >= max_steps:
            break
        step += 1
        next_frontier: deque = deque()
        while frontier:
            vertex = frontier.popleft()
            for edge_id in graph.out_edges(vertex):
                weight = weights[edge_id]
                if weight <= 0.0:
                    continue
                trace.edges_probed += 1
                _, target = graph.edge_endpoints(edge_id)
                if target in trace.activation_step:
                    continue
                if target not in thresholds:
                    thresholds[target] = rng.uniform()
                incoming_weight[target] = incoming_weight.get(target, 0.0) + weight
                if incoming_weight[target] >= thresholds[target]:
                    trace.activation_step[target] = step
                    next_frontier.append(target)
        frontier = next_frontier
    return trace


class LinearThresholdModel:
    """Object-oriented facade over :func:`simulate_lt_cascade`."""

    def __init__(self, graph: TopicSocialGraph, seed: SeedLike = None) -> None:
        self.graph = graph
        self._rng = spawn_rng(seed)

    def simulate(
        self,
        seeds: Iterable[int],
        edge_probabilities: Sequence[float],
        max_steps: Optional[int] = None,
    ) -> CascadeTrace:
        """Run one cascade from ``seeds``."""
        return simulate_lt_cascade(self.graph, seeds, edge_probabilities, self._rng, max_steps)

    def estimate_spread(
        self,
        seeds: Iterable[int],
        edge_probabilities: Sequence[float],
        num_samples: int,
    ) -> float:
        """Monte-Carlo estimate of the LT influence spread."""
        seeds = list(seeds)
        total = 0
        for _ in range(num_samples):
            total += self.simulate(seeds, edge_probabilities).size
        return total / float(num_samples)
