"""The general Triggering model of Kempe et al.

Each vertex independently samples a *triggering set*: a random subset of its
in-neighbours.  A vertex becomes active when any member of its triggering set
becomes active.  IC is the special case where each in-neighbour joins the
triggering set independently with the edge probability; LT corresponds to
picking at most one in-neighbour with probability equal to its normalized
weight.  The implementation here uses per-edge inclusion probabilities, so the
IC instantiation is exact, and provides an LT-style constructor for
completeness (footnote 1 of the paper).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set

import numpy as np

from repro.graph.digraph import TopicSocialGraph
from repro.propagation.cascade import CascadeTrace
from repro.utils.rng import RandomSource, SeedLike, spawn_rng

TriggeringSampler = Callable[[int, List[int], np.ndarray, RandomSource], Set[int]]
"""Signature of a triggering-set sampler.

Arguments are ``(vertex, in_edge_ids, edge_probabilities, rng)``; the return
value is the set of in-edge ids included in the vertex's triggering set.
"""


def independent_triggering_sampler(
    vertex: int, in_edges: List[int], probabilities: np.ndarray, rng: RandomSource
) -> Set[int]:
    """IC-style sampler: every in-edge joins independently with its probability."""
    return {e for e in in_edges if probabilities[e] > 0.0 and rng.uniform() < probabilities[e]}


def exclusive_triggering_sampler(
    vertex: int, in_edges: List[int], probabilities: np.ndarray, rng: RandomSource
) -> Set[int]:
    """LT-style sampler: at most one in-edge is chosen, proportionally to its weight."""
    if not in_edges:
        return set()
    weights = np.array([max(probabilities[e], 0.0) for e in in_edges], dtype=float)
    total = weights.sum()
    if total <= 0.0:
        return set()
    scale = min(1.0, 1.0 / total) if total > 1.0 else 1.0
    draw = rng.uniform()
    cumulative = 0.0
    for edge_id, weight in zip(in_edges, weights):
        cumulative += weight * scale
        if draw < cumulative:
            return {edge_id}
    return set()


def simulate_triggering_cascade(
    graph: TopicSocialGraph,
    seeds: Iterable[int],
    edge_probabilities: Sequence[float],
    rng: Optional[RandomSource] = None,
    sampler: TriggeringSampler = independent_triggering_sampler,
    max_steps: Optional[int] = None,
) -> CascadeTrace:
    """Simulate one triggering-model cascade.

    The simulation lazily samples a triggering set for each vertex the first
    time one of its in-neighbours activates, then propagates along the live
    (triggering) edges with a BFS.
    """
    rng = rng if rng is not None else spawn_rng(None)
    probabilities = np.asarray(edge_probabilities, dtype=float)
    triggering_sets: Dict[int, Set[int]] = {}

    trace = CascadeTrace(seeds=set(seeds))
    frontier = deque()
    for seed in trace.seeds:
        if seed not in trace.activation_step:
            trace.activation_step[seed] = 0
            frontier.append(seed)

    step = 0
    while frontier:
        if max_steps is not None and step >= max_steps:
            break
        step += 1
        next_frontier: deque = deque()
        while frontier:
            vertex = frontier.popleft()
            for edge_id in graph.out_edges(vertex):
                trace.edges_probed += 1
                _, target = graph.edge_endpoints(edge_id)
                if target in trace.activation_step:
                    continue
                if target not in triggering_sets:
                    triggering_sets[target] = sampler(
                        target, graph.in_edges(target), probabilities, rng
                    )
                if edge_id in triggering_sets[target]:
                    trace.activation_step[target] = step
                    next_frontier.append(target)
        frontier = next_frontier
    return trace


class TriggeringModel:
    """Object-oriented facade over :func:`simulate_triggering_cascade`."""

    def __init__(
        self,
        graph: TopicSocialGraph,
        sampler: TriggeringSampler = independent_triggering_sampler,
        seed: SeedLike = None,
    ) -> None:
        self.graph = graph
        self.sampler = sampler
        self._rng = spawn_rng(seed)

    def simulate(
        self,
        seeds: Iterable[int],
        edge_probabilities: Sequence[float],
        max_steps: Optional[int] = None,
    ) -> CascadeTrace:
        """Run one cascade from ``seeds``."""
        return simulate_triggering_cascade(
            self.graph, seeds, edge_probabilities, self._rng, self.sampler, max_steps
        )

    def estimate_spread(
        self,
        seeds: Iterable[int],
        edge_probabilities: Sequence[float],
        num_samples: int,
    ) -> float:
        """Monte-Carlo estimate of the triggering-model influence spread."""
        seeds = list(seeds)
        total = 0
        for _ in range(num_samples):
            total += self.simulate(seeds, edge_probabilities).size
        return total / float(num_samples)
