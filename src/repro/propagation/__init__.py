"""Propagation model substrate.

The paper evaluates PITEX under the Independent Cascade (IC) model and notes
(footnote 1) that the approaches also support the Linear Threshold (LT) model
and the more general triggering model.  This package implements all three plus
an exact possible-world influence oracle used to validate the samplers on
small graphs.
"""

from repro.propagation.cascade import CascadeTrace
from repro.propagation.ic import IndependentCascadeModel, simulate_ic_cascade
from repro.propagation.lt import LinearThresholdModel, simulate_lt_cascade
from repro.propagation.triggering import TriggeringModel, simulate_triggering_cascade
from repro.propagation.exact import exact_influence_spread, exact_activation_probabilities

__all__ = [
    "CascadeTrace",
    "IndependentCascadeModel",
    "simulate_ic_cascade",
    "LinearThresholdModel",
    "simulate_lt_cascade",
    "TriggeringModel",
    "simulate_triggering_cascade",
    "exact_influence_spread",
    "exact_activation_probabilities",
]
