"""Exact influence computation by possible-world enumeration.

Computing ``E[I(u|W)]`` is #P-hard in general (the paper cites Chen et al.),
but for graphs with a handful of edges the expectation can be computed exactly
by enumerating every live/blocked assignment of the edges that matter.  The
samplers, the index and the engine are all validated against this oracle in the
test suite.
"""

from __future__ import annotations

from itertools import product
from typing import List, Sequence, Set

import numpy as np

from repro.exceptions import EstimationError
from repro.graph.algorithms import forward_reachable, reachable_subgraph_edges, reachable_with_probabilities
from repro.graph.digraph import TopicSocialGraph

_MAX_EXACT_EDGES = 22
"""Enumeration is 2^edges; cap the relevant edge count to keep the oracle usable."""


def _relevant_edges(
    graph: TopicSocialGraph, source: int, probabilities: np.ndarray
) -> List[int]:
    """Edges that can possibly matter: both endpoints reachable with positive probability."""
    reachable = reachable_with_probabilities(graph, source, probabilities)
    candidates = reachable_subgraph_edges(graph, reachable)
    return [e for e in candidates if probabilities[e] > 0.0]


def exact_influence_spread(
    graph: TopicSocialGraph,
    source: int,
    edge_probabilities: Sequence[float],
) -> float:
    """Exact ``E[I(source|W)]`` by enumerating possible worlds.

    Raises :class:`EstimationError` when more than ``_MAX_EXACT_EDGES`` edges
    are relevant, to protect callers from accidental exponential blow-ups.
    """
    probabilities = np.asarray(edge_probabilities, dtype=float)
    relevant = _relevant_edges(graph, source, probabilities)
    if len(relevant) > _MAX_EXACT_EDGES:
        raise EstimationError(
            f"exact influence requires enumerating 2^{len(relevant)} worlds; "
            f"limit is 2^{_MAX_EXACT_EDGES}"
        )
    certain = [e for e in relevant if probabilities[e] >= 1.0]
    uncertain = [e for e in relevant if 0.0 < probabilities[e] < 1.0]

    expected = 0.0
    for assignment in product((False, True), repeat=len(uncertain)):
        world_probability = 1.0
        live: Set[int] = set(certain)
        for edge_id, is_live in zip(uncertain, assignment):
            p = probabilities[edge_id]
            if is_live:
                world_probability *= p
                live.add(edge_id)
            else:
                world_probability *= 1.0 - p
        if world_probability == 0.0:
            continue
        activated = forward_reachable(graph, source, lambda e: e in live)
        expected += world_probability * len(activated)
    return expected


def exact_activation_probabilities(
    graph: TopicSocialGraph,
    source: int,
    edge_probabilities: Sequence[float],
) -> np.ndarray:
    """Exact per-vertex activation probability from ``source`` (same enumeration)."""
    probabilities = np.asarray(edge_probabilities, dtype=float)
    relevant = _relevant_edges(graph, source, probabilities)
    if len(relevant) > _MAX_EXACT_EDGES:
        raise EstimationError(
            f"exact activation probabilities require enumerating 2^{len(relevant)} worlds; "
            f"limit is 2^{_MAX_EXACT_EDGES}"
        )
    certain = [e for e in relevant if probabilities[e] >= 1.0]
    uncertain = [e for e in relevant if 0.0 < probabilities[e] < 1.0]

    activation = np.zeros(graph.num_vertices)
    for assignment in product((False, True), repeat=len(uncertain)):
        world_probability = 1.0
        live: Set[int] = set(certain)
        for edge_id, is_live in zip(uncertain, assignment):
            p = probabilities[edge_id]
            if is_live:
                world_probability *= p
                live.add(edge_id)
            else:
                world_probability *= 1.0 - p
        if world_probability == 0.0:
            continue
        activated = forward_reachable(graph, source, lambda e: e in live)
        for vertex in activated:
            activation[vertex] += world_probability
    return activation


def exact_best_tag_set(
    graph: TopicSocialGraph,
    model,
    source: int,
    k: int,
) -> tuple:
    """Brute-force optimal tag set by exact influence evaluation of every candidate.

    Only usable on tiny instances; serves as the ground truth for end-to-end
    engine tests.  Returns ``(best_tag_ids, best_spread)``.
    """
    best_tags: tuple = ()
    best_spread = -1.0
    for candidate in model.candidate_tag_sets(k):
        probabilities = model.edge_probabilities(graph, candidate)
        spread = exact_influence_spread(graph, source, probabilities)
        if spread > best_spread + 1e-12:
            best_spread = spread
            best_tags = tuple(candidate)
    return best_tags, best_spread
