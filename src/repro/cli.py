"""Command-line interface.

Four sub-commands are provided::

    pitex query --dataset lastfm --group mid --k 3 --method indexest+
    pitex bench --experiment fig7 --preset smoke
    pitex index-build --dataset lastfm --scale 0.2 --store ./pitex-store
    pitex serve-replay --dataset lastfm --scale 0.2 --store ./pitex-store --num-queries 50

``query`` answers a handful of PITEX queries on a synthetic dataset and prints
the selected tag sets; ``bench`` runs one (or all) of the table/figure drivers
and prints the reproduced rows; ``index-build`` builds the offline indexes and
persists them into an :class:`~repro.serve.store.IndexStore`; ``serve-replay``
answers a seeded query stream through the concurrent
:class:`~repro.serve.service.PitexService` (warm-starting from the store when
it holds a matching index) and prints the latency/throughput table.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.bench.config import BenchmarkConfig
from repro.bench.experiments import EXPERIMENTS
from repro.bench.harness import BenchmarkHarness
from repro.bench.reporting import format_table
from repro.core.engine import METHODS, PitexEngine, resolved_kernel
from repro.datasets.profiles import profile_names
from repro.datasets.synthetic import load_dataset
from repro.sampling.instrumentation import EstimatorInstrumentation

INDEX_METHODS_RR = ("indexest", "indexest+")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pitex",
        description="PITEX reproduction: personalized social influential tags exploration",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    query = subparsers.add_parser("query", help="answer PITEX queries on a synthetic dataset")
    query.add_argument("--dataset", choices=profile_names(), default="lastfm")
    query.add_argument("--scale", type=float, default=0.3, help="dataset scale factor")
    query.add_argument("--group", choices=("high", "mid", "low"), default="mid")
    query.add_argument("--num-queries", type=int, default=3)
    query.add_argument("--k", type=int, default=3)
    query.add_argument("--method", choices=METHODS, default="indexest+")
    query.add_argument("--kernel", choices=("batched", "csr", "dict"), default="csr",
                       help="sampling kernel: multi-instance batched event queue, "
                            "vectorized CSR (default), or per-edge dict reference")
    query.add_argument("--epsilon", type=float, default=0.7)
    query.add_argument("--delta", type=float, default=1000.0)
    query.add_argument("--max-samples", type=int, default=300)
    query.add_argument("--index-samples", type=int, default=800)
    query.add_argument("--seed", type=int, default=2017)
    query.add_argument("--json", action="store_true", help="emit one JSON document instead of text")

    bench = subparsers.add_parser("bench", help="run table/figure reproduction experiments")
    bench.add_argument(
        "--experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        default="all",
        help="which table/figure to reproduce",
    )
    bench.add_argument("--preset", choices=("smoke", "default", "full"), default="smoke")
    bench.add_argument("--seed", type=int, default=None)

    build = subparsers.add_parser(
        "index-build", help="build the offline indexes and persist them to an index store"
    )
    build.add_argument("--dataset", choices=profile_names(), default="lastfm")
    build.add_argument("--scale", type=float, default=0.2)
    build.add_argument("--index-samples", type=int, default=250)
    build.add_argument("--seed", type=int, default=2017)
    build.add_argument("--store", default="./pitex-store", help="index store directory")
    build.add_argument(
        "--kind",
        choices=("rr-graphs", "delaymat", "both"),
        default="both",
        help="which offline index to build and persist",
    )
    build.add_argument("--json", action="store_true", help="emit one JSON document instead of text")

    replay = subparsers.add_parser(
        "serve-replay",
        help="replay a seeded query workload through the concurrent serving layer",
    )
    replay.add_argument("--dataset", choices=profile_names(), default="lastfm")
    replay.add_argument("--scale", type=float, default=0.2)
    replay.add_argument("--num-queries", type=int, default=50)
    replay.add_argument("--k", type=int, default=2)
    replay.add_argument("--method", choices=METHODS, default="indexest")
    replay.add_argument("--epsilon", type=float, default=0.7)
    replay.add_argument("--delta", type=float, default=1000.0)
    replay.add_argument("--max-samples", type=int, default=100)
    replay.add_argument("--index-samples", type=int, default=250)
    replay.add_argument("--seed", type=int, default=2017)
    replay.add_argument("--stream-seed", type=int, default=None,
                        help="seed of the query stream (defaults to --seed)")
    replay.add_argument("--store", default=None,
                        help="index store directory for the warm start (omit to build in-process)")
    replay.add_argument("--workers", type=int, default=2)
    replay.add_argument("--max-batch", type=int, default=8)
    replay.add_argument(
        "--backend",
        choices=("thread", "process"),
        default="thread",
        help="serving backend: a thread pool over one shared engine "
             "(reference oracle), or one frozen engine replica per worker "
             "process reconstructed from mmap'd store arrays (requires "
             "--store; implies --freeze; escapes the GIL)",
    )
    replay.add_argument(
        "--freeze",
        action="store_true",
        help="freeze the engine (read-only) before serving so requests fan "
             "across all workers concurrently instead of serializing behind "
             "the per-engine lock (always on for --backend process)",
    )
    replay.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record one structured span per executed query and write them "
             "as JSON Lines to PATH (works on both backends; process workers "
             "ship their spans back at shutdown)",
    )
    replay.add_argument(
        "--answer-cache",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="memoize frozen answers by query fingerprint "
             "(repro.serve.answers.AnswerCache): repeat queries return the "
             "byte-identical cached result without touching the engine "
             "(implies --freeze on the thread backend; per-worker replica "
             "caches on the process backend)",
    )
    replay.add_argument(
        "--zipf-s",
        type=float,
        default=0.0,
        help="Zipf exponent for the within-group user draw of the query "
             "stream: higher values concentrate repeat traffic on head "
             "users, which is how warm-cache legs dial their hit rate "
             "(0 keeps the historical uniform draw)",
    )
    replay.add_argument(
        "--repeat",
        type=int,
        default=1,
        metavar="N",
        help="replay the same query stream N times through one open service "
             "(the answer cache persists across passes, so pass 2+ measures "
             "the warm path); the JSON document reports the final pass plus "
             "a per-pass \"passes\" list of hit rates and answer digests",
    )
    replay.add_argument("--json", action="store_true", help="emit one JSON document instead of text")
    return parser


def _run_query(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    engine = PitexEngine(
        dataset.graph,
        dataset.model,
        epsilon=args.epsilon,
        delta=args.delta,
        max_samples=args.max_samples,
        index_samples=args.index_samples,
        default_k=args.k,
        seed=args.seed,
        kernel=args.kernel,
    )
    users = dataset.workload(args.group, args.num_queries)
    if not args.json:
        # Text mode streams one line per query as it completes.
        print(f"dataset: {dataset.describe()}")
        for user in users:
            print(engine.query(user=user, k=args.k, method=args.method).describe())
        return 0
    results = [engine.query(user=user, k=args.k, method=args.method) for user in users]
    instrumentation = EstimatorInstrumentation()
    for result in results:
        instrumentation.record_query_result(
            result.method, result.edges_visited, result.samples_drawn
        )
    document = {
        "dataset": dataset.describe(),
        "method": args.method,
        "kernel": resolved_kernel(args.method, args.kernel),
        "k": args.k,
        "counters": instrumentation.as_dict(),
        "results": [
            {
                "user": result.query.user,
                "tag_ids": list(result.tag_ids),
                "tags": list(result.tags),
                "spread": result.spread,
                "evaluated_tag_sets": result.evaluated_tag_sets,
                "pruned_tag_sets": result.pruned_tag_sets,
                "edges_visited": result.edges_visited,
                "samples_drawn": result.samples_drawn,
                "elapsed_seconds": result.elapsed_seconds,
            }
            for result in results
        ],
    }
    print(json.dumps(document, indent=2))
    return 0


def _run_bench(args: argparse.Namespace) -> int:
    config = BenchmarkConfig.preset(args.preset)
    if args.seed is not None:
        config = config.with_overrides(seed=args.seed)
    harness = BenchmarkHarness(config)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        driver = EXPERIMENTS[name]
        result = driver(harness)
        print(format_table(result))
        print()
    return 0


def _run_index_build(args: argparse.Namespace) -> int:
    from repro.serve.store import IndexStore

    dataset = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    store = IndexStore(args.store)
    graph, model = dataset.graph, dataset.model
    built = []
    if args.kind in ("rr-graphs", "both"):
        index, loaded, seconds = store.load_or_build_rr(
            graph, model, args.index_samples, seed=args.seed
        )
        built.append(("rr-graphs", loaded, seconds, index.memory_bytes()))
    if args.kind in ("delaymat", "both"):
        index, loaded, seconds = store.load_or_build_delayed(
            graph, model, args.index_samples, seed=args.seed
        )
        built.append(("delaymat", loaded, seconds, index.memory_bytes()))
    if args.json:
        print(
            json.dumps(
                {
                    "dataset": args.dataset,
                    "scale": args.scale,
                    "index_samples": args.index_samples,
                    "store": str(store.root),
                    "graph_fingerprint": graph.fingerprint(),
                    "indexes": [
                        {"kind": kind, "loaded": loaded, "seconds": seconds, "memory_bytes": size}
                        for kind, loaded, seconds, size in built
                    ],
                },
                indent=2,
            )
        )
        return 0
    print(f"dataset: {dataset.describe()}")
    print(f"store:   {store.root}  (graph fingerprint {graph.fingerprint()[:16]})")
    for kind, loaded, seconds, size in built:
        action = "loaded from store" if loaded else "built and persisted"
        print(f"{kind}: {action} in {seconds:.3f}s ({size / 1e6:.2f} MB in memory)")
    return 0


def _run_serve_replay(args: argparse.Namespace) -> int:
    from repro.obs.trace import TraceRecorder, install_recorder
    from repro.serve.answers import AnswerCache
    from repro.serve.replay import replay_stream
    from repro.serve.service import PitexService
    from repro.serve.sharded import ProcessShardedService, publish_engine_spec
    from repro.serve.store import IndexStore

    if args.backend == "process" and args.store is None:
        print("serve-replay: --backend process requires --store (workers "
              "reconstruct replicas from the persisted arrays)", file=sys.stderr)
        return 2
    if args.repeat < 1:
        print(f"serve-replay: --repeat must be at least 1, got {args.repeat}", file=sys.stderr)
        return 2
    dataset = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    graph, model = dataset.graph, dataset.model
    rr_index = delayed_index = None
    index_info = []
    if args.store is not None:
        store = IndexStore(args.store)
        if args.method in INDEX_METHODS_RR:
            rr_index, loaded, seconds = store.load_or_build_rr(
                graph, model, args.index_samples, seed=args.seed
            )
            index_info.append(("rr-graphs", loaded, seconds))
        elif args.method == "delaymat":
            delayed_index, loaded, seconds = store.load_or_build_delayed(
                graph, model, args.index_samples, seed=args.seed
            )
            index_info.append(("delaymat", loaded, seconds))
    stream_seed = args.stream_seed if args.stream_seed is not None else args.seed
    stream = dataset.query_workload.query_stream(
        args.num_queries, seed=stream_seed, zipf_s=args.zipf_s
    )
    recorder = previous_recorder = None
    if args.trace:
        recorder = TraceRecorder()
        previous_recorder = install_recorder(recorder)
    try:
        if args.backend == "process":
            # One frozen replica per worker process, rebuilt from the store's
            # mmap'd arrays; bitwise-equal to the thread backend by the
            # stateless (seed, query fingerprint) derivation.  Freezing is
            # implicit.
            spec = publish_engine_spec(
                store,
                graph,
                model,
                engine_seed=args.seed,
                index_samples=args.index_samples,
                methods=(args.method,),
                ks=(args.k,),
                epsilon=args.epsilon,
                delta=args.delta,
                max_samples=args.max_samples,
                default_k=args.k,
                index_seed=args.seed,
            )
            with ProcessShardedService(
                spec, num_workers=args.workers, answer_cache=args.answer_cache
            ) as service:
                reports = [
                    replay_stream(service, stream, method=args.method, k=args.k)
                    for _ in range(args.repeat)
                ]
        else:
            engine = PitexEngine(
                graph,
                model,
                epsilon=args.epsilon,
                delta=args.delta,
                max_samples=args.max_samples,
                index_samples=args.index_samples,
                default_k=args.k,
                seed=args.seed,
                rr_index=rr_index,
                delayed_index=delayed_index,
            )
            if args.freeze or args.answer_cache:
                # Warm only the served method; the report's "mode" field
                # records that the run executed on the lock-free frozen path.
                # The answer cache only fronts frozen engines (answers must
                # be pure functions of the fingerprint), so --answer-cache
                # implies --freeze here.
                engine.freeze(methods=[args.method], ks=[args.k])
            answer_cache = AnswerCache() if args.answer_cache else None
            with PitexService.for_engine(
                engine,
                num_workers=args.workers,
                max_batch=args.max_batch,
                answer_cache=answer_cache,
            ) as service:
                reports = [
                    replay_stream(service, stream, method=args.method, k=args.k)
                    for _ in range(args.repeat)
                ]
        # The final pass is the main document; earlier passes survive as the
        # per-pass summaries below (cold pass 1 vs warm pass 2+).
        report = reports[-1]
        # Worker telemetry/span shards only arrive at close (the with-block
        # exit), so the totals -- and the trace file -- are read afterwards.
        report.telemetry = service.metrics.telemetry()
        document_metrics = service.metrics.snapshot()
    finally:
        if recorder is not None:
            install_recorder(previous_recorder)
    passes = [
        {
            "pass": number,
            "hits": pass_report.cache_hits,
            "hit_rate": pass_report.hit_rate,
            "failures": pass_report.failures,
            "wall_seconds": pass_report.wall_seconds,
            "answers_digest": pass_report.answers_digest,
        }
        for number, pass_report in enumerate(reports, start=1)
    ]
    trace_info = None
    if recorder is not None:
        trace_info = {"path": args.trace, "spans": recorder.write_jsonl(args.trace)}
    total_failures = sum(pass_report.failures for pass_report in reports)
    if args.json:
        document = report.to_json()
        document["dataset"] = args.dataset
        document["scale"] = args.scale
        document["indexes"] = [
            {"kind": kind, "loaded": loaded, "seconds": seconds}
            for kind, loaded, seconds in index_info
        ]
        document["passes"] = passes
        document["service"] = document_metrics
        if trace_info is not None:
            document["trace"] = trace_info
        print(json.dumps(document, indent=2))
    else:
        print(f"dataset: {dataset.describe()}")
        for kind, loaded, seconds in index_info:
            action = "loaded from store" if loaded else "built and persisted"
            print(f"{kind}: {action} in {seconds:.3f}s")
        print(format_table(report.to_result()))
        if args.answer_cache or args.repeat > 1:
            for entry in passes:
                print(
                    f"pass {entry['pass']}: hit_rate={entry['hit_rate']:.3f} "
                    f"digest={entry['answers_digest'][:16]}"
                )
        if trace_info is not None:
            print(f"trace: {trace_info['spans']} spans -> {trace_info['path']}")
    return 0 if total_failures == 0 else 1


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (also exposed as the ``pitex`` console script)."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "query":
        return _run_query(args)
    if args.command == "bench":
        return _run_bench(args)
    if args.command == "index-build":
        return _run_index_build(args)
    if args.command == "serve-replay":
        return _run_serve_replay(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover - manual invocation
    sys.exit(main())
