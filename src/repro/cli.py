"""Command-line interface.

Two sub-commands are provided::

    pitex query --dataset lastfm --group mid --k 3 --method indexest+
    pitex bench --experiment fig7 --preset smoke

``query`` answers a handful of PITEX queries on a synthetic dataset and prints
the selected tag sets; ``bench`` runs one (or all) of the table/figure drivers
and prints the reproduced rows.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench.config import BenchmarkConfig
from repro.bench.experiments import EXPERIMENTS
from repro.bench.harness import BenchmarkHarness
from repro.bench.reporting import format_table
from repro.core.engine import METHODS, PitexEngine
from repro.datasets.profiles import profile_names
from repro.datasets.synthetic import load_dataset


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pitex",
        description="PITEX reproduction: personalized social influential tags exploration",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    query = subparsers.add_parser("query", help="answer PITEX queries on a synthetic dataset")
    query.add_argument("--dataset", choices=profile_names(), default="lastfm")
    query.add_argument("--scale", type=float, default=0.3, help="dataset scale factor")
    query.add_argument("--group", choices=("high", "mid", "low"), default="mid")
    query.add_argument("--num-queries", type=int, default=3)
    query.add_argument("--k", type=int, default=3)
    query.add_argument("--method", choices=METHODS, default="indexest+")
    query.add_argument("--epsilon", type=float, default=0.7)
    query.add_argument("--delta", type=float, default=1000.0)
    query.add_argument("--max-samples", type=int, default=300)
    query.add_argument("--index-samples", type=int, default=800)
    query.add_argument("--seed", type=int, default=2017)

    bench = subparsers.add_parser("bench", help="run table/figure reproduction experiments")
    bench.add_argument(
        "--experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        default="all",
        help="which table/figure to reproduce",
    )
    bench.add_argument("--preset", choices=("smoke", "default", "full"), default="smoke")
    bench.add_argument("--seed", type=int, default=None)
    return parser


def _run_query(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    print(f"dataset: {dataset.describe()}")
    engine = PitexEngine(
        dataset.graph,
        dataset.model,
        epsilon=args.epsilon,
        delta=args.delta,
        max_samples=args.max_samples,
        index_samples=args.index_samples,
        default_k=args.k,
        seed=args.seed,
    )
    users = dataset.workload(args.group, args.num_queries)
    for user in users:
        result = engine.query(user=user, k=args.k, method=args.method)
        print(result.describe())
    return 0


def _run_bench(args: argparse.Namespace) -> int:
    config = BenchmarkConfig.preset(args.preset)
    if args.seed is not None:
        config = config.with_overrides(seed=args.seed)
    harness = BenchmarkHarness(config)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        driver = EXPERIMENTS[name]
        result = driver(harness)
        print(format_table(result))
        print()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point (also exposed as the ``pitex`` console script)."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "query":
        return _run_query(args)
    if args.command == "bench":
        return _run_bench(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover - manual invocation
    sys.exit(main())
