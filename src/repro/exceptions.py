"""Exception hierarchy for the PITEX reproduction.

All library-specific failures derive from :class:`PitexError` so callers can
distinguish library problems from generic Python errors with a single except
clause.
"""

from __future__ import annotations


class PitexError(Exception):
    """Base class for every error raised by the library."""


class InvalidParameterError(PitexError, ValueError):
    """A public API entry point received an out-of-range or ill-typed argument."""


class GraphError(PitexError):
    """A graph operation failed (unknown vertex, duplicate edge, malformed file)."""


class UnknownVertexError(GraphError, KeyError):
    """The requested vertex does not exist in the graph."""


class UnknownEdgeError(GraphError, KeyError):
    """The requested edge does not exist in the graph."""


class ModelError(PitexError):
    """The topic/tag model is inconsistent with the graph or the query."""


class UnknownTagError(ModelError, KeyError):
    """The requested tag does not exist in the tag vocabulary."""


class IndexError_(PitexError):
    """An index structure was used before being built or with the wrong graph."""


class IndexNotBuiltError(IndexError_):
    """A query was issued against an index whose ``build`` method was not called."""


class EstimationError(PitexError):
    """An influence estimation could not be carried out."""


class EngineFrozenError(PitexError, RuntimeError):
    """A mutation was attempted on an engine (or a structure it owns) after
    :meth:`~repro.core.engine.PitexEngine.freeze` flipped it read-only."""


class StoreError(PitexError):
    """An :class:`~repro.serve.store.IndexStore` entry is missing or corrupt
    in a way that load-or-build cannot silently repair (e.g. a shared graph
    bundle whose reconstructed fingerprint no longer matches its manifest)."""


class WorkerError(PitexError, RuntimeError):
    """A process-sharded serving worker failed: it crashed, could not build
    its engine replica, or returned an unpicklable payload.  Raised (or set as
    a response error) by :class:`~repro.serve.sharded.ProcessShardedService`
    instead of hanging the caller."""
