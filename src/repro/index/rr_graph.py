"""The RR-Graph sample structure (Definition 2) and tag-aware reachability.

An RR-Graph of a vertex ``v`` is one reverse possible world rooted at ``v``
drawn under the *maximum* edge probabilities ``p(e) = max_z p(e|z)``: every
edge examined during the reverse traversal receives a uniform random value
``c(e)`` and survives iff ``c(e) <= p(e)``.  Because ``p(e|W) <= p(e)`` for any
tag set, the RR-Graph never misses a vertex that could influence ``v`` under
any ``W``; at query time the same ``c(e)`` values are compared against
``p(e|W)`` to decide which stored edges are live (Definition 3), so a single
offline sample serves every future query.

Generation runs frontier-at-a-time on the graph's reverse CSR arrays: all
in-edges of a frontier are gathered with two NumPy indexing operations and
their ``c(e)`` values drawn in one batch.  Query-time matching
(:func:`tag_aware_reachable`) BFSes over a compact per-RR-Graph CSR built once
and cached, so the thousands of matches of one PITEX exploration never probe
Python dicts.  The original per-edge walkers remain available under
``kernel="dict"`` as the reference implementation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.graph.csr import csr_order, slice_positions
from repro.graph.digraph import TopicSocialGraph
from repro.utils.rng import RandomSource


@dataclass
class RRGraph:
    """One reverse-reachable sample graph rooted at ``root``.

    Attributes
    ----------
    root:
        The uniformly sampled target vertex ``v``.
    vertices:
        Vertices that reach ``root`` through surviving edges.
    edge_ids / edge_sources / edge_targets / edge_thresholds:
        Parallel arrays describing the surviving edges and their ``c(e)``
        values.  ``edge_thresholds[i]`` is the value ``p(e|W)`` must reach for
        edge ``i`` to be live at query time.
    recovery_weight:
        Importance weight attached by the delayed-materialization recovery
        (Algorithm 4): recovered graphs are drawn with the query user's forward
        sample as the proposal, so each carries the size of that forward sample
        as a self-normalized importance weight (1.0 for offline-materialized
        graphs, which are drawn from the target distribution directly).
    """

    root: int
    vertices: Set[int]
    edge_ids: List[int] = field(default_factory=list)
    edge_sources: List[int] = field(default_factory=list)
    edge_targets: List[int] = field(default_factory=list)
    edge_thresholds: List[float] = field(default_factory=list)
    recovery_weight: float = 1.0
    _adjacency: Optional[Dict[int, List[int]]] = field(default=None, repr=False)
    _local_csr: Optional["_LocalCSR"] = field(default=None, repr=False)

    @property
    def num_vertices(self) -> int:
        """Number of vertices stored in this RR-Graph."""
        return len(self.vertices)

    @property
    def num_edges(self) -> int:
        """Number of surviving edges stored in this RR-Graph."""
        return len(self.edge_ids)

    def contains(self, vertex: int) -> bool:
        """Whether ``vertex`` can possibly influence the root under some tag set."""
        return vertex in self.vertices

    def add_edge(self, edge_id: int, source: int, target: int, threshold: float) -> None:
        """Record one surviving edge with its ``c(e)`` value."""
        self.edge_ids.append(edge_id)
        self.edge_sources.append(source)
        self.edge_targets.append(target)
        self.edge_thresholds.append(float(threshold))
        self._adjacency = None
        self._local_csr = None

    def extend_edges(
        self,
        edge_ids: Sequence[int],
        sources: Sequence[int],
        targets: Sequence[int],
        thresholds: Sequence[float],
    ) -> None:
        """Bulk-record surviving edges (one call per BFS frontier)."""
        self.edge_ids.extend(int(e) for e in edge_ids)
        self.edge_sources.extend(int(s) for s in sources)
        self.edge_targets.extend(int(t) for t in targets)
        self.edge_thresholds.extend(float(c) for c in thresholds)
        self._adjacency = None
        self._local_csr = None

    def adjacency(self) -> Dict[int, List[int]]:
        """Out-adjacency restricted to the stored edges: source -> local edge indices."""
        if self._adjacency is None:
            adjacency: Dict[int, List[int]] = {}
            for local_index, source in enumerate(self.edge_sources):
                adjacency.setdefault(source, []).append(local_index)
            self._adjacency = adjacency
        return self._adjacency

    def local_csr(self) -> "_LocalCSR":
        """The cached compact CSR over the stored edges (built on first use)."""
        if self._local_csr is None:
            self._local_csr = _LocalCSR.from_rr_graph(self)
        return self._local_csr

    def out_edges_of(self, vertex: int) -> List[int]:
        """Local edge indices leaving ``vertex`` inside this RR-Graph."""
        return self.adjacency().get(vertex, [])

    def in_edges_of(self, vertex: int) -> List[int]:
        """Local edge indices entering ``vertex`` inside this RR-Graph."""
        return [i for i, target in enumerate(self.edge_targets) if target == vertex]

    def memory_bytes(self) -> int:
        """Approximate footprint: vertex ids + 4 numbers per stored edge."""
        return 8 * self.num_vertices + (8 * 3 + 8) * self.num_edges


class _LocalCSR:
    """Compact CSR over one RR-Graph's stored edges.

    Vertex ids are remapped to dense local ids (``searchsorted`` over the
    sorted member array), so a graph of a few dozen edges BFSes over arrays a
    cache line long instead of a dict of Python lists.
    """

    __slots__ = ("members", "indptr", "local_targets", "slot_edge_ids", "slot_thresholds", "root_local")

    def __init__(self, rr_graph: RRGraph) -> None:
        sources = np.asarray(rr_graph.edge_sources, dtype=np.int64)
        targets = np.asarray(rr_graph.edge_targets, dtype=np.int64)
        # Union the vertex set with the edge endpoints (and root) so a graph
        # assembled through the public add_edge/extend_edges API maps cleanly
        # even when its `vertices` set was not kept in sync by the caller.
        vertex_ids = np.fromiter(rr_graph.vertices, dtype=np.int64, count=len(rr_graph.vertices))
        members = np.unique(
            np.concatenate((vertex_ids, sources, targets, np.array([rr_graph.root], dtype=np.int64)))
        )
        self.members = members
        thresholds = np.asarray(rr_graph.edge_thresholds, dtype=float)
        edge_ids = np.asarray(rr_graph.edge_ids, dtype=np.int64)
        local_sources = np.searchsorted(members, sources)
        self.indptr, order = csr_order(local_sources, len(members))
        self.local_targets = np.searchsorted(members, targets[order])
        self.slot_edge_ids = edge_ids[order]
        self.slot_thresholds = thresholds[order]
        self.root_local = int(np.searchsorted(members, rr_graph.root))

    @classmethod
    def from_rr_graph(cls, rr_graph: RRGraph) -> "_LocalCSR":
        return cls(rr_graph)

    def local_id(self, vertex: int) -> Optional[int]:
        """Dense local id of a global vertex, or ``None`` if not a member."""
        position = int(np.searchsorted(self.members, vertex))
        if position >= len(self.members) or self.members[position] != vertex:
            return None
        return position


def generate_rr_graph(
    graph: TopicSocialGraph,
    root: int,
    rng: RandomSource,
    max_probabilities: Optional[np.ndarray] = None,
    kernel: str = "csr",
) -> RRGraph:
    """Draw one RR-Graph rooted at ``root`` (Definition 2).

    The reverse BFS examines every in-edge of every reached vertex, draws its
    ``c(e)`` lazily, and keeps the edge iff ``c(e) <= p(e)``.  Edges whose
    ``c(e)`` exceeds ``p(e)`` can never be live under any tag set and are
    dropped entirely.  The default CSR kernel expands whole frontiers with one
    gather and one batched uniform draw; ``kernel="dict"`` is the per-edge
    reference walker.
    """
    if max_probabilities is None:
        max_probabilities = graph.max_edge_probabilities()
    if kernel == "dict":
        return _generate_rr_graph_dict(graph, root, rng, max_probabilities)
    csr = graph.csr
    rr_graph = RRGraph(root=root, vertices={root})
    visited = np.zeros(csr.num_vertices, dtype=bool)
    visited[root] = True
    frontier = np.array([root], dtype=np.int64)
    while frontier.size:
        positions = csr.in_positions(frontier)
        if not positions.size:
            break
        edge_ids = csr.in_edge_ids[positions]
        maxima = max_probabilities[edge_ids]
        thresholds = rng.uniforms(edge_ids.size)
        keep = (maxima > 0.0) & (thresholds <= maxima)
        if not keep.any():
            break
        kept_edges = edge_ids[keep]
        kept_sources = csr.in_sources[positions][keep]
        rr_graph.extend_edges(
            kept_edges, kept_sources, csr.edge_targets[kept_edges], thresholds[keep]
        )
        fresh = kept_sources[~visited[kept_sources]]
        if fresh.size:
            fresh = np.unique(fresh)
            visited[fresh] = True
            rr_graph.vertices.update(fresh.tolist())
            frontier = fresh
        else:
            frontier = np.empty(0, dtype=np.int64)
    return rr_graph


def _generate_rr_graph_dict(
    graph: TopicSocialGraph,
    root: int,
    rng: RandomSource,
    max_probabilities: np.ndarray,
) -> RRGraph:
    """Reference per-edge implementation of :func:`generate_rr_graph`."""
    rr_graph = RRGraph(root=root, vertices={root})
    queue = deque([root])
    while queue:
        vertex = queue.popleft()
        # borrowed read-only: the public in_edges() copies per call, which
        # would tax this reference walker (see graph.algorithms counterparts)
        in_edges = graph._in[vertex]
        if not in_edges:
            continue
        thresholds = rng.uniforms(len(in_edges))
        for edge_id, threshold in zip(in_edges, thresholds):
            max_probability = max_probabilities[edge_id]
            if max_probability <= 0.0 or threshold > max_probability:
                continue
            source, target = graph.edge_endpoints(edge_id)
            rr_graph.add_edge(edge_id, source, target, float(threshold))
            if source not in rr_graph.vertices:
                rr_graph.vertices.add(source)
                queue.append(source)
    return rr_graph


def tag_aware_reachable(
    rr_graph: RRGraph,
    user: int,
    edge_probabilities: Sequence[float],
    kernel: str = "csr",
) -> Tuple[bool, int]:
    """Definition 3: does ``user`` reach the root through live edges?

    An edge is live when ``p(e|W) >= c(e)``.  Returns ``(reachable,
    edges_checked)`` so callers can account verification cost.  The exact
    ``edges_checked`` value depends on traversal order (both kernels stop as
    soon as the root is reached), so the two kernels agree on the reachability
    bit but may differ slightly in the accounting.
    """
    if user == rr_graph.root:
        return True, 0
    if kernel == "dict":
        return _tag_aware_reachable_dict(rr_graph, user, edge_probabilities)
    if user not in rr_graph.vertices:
        return False, 0
    if not rr_graph.num_edges:
        return False, 0
    probabilities = np.asarray(edge_probabilities, dtype=float)
    local = rr_graph.local_csr()
    start = local.local_id(user)
    if start is None:
        return False, 0
    live = probabilities[local.slot_edge_ids]
    live_mask = (live > 0.0) & (live >= local.slot_thresholds)
    visited = np.zeros(len(local.members), dtype=bool)
    visited[start] = True
    frontier = np.array([start], dtype=np.int64)
    checked = 0
    while frontier.size:
        positions = slice_positions(local.indptr, frontier)
        if not positions.size:
            break
        checked += int(positions.size)
        targets = local.local_targets[positions][live_mask[positions]]
        fresh = targets[~visited[targets]]
        if not fresh.size:
            break
        if (fresh == local.root_local).any():
            return True, checked
        visited[fresh] = True
        frontier = np.unique(fresh)
    return False, checked


def _tag_aware_reachable_dict(
    rr_graph: RRGraph,
    user: int,
    edge_probabilities: Sequence[float],
) -> Tuple[bool, int]:
    """Reference per-edge implementation of :func:`tag_aware_reachable`."""
    if user not in rr_graph.vertices:
        return False, 0
    probabilities = np.asarray(edge_probabilities, dtype=float)
    visited = {user}
    queue = deque([user])
    checked = 0
    while queue:
        vertex = queue.popleft()
        for local_index in rr_graph.out_edges_of(vertex):
            checked += 1
            probability = probabilities[rr_graph.edge_ids[local_index]]
            if probability <= 0.0 or probability < rr_graph.edge_thresholds[local_index]:
                continue
            target = rr_graph.edge_targets[local_index]
            if target == rr_graph.root:
                return True, checked
            if target not in visited:
                visited.add(target)
                queue.append(target)
    return False, checked


def structurally_reachable(rr_graph: RRGraph, user: int) -> Set[int]:
    """Vertices reachable from ``user`` inside the RR-Graph ignoring tag probabilities."""
    if user not in rr_graph.vertices:
        return set()
    visited = {user}
    queue = deque([user])
    while queue:
        vertex = queue.popleft()
        for local_index in rr_graph.out_edges_of(vertex):
            target = rr_graph.edge_targets[local_index]
            if target not in visited:
                visited.add(target)
                queue.append(target)
    return visited
