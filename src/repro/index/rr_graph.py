"""The RR-Graph sample structure (Definition 2) and tag-aware reachability.

An RR-Graph of a vertex ``v`` is one reverse possible world rooted at ``v``
drawn under the *maximum* edge probabilities ``p(e) = max_z p(e|z)``: every
edge examined during the reverse traversal receives a uniform random value
``c(e)`` and survives iff ``c(e) <= p(e)``.  Because ``p(e|W) <= p(e)`` for any
tag set, the RR-Graph never misses a vertex that could influence ``v`` under
any ``W``; at query time the same ``c(e)`` values are compared against
``p(e|W)`` to decide which stored edges are live (Definition 3), so a single
offline sample serves every future query.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.graph.digraph import TopicSocialGraph
from repro.utils.rng import RandomSource


@dataclass
class RRGraph:
    """One reverse-reachable sample graph rooted at ``root``.

    Attributes
    ----------
    root:
        The uniformly sampled target vertex ``v``.
    vertices:
        Vertices that reach ``root`` through surviving edges.
    edge_ids / edge_sources / edge_targets / edge_thresholds:
        Parallel arrays describing the surviving edges and their ``c(e)``
        values.  ``edge_thresholds[i]`` is the value ``p(e|W)`` must reach for
        edge ``i`` to be live at query time.
    recovery_weight:
        Importance weight attached by the delayed-materialization recovery
        (Algorithm 4): recovered graphs are drawn with the query user's forward
        sample as the proposal, so each carries the size of that forward sample
        as a self-normalized importance weight (1.0 for offline-materialized
        graphs, which are drawn from the target distribution directly).
    """

    root: int
    vertices: Set[int]
    edge_ids: List[int] = field(default_factory=list)
    edge_sources: List[int] = field(default_factory=list)
    edge_targets: List[int] = field(default_factory=list)
    edge_thresholds: List[float] = field(default_factory=list)
    recovery_weight: float = 1.0
    _adjacency: Optional[Dict[int, List[int]]] = field(default=None, repr=False)

    @property
    def num_vertices(self) -> int:
        """Number of vertices stored in this RR-Graph."""
        return len(self.vertices)

    @property
    def num_edges(self) -> int:
        """Number of surviving edges stored in this RR-Graph."""
        return len(self.edge_ids)

    def contains(self, vertex: int) -> bool:
        """Whether ``vertex`` can possibly influence the root under some tag set."""
        return vertex in self.vertices

    def add_edge(self, edge_id: int, source: int, target: int, threshold: float) -> None:
        """Record one surviving edge with its ``c(e)`` value."""
        self.edge_ids.append(edge_id)
        self.edge_sources.append(source)
        self.edge_targets.append(target)
        self.edge_thresholds.append(float(threshold))
        self._adjacency = None

    def adjacency(self) -> Dict[int, List[int]]:
        """Out-adjacency restricted to the stored edges: source -> local edge indices."""
        if self._adjacency is None:
            adjacency: Dict[int, List[int]] = {}
            for local_index, source in enumerate(self.edge_sources):
                adjacency.setdefault(source, []).append(local_index)
            self._adjacency = adjacency
        return self._adjacency

    def out_edges_of(self, vertex: int) -> List[int]:
        """Local edge indices leaving ``vertex`` inside this RR-Graph."""
        return self.adjacency().get(vertex, [])

    def in_edges_of(self, vertex: int) -> List[int]:
        """Local edge indices entering ``vertex`` inside this RR-Graph."""
        return [i for i, target in enumerate(self.edge_targets) if target == vertex]

    def memory_bytes(self) -> int:
        """Approximate footprint: vertex ids + 4 numbers per stored edge."""
        return 8 * self.num_vertices + (8 * 3 + 8) * self.num_edges


def generate_rr_graph(
    graph: TopicSocialGraph,
    root: int,
    rng: RandomSource,
    max_probabilities: Optional[np.ndarray] = None,
) -> RRGraph:
    """Draw one RR-Graph rooted at ``root`` (Definition 2).

    The reverse BFS examines every in-edge of every reached vertex, draws its
    ``c(e)`` lazily, and keeps the edge iff ``c(e) <= p(e)``.  Edges whose
    ``c(e)`` exceeds ``p(e)`` can never be live under any tag set and are
    dropped entirely.
    """
    if max_probabilities is None:
        max_probabilities = graph.max_edge_probabilities()
    rr_graph = RRGraph(root=root, vertices={root})
    queue = deque([root])
    while queue:
        vertex = queue.popleft()
        in_edges = graph.in_edges(vertex)
        if not in_edges:
            continue
        thresholds = rng.uniforms(len(in_edges))
        for edge_id, threshold in zip(in_edges, thresholds):
            max_probability = max_probabilities[edge_id]
            if max_probability <= 0.0 or threshold > max_probability:
                continue
            source, target = graph.edge_endpoints(edge_id)
            rr_graph.add_edge(edge_id, source, target, float(threshold))
            if source not in rr_graph.vertices:
                rr_graph.vertices.add(source)
                queue.append(source)
    return rr_graph


def tag_aware_reachable(
    rr_graph: RRGraph,
    user: int,
    edge_probabilities: Sequence[float],
) -> Tuple[bool, int]:
    """Definition 3: does ``user`` reach the root through live edges?

    An edge is live when ``p(e|W) >= c(e)``.  Returns ``(reachable,
    edges_checked)`` so callers can account verification cost.
    """
    if user == rr_graph.root:
        return True, 0
    if user not in rr_graph.vertices:
        return False, 0
    probabilities = np.asarray(edge_probabilities, dtype=float)
    visited = {user}
    queue = deque([user])
    checked = 0
    while queue:
        vertex = queue.popleft()
        for local_index in rr_graph.out_edges_of(vertex):
            checked += 1
            probability = probabilities[rr_graph.edge_ids[local_index]]
            if probability <= 0.0 or probability < rr_graph.edge_thresholds[local_index]:
                continue
            target = rr_graph.edge_targets[local_index]
            if target == rr_graph.root:
                return True, checked
            if target not in visited:
                visited.add(target)
                queue.append(target)
    return False, checked


def structurally_reachable(rr_graph: RRGraph, user: int) -> Set[int]:
    """Vertices reachable from ``user`` inside the RR-Graph ignoring tag probabilities."""
    if user not in rr_graph.vertices:
        return set()
    visited = {user}
    queue = deque([user])
    while queue:
        vertex = queue.popleft()
        for local_index in rr_graph.out_edges_of(vertex):
            target = rr_graph.edge_targets[local_index]
            if target not in visited:
                visited.add(target)
                queue.append(target)
    return visited
