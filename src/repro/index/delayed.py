"""Delayed materialization of RR-Graphs (Sec. 6.3, Algorithm 4, ``DelayMat``).

Materializing the full RR-Graph index costs memory proportional to the total
size of all sampled graphs (Table 3 shows gigabytes for the larger datasets).
Delayed materialization stores only, per user, *how many* of the offline
RR-Graphs contained that user (``theta(u)``) plus the global sample count
``theta``; at query time, ``theta(u)`` RR-Graphs containing the query user are
*recovered* with the Algorithm 4 procedure:

1. draw a forward live-edge sample from the user under the maximum edge
   probabilities ``p(e)`` (the lazy sampler provides this);
2. uniformly pick a root ``v'`` among the activated vertices;
3. keep the activated vertices that reach ``v'`` through the live edges, and
4. re-draw each kept edge's ``c(e)`` uniformly in ``[0, p(e))``.

Theorem 3 shows the recovered graphs follow the same distribution as the
offline RR-Graphs conditioned on containing the user, so the estimate keeps the
Algorithm 3 guarantee while the stored index shrinks to one counter per user.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.exceptions import IndexNotBuiltError
from repro.graph.algorithms import live_edge_world
from repro.graph.csr import csr_order, slice_positions
from repro.graph.digraph import TopicSocialGraph
from repro.index.pruning import choose_edge_cut
from repro.index.rr_graph import RRGraph, generate_rr_graph, tag_aware_reachable
from repro.sampling.base import InfluenceEstimate, InfluenceEstimator, SampleBudget
from repro.topics.model import TagTopicModel
from repro.utils.freeze import guard_check
from repro.utils.rng import RandomSource, SeedLike, spawn_rng
from repro.utils.timer import Stopwatch


class DelayedMaterializationIndex:
    """Offline phase of ``DelayMat``: count containment, store no graphs."""

    def __init__(self, graph: TopicSocialGraph, num_samples: int, seed: SeedLike = None) -> None:
        self.graph = graph
        self.num_samples = int(num_samples)
        self._rng = spawn_rng(seed)
        self.containment_counts: Dict[int, int] = {}
        self.build_seconds: float = 0.0
        self._built = False
        self._built_version: Optional[int] = None

    def build(self) -> "DelayedMaterializationIndex":
        """Sample ``theta`` RR-Graphs, record only per-user containment counts."""
        guard_check(self, "rebuild a frozen delayed-materialization index")
        watch = Stopwatch().start()
        max_probabilities = self.graph.max_edge_probabilities()
        self.containment_counts = {}
        for _ in range(self.num_samples):
            root = self._rng.integer(0, self.graph.num_vertices)
            rr_graph = generate_rr_graph(self.graph, root, self._rng, max_probabilities)
            for vertex in rr_graph.vertices:
                self.containment_counts[vertex] = self.containment_counts.get(vertex, 0) + 1
        self._built = True
        self._built_version = self.graph.version
        watch.stop()
        self.build_seconds = watch.elapsed
        return self

    @property
    def is_built(self) -> bool:
        """Whether :meth:`build` has completed for the graph's *current* state.

        As for :class:`~repro.index.rr_index.RRGraphIndex`, a graph mutation
        after the build marks the counts stale and the index reports unbuilt.
        """
        return self._built and self._built_version == self.graph.version

    def _require_built(self) -> None:
        if not self._built:
            raise IndexNotBuiltError("DelayedMaterializationIndex.build() must be called first")
        if self._built_version != self.graph.version:
            raise IndexNotBuiltError(
                "the graph was mutated after DelayedMaterializationIndex.build(); rebuild the index"
            )

    def containment_count(self, user: int) -> int:
        """``theta(u)``: number of offline RR-Graphs that contained ``user``."""
        self._require_built()
        return self.containment_counts.get(user, 0)

    def memory_bytes(self) -> int:
        """Footprint: one integer per user with non-zero containment."""
        self._require_built()
        return 16 * len(self.containment_counts)

    # -------------------------------------------------------------- serialize
    def to_arrays(self) -> Dict[str, np.ndarray]:
        """The per-user containment counters as two parallel arrays.

        Users are sorted so the serialized form is canonical; the counts are
        the index's entire state (recovery is re-randomized at query time).
        """
        self._require_built()
        users = np.array(sorted(self.containment_counts), dtype=np.int64)
        counts = np.array([self.containment_counts[int(u)] for u in users], dtype=np.int64)
        return {
            "containment_users": users,
            "containment_counts": counts,
            "num_samples": np.array([self.num_samples], dtype=np.int64),
        }

    @classmethod
    def from_arrays(
        cls,
        graph: TopicSocialGraph,
        arrays: Dict[str, np.ndarray],
        built_version: Optional[int] = None,
        build_seconds: float = 0.0,
        seed: SeedLike = None,
    ) -> "DelayedMaterializationIndex":
        """Reassemble an index from :meth:`to_arrays` output.

        ``seed`` feeds the recovery RNG of the reloaded index.  Note that a
        *built* index's own RNG has already consumed draws during
        :meth:`build`, so same-seed built and loaded indexes do NOT recover
        identical RR-Graphs through their internal streams.  For bitwise
        reproducibility, pass an explicit seed at the estimator level
        instead: two :class:`DelayedIndexEstimator` instances constructed
        with the same ``seed`` over equal containment counts produce
        identical estimates (this is what the serving layer and the
        roundtrip tests rely on).

        ``arrays`` may be read-only ``numpy.memmap`` views (what
        :meth:`IndexStore.open_mapped` hands a process replica): the counts
        are copied into a plain dict and the mapped arrays are never
        mutated, so one mapped file can back many worker processes.
        """
        index = cls(graph, int(arrays["num_samples"][0]), seed=seed)
        users = np.asarray(arrays["containment_users"], dtype=np.int64)
        counts = np.asarray(arrays["containment_counts"], dtype=np.int64)
        index.containment_counts = {int(u): int(c) for u, c in zip(users, counts)}
        index._built = True
        index._built_version = graph.version if built_version is None else int(built_version)
        index.build_seconds = float(build_seconds)
        return index

    # ----------------------------------------------------------------- recover
    def recover_rr_graph(self, user: int, rng: Optional[RandomSource] = None) -> RRGraph:
        """Algorithm 4: recover one RR-Graph containing ``user``.

        All four steps run on the CSR arrays: the forward possible world is
        realized with one batched coin flip per frontier, the live edges are
        regrouped by target with one ``bincount`` / ``argsort`` pass for the
        reverse membership BFS, and the surviving ``c(e)`` values are re-drawn
        in a single batched uniform call.
        """
        if rng is None:
            guard_check(self, "draw from a frozen index's shared recovery RNG")
            rng = self._rng
        csr = self.graph.csr
        max_probabilities = self.graph.max_edge_probabilities()
        # 1) forward live-edge sample from the user under p(e).
        activated_mask, live_edges, _ = live_edge_world(
            self.graph, user, max_probabilities, rng, collect_edges=True
        )
        activated = np.flatnonzero(activated_mask)
        # 2) uniform root among the activated vertices.
        root = int(activated[rng.integer(0, len(activated))])
        # 3) keep activated vertices that reach the root through live edges
        #    (every live edge has both endpoints activated by construction).
        live_sources = csr.edge_sources[live_edges]
        live_targets = csr.edge_targets[live_edges]
        by_target_indptr, by_target_order = csr_order(live_targets, csr.num_vertices)
        member_mask = np.zeros(csr.num_vertices, dtype=bool)
        member_mask[root] = True
        frontier = np.array([root], dtype=np.int64)
        while frontier.size:
            positions = slice_positions(by_target_indptr, frontier)
            if not positions.size:
                break
            sources = live_sources[by_target_order[positions]]
            fresh = sources[~member_mask[sources]]
            if not fresh.size:
                break
            member_mask[fresh] = True
            frontier = np.unique(fresh)
        members = set(np.flatnonzero(member_mask).tolist())
        # 4) re-draw c(e) uniformly in [0, p(e)) for kept edges between members.
        #    The recovered graph carries |V'| as an importance weight: the true
        #    conditional distribution of "an offline RR-Graph containing u"
        #    weights forward worlds proportionally to their activated size,
        #    while the Algorithm 4 proposal draws every world with its plain
        #    probability, so the self-normalized weight |V'| corrects the gap
        #    (see DESIGN.md, "DelayMat recovery weighting").
        rr_graph = RRGraph(root=root, vertices=members, recovery_weight=float(len(activated)))
        keep = member_mask[live_sources] & member_mask[live_targets]
        kept_edges = live_edges[keep]
        if kept_edges.size:
            thresholds = rng.uniforms_upto(max_probabilities[kept_edges])
            rr_graph.extend_edges(
                kept_edges, live_sources[keep], live_targets[keep], thresholds
            )
        return rr_graph

    def recover_for_user(self, user: int, rng: Optional[RandomSource] = None) -> List[RRGraph]:
        """Recover ``theta(u)`` RR-Graphs for ``user`` (query phase of DelayMat)."""
        count = self.containment_count(user)
        return [self.recover_rr_graph(user, rng) for _ in range(count)]


def build_recovery_filters(
    graphs: List[RRGraph], user: int, max_probabilities: np.ndarray
) -> Tuple[Dict[int, List[Tuple[float, int]]], Set[int]]:
    """Build the cut-pruning filter over already-recovered ``graphs``.

    Pure function of the recovered graphs (no RNG draws), shared between the
    lazy per-estimator path and the freeze-time table build
    (:mod:`repro.index.tables`).
    """
    inverted: Dict[int, List[Tuple[float, int]]] = {}
    always: Set[int] = set()
    for position, rr_graph in enumerate(graphs):
        cut = choose_edge_cut(rr_graph, user, position, max_probabilities)
        if cut.always_live:
            always.add(position)
            continue
        if not cut.entries:
            continue
        for edge_id, threshold in cut.entries:
            inverted.setdefault(edge_id, []).append((threshold, position))
    for postings in inverted.values():
        postings.sort()
    return inverted, always


class DelayedIndexEstimator(InfluenceEstimator):
    """The ``DelayMat`` estimator: recover-then-match with optional cut pruning.

    The recovered graphs are cached per user so the many tag-set evaluations of
    one PITEX exploration pay the recovery cost only once -- mirroring the
    paper's query-phase behaviour where recovery happens once per query user.

    ``shared_graphs`` / ``shared_filters`` (when given) are read-only per-user
    tables owned by a frozen engine (:mod:`repro.index.tables`): users found
    there skip recovery entirely, users absent fall back to the per-instance
    caches.  The tables are recovered from the engine's own label-derived
    streams, so every same-seed replica shares them bit for bit.
    """

    name = "delaymat"

    def __init__(
        self,
        graph: TopicSocialGraph,
        model: TagTopicModel,
        index: DelayedMaterializationIndex,
        budget: Optional[SampleBudget] = None,
        use_pruning: bool = True,
        seed: SeedLike = None,
        shared_graphs: Optional[Dict[int, List[RRGraph]]] = None,
        shared_filters: Optional[
            Dict[int, Tuple[Dict[int, List[Tuple[float, int]]], Set[int]]]
        ] = None,
    ) -> None:
        super().__init__(graph, model, budget)
        if index.graph is not graph:
            raise IndexNotBuiltError("the index was built for a different graph instance")
        self.index = index
        self.use_pruning = use_pruning
        self._rng = spawn_rng(seed)
        self._shared_graphs = shared_graphs
        self._shared_filters = shared_filters
        self._recovered: Dict[int, List[RRGraph]] = {}
        self._filters: Dict[int, Tuple[Dict[int, List[Tuple[float, int]]], Set[int]]] = {}

    # ---------------------------------------------------------------- recover
    def _graphs_for(self, user: int) -> List[RRGraph]:
        if self._shared_graphs is not None:
            shared = self._shared_graphs.get(user)
            if shared is not None:
                return shared
        graphs = self._recovered.get(user)
        if graphs is None:
            guard_check(self, "recover RR-Graphs into a frozen estimator's shared cache")
            graphs = self.index.recover_for_user(user, self._rng)
            self._recovered[user] = graphs
        return graphs

    def _filter_for(self, user: int):
        if self._shared_filters is not None:
            shared = self._shared_filters.get(user)
            if shared is not None:
                return shared
        cached = self._filters.get(user)
        if cached is not None:
            return cached
        guard_check(self, "build filter structures in a frozen estimator's shared cache")
        filters = build_recovery_filters(
            self._graphs_for(user), user, self.graph.max_edge_probabilities()
        )
        self._filters[user] = filters
        return filters

    # --------------------------------------------------------------- estimate
    def estimate_with_probabilities(
        self,
        user: int,
        edge_probabilities: Sequence[float],
        num_samples: Optional[int] = None,
    ) -> InfluenceEstimate:
        """Recover (cached) RR-Graphs for the user and count live matches."""
        graphs = self._graphs_for(user)
        probabilities = np.asarray(edge_probabilities, dtype=float)
        checked_edges = 0
        if not graphs:
            return InfluenceEstimate(
                value=0.0, num_samples=0, edges_visited=0, reachable_size=0, method=self.name
            )
        if self.use_pruning:
            inverted, always = self._filter_for(user)
            candidates: Set[int] = set(always)
            for edge_id, postings in inverted.items():
                probability = probabilities[edge_id]
                if probability <= 0.0:
                    continue
                for threshold, position in postings:
                    checked_edges += 1
                    if threshold > probability:
                        break
                    candidates.add(position)
        else:
            candidates = set(range(len(graphs)))
        # Self-normalized importance estimate of the conditional reach probability.
        total_weight = float(sum(rr.recovery_weight for rr in graphs))
        hit_weight = 0.0
        hits = 0
        for position in candidates:
            reachable, checked = tag_aware_reachable(graphs[position], user, probabilities)
            checked_edges += checked
            if reachable:
                hits += 1
                hit_weight += graphs[position].recovery_weight
        reach_fraction = hit_weight / total_weight if total_weight > 0 else 0.0
        containment_fraction = len(graphs) / float(self.index.num_samples)
        value = containment_fraction * reach_fraction * self.graph.num_vertices
        return InfluenceEstimate(
            value=value,
            num_samples=len(candidates),
            edges_visited=checked_edges,
            reachable_size=len(graphs),
            method=self.name,
        )

    def clear_cache(self) -> None:
        """Drop recovered graphs (e.g. between unrelated query batches)."""
        guard_check(self, "clear a frozen estimator's recovery cache")
        self._recovered.clear()
        self._filters.clear()
