"""Index size and construction-time accounting (Table 3 of the paper).

Table 3 reports, per dataset, the raw data size, the materialized RR-Graphs
index size and build time, and the DelayMat size and build time.  The helpers
here measure the same quantities for the indexes built by this library.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.graph.digraph import TopicSocialGraph
from repro.index.delayed import DelayedMaterializationIndex
from repro.index.rr_index import RRGraphIndex


@dataclass
class IndexFootprint:
    """Size / build-time summary of one index on one dataset."""

    name: str
    dataset: str
    size_bytes: int
    build_seconds: float
    num_samples: int

    @property
    def size_megabytes(self) -> float:
        """Size in megabytes (the unit Table 3 uses)."""
        return self.size_bytes / (1024.0 * 1024.0)

    def row(self) -> tuple:
        """``(dataset, index, size_MB, build_seconds, num_samples)``."""
        return (self.dataset, self.name, self.size_megabytes, self.build_seconds, self.num_samples)


def measure_data_size(graph: TopicSocialGraph, dataset: str = "") -> IndexFootprint:
    """Footprint of the raw graph data itself (the "Data" column of Table 3)."""
    return IndexFootprint(
        name="data",
        dataset=dataset,
        size_bytes=graph.memory_bytes(),
        build_seconds=0.0,
        num_samples=0,
    )


def measure_rr_index(index: RRGraphIndex, dataset: str = "") -> IndexFootprint:
    """Footprint of a fully materialized RR-Graph index."""
    return IndexFootprint(
        name="rr-graphs",
        dataset=dataset,
        size_bytes=index.memory_bytes(),
        build_seconds=index.build_seconds,
        num_samples=index.num_samples,
    )


def measure_delayed_index(index: DelayedMaterializationIndex, dataset: str = "") -> IndexFootprint:
    """Footprint of a delayed-materialization index."""
    return IndexFootprint(
        name="delaymat",
        dataset=dataset,
        size_bytes=index.memory_bytes(),
        build_seconds=index.build_seconds,
        num_samples=index.num_samples,
    )
