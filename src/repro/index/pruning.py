"""Edge-cut pruning and the filter-and-verify estimator ``IndexEst+`` (Sec. 6.2).

Verifying tag-aware reachability in every RR-Graph containing the query user
requires one BFS per RR-Graph per candidate tag set.  The filter step avoids
most of those BFS traversals:

1.  For every RR-Graph containing the user, an *edge cut* is selected -- a set
    of stored edges such that the user can only reach the root if at least one
    cut edge is live.  Two candidate cuts are compared (the user's out-edges
    inside the RR-Graph vs. the root's in-edges from vertices the user can
    structurally reach) and the one with the higher estimated pruning
    probability wins, following Example 7 of the paper.
2.  An inverted index maps each edge id to the RR-Graphs whose chosen cut
    contains it, sorted by the stored ``c(e)`` ascending.  Given a tag set, the
    scan of each posting list stops as soon as ``c(e) > p(e|W)``; RR-Graphs
    never reached by any scan are pruned without being traversed.
3.  Only the surviving candidates are verified with the Definition 3 BFS.

The per-user cut/inverted-list structures are built lazily on the first query
of a user and cached, since the same user typically evaluates many tag sets
during one PITEX exploration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.exceptions import IndexNotBuiltError
from repro.graph.digraph import TopicSocialGraph
from repro.index.rr_graph import RRGraph, structurally_reachable, tag_aware_reachable
from repro.index.rr_index import RRGraphIndex
from repro.sampling.base import InfluenceEstimate, InfluenceEstimator, SampleBudget
from repro.topics.model import TagTopicModel
from repro.utils.freeze import guard_check


@dataclass
class EdgeCut:
    """An edge cut for one (user, RR-Graph) pair.

    ``entries`` are ``(edge_id, threshold)`` pairs: the user can only reach the
    root if at least one listed edge has ``p(e|W) >= threshold``.  ``always_live``
    marks degenerate cases (the user *is* the root) where no cut can prune.
    """

    rr_index: int
    entries: List[Tuple[int, float]] = field(default_factory=list)
    always_live: bool = False

    def pruning_probability(self, max_probabilities: np.ndarray) -> float:
        """Heuristic probability that every cut edge stays dead.

        Assuming ``p(e|W)`` uniform in ``[0, p(e)]`` (Example 7), an edge stays
        dead with probability ``c(e) / p(e)`` (capped at 1); the cut prunes when
        all of its edges stay dead.
        """
        if self.always_live:
            return 0.0
        if not self.entries:
            return 1.0
        probability = 1.0
        for edge_id, threshold in self.entries:
            maximum = max_probabilities[edge_id]
            if maximum <= 0.0:
                continue
            probability *= min(1.0, threshold / maximum)
        return probability


def build_edge_cut(rr_graph: RRGraph, user: int, rr_index: int, side: str) -> EdgeCut:
    """Build one of the two candidate cuts for ``user`` in ``rr_graph``.

    ``side="source"`` takes the user's out-edges stored in the RR-Graph
    (every stored vertex reaches the root, so any path leaves through one of
    them).  ``side="target"`` takes the root's in-edges whose sources are
    structurally reachable from the user.
    """
    if user == rr_graph.root:
        return EdgeCut(rr_index=rr_index, always_live=True)
    if side == "source":
        entries = [
            (rr_graph.edge_ids[i], rr_graph.edge_thresholds[i])
            for i in rr_graph.out_edges_of(user)
        ]
        return EdgeCut(rr_index=rr_index, entries=entries)
    if side == "target":
        reachable = structurally_reachable(rr_graph, user)
        entries = [
            (rr_graph.edge_ids[i], rr_graph.edge_thresholds[i])
            for i in rr_graph.in_edges_of(rr_graph.root)
            if rr_graph.edge_sources[i] in reachable
        ]
        return EdgeCut(rr_index=rr_index, entries=entries)
    raise ValueError(f"side must be 'source' or 'target', got {side!r}")


def choose_edge_cut(
    rr_graph: RRGraph,
    user: int,
    rr_index: int,
    max_probabilities: np.ndarray,
) -> EdgeCut:
    """Pick the candidate cut with the higher estimated pruning probability."""
    source_cut = build_edge_cut(rr_graph, user, rr_index, "source")
    target_cut = build_edge_cut(rr_graph, user, rr_index, "target")
    if source_cut.pruning_probability(max_probabilities) >= target_cut.pruning_probability(
        max_probabilities
    ):
        return source_cut
    return target_cut


@dataclass
class _UserFilterStructures:
    """Cached per-user filter structures: inverted lists + always-candidate graphs."""

    inverted_lists: Dict[int, List[Tuple[float, int]]]
    always_candidates: Set[int]
    candidate_universe: List[int]


def build_user_filter_structures(
    index: RRGraphIndex, user: int, max_probabilities: np.ndarray
) -> _UserFilterStructures:
    """Build the inverted lists of the chosen cuts for ``user``.

    Pure function of the (built) index and the maximum edge probabilities --
    no RNG draws -- so building at freeze time
    (:mod:`repro.index.tables`) is bitwise-equivalent to building lazily on
    the first query.
    """
    inverted: Dict[int, List[Tuple[float, int]]] = {}
    always: Set[int] = set()
    candidates = index.graphs_containing(user)
    for rr_index in candidates:
        rr_graph = index.rr_graphs[rr_index]
        cut = choose_edge_cut(rr_graph, user, rr_index, max_probabilities)
        if cut.always_live:
            always.add(rr_index)
            continue
        if not cut.entries:
            # The user cannot reach the root in this RR-Graph at all.
            continue
        for edge_id, threshold in cut.entries:
            inverted.setdefault(edge_id, []).append((threshold, rr_index))
    for postings in inverted.values():
        postings.sort()
    return _UserFilterStructures(
        inverted_lists=inverted,
        always_candidates=always,
        candidate_universe=list(candidates),
    )


class PrunedIndexEstimator(InfluenceEstimator):
    """``IndexEst+``: filter-and-verify estimation on top of the RR-Graph index.

    ``shared_structures`` (when given) is a read-only table of precomputed
    per-user filter structures owned by a frozen engine
    (:mod:`repro.index.tables`); users found there skip the lazy build, users
    absent fall back to the per-instance cache.
    """

    name = "indexest+"

    def __init__(
        self,
        graph: TopicSocialGraph,
        model: TagTopicModel,
        index: RRGraphIndex,
        budget: Optional[SampleBudget] = None,
        shared_structures: Optional[Dict[int, _UserFilterStructures]] = None,
    ) -> None:
        super().__init__(graph, model, budget)
        if index.graph is not graph:
            raise IndexNotBuiltError("the index was built for a different graph instance")
        self.index = index
        self._shared_structures = shared_structures
        self._user_structures: Dict[int, _UserFilterStructures] = {}

    # ----------------------------------------------------------------- filter
    def _structures_for(self, user: int) -> _UserFilterStructures:
        """Fetch (or build) the inverted lists of the chosen cuts for ``user``."""
        if self._shared_structures is not None:
            shared = self._shared_structures.get(user)
            if shared is not None:
                return shared
        cached = self._user_structures.get(user)
        if cached is not None:
            return cached
        guard_check(self, "build cut structures in a frozen estimator's shared cache")
        structures = build_user_filter_structures(
            self.index, user, self.graph.max_edge_probabilities()
        )
        self._user_structures[user] = structures
        return structures

    def filter_candidates(
        self, user: int, edge_probabilities: Sequence[float]
    ) -> Tuple[Set[int], int]:
        """The filter step: RR-Graph indices that survive the cut test.

        Returns ``(candidates, postings_scanned)``.
        """
        structures = self._structures_for(user)
        probabilities = np.asarray(edge_probabilities, dtype=float)
        candidates: Set[int] = set(structures.always_candidates)
        scanned = 0
        for edge_id, postings in structures.inverted_lists.items():
            probability = probabilities[edge_id]
            if probability <= 0.0:
                continue
            for threshold, rr_index in postings:
                scanned += 1
                if threshold > probability:
                    break
                candidates.add(rr_index)
        return candidates, scanned

    # --------------------------------------------------------------- estimate
    def estimate_with_probabilities(
        self,
        user: int,
        edge_probabilities: Sequence[float],
        num_samples: Optional[int] = None,
    ) -> InfluenceEstimate:
        """Filter RR-Graphs with the cuts, verify survivors with the BFS."""
        candidates, scanned = self.filter_candidates(user, edge_probabilities)
        hits = 0
        checked_edges = scanned
        for rr_index in candidates:
            reachable, checked = tag_aware_reachable(
                self.index.rr_graphs[rr_index], user, edge_probabilities
            )
            checked_edges += checked
            if reachable:
                hits += 1
        value = hits / float(self.index.num_samples) * self.graph.num_vertices
        return InfluenceEstimate(
            value=value,
            num_samples=len(candidates),
            edges_visited=checked_edges,
            reachable_size=len(self.index.graphs_containing(user)),
            method=self.name,
        )

    def pruning_ratio(self, user: int, edge_probabilities: Sequence[float]) -> float:
        """Fraction of containing RR-Graphs eliminated by the filter step."""
        universe = self.index.graphs_containing(user)
        if not universe:
            return 0.0
        candidates, _ = self.filter_candidates(user, edge_probabilities)
        return 1.0 - len(candidates) / float(len(universe))
