"""Index-based influence estimation (Sec. 6 of the paper).

* :mod:`repro.index.rr_graph` -- the RR-Graph sample structure (Definition 2)
  and tag-aware reachability (Definition 3).
* :mod:`repro.index.rr_index` -- the offline RR-Graph index and the online
  matching estimator (Algorithm 3, ``IndexEst``).
* :mod:`repro.index.pruning` -- edge-cut construction, inverted lists and the
  filter-and-verify estimator (``IndexEst+``).
* :mod:`repro.index.delayed` -- delayed materialization (Algorithm 4,
  ``DelayMat``): store only per-user RR-Graph counts offline and recover the
  graphs at query time.
* :mod:`repro.index.sizing` -- index size / construction time accounting
  (Table 3).
"""

from repro.index.rr_graph import RRGraph, generate_rr_graph, tag_aware_reachable
from repro.index.rr_index import RRGraphIndex, IndexEstimator
from repro.index.pruning import EdgeCut, PrunedIndexEstimator, build_edge_cut, choose_edge_cut
from repro.index.delayed import DelayedMaterializationIndex, DelayedIndexEstimator
from repro.index.sizing import IndexFootprint, measure_rr_index, measure_delayed_index

__all__ = [
    "RRGraph",
    "generate_rr_graph",
    "tag_aware_reachable",
    "RRGraphIndex",
    "IndexEstimator",
    "EdgeCut",
    "PrunedIndexEstimator",
    "build_edge_cut",
    "choose_edge_cut",
    "DelayedMaterializationIndex",
    "DelayedIndexEstimator",
    "IndexFootprint",
    "measure_rr_index",
    "measure_delayed_index",
]
