"""Freeze-time per-user tables for the frozen query path.

A frozen engine builds a fresh estimator per query (so concurrent queries
share no mutable state), which means the per-user structures an estimator
would normally cache -- the ``IndexEst+`` cut/inverted-list structures and
the ``DelayMat`` recovered graphs plus their filters -- were re-derived on
*every* query.  This module precomputes them once at :meth:`PitexEngine.freeze`
time into read-only tables the engine hands to every query-local estimator,
so even cold (uncached) queries stop paying the re-derivation tax.

Determinism:

* the ``IndexEst+`` structures are a pure function of the built RR-Graph
  index (no RNG), so precomputing them is **bitwise-neutral**: frozen
  answers are identical with or without the table;
* the ``DelayMat`` recovery consumes RNG, so each user's graphs are drawn
  from a label-derived engine stream (``delaymat-table|<user>``).  Streams
  are derived per user independent of build order, and every same-seed
  engine replica derives the same streams, so the oracle and all process
  replicas share one table bit for bit.

Users are enumerated from the indexes' own containment maps (every user a
query could ever recover for); users outside the maps have empty structures
and fall back to the estimator-local path, which derives the same emptiness
without consuming RNG.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.index.delayed import (
    DelayedMaterializationIndex,
    build_recovery_filters,
)
from repro.index.pruning import _UserFilterStructures, build_user_filter_structures
from repro.index.rr_graph import RRGraph
from repro.index.rr_index import RRGraphIndex
from repro.utils.rng import RandomSource


@dataclass
class FrozenUserTables:
    """Read-only per-user tables owned by a frozen engine.

    ``None`` sections mean the corresponding method was not frozen (or table
    precompute was disabled), so its estimators keep the lazy per-query path.
    """

    pruning: Optional[Dict[int, _UserFilterStructures]] = None
    delayed_graphs: Optional[Dict[int, List[RRGraph]]] = None
    delayed_filters: Optional[
        Dict[int, Tuple[Dict[int, List[Tuple[float, int]]], Set[int]]]
    ] = None

    def num_users(self) -> Dict[str, int]:
        """Per-section table sizes (JSON friendly; used by freeze telemetry)."""
        return {
            "indexest+": len(self.pruning) if self.pruning is not None else 0,
            "delaymat": len(self.delayed_graphs) if self.delayed_graphs is not None else 0,
        }


def build_pruning_tables(
    index: RRGraphIndex, max_probabilities: np.ndarray
) -> Dict[int, _UserFilterStructures]:
    """``IndexEst+`` cut structures for every user the index contains.

    RNG-free, so the table is bitwise-identical to what the lazy path would
    build on first query; iteration order is sorted for reproducible build
    telemetry but cannot affect the structures themselves.
    """
    return {
        user: build_user_filter_structures(index, user, max_probabilities)
        for user in sorted(index.containment)
    }


def build_delayed_tables(
    index: DelayedMaterializationIndex,
    max_probabilities: np.ndarray,
    stream_for_user: Callable[[int], RandomSource],
) -> Tuple[
    Dict[int, List[RRGraph]],
    Dict[int, Tuple[Dict[int, List[Tuple[float, int]]], Set[int]]],
]:
    """``DelayMat`` recovered graphs + filters for every user with containment.

    ``stream_for_user`` maps a user id to a dedicated :class:`RandomSource`
    (the engine passes its label-derived stream factory), so each user's
    recovery is independent of every other user's and of build order.
    """
    graphs_by_user: Dict[int, List[RRGraph]] = {}
    filters_by_user: Dict[int, Tuple[Dict[int, List[Tuple[float, int]]], Set[int]]] = {}
    for user in sorted(index.containment_counts):
        rng = stream_for_user(user)
        graphs = index.recover_for_user(user, rng)
        graphs_by_user[user] = graphs
        filters_by_user[user] = build_recovery_filters(graphs, user, max_probabilities)
    return graphs_by_user, filters_by_user
