"""The offline RR-Graph index and the ``IndexEst`` estimator (Algorithm 3).

Offline, the index draws ``theta`` RR-Graphs for uniformly sampled roots and
records, per user, which RR-Graphs contain them.  Online, estimating
``E[I(u|W)]`` reduces to counting in how many of the RR-Graphs containing ``u``
the user actually reaches the root through live edges (Definition 3):

``E-hat[I(u|W)] = (#reaching RR-Graphs / theta) * |V|``

No sampling happens at query time, which is where the orders-of-magnitude
speed-ups of Fig. 7 / Fig. 9 come from.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.exceptions import IndexNotBuiltError
from repro.graph.digraph import TopicSocialGraph
from repro.index.rr_graph import RRGraph, generate_rr_graph, tag_aware_reachable
from repro.sampling.base import InfluenceEstimate, InfluenceEstimator, SampleBudget
from repro.topics.model import TagTopicModel
from repro.utils.freeze import guard_check
from repro.utils.rng import SeedLike, spawn_rng
from repro.utils.timer import Stopwatch


class RRGraphIndex:
    """A materialized collection of RR-Graphs plus per-user containment lists.

    Parameters
    ----------
    graph:
        The social graph the index is built for.
    num_samples:
        Number of RR-Graphs to materialize (``theta``).  The theoretical value
        of Eqn. 7 can be obtained from
        :func:`repro.sampling.base.sample_size_offline`; benchmarks typically
        use a smaller practical value, exactly as the paper's implementation
        caps the index size.
    seed:
        Random seed for the offline sampling.
    """

    def __init__(self, graph: TopicSocialGraph, num_samples: int, seed: SeedLike = None) -> None:
        self.graph = graph
        self.num_samples = int(num_samples)
        self._rng = spawn_rng(seed)
        self.rr_graphs: List[RRGraph] = []
        self.containment: Dict[int, List[int]] = {}
        self.build_seconds: float = 0.0
        self._built = False
        self._built_version: Optional[int] = None

    # ------------------------------------------------------------------ build
    def build(self) -> "RRGraphIndex":
        """Materialize ``num_samples`` RR-Graphs (offline phase of Algorithm 3)."""
        guard_check(self, "rebuild a frozen RR-Graph index")
        watch = Stopwatch().start()
        max_probabilities = self.graph.max_edge_probabilities()
        self.rr_graphs = []
        self.containment = {}
        for index in range(self.num_samples):
            root = self._rng.integer(0, self.graph.num_vertices)
            rr_graph = generate_rr_graph(self.graph, root, self._rng, max_probabilities)
            self.rr_graphs.append(rr_graph)
            for vertex in rr_graph.vertices:
                self.containment.setdefault(vertex, []).append(index)
        self._built = True
        self._built_version = self.graph.version
        watch.stop()
        self.build_seconds = watch.elapsed
        return self

    @property
    def is_built(self) -> bool:
        """Whether :meth:`build` has completed for the graph's *current* state.

        Mutating the graph (``add_edge``) after a build marks the index stale:
        the stored RR-Graphs describe the pre-mutation graph, so querying them
        would silently mix snapshots.  A stale index reports ``False`` here
        and must be rebuilt.
        """
        return self._built and self._built_version == self.graph.version

    def _require_built(self) -> None:
        if not self._built:
            raise IndexNotBuiltError("RRGraphIndex.build() must be called before querying")
        if self._built_version != self.graph.version:
            raise IndexNotBuiltError(
                "the graph was mutated after RRGraphIndex.build(); rebuild the index"
            )

    # ------------------------------------------------------------------ query
    def graphs_containing(self, user: int) -> List[int]:
        """Indices of the RR-Graphs containing ``user``."""
        self._require_built()
        return self.containment.get(user, [])

    def containment_count(self, user: int) -> int:
        """``theta(u)``: number of RR-Graphs containing ``user``."""
        return len(self.graphs_containing(user))

    def estimate(self, user: int, edge_probabilities: Sequence[float]) -> InfluenceEstimate:
        """Algorithm 3 online phase: count tag-aware reachable RR-Graphs."""
        self._require_built()
        hits = 0
        checked_edges = 0
        candidates = self.graphs_containing(user)
        for index in candidates:
            reachable, checked = tag_aware_reachable(
                self.rr_graphs[index], user, edge_probabilities
            )
            checked_edges += checked
            if reachable:
                hits += 1
        value = hits / float(self.num_samples) * self.graph.num_vertices
        return InfluenceEstimate(
            value=value,
            num_samples=len(candidates),
            edges_visited=checked_edges,
            reachable_size=len(candidates),
            method="indexest",
        )

    # -------------------------------------------------------------- serialize
    def to_arrays(self) -> Dict[str, np.ndarray]:
        """Flatten the built index into named arrays for ``npz`` persistence.

        The RR-Graphs are concatenated into parallel arrays with per-graph
        ``indptr`` offsets (the same layout the CSR kernels use), so the whole
        index round-trips through :func:`numpy.savez_compressed` without any
        per-graph Python objects.  Vertex ids are stored sorted per graph to
        make the serialized form canonical.
        """
        self._require_built()

        def concat(parts, dtype):
            parts = list(parts)
            if not parts:
                return np.zeros(0, dtype=dtype)
            return np.concatenate(parts).astype(dtype, copy=False)

        vertex_counts = np.array([rr.num_vertices for rr in self.rr_graphs], dtype=np.int64)
        edge_counts = np.array([rr.num_edges for rr in self.rr_graphs], dtype=np.int64)
        return {
            "roots": np.array([rr.root for rr in self.rr_graphs], dtype=np.int64),
            "vertex_indptr": np.concatenate(([0], np.cumsum(vertex_counts))).astype(np.int64),
            "vertex_ids": concat(
                (
                    np.sort(np.fromiter(rr.vertices, dtype=np.int64, count=rr.num_vertices))
                    for rr in self.rr_graphs
                ),
                np.int64,
            ),
            "edge_indptr": np.concatenate(([0], np.cumsum(edge_counts))).astype(np.int64),
            "edge_ids": concat((rr.edge_ids for rr in self.rr_graphs), np.int64),
            "edge_sources": concat((rr.edge_sources for rr in self.rr_graphs), np.int64),
            "edge_targets": concat((rr.edge_targets for rr in self.rr_graphs), np.int64),
            "edge_thresholds": concat((rr.edge_thresholds for rr in self.rr_graphs), float),
            "num_samples": np.array([self.num_samples], dtype=np.int64),
        }

    @classmethod
    def from_arrays(
        cls,
        graph: TopicSocialGraph,
        arrays: Dict[str, np.ndarray],
        built_version: Optional[int] = None,
        build_seconds: float = 0.0,
    ) -> "RRGraphIndex":
        """Reassemble an index from :meth:`to_arrays` output.

        ``built_version`` is the ``graph.version`` recorded at save time; the
        reconstructed index is only usable while the graph still has that
        version (the usual staleness rule of :attr:`is_built`).  The rebuilt
        containment lists are identical to the originals because graphs are
        replayed in materialization order.

        ``arrays`` may be read-only ``numpy.memmap`` views (what
        :meth:`IndexStore.open_mapped` hands a process replica): every value
        is *read* -- sliced, ``tolist()``'d or copied into per-graph Python
        lists -- and never written, so a single mapped file can back many
        worker processes at once without copy-on-write faults.
        """
        roots = np.asarray(arrays["roots"], dtype=np.int64)
        index = cls(graph, int(arrays["num_samples"][0]))
        vertex_indptr = np.asarray(arrays["vertex_indptr"], dtype=np.int64)
        edge_indptr = np.asarray(arrays["edge_indptr"], dtype=np.int64)
        vertex_ids = np.asarray(arrays["vertex_ids"], dtype=np.int64)
        edge_ids = np.asarray(arrays["edge_ids"], dtype=np.int64)
        edge_sources = np.asarray(arrays["edge_sources"], dtype=np.int64)
        edge_targets = np.asarray(arrays["edge_targets"], dtype=np.int64)
        edge_thresholds = np.asarray(arrays["edge_thresholds"], dtype=float)
        for position, root in enumerate(roots.tolist()):
            members = vertex_ids[vertex_indptr[position] : vertex_indptr[position + 1]]
            rr_graph = RRGraph(root=int(root), vertices=set(members.tolist()))
            lo, hi = int(edge_indptr[position]), int(edge_indptr[position + 1])
            if hi > lo:
                rr_graph.edge_ids = edge_ids[lo:hi].tolist()
                rr_graph.edge_sources = edge_sources[lo:hi].tolist()
                rr_graph.edge_targets = edge_targets[lo:hi].tolist()
                rr_graph.edge_thresholds = edge_thresholds[lo:hi].tolist()
            index.rr_graphs.append(rr_graph)
        # Containment rebuild, vectorized: one stable sort groups the flat
        # vertex array by vertex while keeping graph positions ascending
        # (np.repeat emits positions in increasing order), reproducing exactly
        # the lists build() accumulates.
        if vertex_ids.size:
            positions = np.repeat(
                np.arange(len(roots), dtype=np.int64), np.diff(vertex_indptr)
            )
            order = np.argsort(vertex_ids, kind="stable")
            sorted_vertices = vertex_ids[order]
            sorted_positions = positions[order]
            boundaries = np.flatnonzero(np.diff(sorted_vertices)) + 1
            unique_vertices = sorted_vertices[np.concatenate(([0], boundaries))]
            for vertex, postings in zip(
                unique_vertices.tolist(), np.split(sorted_positions, boundaries)
            ):
                index.containment[vertex] = postings.tolist()
        index._built = True
        index._built_version = graph.version if built_version is None else int(built_version)
        index.build_seconds = float(build_seconds)
        return index

    # ------------------------------------------------------------------ stats
    def memory_bytes(self) -> int:
        """Approximate index footprint (graphs + containment lists)."""
        self._require_built()
        graphs = sum(rr.memory_bytes() for rr in self.rr_graphs)
        containment = sum(len(v) for v in self.containment.values()) * 8
        return graphs + containment

    def average_rr_graph_size(self) -> float:
        """Mean number of vertices per RR-Graph."""
        self._require_built()
        if not self.rr_graphs:
            return 0.0
        return float(np.mean([rr.num_vertices for rr in self.rr_graphs]))


class IndexEstimator(InfluenceEstimator):
    """The ``IndexEst`` method: Algorithm 3 behind the estimator interface."""

    name = "indexest"

    def __init__(
        self,
        graph: TopicSocialGraph,
        model: TagTopicModel,
        index: RRGraphIndex,
        budget: Optional[SampleBudget] = None,
    ) -> None:
        super().__init__(graph, model, budget)
        if index.graph is not graph:
            raise IndexNotBuiltError("the index was built for a different graph instance")
        self.index = index

    def estimate_with_probabilities(
        self,
        user: int,
        edge_probabilities: Sequence[float],
        num_samples: Optional[int] = None,
    ) -> InfluenceEstimate:
        """Delegate to the RR-Graph index; ``num_samples`` is ignored (offline samples)."""
        return self.index.estimate(user, edge_probabilities)
