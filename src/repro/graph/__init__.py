"""Directed social graph substrate.

The paper models the social network as a directed graph ``G(V, E)`` whose edges
carry topic-aware influence probabilities ``p(e|z)``.  This package provides:

* :class:`~repro.graph.digraph.TopicSocialGraph` -- the core adjacency-list
  digraph with a per-edge topic probability matrix.
* :mod:`~repro.graph.generators` -- synthetic graph generators including the
  power-law generator used by the dataset profiles and the star / celebrity
  counterexample graphs of Fig. 3.
* :mod:`~repro.graph.algorithms` -- BFS reachability (forward and reverse),
  vectorized live-edge possible-world kernels, strongly connected components
  and degree-based user grouping.
* :mod:`~repro.graph.csr` -- the compressed-sparse-row adjacency view cached
  on every graph (``graph.csr``) that carries the sampling hot paths.
* :mod:`~repro.graph.io` -- plain-text edge-list serialization.
"""

from repro.graph.csr import CSRAdjacency
from repro.graph.digraph import TopicSocialGraph, Edge
from repro.graph.generators import (
    star_fan_out_graph,
    celebrity_hub_graph,
    random_topic_graph,
    power_law_topic_graph,
    line_graph,
    complete_topic_graph,
)
from repro.graph.algorithms import (
    forward_reachable,
    reverse_reachable,
    reachable_with_probabilities,
    reachable_mask,
    reachable_vertices,
    live_edge_world,
    reverse_live_edge_world,
    strongly_connected_components,
    out_degree_groups,
)
from repro.graph.io import save_edge_list, load_edge_list

__all__ = [
    "TopicSocialGraph",
    "Edge",
    "CSRAdjacency",
    "star_fan_out_graph",
    "celebrity_hub_graph",
    "random_topic_graph",
    "power_law_topic_graph",
    "line_graph",
    "complete_topic_graph",
    "forward_reachable",
    "reverse_reachable",
    "reachable_with_probabilities",
    "reachable_mask",
    "reachable_vertices",
    "live_edge_world",
    "reverse_live_edge_world",
    "strongly_connected_components",
    "out_degree_groups",
    "save_edge_list",
    "load_edge_list",
]
