"""Plain-text serialization of topic-aware social graphs.

The format is a small, self-describing edge list::

    # pitex-graph v1
    # vertices <n> topics <z>
    # label <vertex_id> <label>          (optional, one per labelled vertex)
    <source> <target> <p(e|z1)> <p(e|z2)> ... <p(e|z_{|Z|})>

The format exists so the synthetic datasets and case-study graphs can be dumped
to disk, inspected, versioned and re-loaded by the benchmark harness without
re-generating them.
"""

from __future__ import annotations

import os
from typing import Union

from repro.exceptions import GraphError
from repro.graph.digraph import TopicSocialGraph

_HEADER = "# pitex-graph v1"


def save_edge_list(graph: TopicSocialGraph, path: Union[str, os.PathLike]) -> None:
    """Write ``graph`` to ``path`` in the pitex edge-list format."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"{_HEADER}\n")
        handle.write(f"# vertices {graph.num_vertices} topics {graph.num_topics}\n")
        for vertex in graph.vertices():
            label = graph.label_of(vertex)
            if label != f"u{vertex}":
                handle.write(f"# label {vertex} {label}\n")
        for edge in graph.edges():
            probabilities = graph.topic_probabilities(edge.edge_id)
            values = " ".join(f"{p:.10g}" for p in probabilities)
            handle.write(f"{edge.source} {edge.target} {values}\n")


def load_edge_list(path: Union[str, os.PathLike]) -> TopicSocialGraph:
    """Read a graph previously written by :func:`save_edge_list`."""
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    if not lines or not lines[0].startswith(_HEADER):
        raise GraphError(f"{path!s} is not a pitex edge-list file")

    num_vertices = None
    num_topics = None
    labels = {}
    edge_lines = []
    for line in lines[1:]:
        line = line.strip()
        if not line:
            continue
        if line.startswith("# vertices"):
            parts = line.split()
            num_vertices = int(parts[2])
            num_topics = int(parts[4])
        elif line.startswith("# label"):
            parts = line.split(maxsplit=3)
            labels[int(parts[2])] = parts[3]
        elif line.startswith("#"):
            continue
        else:
            edge_lines.append(line)

    if num_vertices is None or num_topics is None:
        raise GraphError(f"{path!s} is missing the '# vertices ... topics ...' header")

    vertex_labels = [labels.get(v, f"u{v}") for v in range(num_vertices)]
    graph = TopicSocialGraph(num_vertices, num_topics, vertex_labels)
    for line in edge_lines:
        parts = line.split()
        if len(parts) != 2 + num_topics:
            raise GraphError(
                f"malformed edge line (expected {2 + num_topics} fields): {line!r}"
            )
        source = int(parts[0])
        target = int(parts[1])
        probabilities = [float(p) for p in parts[2:]]
        graph.add_edge(source, target, probabilities)
    return graph
