"""Synthetic graph generators.

Four families of graphs are provided:

* :func:`star_fan_out_graph` and :func:`celebrity_hub_graph` -- the two
  counterexample topologies of Fig. 3 used to show when Monte-Carlo and
  Reverse-Reachable sampling probe quadratically many edges.
* :func:`random_topic_graph` -- an Erdos-Renyi style digraph with random
  topic-probability vectors, mostly used by tests.
* :func:`power_law_topic_graph` -- a directed preferential-attachment graph
  whose degree skew matches real social networks; this is the substrate behind
  the dataset profiles (lastfm / diggs / dblp / twitter analogues).
* Small deterministic helpers (:func:`line_graph`, :func:`complete_topic_graph`)
  used as exact-computation oracles in tests.

All generators draw each edge's ``p(e|z)`` vector from a *topic affinity*
model: every vertex has a sparse interest distribution over topics and the
edge probability under topic ``z`` scales with the target's in-degree (the
weighted-cascade convention of the IC literature) and with how much both
endpoints care about ``z``.  This keeps the generated instances sparse in the
same way real TIC-learned graphs are sparse (Sec. 5.1 of the paper notes that
learned propagation probabilities are low for most edges).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.digraph import TopicSocialGraph
from repro.utils.rng import RandomSource, SeedLike, spawn_rng


def _topic_interest_matrix(
    num_vertices: int,
    num_topics: int,
    concentration: float,
    rng: RandomSource,
) -> np.ndarray:
    """Per-vertex interest distributions drawn from a sparse Dirichlet."""
    alphas = np.full(num_topics, concentration)
    interests = np.vstack([rng.dirichlet(alphas) for _ in range(num_vertices)])
    return interests


def _edge_topic_probabilities(
    source_interest: np.ndarray,
    target_interest: np.ndarray,
    base_probability: float,
    rng: RandomSource,
    sparsity: float = 0.5,
) -> np.ndarray:
    """Draw one ``p(e|z)`` vector from the affinity of the two endpoints.

    ``sparsity`` is the probability that a topic with low joint affinity is
    zeroed out entirely, reproducing the sparse influence graphs produced by
    TIC learning.
    """
    affinity = np.sqrt(source_interest * target_interest)
    probabilities = np.clip(base_probability * affinity / max(affinity.max(), 1e-12), 0.0, 1.0)
    for topic in range(len(probabilities)):
        if probabilities[topic] < base_probability * 0.25 and rng.uniform() < sparsity:
            probabilities[topic] = 0.0
    return probabilities


def star_fan_out_graph(
    num_leaves: int, num_topics: int = 1, leaf_probability: Optional[float] = None
) -> TopicSocialGraph:
    """The Fig. 3(a) counterexample: a root with an edge of probability ``1/n`` to each leaf.

    A user with many followers but low per-follower impact.  Monte-Carlo
    sampling from the root probes every out-edge in every sample instance even
    though almost none activates.
    """
    if leaf_probability is None:
        leaf_probability = 1.0 / num_leaves
    graph = TopicSocialGraph(num_leaves + 1, num_topics)
    probabilities = np.zeros(num_topics)
    probabilities[0] = leaf_probability
    for leaf in range(1, num_leaves + 1):
        graph.add_edge(0, leaf, probabilities)
    return graph


def celebrity_hub_graph(num_fans: int, num_topics: int = 1) -> TopicSocialGraph:
    """The Fig. 3(b) counterexample.

    A central celebrity ``v`` (vertex 0) influences ``n`` followers with
    probability 1, while ``n`` ordinary users influence the celebrity with
    probability ``1/n``.  Reverse-Reachable sampling rooted anywhere probes all
    of the celebrity's incoming edges even though they rarely fire.
    """
    # vertex 0: celebrity; 1..num_fans: followers; num_fans+1..2*num_fans: ordinary users
    graph = TopicSocialGraph(2 * num_fans + 1, num_topics)
    strong = np.zeros(num_topics)
    strong[0] = 1.0
    weak = np.zeros(num_topics)
    weak[0] = 1.0 / num_fans
    for follower in range(1, num_fans + 1):
        graph.add_edge(0, follower, strong)
    for ordinary in range(num_fans + 1, 2 * num_fans + 1):
        graph.add_edge(ordinary, 0, weak)
    return graph


def line_graph(num_vertices: int, probability: float = 1.0, num_topics: int = 1) -> TopicSocialGraph:
    """A directed path ``0 -> 1 -> ... -> n-1`` with identical edge probability."""
    graph = TopicSocialGraph(num_vertices, num_topics)
    probabilities = np.zeros(num_topics)
    probabilities[0] = probability
    for vertex in range(num_vertices - 1):
        graph.add_edge(vertex, vertex + 1, probabilities)
    return graph


def complete_topic_graph(num_vertices: int, num_topics: int, probability: float = 0.3) -> TopicSocialGraph:
    """A complete digraph where every edge has the same probability on every topic."""
    graph = TopicSocialGraph(num_vertices, num_topics)
    probabilities = np.full(num_topics, probability)
    for source in range(num_vertices):
        for target in range(num_vertices):
            if source != target:
                graph.add_edge(source, target, probabilities)
    return graph


def random_topic_graph(
    num_vertices: int,
    num_topics: int,
    edge_probability: float = 0.1,
    base_probability: float = 0.3,
    seed: SeedLike = None,
) -> TopicSocialGraph:
    """An Erdos-Renyi digraph with affinity-drawn topic probabilities.

    Every ordered pair becomes an edge independently with ``edge_probability``;
    mainly used by unit and property tests where the exact degree distribution
    does not matter.
    """
    rng = spawn_rng(seed)
    graph = TopicSocialGraph(num_vertices, num_topics)
    interests = _topic_interest_matrix(num_vertices, num_topics, 0.3, rng)
    for source in range(num_vertices):
        for target in range(num_vertices):
            if source == target:
                continue
            if rng.uniform() < edge_probability:
                probabilities = _edge_topic_probabilities(
                    interests[source], interests[target], base_probability, rng
                )
                graph.add_edge(source, target, probabilities)
    return graph


def power_law_topic_graph(
    num_vertices: int,
    average_degree: float,
    num_topics: int,
    base_probability: float = 0.2,
    topic_concentration: float = 0.15,
    reciprocity: float = 0.3,
    seed: SeedLike = None,
    vertex_labels: Optional[Sequence[str]] = None,
) -> TopicSocialGraph:
    """A directed preferential-attachment graph with topic-aware probabilities.

    The generator grows the graph one vertex at a time.  Every new vertex draws
    ``m ~ round(average_degree / (1 + reciprocity))`` out-edges whose targets
    are chosen with probability proportional to ``in_degree + 1`` (preferential
    attachment), giving the heavy-tailed in-degree distribution of real social
    networks; with probability ``reciprocity`` a reciprocal edge is also added,
    which creates the follow-back structure of Twitter-like graphs.

    Edge probabilities use the weighted-cascade convention: the total incoming
    probability mass of a vertex is roughly constant, so high in-degree
    vertices are hard to activate through any single edge -- exactly the regime
    in which lazy sampling shines.
    """
    rng = spawn_rng(seed)
    if num_vertices < 3:
        raise ValueError("power_law_topic_graph needs at least 3 vertices")
    out_per_vertex = max(1, int(round(average_degree / (1.0 + reciprocity))))
    interests = _topic_interest_matrix(num_vertices, num_topics, topic_concentration, rng)

    # First grow the structure with plain integer adjacency, then assign probabilities.
    edges: List[Tuple[int, int]] = []
    edge_set = set()
    in_degree = np.zeros(num_vertices, dtype=float)

    def try_add(source: int, target: int) -> None:
        if source == target:
            return
        if (source, target) in edge_set:
            return
        edge_set.add((source, target))
        edges.append((source, target))
        in_degree[target] += 1.0

    seed_size = min(max(3, out_per_vertex + 1), num_vertices)
    for source in range(seed_size):
        for target in range(seed_size):
            if source != target and rng.uniform() < 0.5:
                try_add(source, target)

    for vertex in range(seed_size, num_vertices):
        weights = in_degree[:vertex] + 1.0
        total = weights.sum()
        attachments = min(out_per_vertex, vertex)
        chosen = set()
        attempts = 0
        while len(chosen) < attachments and attempts < attachments * 20:
            attempts += 1
            draw = rng.uniform() * total
            cumulative = 0.0
            picked = vertex - 1
            for candidate in range(vertex):
                cumulative += weights[candidate]
                if draw <= cumulative:
                    picked = candidate
                    break
            chosen.add(picked)
        for target in chosen:
            try_add(vertex, target)
            if rng.uniform() < reciprocity:
                try_add(target, vertex)

    # Top up with random edges until the requested density is reached.
    target_edges = int(round(average_degree * num_vertices))
    attempts = 0
    while len(edges) < target_edges and attempts < target_edges * 20:
        attempts += 1
        source = rng.integer(0, num_vertices)
        weights = in_degree + 1.0
        target = rng.weighted_index(weights)
        try_add(source, int(target))

    graph = TopicSocialGraph(num_vertices, num_topics, vertex_labels)
    final_in_degree = np.zeros(num_vertices, dtype=float)
    for _, target in edges:
        final_in_degree[target] += 1.0
    for source, target in edges:
        # Weighted-cascade style scaling: probability inversely related to in-degree.
        scale = base_probability / max(1.0, np.sqrt(final_in_degree[target]))
        probabilities = _edge_topic_probabilities(
            interests[source], interests[target], min(1.0, scale * 2.0), rng
        )
        graph.add_edge(source, target, probabilities)
    return graph
