"""The topic-aware directed social graph.

:class:`TopicSocialGraph` is the single graph type used throughout the library.
It is an adjacency-list digraph over integer vertex ids ``0 .. n-1`` where each
edge carries a vector of topic-conditioned influence probabilities ``p(e|z)``
(Sec. 3.1 of the paper).  The class deliberately exposes only the operations
the algorithms need -- neighbourhood iteration, per-edge probability lookups
and the vectorized ``p(e|W)`` computation -- and keeps the construction-time
storage simple (Python lists for adjacency, one ``numpy`` row per edge for
probabilities).

For the sampling hot paths the graph additionally exposes a cached
:class:`~repro.graph.csr.CSRAdjacency` view (``graph.csr``): contiguous
``indptr`` / ``indices`` / edge-id arrays for both the forward and the reverse
adjacency.  The CSR cache is built once on first access and dropped whenever
``add_edge`` mutates the graph, so array kernels never observe a stale
adjacency.  Accessors such as :meth:`TopicSocialGraph.out_edges` return
*copies* of the internal lists -- mutating a returned list can never corrupt
the graph or desynchronize the CSR cache.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import GraphError, UnknownEdgeError, UnknownVertexError
from repro.graph.csr import CSRAdjacency
from repro.utils.freeze import guard_check


@dataclass(frozen=True)
class Edge:
    """A directed edge with its identifier and endpoints."""

    edge_id: int
    source: int
    target: int


class TopicSocialGraph:
    """Directed social graph with topic-aware edge probabilities.

    Parameters
    ----------
    num_vertices:
        Number of vertices; vertices are the integers ``0 .. num_vertices - 1``.
    num_topics:
        Length of the ``p(e|z)`` vector attached to every edge.
    vertex_labels:
        Optional human-readable labels (user names, researcher names) used by
        the examples and the case study.

    Notes
    -----
    * Parallel edges are rejected -- the paper's model attaches a single
      probability vector per ordered user pair.
    * Self loops are rejected -- they never contribute to influence spread.
    """

    def __init__(
        self,
        num_vertices: int,
        num_topics: int,
        vertex_labels: Optional[Sequence[str]] = None,
    ) -> None:
        if num_vertices <= 0:
            raise GraphError(f"num_vertices must be positive, got {num_vertices}")
        if num_topics <= 0:
            raise GraphError(f"num_topics must be positive, got {num_topics}")
        self._num_vertices = int(num_vertices)
        self._num_topics = int(num_topics)
        self._out: List[List[int]] = [[] for _ in range(num_vertices)]
        self._in: List[List[int]] = [[] for _ in range(num_vertices)]
        self._edge_source: List[int] = []
        self._edge_target: List[int] = []
        self._edge_lookup: Dict[Tuple[int, int], int] = {}
        self._edge_probs: List[np.ndarray] = []
        self._prob_matrix: Optional[np.ndarray] = None
        self._max_probs: Optional[np.ndarray] = None
        self._csr: Optional[CSRAdjacency] = None
        self._version = 0
        self._fingerprint: Optional[Tuple[int, str]] = None
        if vertex_labels is not None:
            if len(vertex_labels) != num_vertices:
                raise GraphError(
                    f"expected {num_vertices} vertex labels, got {len(vertex_labels)}"
                )
            self.vertex_labels = list(vertex_labels)
        else:
            self.vertex_labels = [f"u{i}" for i in range(num_vertices)]

    # ------------------------------------------------------------------ sizes
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``|V|``."""
        return self._num_vertices

    @property
    def num_edges(self) -> int:
        """Number of edges ``|E|``."""
        return len(self._edge_source)

    @property
    def num_topics(self) -> int:
        """Number of topics ``|Z|`` carried by each edge."""
        return self._num_topics

    def vertices(self) -> range:
        """Iterable of all vertex ids."""
        return range(self._num_vertices)

    # ------------------------------------------------------------- validation
    def _check_vertex(self, vertex: int) -> int:
        if not 0 <= vertex < self._num_vertices:
            raise UnknownVertexError(f"vertex {vertex} not in graph of size {self._num_vertices}")
        return vertex

    # --------------------------------------------------------------- mutation
    def add_edge(self, source: int, target: int, topic_probabilities: Sequence[float]) -> int:
        """Add a directed edge with its ``p(e|z)`` vector and return its id."""
        guard_check(self, "add_edge while a frozen engine serves this graph")
        self._check_vertex(source)
        self._check_vertex(target)
        if source == target:
            raise GraphError(f"self loop ({source}, {target}) is not allowed")
        if (source, target) in self._edge_lookup:
            raise GraphError(f"edge ({source}, {target}) already exists")
        probs = np.asarray(topic_probabilities, dtype=float)
        if probs.shape != (self._num_topics,):
            raise GraphError(
                f"expected {self._num_topics} topic probabilities, got shape {probs.shape}"
            )
        if np.any(probs < 0.0) or np.any(probs > 1.0):
            raise GraphError(f"edge probabilities must lie in [0, 1], got {probs}")
        edge_id = len(self._edge_source)
        self._edge_source.append(source)
        self._edge_target.append(target)
        self._edge_lookup[(source, target)] = edge_id
        self._edge_probs.append(probs)
        self._out[source].append(edge_id)
        self._in[target].append(edge_id)
        self._prob_matrix = None
        self._max_probs = None
        self._csr = None
        self._version += 1
        return edge_id

    # ----------------------------------------------------------------- access
    def has_edge(self, source: int, target: int) -> bool:
        """Whether the directed edge ``(source, target)`` exists."""
        return (source, target) in self._edge_lookup

    def edge_id(self, source: int, target: int) -> int:
        """The id of edge ``(source, target)``; raises if missing."""
        try:
            return self._edge_lookup[(source, target)]
        except KeyError as exc:
            raise UnknownEdgeError(f"edge ({source}, {target}) does not exist") from exc

    def edge_endpoints(self, edge_id: int) -> Tuple[int, int]:
        """The ``(source, target)`` pair of an edge id."""
        if not 0 <= edge_id < self.num_edges:
            raise UnknownEdgeError(f"edge id {edge_id} out of range")
        return self._edge_source[edge_id], self._edge_target[edge_id]

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges."""
        for edge_id in range(self.num_edges):
            yield Edge(edge_id, self._edge_source[edge_id], self._edge_target[edge_id])

    def out_edges(self, vertex: int) -> List[int]:
        """Edge ids leaving ``vertex`` (a defensive copy; see :meth:`csr`)."""
        self._check_vertex(vertex)
        return list(self._out[vertex])

    def in_edges(self, vertex: int) -> List[int]:
        """Edge ids entering ``vertex`` (a defensive copy; see :meth:`csr`)."""
        self._check_vertex(vertex)
        return list(self._in[vertex])

    def out_neighbors(self, vertex: int) -> List[int]:
        """Vertices directly influenced by ``vertex``."""
        self._check_vertex(vertex)
        return [self._edge_target[e] for e in self._out[vertex]]

    def in_neighbors(self, vertex: int) -> List[int]:
        """Vertices that directly influence ``vertex``."""
        self._check_vertex(vertex)
        return [self._edge_source[e] for e in self._in[vertex]]

    def out_degree(self, vertex: int) -> int:
        """Out-degree of ``vertex``."""
        self._check_vertex(vertex)
        return len(self._out[vertex])

    def in_degree(self, vertex: int) -> int:
        """In-degree of ``vertex``."""
        self._check_vertex(vertex)
        return len(self._in[vertex])

    def out_degrees(self) -> np.ndarray:
        """Vector of out-degrees for every vertex."""
        return np.array([len(adj) for adj in self._out], dtype=np.int64)

    def in_degrees(self) -> np.ndarray:
        """Vector of in-degrees for every vertex."""
        return np.array([len(adj) for adj in self._in], dtype=np.int64)

    # -------------------------------------------------------------------- csr
    @property
    def csr(self) -> CSRAdjacency:
        """The cached CSR view of the adjacency (built on first access).

        The returned structure is immutable and shared between callers; it is
        rebuilt lazily after any :meth:`add_edge`, so holders of a stale
        reference keep a consistent snapshot of the pre-mutation graph while
        new calls observe the new edge.
        """
        if self._csr is None:
            self._csr = CSRAdjacency.from_edges(
                self._num_vertices, self._edge_source, self._edge_target
            )
        return self._csr

    @property
    def version(self) -> int:
        """Mutation counter; increments on every :meth:`add_edge`.

        Long-lived consumers (indexes, estimators) can compare versions to
        detect that a cached derived structure refers to an older graph.
        """
        return self._version

    def fingerprint(self) -> str:
        """Content hash of the graph (shape, topology and probabilities).

        Two graphs built from the same edges in the same order share a
        fingerprint even across processes, which is what lets a persisted
        index (:mod:`repro.serve.store`) be matched against a freshly
        regenerated dataset.  The hash is cached per :attr:`version` so
        repeated store lookups do not rehash an unchanged graph.
        """
        if self._fingerprint is None or self._fingerprint[0] != self._version:
            digest = hashlib.sha256()
            digest.update(f"v{self._num_vertices}:z{self._num_topics}:".encode())
            digest.update(np.asarray(self._edge_source, dtype=np.int64).tobytes())
            digest.update(np.asarray(self._edge_target, dtype=np.int64).tobytes())
            digest.update(np.ascontiguousarray(self.probability_matrix, dtype=float).tobytes())
            self._fingerprint = (self._version, digest.hexdigest())
        return self._fingerprint[1]

    # ----------------------------------------------------------- probabilities
    def topic_probabilities(self, edge_id: int) -> np.ndarray:
        """The ``p(e|z)`` vector of an edge."""
        if not 0 <= edge_id < self.num_edges:
            raise UnknownEdgeError(f"edge id {edge_id} out of range")
        return self._edge_probs[edge_id]

    @property
    def probability_matrix(self) -> np.ndarray:
        """All edge probability vectors stacked into a ``(|E|, |Z|)`` matrix."""
        if self._prob_matrix is None or self._prob_matrix.shape[0] != self.num_edges:
            if self.num_edges == 0:
                self._prob_matrix = np.zeros((0, self._num_topics))
            else:
                self._prob_matrix = np.vstack(self._edge_probs)
        return self._prob_matrix

    def max_edge_probabilities(self) -> np.ndarray:
        """``p(e) = max_z p(e|z)`` per edge (Definition 2 uses this bound)."""
        if self._max_probs is None or self._max_probs.shape[0] != self.num_edges:
            matrix = self.probability_matrix
            self._max_probs = matrix.max(axis=1) if matrix.size else np.zeros(0)
        return self._max_probs

    def max_edge_probability(self, edge_id: int) -> float:
        """``p(e)`` for a single edge."""
        return float(self.max_edge_probabilities()[edge_id])

    def edge_probabilities_under(self, topic_posterior: Sequence[float]) -> np.ndarray:
        """Vector of ``p(e|W) = sum_z p(e|z) p(z|W)`` for every edge.

        ``topic_posterior`` is the ``p(z|W)`` vector computed by the tag-topic
        model (:meth:`repro.topics.TagTopicModel.topic_posterior`).
        """
        posterior = np.asarray(topic_posterior, dtype=float)
        if posterior.shape != (self._num_topics,):
            raise GraphError(
                f"topic posterior must have length {self._num_topics}, got {posterior.shape}"
            )
        if self.num_edges == 0:
            return np.zeros(0)
        return self.probability_matrix @ posterior

    def edge_probability_under(self, edge_id: int, topic_posterior: Sequence[float]) -> float:
        """``p(e|W)`` for a single edge."""
        posterior = np.asarray(topic_posterior, dtype=float)
        return float(self.topic_probabilities(edge_id) @ posterior)

    # ------------------------------------------------------------------ labels
    def label_of(self, vertex: int) -> str:
        """Human-readable label of a vertex."""
        self._check_vertex(vertex)
        return self.vertex_labels[vertex]

    def vertex_by_label(self, label: str) -> int:
        """Vertex id whose label equals ``label`` (first match)."""
        try:
            return self.vertex_labels.index(label)
        except ValueError as exc:
            raise UnknownVertexError(f"no vertex with label {label!r}") from exc

    # ---------------------------------------------------------------- utility
    def copy(self) -> "TopicSocialGraph":
        """A deep copy of the graph."""
        clone = TopicSocialGraph(self._num_vertices, self._num_topics, self.vertex_labels)
        for edge in self.edges():
            clone.add_edge(edge.source, edge.target, self._edge_probs[edge.edge_id])
        return clone

    def subgraph_with_min_probability(self, threshold: float) -> "TopicSocialGraph":
        """A copy keeping only edges whose max probability exceeds ``threshold``."""
        clone = TopicSocialGraph(self._num_vertices, self._num_topics, self.vertex_labels)
        max_probs = self.max_edge_probabilities()
        for edge in self.edges():
            if max_probs[edge.edge_id] > threshold:
                clone.add_edge(edge.source, edge.target, self._edge_probs[edge.edge_id])
        return clone

    def memory_bytes(self) -> int:
        """Approximate in-memory footprint, used for index-size accounting."""
        adjacency = sum(len(adj) for adj in self._out) + sum(len(adj) for adj in self._in)
        edge_arrays = 2 * self.num_edges * 8
        probability_bytes = self.num_edges * self._num_topics * 8
        return adjacency * 8 + edge_arrays + probability_bytes

    def density(self) -> float:
        """Average degree ``|E| / |V|`` reported in Table 2."""
        return self.num_edges / self._num_vertices

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TopicSocialGraph(|V|={self._num_vertices}, |E|={self.num_edges}, "
            f"|Z|={self._num_topics})"
        )

    # ----------------------------------------------------- shared-array codec
    def to_shared_arrays(self) -> Dict[str, np.ndarray]:
        """Flatten the graph into plain numpy arrays for cross-process sharing.

        The returned dict is exactly what :meth:`from_shared_arrays` consumes:
        the CSR adjacency arrays, the ``(|E|, |Z|)`` probability matrix and a
        small ``shape`` header carrying ``(|V|, |Z|, |E|, version)``.  Every
        value is a contiguous array, so the dict can be persisted with
        ``np.savez`` and later memory-mapped read-only by worker processes
        (:meth:`repro.serve.store.IndexStore.save_graph_bundle`).  Warming the
        CSR / probability caches here is the only side effect; the graph
        itself is not mutated.
        """
        csr = self.csr
        return {
            "shape": np.array(
                [self._num_vertices, self._num_topics, self.num_edges, self._version],
                dtype=np.int64,
            ),
            "edge_sources": csr.edge_sources,
            "edge_targets": csr.edge_targets,
            "out_indptr": csr.out_indptr,
            "out_targets": csr.out_targets,
            "out_edge_ids": csr.out_edge_ids,
            "in_indptr": csr.in_indptr,
            "in_sources": csr.in_sources,
            "in_edge_ids": csr.in_edge_ids,
            "probability_matrix": np.ascontiguousarray(self.probability_matrix, dtype=float),
        }

    @classmethod
    def from_shared_arrays(
        cls,
        arrays: Dict[str, np.ndarray],
        vertex_labels: Optional[Sequence[str]] = None,
    ) -> "TopicSocialGraph":
        """Reconstruct a graph from :meth:`to_shared_arrays` output, zero-copy.

        The heavy float payload (the probability matrix) and all CSR arrays
        are adopted *as given* -- when the caller passes read-only memory maps
        (``np.load(..., mmap_mode="r")``), the replica shares those pages with
        every other process instead of copying them.  Only the O(|E|) Python
        adjacency lists and the edge lookup dict are rebuilt.  The mutation
        ``version`` is restored from the header, so the replica produces the
        same :func:`index_cache_key` as the original graph and
        :meth:`fingerprint` matches bitwise.  The replica stays fully mutable:
        ``add_edge`` falls back to the ordinary copy-on-write cache rebuild.
        """
        header = np.asarray(arrays["shape"], dtype=np.int64)
        num_vertices, num_topics, num_edges, version = (int(value) for value in header)
        graph = cls(num_vertices, num_topics, vertex_labels)
        sources = np.asarray(arrays["edge_sources"], dtype=np.int64)
        targets = np.asarray(arrays["edge_targets"], dtype=np.int64)
        matrix = arrays["probability_matrix"]
        if len(sources) != num_edges or matrix.shape != (num_edges, num_topics):
            raise GraphError(
                f"shared arrays are inconsistent: header says {num_edges} edges x "
                f"{num_topics} topics, got {len(sources)} endpoints and "
                f"probability matrix {matrix.shape}"
            )
        graph._edge_source = sources.tolist()
        graph._edge_target = targets.tolist()
        graph._edge_lookup = {
            (source, target): edge_id
            for edge_id, (source, target) in enumerate(
                zip(graph._edge_source, graph._edge_target)
            )
        }
        # Row views into the (possibly mmap'd) matrix; topic_probabilities()
        # hands these out read-only without ever materializing a copy.
        graph._edge_probs = list(matrix)
        graph._prob_matrix = matrix
        out_indptr = np.asarray(arrays["out_indptr"], dtype=np.int64)
        in_indptr = np.asarray(arrays["in_indptr"], dtype=np.int64)
        out_edge_ids = np.asarray(arrays["out_edge_ids"], dtype=np.int64)
        in_edge_ids = np.asarray(arrays["in_edge_ids"], dtype=np.int64)
        graph._out = [
            out_edge_ids[out_indptr[v] : out_indptr[v + 1]].tolist()
            for v in range(num_vertices)
        ]
        graph._in = [
            in_edge_ids[in_indptr[v] : in_indptr[v + 1]].tolist()
            for v in range(num_vertices)
        ]
        graph._csr = CSRAdjacency(
            num_vertices=num_vertices,
            num_edges=num_edges,
            edge_sources=sources,
            edge_targets=targets,
            out_indptr=out_indptr,
            out_targets=np.asarray(arrays["out_targets"], dtype=np.int64),
            out_edge_ids=out_edge_ids,
            in_indptr=in_indptr,
            in_sources=np.asarray(arrays["in_sources"], dtype=np.int64),
            in_edge_ids=in_edge_ids,
        )
        graph._version = version
        return graph

    # ------------------------------------------------------------- construction
    @classmethod
    def from_edges(
        cls,
        num_vertices: int,
        num_topics: int,
        edges: Iterable[Tuple[int, int, Sequence[float]]],
        vertex_labels: Optional[Sequence[str]] = None,
    ) -> "TopicSocialGraph":
        """Build a graph from an iterable of ``(source, target, p(e|z))`` triples."""
        graph = cls(num_vertices, num_topics, vertex_labels)
        for source, target, probabilities in edges:
            graph.add_edge(source, target, probabilities)
        return graph
