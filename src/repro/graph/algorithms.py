"""Graph traversal algorithms used by the samplers, the index and the workload.

Everything here operates on :class:`~repro.graph.digraph.TopicSocialGraph` and
optionally on a per-edge probability vector (``p(e|W)``) so the same BFS code
serves both "structural" reachability (which vertices could ever be influenced,
``R_W(u)`` in the paper) and "live-edge" reachability inside sampled possible
worlds.

Two families of kernels coexist:

* **CSR kernels** (the default) -- frontier-at-a-time BFS over the cached
  :class:`~repro.graph.csr.CSRAdjacency` arrays: one gather per frontier for
  edge ids / endpoints, one batched ``rng`` draw for all coin flips of the
  frontier.  These carry the sampling hot paths.
* **dict kernels** (``kernel="dict"``) -- the original per-edge Python
  walkers.  They remain as the reference implementation: the equivalence tests
  assert both kernels agree, and the benchmarks time one against the other.

Both kernels implement the same probabilistic processes; batched coin
flipping changes the order in which uniforms are consumed, so per-seed sample
paths differ between kernels while the sampled distributions are identical
(the independent live-edge coupling argument of Lemma 6 applies unchanged).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.exceptions import UnknownVertexError
from repro.graph.digraph import TopicSocialGraph
from repro.utils.rng import RandomSource


def _check_vertex(graph: TopicSocialGraph, vertex: int) -> None:
    if not 0 <= vertex < graph.num_vertices:
        raise UnknownVertexError(f"vertex {vertex} not in graph of size {graph.num_vertices}")


def forward_reachable(
    graph: TopicSocialGraph,
    source: int,
    edge_allowed: Optional[Callable[[int], bool]] = None,
) -> Set[int]:
    """Vertices reachable from ``source`` following out-edges.

    ``edge_allowed`` optionally restricts traversal to a subset of edges (for
    instance edges with ``p(e|W) > 0``, which yields the paper's ``R_W(u)``).
    The source itself is always included.
    """
    _check_vertex(graph, source)
    visited = {source}
    queue = deque([source])
    while queue:
        vertex = queue.popleft()
        # borrow the internal adjacency list (read-only): the public
        # out_edges() accessor returns a defensive copy per call, which
        # would tax this reference walker on every dequeued vertex
        for edge_id in graph._out[vertex]:
            if edge_allowed is not None and not edge_allowed(edge_id):
                continue
            _, target = graph.edge_endpoints(edge_id)
            if target not in visited:
                visited.add(target)
                queue.append(target)
    return visited


def reverse_reachable(
    graph: TopicSocialGraph,
    target: int,
    edge_allowed: Optional[Callable[[int], bool]] = None,
) -> Set[int]:
    """Vertices that can reach ``target`` following in-edges (reverse BFS)."""
    _check_vertex(graph, target)
    visited = {target}
    queue = deque([target])
    while queue:
        vertex = queue.popleft()
        for edge_id in graph._in[vertex]:  # borrowed read-only, see forward_reachable
            if edge_allowed is not None and not edge_allowed(edge_id):
                continue
            source, _ = graph.edge_endpoints(edge_id)
            if source not in visited:
                visited.add(source)
                queue.append(source)
    return visited


def reachable_with_probabilities(
    graph: TopicSocialGraph,
    source: int,
    edge_probabilities: Sequence[float],
    threshold: float = 0.0,
    kernel: str = "csr",
) -> Set[int]:
    """``R_W(u)``: vertices reachable from ``source`` via edges with ``p(e|W) > threshold``."""
    probabilities = np.asarray(edge_probabilities, dtype=float)
    if kernel == "dict":
        return forward_reachable(graph, source, lambda e: probabilities[e] > threshold)
    mask = reachable_mask(graph, source, probabilities, threshold)
    return set(np.flatnonzero(mask).tolist())


def reachable_mask(
    graph: TopicSocialGraph,
    source: int,
    edge_probabilities: np.ndarray,
    threshold: float = 0.0,
) -> np.ndarray:
    """Boolean per-vertex membership of ``R_W(u)``, computed on the CSR arrays.

    Frontier-at-a-time BFS: each round gathers every out-edge of the frontier
    with two NumPy indexing operations, filters by ``p(e|W) > threshold`` and
    flags the newly reached targets, so the per-edge work never touches the
    interpreter.
    """
    _check_vertex(graph, source)
    csr = graph.csr
    visited = np.zeros(csr.num_vertices, dtype=bool)
    visited[source] = True
    frontier = np.array([source], dtype=np.int64)
    while frontier.size:
        positions = csr.out_positions(frontier)
        if not positions.size:
            break
        allowed = edge_probabilities[csr.out_edge_ids[positions]] > threshold
        targets = csr.out_targets[positions][allowed]
        fresh = targets[~visited[targets]]
        if not fresh.size:
            break
        visited[fresh] = True
        frontier = np.unique(fresh)
    return visited


def reachable_vertices(
    graph: TopicSocialGraph,
    source: int,
    edge_probabilities: np.ndarray,
    threshold: float = 0.0,
) -> np.ndarray:
    """``R_W(u)`` as a sorted ``int64`` array (CSR kernel)."""
    return np.flatnonzero(reachable_mask(graph, source, edge_probabilities, threshold))


def reachable_subgraph_edges(
    graph: TopicSocialGraph,
    reachable: Set[int],
) -> List[int]:
    """``E_W(u)``: edge ids whose both endpoints lie inside ``reachable``."""
    edges: List[int] = []
    for vertex in reachable:
        for edge_id in graph.out_edges(vertex):
            _, target = graph.edge_endpoints(edge_id)
            if target in reachable:
                edges.append(edge_id)
    return edges


def live_edge_reachable(
    graph: TopicSocialGraph,
    source: int,
    edge_probabilities: Sequence[float],
    uniform: Callable[[], float],
) -> Tuple[Set[int], int]:
    """One Monte-Carlo possible world: BFS over edges kept with probability ``p(e|W)``.

    Returns the set of activated vertices and the number of edges probed, the
    latter feeding the Fig. 13 instrumentation.
    """
    probabilities = np.asarray(edge_probabilities, dtype=float)
    _check_vertex(graph, source)
    activated = {source}
    queue = deque([source])
    probes = 0
    while queue:
        vertex = queue.popleft()
        for edge_id in graph._out[vertex]:  # borrowed read-only, see forward_reachable
            probability = probabilities[edge_id]
            if probability <= 0.0:
                continue
            probes += 1
            _, target = graph.edge_endpoints(edge_id)
            if target in activated:
                continue
            if uniform() < probability:
                activated.add(target)
                queue.append(target)
    return activated, probes


def reverse_live_edge_reachable(
    graph: TopicSocialGraph,
    target: int,
    edge_probabilities: Sequence[float],
    uniform: Callable[[], float],
) -> Tuple[Set[int], int]:
    """One reverse possible world: vertices that reach ``target`` over live edges."""
    probabilities = np.asarray(edge_probabilities, dtype=float)
    _check_vertex(graph, target)
    reached = {target}
    queue = deque([target])
    probes = 0
    while queue:
        vertex = queue.popleft()
        for edge_id in graph._in[vertex]:  # borrowed read-only, see forward_reachable
            probability = probabilities[edge_id]
            if probability <= 0.0:
                continue
            probes += 1
            source, _ = graph.edge_endpoints(edge_id)
            if source in reached:
                continue
            if uniform() < probability:
                reached.add(source)
                queue.append(source)
    return reached, probes


def live_edge_world(
    graph: TopicSocialGraph,
    source: int,
    edge_probabilities: np.ndarray,
    rng: RandomSource,
    collect_edges: bool = False,
) -> Tuple[np.ndarray, Optional[np.ndarray], int]:
    """One forward possible world on the CSR arrays.

    Returns ``(activated_mask, live_edge_ids, probes)``.  Every
    positive-probability out-edge of every activated vertex receives exactly
    one batched coin flip; ``probes`` counts those edges (the Fig. 13
    instrumentation).  ``live_edge_ids`` is only materialized when
    ``collect_edges`` is set (the delayed-materialization recovery needs the
    live edges, the spread estimators only need the activation count).
    """
    _check_vertex(graph, source)
    csr = graph.csr
    activated = np.zeros(csr.num_vertices, dtype=bool)
    activated[source] = True
    frontier = np.array([source], dtype=np.int64)
    live_chunks: List[np.ndarray] = []
    probes = 0
    generator = rng.generator
    while frontier.size:
        positions = csr.out_positions(frontier)
        if not positions.size:
            break
        edge_ids = csr.out_edge_ids[positions]
        probabilities = edge_probabilities[edge_ids]
        positive = probabilities > 0.0
        probes += int(np.count_nonzero(positive))
        edge_ids = edge_ids[positive]
        if not edge_ids.size:
            break
        alive = generator.random(edge_ids.size) < probabilities[positive]
        if collect_edges and alive.any():
            live_chunks.append(edge_ids[alive])
        targets = csr.out_targets[positions][positive][alive]
        fresh = targets[~activated[targets]]
        if fresh.size:
            activated[fresh] = True
            frontier = np.unique(fresh)
        else:
            frontier = np.empty(0, dtype=np.int64)
    live_edges = None
    if collect_edges:
        live_edges = np.concatenate(live_chunks) if live_chunks else np.empty(0, dtype=np.int64)
    return activated, live_edges, probes


def reverse_live_edge_world(
    graph: TopicSocialGraph,
    target: int,
    edge_probabilities: np.ndarray,
    rng: RandomSource,
) -> Tuple[np.ndarray, int]:
    """One reverse possible world on the CSR arrays.

    Returns ``(reached_mask, probes)`` where ``reached_mask[v]`` says whether
    ``v`` reaches ``target`` over live edges; the vectorized counterpart of
    :func:`reverse_live_edge_reachable`.
    """
    _check_vertex(graph, target)
    csr = graph.csr
    reached = np.zeros(csr.num_vertices, dtype=bool)
    reached[target] = True
    frontier = np.array([target], dtype=np.int64)
    probes = 0
    generator = rng.generator
    while frontier.size:
        positions = csr.in_positions(frontier)
        if not positions.size:
            break
        probabilities = edge_probabilities[csr.in_edge_ids[positions]]
        positive = probabilities > 0.0
        probes += int(np.count_nonzero(positive))
        if not positive.any():
            break
        alive = generator.random(int(np.count_nonzero(positive))) < probabilities[positive]
        sources = csr.in_sources[positions][positive][alive]
        fresh = sources[~reached[sources]]
        if fresh.size:
            reached[fresh] = True
            frontier = np.unique(fresh)
        else:
            frontier = np.empty(0, dtype=np.int64)
    return reached, probes


def strongly_connected_components(graph: TopicSocialGraph) -> List[List[int]]:
    """Strongly connected components via Tarjan's algorithm (iterative).

    Used by dataset diagnostics and tests; not on any query hot path.
    """
    index_counter = [0]
    stack: List[int] = []
    lowlink: Dict[int, int] = {}
    index: Dict[int, int] = {}
    on_stack: Dict[int, bool] = {}
    components: List[List[int]] = []

    for root in graph.vertices():
        if root in index:
            continue
        work = [(root, iter(graph.out_neighbors(root)))]
        index[root] = lowlink[root] = index_counter[0]
        index_counter[0] += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            vertex, neighbors = work[-1]
            advanced = False
            for neighbor in neighbors:
                if neighbor not in index:
                    index[neighbor] = lowlink[neighbor] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(neighbor)
                    on_stack[neighbor] = True
                    work.append((neighbor, iter(graph.out_neighbors(neighbor))))
                    advanced = True
                    break
                if on_stack.get(neighbor, False):
                    lowlink[vertex] = min(lowlink[vertex], index[neighbor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[vertex])
            if lowlink[vertex] == index[vertex]:
                component = []
                while True:
                    node = stack.pop()
                    on_stack[node] = False
                    component.append(node)
                    if node == vertex:
                        break
                components.append(component)
    return components


def out_degree_groups(
    graph: TopicSocialGraph,
    high_fraction: float = 0.01,
    mid_fraction: float = 0.10,
) -> Dict[str, List[int]]:
    """Partition users with outgoing edges into high / mid / low out-degree groups.

    Mirrors the query workload of Sec. 7.1: users with no outgoing edge are
    filtered; the top ``high_fraction`` by out-degree form the ``high`` group,
    the next up to ``mid_fraction`` the ``mid`` group, and the rest ``low``.
    """
    degrees = graph.out_degrees()
    candidates = [v for v in graph.vertices() if degrees[v] > 0]
    if not candidates:
        return {"high": [], "mid": [], "low": []}
    ordered = sorted(candidates, key=lambda v: (-degrees[v], v))
    n = len(ordered)
    high_cut = max(1, int(round(n * high_fraction)))
    mid_cut = max(high_cut + 1, int(round(n * mid_fraction)))
    mid_cut = min(mid_cut, n)
    groups = {
        "high": ordered[:high_cut],
        "mid": ordered[high_cut:mid_cut],
        "low": ordered[mid_cut:],
    }
    if not groups["mid"]:
        groups["mid"] = list(groups["high"])
    if not groups["low"]:
        groups["low"] = list(groups["mid"])
    return groups


def single_source_max_probability_paths(
    graph: TopicSocialGraph,
    source: int,
    edge_probabilities: Sequence[float],
    probability_threshold: float = 1e-4,
) -> Dict[int, float]:
    """Best-path activation probabilities from ``source`` (Dijkstra on -log p).

    This is the maximum-influence-path model used by the TIM/MIA-style tree
    baseline: the probability that ``source`` activates ``v`` is approximated by
    the most probable single path.  Paths whose probability drops below
    ``probability_threshold`` are pruned, mirroring the influence-threshold
    pruning of tree-based influence heuristics.
    """
    import heapq

    probabilities = np.asarray(edge_probabilities, dtype=float)
    best: Dict[int, float] = {source: 1.0}
    heap: List[Tuple[float, int]] = [(-1.0, source)]
    settled: Set[int] = set()
    while heap:
        negative_probability, vertex = heapq.heappop(heap)
        path_probability = -negative_probability
        if vertex in settled:
            continue
        settled.add(vertex)
        for edge_id in graph.out_edges(vertex):
            edge_probability = probabilities[edge_id]
            if edge_probability <= 0.0:
                continue
            _, target = graph.edge_endpoints(edge_id)
            candidate = path_probability * edge_probability
            if candidate < probability_threshold:
                continue
            if candidate > best.get(target, 0.0):
                best[target] = candidate
                heapq.heappush(heap, (-candidate, target))
    return best
