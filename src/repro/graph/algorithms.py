"""Graph traversal algorithms used by the samplers, the index and the workload.

Everything here operates on :class:`~repro.graph.digraph.TopicSocialGraph` and
optionally on a per-edge probability vector (``p(e|W)``) so the same BFS code
serves both "structural" reachability (which vertices could ever be influenced,
``R_W(u)`` in the paper) and "live-edge" reachability inside sampled possible
worlds.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.graph.digraph import TopicSocialGraph


def forward_reachable(
    graph: TopicSocialGraph,
    source: int,
    edge_allowed: Optional[Callable[[int], bool]] = None,
) -> Set[int]:
    """Vertices reachable from ``source`` following out-edges.

    ``edge_allowed`` optionally restricts traversal to a subset of edges (for
    instance edges with ``p(e|W) > 0``, which yields the paper's ``R_W(u)``).
    The source itself is always included.
    """
    visited = {source}
    queue = deque([source])
    while queue:
        vertex = queue.popleft()
        for edge_id in graph.out_edges(vertex):
            if edge_allowed is not None and not edge_allowed(edge_id):
                continue
            _, target = graph.edge_endpoints(edge_id)
            if target not in visited:
                visited.add(target)
                queue.append(target)
    return visited


def reverse_reachable(
    graph: TopicSocialGraph,
    target: int,
    edge_allowed: Optional[Callable[[int], bool]] = None,
) -> Set[int]:
    """Vertices that can reach ``target`` following in-edges (reverse BFS)."""
    visited = {target}
    queue = deque([target])
    while queue:
        vertex = queue.popleft()
        for edge_id in graph.in_edges(vertex):
            if edge_allowed is not None and not edge_allowed(edge_id):
                continue
            source, _ = graph.edge_endpoints(edge_id)
            if source not in visited:
                visited.add(source)
                queue.append(source)
    return visited


def reachable_with_probabilities(
    graph: TopicSocialGraph,
    source: int,
    edge_probabilities: Sequence[float],
    threshold: float = 0.0,
) -> Set[int]:
    """``R_W(u)``: vertices reachable from ``source`` via edges with ``p(e|W) > threshold``."""
    probabilities = np.asarray(edge_probabilities, dtype=float)
    return forward_reachable(graph, source, lambda e: probabilities[e] > threshold)


def reachable_subgraph_edges(
    graph: TopicSocialGraph,
    reachable: Set[int],
) -> List[int]:
    """``E_W(u)``: edge ids whose both endpoints lie inside ``reachable``."""
    edges: List[int] = []
    for vertex in reachable:
        for edge_id in graph.out_edges(vertex):
            _, target = graph.edge_endpoints(edge_id)
            if target in reachable:
                edges.append(edge_id)
    return edges


def live_edge_reachable(
    graph: TopicSocialGraph,
    source: int,
    edge_probabilities: Sequence[float],
    uniform: Callable[[], float],
) -> Tuple[Set[int], int]:
    """One Monte-Carlo possible world: BFS over edges kept with probability ``p(e|W)``.

    Returns the set of activated vertices and the number of edges probed, the
    latter feeding the Fig. 13 instrumentation.
    """
    probabilities = np.asarray(edge_probabilities, dtype=float)
    activated = {source}
    queue = deque([source])
    probes = 0
    while queue:
        vertex = queue.popleft()
        for edge_id in graph.out_edges(vertex):
            probability = probabilities[edge_id]
            if probability <= 0.0:
                continue
            probes += 1
            _, target = graph.edge_endpoints(edge_id)
            if target in activated:
                continue
            if uniform() < probability:
                activated.add(target)
                queue.append(target)
    return activated, probes


def reverse_live_edge_reachable(
    graph: TopicSocialGraph,
    target: int,
    edge_probabilities: Sequence[float],
    uniform: Callable[[], float],
) -> Tuple[Set[int], int]:
    """One reverse possible world: vertices that reach ``target`` over live edges."""
    probabilities = np.asarray(edge_probabilities, dtype=float)
    reached = {target}
    queue = deque([target])
    probes = 0
    while queue:
        vertex = queue.popleft()
        for edge_id in graph.in_edges(vertex):
            probability = probabilities[edge_id]
            if probability <= 0.0:
                continue
            probes += 1
            source, _ = graph.edge_endpoints(edge_id)
            if source in reached:
                continue
            if uniform() < probability:
                reached.add(source)
                queue.append(source)
    return reached, probes


def strongly_connected_components(graph: TopicSocialGraph) -> List[List[int]]:
    """Strongly connected components via Tarjan's algorithm (iterative).

    Used by dataset diagnostics and tests; not on any query hot path.
    """
    index_counter = [0]
    stack: List[int] = []
    lowlink: Dict[int, int] = {}
    index: Dict[int, int] = {}
    on_stack: Dict[int, bool] = {}
    components: List[List[int]] = []

    for root in graph.vertices():
        if root in index:
            continue
        work = [(root, iter(graph.out_neighbors(root)))]
        index[root] = lowlink[root] = index_counter[0]
        index_counter[0] += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            vertex, neighbors = work[-1]
            advanced = False
            for neighbor in neighbors:
                if neighbor not in index:
                    index[neighbor] = lowlink[neighbor] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(neighbor)
                    on_stack[neighbor] = True
                    work.append((neighbor, iter(graph.out_neighbors(neighbor))))
                    advanced = True
                    break
                if on_stack.get(neighbor, False):
                    lowlink[vertex] = min(lowlink[vertex], index[neighbor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[vertex])
            if lowlink[vertex] == index[vertex]:
                component = []
                while True:
                    node = stack.pop()
                    on_stack[node] = False
                    component.append(node)
                    if node == vertex:
                        break
                components.append(component)
    return components


def out_degree_groups(
    graph: TopicSocialGraph,
    high_fraction: float = 0.01,
    mid_fraction: float = 0.10,
) -> Dict[str, List[int]]:
    """Partition users with outgoing edges into high / mid / low out-degree groups.

    Mirrors the query workload of Sec. 7.1: users with no outgoing edge are
    filtered; the top ``high_fraction`` by out-degree form the ``high`` group,
    the next up to ``mid_fraction`` the ``mid`` group, and the rest ``low``.
    """
    degrees = graph.out_degrees()
    candidates = [v for v in graph.vertices() if degrees[v] > 0]
    if not candidates:
        return {"high": [], "mid": [], "low": []}
    ordered = sorted(candidates, key=lambda v: (-degrees[v], v))
    n = len(ordered)
    high_cut = max(1, int(round(n * high_fraction)))
    mid_cut = max(high_cut + 1, int(round(n * mid_fraction)))
    mid_cut = min(mid_cut, n)
    groups = {
        "high": ordered[:high_cut],
        "mid": ordered[high_cut:mid_cut],
        "low": ordered[mid_cut:],
    }
    if not groups["mid"]:
        groups["mid"] = list(groups["high"])
    if not groups["low"]:
        groups["low"] = list(groups["mid"])
    return groups


def single_source_max_probability_paths(
    graph: TopicSocialGraph,
    source: int,
    edge_probabilities: Sequence[float],
    probability_threshold: float = 1e-4,
) -> Dict[int, float]:
    """Best-path activation probabilities from ``source`` (Dijkstra on -log p).

    This is the maximum-influence-path model used by the TIM/MIA-style tree
    baseline: the probability that ``source`` activates ``v`` is approximated by
    the most probable single path.  Paths whose probability drops below
    ``probability_threshold`` are pruned, mirroring the influence-threshold
    pruning of tree-based influence heuristics.
    """
    import heapq

    probabilities = np.asarray(edge_probabilities, dtype=float)
    best: Dict[int, float] = {source: 1.0}
    heap: List[Tuple[float, int]] = [(-1.0, source)]
    settled: Set[int] = set()
    while heap:
        negative_probability, vertex = heapq.heappop(heap)
        path_probability = -negative_probability
        if vertex in settled:
            continue
        settled.add(vertex)
        for edge_id in graph.out_edges(vertex):
            edge_probability = probabilities[edge_id]
            if edge_probability <= 0.0:
                continue
            _, target = graph.edge_endpoints(edge_id)
            candidate = path_probability * edge_probability
            if candidate < probability_threshold:
                continue
            if candidate > best.get(target, 0.0):
                best[target] = candidate
                heapq.heappush(heap, (-candidate, target))
    return best
