"""Compressed sparse row (CSR) adjacency arrays for the sampling hot paths.

Every estimator in :mod:`repro.sampling` and :mod:`repro.index` repeatedly
walks the same static graph.  The dict-of-lists storage of
:class:`~repro.graph.digraph.TopicSocialGraph` is convenient for construction
but forces the interpreter to touch one Python object per edge probe, which
dominates the running time of the samplers.  :class:`CSRAdjacency` freezes the
adjacency into six contiguous ``int64`` arrays -- forward and reverse CSR --
so a whole BFS frontier can be expanded with a handful of NumPy gathers and a
single batched coin flip.

Layout
------
Forward (out-edges)::

    out_indptr  : (|V|+1,)  slice boundaries per source vertex
    out_targets : (|E|,)    edge targets, grouped by source, insertion order
    out_edge_ids: (|E|,)    global edge id stored at each slot

Reverse (in-edges)::

    in_indptr   : (|V|+1,)  slice boundaries per target vertex
    in_sources  : (|E|,)    edge sources, grouped by target, insertion order
    in_edge_ids : (|E|,)    global edge id stored at each slot

plus ``edge_sources`` / ``edge_targets`` indexed directly by edge id.  The
slot order within one vertex matches ``TopicSocialGraph.out_edges`` /
``in_edges``, so per-vertex slices of ``out_edge_ids`` are drop-in
replacements for the adjacency lists.

The structure is immutable; :class:`~repro.graph.digraph.TopicSocialGraph`
builds it once on first access to ``graph.csr`` and drops the cache whenever
``add_edge`` mutates the graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.utils.heap import concat_ranges


def slice_positions(indptr: np.ndarray, vertices: np.ndarray) -> np.ndarray:
    """Positions of every CSR slot owned by ``vertices``, concatenated.

    For a frontier ``vertices`` this returns the indices into the CSR data
    arrays covering all of the frontier's edges, i.e. the vectorized
    equivalent of ``[slot for v in vertices for slot in range(indptr[v],
    indptr[v + 1])]``, without a Python-level loop.  The concatenated-ranges
    kernel itself is shared with the batched event queue
    (:func:`repro.utils.heap.concat_ranges`).
    """
    starts = indptr[vertices]
    return concat_ranges(starts, indptr[vertices + 1] - starts)


@dataclass(frozen=True)
class CSRAdjacency:
    """Immutable forward + reverse CSR view of a directed multigraph-free graph."""

    num_vertices: int
    num_edges: int
    edge_sources: np.ndarray
    edge_targets: np.ndarray
    out_indptr: np.ndarray
    out_targets: np.ndarray
    out_edge_ids: np.ndarray
    in_indptr: np.ndarray
    in_sources: np.ndarray
    in_edge_ids: np.ndarray

    @classmethod
    def from_edges(
        cls,
        num_vertices: int,
        edge_sources: Sequence[int],
        edge_targets: Sequence[int],
    ) -> "CSRAdjacency":
        """Build forward and reverse CSR from parallel endpoint arrays."""
        sources = np.asarray(edge_sources, dtype=np.int64)
        targets = np.asarray(edge_targets, dtype=np.int64)
        num_edges = len(sources)
        out_indptr, out_order = csr_order(sources, num_vertices)
        in_indptr, in_order = csr_order(targets, num_vertices)
        return cls(
            num_vertices=int(num_vertices),
            num_edges=num_edges,
            edge_sources=sources,
            edge_targets=targets,
            out_indptr=out_indptr,
            out_targets=targets[out_order],
            out_edge_ids=out_order,
            in_indptr=in_indptr,
            in_sources=sources[in_order],
            in_edge_ids=in_order,
        )

    # ------------------------------------------------------------- traversal
    def out_positions(self, frontier: np.ndarray) -> np.ndarray:
        """CSR slot positions of every out-edge leaving the frontier."""
        return slice_positions(self.out_indptr, frontier)

    def in_positions(self, frontier: np.ndarray) -> np.ndarray:
        """CSR slot positions of every in-edge entering the frontier."""
        return slice_positions(self.in_indptr, frontier)

    def out_slice(self, vertex: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(edge_ids, targets)`` of one vertex's out-edges, insertion order."""
        start, stop = int(self.out_indptr[vertex]), int(self.out_indptr[vertex + 1])
        return self.out_edge_ids[start:stop], self.out_targets[start:stop]

    def in_slice(self, vertex: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(edge_ids, sources)`` of one vertex's in-edges, insertion order."""
        start, stop = int(self.in_indptr[vertex]), int(self.in_indptr[vertex + 1])
        return self.in_edge_ids[start:stop], self.in_sources[start:stop]

    def memory_bytes(self) -> int:
        """Exact footprint of the CSR arrays."""
        arrays = (
            self.edge_sources,
            self.edge_targets,
            self.out_indptr,
            self.out_targets,
            self.out_edge_ids,
            self.in_indptr,
            self.in_sources,
            self.in_edge_ids,
        )
        return int(sum(a.nbytes for a in arrays))


def csr_order(keys: np.ndarray, num_buckets: int) -> Tuple[np.ndarray, np.ndarray]:
    """``(indptr, order)`` grouping positions by ``keys`` with stable slot order.

    The shared building block of every CSR in the library: ``order`` lists the
    input positions sorted by bucket (ties keep input order), ``indptr`` holds
    the per-bucket slice boundaries into ``order``.
    """
    if len(keys):
        counts = np.bincount(keys, minlength=num_buckets)
    else:
        counts = np.zeros(num_buckets, dtype=np.int64)
    indptr = np.zeros(num_buckets + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    order = np.argsort(keys, kind="stable").astype(np.int64)
    return indptr, order
