"""Benchmark harness reproducing the paper's tables and figures.

* :mod:`repro.bench.config` -- sizing knobs (scale, sample caps, query counts)
  with ``smoke`` / ``default`` / ``full`` presets.
* :mod:`repro.bench.harness` -- engine/dataset caching and query-batch runners.
* :mod:`repro.bench.experiments` -- one driver per table / figure (E1..E12 of
  DESIGN.md), each returning an :class:`~repro.bench.reporting.ExperimentResult`.
* :mod:`repro.bench.reporting` -- plain-text table formatting used by the
  benchmark scripts, the examples and the CLI.
"""

from repro.bench.config import BenchmarkConfig
from repro.bench.harness import BenchmarkHarness
from repro.bench.reporting import ExperimentResult, format_table
from repro.bench import experiments

__all__ = [
    "BenchmarkConfig",
    "BenchmarkHarness",
    "ExperimentResult",
    "format_table",
    "experiments",
]
