"""Experiment drivers: one function per table / figure of the paper.

Every driver takes a :class:`~repro.bench.harness.BenchmarkHarness` (which
carries the sizing configuration and the cached datasets / engines) and returns
an :class:`~repro.bench.reporting.ExperimentResult` whose rows mirror the
series the paper plots.  Expensive shared work (e.g. the user-group sweep that
feeds both Fig. 7 and Fig. 8) is memoized on the harness so the pytest
benchmarks can call the drivers independently without recomputation.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bench.harness import BenchmarkHarness, QueryBatchResult
from repro.bench.reporting import ExperimentResult
from repro.datasets.casestudy import build_case_study, evaluate_case_study
from repro.core.engine import PitexEngine
from repro.index.delayed import DelayedMaterializationIndex
from repro.index.rr_index import RRGraphIndex
from repro.index.sizing import measure_data_size, measure_delayed_index, measure_rr_index
from repro.sampling.lazy import LazyPropagationEstimator
from repro.sampling.monte_carlo import MonteCarloEstimator
from repro.sampling.reverse_reachable import ReverseReachableEstimator
from repro.sampling.base import SampleBudget

GROUPS = ("high", "mid", "low")


def _cache(harness: BenchmarkHarness) -> Dict:
    """A scratch cache attached to the harness for cross-experiment reuse."""
    if not hasattr(harness, "_experiment_cache"):
        harness._experiment_cache = {}
    return harness._experiment_cache


# --------------------------------------------------------------------- Table 2
def experiment_table2(harness: BenchmarkHarness) -> ExperimentResult:
    """Table 2: statistics of the (synthetic analogues of the) datasets."""
    result = ExperimentResult(
        experiment="table2",
        title="Statistics of datasets (synthetic analogues)",
        columns=("dataset", "num_vertices", "num_edges", "density", "num_topics", "num_tags", "tag_topic_density"),
    )
    for name in harness.config.datasets:
        dataset = harness.dataset(name)
        result.add_row(
            name,
            dataset.graph.num_vertices,
            dataset.graph.num_edges,
            round(dataset.graph.density(), 2),
            dataset.graph.num_topics,
            dataset.model.num_tags,
            round(dataset.model.tag_topic_density(), 3),
        )
        result.add_note(
            f"{name}: paper reports |V|={dataset.profile.paper_vertices}, "
            f"|E|={dataset.profile.paper_edges}, density={dataset.profile.average_degree:.1f}"
        )
    return result


# --------------------------------------------------------------------- Table 3
def experiment_table3(harness: BenchmarkHarness) -> ExperimentResult:
    """Table 3: index sizes (MB) and construction times of RR-Graphs vs DelayMat."""
    result = ExperimentResult(
        experiment="table3",
        title="Index sizes (MB) and construction time (s)",
        columns=("dataset", "index", "size_mb", "build_seconds", "num_samples"),
    )
    for name in harness.config.datasets:
        dataset = harness.dataset(name)
        data_fp = measure_data_size(dataset.graph, name)
        result.add_row(name, data_fp.name, round(data_fp.size_megabytes, 4), 0.0, 0)
        rr_index = RRGraphIndex(
            dataset.graph, harness.config.index_samples, seed=harness.config.seed
        ).build()
        rr_fp = measure_rr_index(rr_index, name)
        result.add_row(
            name, rr_fp.name, round(rr_fp.size_megabytes, 4), round(rr_fp.build_seconds, 3), rr_fp.num_samples
        )
        delayed = DelayedMaterializationIndex(
            dataset.graph, harness.config.index_samples, seed=harness.config.seed
        ).build()
        delay_fp = measure_delayed_index(delayed, name)
        result.add_row(
            name,
            delay_fp.name,
            round(delay_fp.size_megabytes, 4),
            round(delay_fp.build_seconds, 3),
            delay_fp.num_samples,
        )
    result.add_note("expected shape: delaymat size << rr-graphs size; delaymat builds faster")
    return result


# ---------------------------------------------------------------------- Fig. 6
def _most_influential_tag(harness: BenchmarkHarness, dataset_name: str, user: int) -> int:
    """The single tag maximizing the total outgoing probability mass of ``user``."""
    dataset = harness.dataset(dataset_name)
    graph, model = dataset.graph, dataset.model
    out_edges = graph.out_edges(user)
    best_tag, best_mass = 0, -1.0
    for tag in range(model.num_tags):
        probabilities = model.edge_probabilities(graph, (tag,))
        mass = float(sum(probabilities[e] for e in out_edges))
        if mass > best_mass:
            best_mass = mass
            best_tag = tag
    return best_tag


def experiment_fig6(
    harness: BenchmarkHarness,
    checkpoints: Optional[Sequence[int]] = None,
) -> ExperimentResult:
    """Fig. 6: convergence of MC / RR / LAZY as the sample count grows."""
    if checkpoints is None:
        checkpoints = (25, 50, 100, 200, 400, 800)
    result = ExperimentResult(
        experiment="fig6",
        title="Empirical convergence of sampling-based influence estimation",
        columns=("dataset", "method", "theta", "estimate"),
    )
    for name in harness.config.datasets:
        dataset = harness.dataset(name)
        user = dataset.most_influential_user()
        tag = _most_influential_tag(harness, name, user)
        probabilities = dataset.model.edge_probabilities(dataset.graph, (tag,))
        budget = SampleBudget(
            epsilon=harness.config.epsilon,
            delta=harness.config.delta,
            k=1,
            num_tags=dataset.model.num_tags,
            max_samples=max(checkpoints),
        )
        estimators = {
            "mc": MonteCarloEstimator(dataset.graph, dataset.model, budget, seed=harness.config.seed),
            "rr": ReverseReachableEstimator(dataset.graph, dataset.model, budget, seed=harness.config.seed),
            "lazy": LazyPropagationEstimator(
                dataset.graph, dataset.model, budget, seed=harness.config.seed, early_stopping=False
            ),
            "lazy-batched": LazyPropagationEstimator(
                dataset.graph,
                dataset.model,
                budget,
                seed=harness.config.seed,
                early_stopping=False,
                kernel="batched",
            ),
        }
        for method, estimator in estimators.items():
            estimates = estimator.running_estimates(user, probabilities, list(checkpoints))
            for theta, value in zip(checkpoints, estimates):
                result.add_row(name, method, theta, round(float(value), 4))
    result.add_note("expected shape: MC and LAZY stabilize with fewer samples than RR")
    return result


# ----------------------------------------------------------------- Fig. 7 / 8
def _group_sweep(harness: BenchmarkHarness) -> List[QueryBatchResult]:
    """Shared sweep behind Fig. 7 (time) and Fig. 8 (spread)."""
    cache = _cache(harness)
    if "group_sweep" in cache:
        return cache["group_sweep"]
    batches: List[QueryBatchResult] = []
    for name in harness.config.datasets:
        for group in GROUPS:
            users = harness.query_users(name, group)
            for method in harness.config.methods:
                batches.append(
                    harness.run_query_batch(name, method, users, group=group)
                )
    cache["group_sweep"] = batches
    return batches


def experiment_fig7(harness: BenchmarkHarness) -> ExperimentResult:
    """Fig. 7: query efficiency when varying the query user group."""
    result = ExperimentResult(
        experiment="fig7",
        title="Efficiency comparison when varying query user group",
        columns=("dataset", "group", "method", "seconds"),
    )
    for batch in _group_sweep(harness):
        result.add_row(batch.dataset, batch.group, batch.method, round(batch.mean_seconds, 5))
    result.add_note("expected shape: lazy < mc/rr; indexest+ and delaymat fastest; tim between")
    return result


def experiment_fig8(harness: BenchmarkHarness) -> ExperimentResult:
    """Fig. 8: influence spread of the returned tag sets when varying the user group."""
    result = ExperimentResult(
        experiment="fig8",
        title="Influence spread comparison when varying query user group",
        columns=("dataset", "group", "method", "spread"),
    )
    for batch in _group_sweep(harness):
        result.add_row(batch.dataset, batch.group, batch.method, round(batch.mean_spread, 4))
    result.add_note("expected shape: sampling/index methods comparable; tim lower quality")
    return result


# ---------------------------------------------------------------- Fig. 9 / 10
def _epsilon_sweep(harness: BenchmarkHarness) -> List[Tuple[float, QueryBatchResult]]:
    cache = _cache(harness)
    if "epsilon_sweep" in cache:
        return cache["epsilon_sweep"]
    epsilons = (0.3, 0.5, 0.7, 0.9)
    methods = tuple(m for m in ("lazy", "indexest", "indexest+", "delaymat") if m in harness.config.methods) or (
        "lazy",
        "indexest",
        "indexest+",
        "delaymat",
    )
    batches: List[Tuple[float, QueryBatchResult]] = []
    for name in harness.config.datasets:
        users = harness.query_users(name, "mid")
        for epsilon in epsilons:
            for method in methods:
                batch = harness.run_query_batch(
                    name, method, users, epsilon=epsilon, group="mid"
                )
                batches.append((epsilon, batch))
    cache["epsilon_sweep"] = batches
    return batches


def experiment_fig9(harness: BenchmarkHarness) -> ExperimentResult:
    """Fig. 9: query efficiency when varying the error tolerance epsilon."""
    result = ExperimentResult(
        experiment="fig9",
        title="Efficiency comparison when varying epsilon",
        columns=("dataset", "epsilon", "method", "seconds"),
    )
    for epsilon, batch in _epsilon_sweep(harness):
        result.add_row(batch.dataset, epsilon, batch.method, round(batch.mean_seconds, 5))
    result.add_note("expected shape: time decreases as epsilon grows; index methods dominate lazy")
    return result


def experiment_fig10(harness: BenchmarkHarness) -> ExperimentResult:
    """Fig. 10: influence spread when varying epsilon."""
    result = ExperimentResult(
        experiment="fig10",
        title="Influence spread comparison when varying epsilon",
        columns=("dataset", "epsilon", "method", "spread"),
    )
    for epsilon, batch in _epsilon_sweep(harness):
        result.add_row(batch.dataset, epsilon, batch.method, round(batch.mean_spread, 4))
    result.add_note("expected shape: spreads close at small epsilon, diverging slightly at large epsilon")
    return result


# --------------------------------------------------------------------- Fig. 11
def experiment_fig11(
    harness: BenchmarkHarness, k_values: Sequence[int] = (1, 2, 3)
) -> ExperimentResult:
    """Fig. 11: query efficiency when varying the number of selected tags k."""
    result = ExperimentResult(
        experiment="fig11",
        title="Efficiency comparison when varying k",
        columns=("dataset", "k", "method", "seconds"),
    )
    methods = tuple(
        m
        for m in ("lazy", "lazy-batched", "indexest", "indexest+", "delaymat")
        if m in harness.config.methods
    ) or (
        "lazy",
        "lazy-batched",
        "indexest",
        "indexest+",
        "delaymat",
    )
    for name in harness.config.datasets:
        users = harness.query_users(name, "mid")
        for k in k_values:
            for method in methods:
                batch = harness.run_query_batch(name, method, users, k=k, group="mid")
                result.add_row(name, k, method, round(batch.mean_seconds, 5))
    result.add_note(
        "expected shape: time grows with k but far slower than C(|Omega|, k) thanks to best-effort pruning"
    )
    result.add_note("expected shape: lazy-batched tracks lazy from below (batched event queue)")
    return result


# ----------------------------------------------------------- lazy kernel sweep
def experiment_lazy_kernels(
    harness: BenchmarkHarness, theta: int = 1000, repetitions: int = 3
) -> ExperimentResult:
    """Lazy-propagation kernel throughput: batched event queue vs csr vs dict.

    One fixed estimation (most influential user, most influential tag) is run
    ``theta`` sample instances per kernel, ``repetitions`` times; the fastest
    repetition is reported (robust against scheduler noise on CI runners).
    Feeds the >=3x batched-vs-sequential speedup gate of ``bench_fig11`` and
    the cross-kernel estimate agreement check.
    """
    from repro.utils.timer import Stopwatch

    result = ExperimentResult(
        experiment="lazykernels",
        title="Lazy propagation kernel throughput (one estimation, theta samples)",
        columns=("dataset", "kernel", "theta", "seconds", "estimate"),
    )
    for name in harness.config.datasets:
        dataset = harness.dataset(name)
        user = dataset.most_influential_user()
        tag = _most_influential_tag(harness, name, user)
        probabilities = dataset.model.edge_probabilities(dataset.graph, (tag,))
        budget = SampleBudget(
            epsilon=harness.config.epsilon,
            delta=harness.config.delta,
            k=1,
            num_tags=dataset.model.num_tags,
            max_samples=theta,
        )
        for kernel in ("batched", "csr", "dict"):
            estimator = LazyPropagationEstimator(
                dataset.graph,
                dataset.model,
                budget,
                seed=harness.config.seed,
                early_stopping=False,
                kernel=kernel,
            )
            estimator.estimate_with_probabilities(user, probabilities, min(200, theta))  # warm-up
            best_seconds = math.inf
            value = 0.0
            for _ in range(repetitions):
                watch = Stopwatch().start()
                estimate = estimator.estimate_with_probabilities(user, probabilities, theta)
                watch.stop()
                best_seconds = min(best_seconds, watch.elapsed)
                value = estimate.value
            result.add_row(name, kernel, theta, round(best_seconds, 6), round(value, 4))
    result.add_note("expected shape: batched >= 3x faster than csr/dict; estimates agree within eps")
    return result


# --------------------------------------------------------------------- Fig. 12
def experiment_fig12(
    harness: BenchmarkHarness,
    dataset_name: str = "twitter",
    tag_counts: Sequence[int] = (50, 100, 150),
    topic_counts: Sequence[int] = (10, 20, 30),
) -> ExperimentResult:
    """Fig. 12: scalability against the number of tags |Omega| and topics |Z|."""
    result = ExperimentResult(
        experiment="fig12",
        title="Scalability when varying |Omega| and |Z| (twitter-like dataset)",
        columns=("sweep", "value", "method", "seconds"),
    )
    methods = ("lazy", "indexest+")
    base_scale = harness.config.scale_of(dataset_name)
    for num_tags in tag_counts:
        engine = harness.engine(dataset_name, scale=base_scale, num_tags=num_tags)
        dataset = harness.dataset(dataset_name, scale=base_scale, num_tags=num_tags)
        users = dataset.workload("mid", harness.config.queries_per_group)
        for method in methods:
            batch = harness.run_query_batch(
                dataset_name, method, users, group="mid", engine=engine
            )
            result.add_row("num_tags", num_tags, method, round(batch.mean_seconds, 5))
    for num_topics in topic_counts:
        engine = harness.engine(dataset_name, scale=base_scale, num_topics=num_topics)
        dataset = harness.dataset(dataset_name, scale=base_scale, num_topics=num_topics)
        users = dataset.workload("mid", harness.config.queries_per_group)
        for method in methods:
            batch = harness.run_query_batch(
                dataset_name, method, users, group="mid", engine=engine
            )
            result.add_row("num_topics", num_topics, method, round(batch.mean_seconds, 5))
    result.add_note("expected shape: time grows with |Omega|; time does not grow (often shrinks) with |Z|")
    return result


# --------------------------------------------------------------------- Fig. 13
def experiment_fig13(harness: BenchmarkHarness) -> ExperimentResult:
    """Fig. 13 / Appendix D: edges visited by the online sampling methods."""
    result = ExperimentResult(
        experiment="fig13",
        title="Number of visited edges for online sampling methods",
        columns=("dataset", "group", "method", "mean_edges_visited"),
    )
    for name in harness.config.datasets:
        dataset = harness.dataset(name)
        engine = harness.engine(name)
        reference_user = dataset.most_influential_user()
        tag = _most_influential_tag(harness, name, reference_user)
        tag_set = (tag,)
        for group in GROUPS:
            users = harness.query_users(name, group)
            for method in harness.config.online_methods:
                _, _, mean_edges = harness.estimate_batch(name, method, users, tag_set, engine=engine)
                result.add_row(name, group, method, round(mean_edges, 1))
    result.add_note("expected shape: lazy visits at least an order of magnitude fewer edges than mc/rr")
    return result


# --------------------------------------------------------------------- Fig. 14
def experiment_fig14(
    harness: BenchmarkHarness, delta_values: Sequence[float] = (10.0, 100.0, 1000.0, 10000.0)
) -> ExperimentResult:
    """Fig. 14: query efficiency when varying the confidence parameter delta."""
    result = ExperimentResult(
        experiment="fig14",
        title="Efficiency comparison when varying delta",
        columns=("dataset", "delta", "method", "seconds"),
    )
    methods = tuple(m for m in ("lazy", "indexest", "indexest+", "delaymat") if m in harness.config.methods) or (
        "lazy",
        "indexest",
        "indexest+",
        "delaymat",
    )
    for name in harness.config.datasets:
        users = harness.query_users(name, "mid")
        for delta in delta_values:
            for method in methods:
                batch = harness.run_query_batch(name, method, users, delta=delta, group="mid")
                result.add_row(name, delta, method, round(batch.mean_seconds, 5))
    result.add_note("expected shape: time grows only logarithmically with delta")
    return result


# --------------------------------------------------------------------- Table 4
def experiment_table4(
    harness: BenchmarkHarness, k: int = 5, method: str = "indexest+"
) -> ExperimentResult:
    """Table 4: the dblp-style researcher case study with a programmatic oracle."""
    result = ExperimentResult(
        experiment="table4",
        title="Case study: influential tags of renowned researchers",
        columns=("researcher", "tags", "accuracy"),
    )
    # Scale the synthetic co-author communities with the preset: small presets
    # (1-2 queries per group) get smaller communities so the whole suite stays fast.
    members_per_field = 18 if harness.config.queries_per_group <= 2 else 40
    followers = 14 if harness.config.queries_per_group <= 2 else 35
    case_study = build_case_study(
        members_per_field=members_per_field,
        followers_per_researcher=followers,
        seed=harness.config.seed,
    )
    engine = PitexEngine(
        case_study.graph,
        case_study.model,
        epsilon=harness.config.epsilon,
        delta=harness.config.delta,
        max_samples=harness.config.max_samples,
        index_samples=max(harness.config.index_samples, 800),
        default_k=k,
        seed=harness.config.seed,
    )
    rows = evaluate_case_study(case_study, engine, k=k, method=method)
    accuracies = []
    for researcher, tags, accuracy in rows:
        result.add_row(researcher, ", ".join(tags), round(accuracy, 3))
        accuracies.append(accuracy)
    result.add_note(f"mean accuracy = {np.mean(accuracies):.3f} (paper reports 0.78 with human annotators)")
    return result


#: Registry used by the CLI and the examples: experiment id -> driver.
EXPERIMENTS = {
    "table2": experiment_table2,
    "table3": experiment_table3,
    "lazykernels": experiment_lazy_kernels,
    "fig6": experiment_fig6,
    "fig7": experiment_fig7,
    "fig8": experiment_fig8,
    "fig9": experiment_fig9,
    "fig10": experiment_fig10,
    "fig11": experiment_fig11,
    "fig12": experiment_fig12,
    "fig13": experiment_fig13,
    "fig14": experiment_fig14,
    "table4": experiment_table4,
}
