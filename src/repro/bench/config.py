"""Sizing configuration of the benchmark harness.

The paper runs on a C++ implementation over graphs with up to ten million
vertices; this pure-Python reproduction scales the instances down so the whole
table/figure suite finishes on a laptop while preserving the structural knobs
that drive the comparisons (density, degree skew, topic sparsity, tag-topic
density).  Three presets are provided:

* ``smoke``  -- minutes-long CI runs (used by ``pytest benchmarks/``),
* ``default`` -- a fuller sweep for interactive exploration,
* ``full``   -- the closest practical approximation of the paper's settings.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

from repro.exceptions import InvalidParameterError


@dataclass(frozen=True)
class BenchmarkConfig:
    """All knobs of one benchmark run.

    Attributes
    ----------
    datasets:
        Dataset profile names to include.
    scales:
        Per-dataset scale factor applied to the profile's default vertex count.
    queries_per_group:
        Number of query users drawn per out-degree group (the paper uses 100).
    k:
        Default number of tags per query.
    epsilon / delta:
        Default accuracy parameters (paper defaults: 0.7 / 1000).
    max_samples:
        Practical cap on per-tag-set online samples.
    index_samples:
        Number of RR-Graphs materialized by the offline indexes.
    methods:
        Methods compared by the efficiency/spread experiments.
    online_methods:
        Online sampling methods compared by Fig. 6 / Fig. 13.
    seed:
        Base random seed.
    kernel:
        Sampling kernel for the engines: ``"csr"`` (vectorized, default) or
        ``"dict"`` (per-edge reference walkers).
    """

    datasets: Tuple[str, ...] = ("lastfm", "diggs", "dblp", "twitter")
    scales: Dict[str, float] = field(
        default_factory=lambda: {"lastfm": 0.35, "diggs": 0.35, "dblp": 0.3, "twitter": 0.25}
    )
    queries_per_group: int = 3
    k: int = 2
    epsilon: float = 0.7
    delta: float = 1000.0
    max_samples: int = 200
    index_samples: int = 600
    methods: Tuple[str, ...] = (
        "rr",
        "mc",
        "lazy",
        "lazy-batched",
        "tim",
        "indexest",
        "indexest+",
        "delaymat",
    )
    online_methods: Tuple[str, ...] = ("mc", "rr", "lazy", "lazy-batched")
    seed: int = 2017
    kernel: str = "csr"

    def scale_of(self, dataset: str) -> float:
        """Scale factor for ``dataset`` (1.0 when not listed)."""
        return self.scales.get(dataset, 1.0)

    def with_overrides(self, **kwargs) -> "BenchmarkConfig":
        """A copy of the configuration with some fields replaced."""
        return replace(self, **kwargs)

    @classmethod
    def preset(cls, name: str = "smoke") -> "BenchmarkConfig":
        """One of the named presets (``smoke``, ``default``, ``full``)."""
        name = name.lower()
        if name == "smoke":
            return cls(
                datasets=("lastfm", "diggs"),
                scales={"lastfm": 0.2, "diggs": 0.15, "dblp": 0.1, "twitter": 0.08},
                queries_per_group=1,
                k=2,
                max_samples=100,
                index_samples=250,
            )
        if name == "default":
            return cls()
        if name == "full":
            return cls(
                scales={"lastfm": 1.0, "diggs": 1.0, "dblp": 1.0, "twitter": 1.0},
                queries_per_group=20,
                k=3,
                max_samples=2000,
                index_samples=5000,
            )
        raise InvalidParameterError(f"unknown preset {name!r}; use smoke, default or full")
