"""Dataset / engine caching and query-batch execution for the benchmarks.

Every experiment needs the same ingredients: generate (once) the synthetic
analogue of each dataset, build (once) the offline indexes, then time batches
of PITEX queries under various methods and parameters.  ``BenchmarkHarness``
owns those cached ingredients so a full benchmark session never rebuilds a
dataset or an index twice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.bench.config import BenchmarkConfig
from repro.core.engine import PitexEngine
from repro.datasets.synthetic import SyntheticDataset, load_dataset
from repro.utils.timer import Stopwatch, TimingRecord


@dataclass
class QueryBatchResult:
    """Aggregated outcome of a batch of PITEX queries."""

    method: str
    dataset: str
    group: str
    mean_seconds: float
    mean_spread: float
    mean_edges_visited: float
    mean_evaluated: float
    mean_pruned: float
    num_queries: int


class BenchmarkHarness:
    """Caches datasets and engines; runs timed query batches."""

    def __init__(self, config: Optional[BenchmarkConfig] = None) -> None:
        self.config = config if config is not None else BenchmarkConfig()
        self._datasets: Dict[Tuple[str, float, Optional[int], Optional[int]], SyntheticDataset] = {}
        self._engines: Dict[Tuple[str, float, Optional[int], Optional[int]], PitexEngine] = {}

    # ------------------------------------------------------------ ingredients
    def dataset(
        self,
        name: str,
        scale: Optional[float] = None,
        num_tags: Optional[int] = None,
        num_topics: Optional[int] = None,
    ) -> SyntheticDataset:
        """The cached synthetic dataset for ``name`` (generated on first use)."""
        scale = scale if scale is not None else self.config.scale_of(name)
        key = (name, scale, num_tags, num_topics)
        if key not in self._datasets:
            self._datasets[key] = load_dataset(
                name, scale=scale, num_tags=num_tags, num_topics=num_topics, seed=self.config.seed
            )
        return self._datasets[key]

    def engine(
        self,
        name: str,
        scale: Optional[float] = None,
        num_tags: Optional[int] = None,
        num_topics: Optional[int] = None,
    ) -> PitexEngine:
        """The cached engine for ``name`` (indexes are still built lazily)."""
        scale = scale if scale is not None else self.config.scale_of(name)
        key = (name, scale, num_tags, num_topics)
        if key not in self._engines:
            dataset = self.dataset(name, scale, num_tags, num_topics)
            self._engines[key] = PitexEngine(
                dataset.graph,
                dataset.model,
                epsilon=self.config.epsilon,
                delta=self.config.delta,
                max_samples=self.config.max_samples,
                index_samples=self.config.index_samples,
                default_k=self.config.k,
                seed=self.config.seed,
                kernel=self.config.kernel,
            )
        return self._engines[key]

    # ---------------------------------------------------------------- batches
    def query_users(self, dataset_name: str, group: str, num_queries: Optional[int] = None) -> List[int]:
        """Query users of one out-degree group for a dataset."""
        dataset = self.dataset(dataset_name)
        count = num_queries if num_queries is not None else self.config.queries_per_group
        return dataset.workload(group, count)

    def run_query_batch(
        self,
        dataset_name: str,
        method: str,
        users: Sequence[int],
        k: Optional[int] = None,
        epsilon: Optional[float] = None,
        delta: Optional[float] = None,
        group: str = "",
        exploration: str = "best-effort",
        candidate_tags: Optional[Iterable[int]] = None,
        engine: Optional[PitexEngine] = None,
    ) -> QueryBatchResult:
        """Run one PITEX query per user and aggregate time / spread / counters."""
        engine = engine if engine is not None else self.engine(dataset_name)
        times = TimingRecord(label=f"{dataset_name}:{method}")
        spreads = TimingRecord(label="spread")
        edges = TimingRecord(label="edges")
        evaluated = TimingRecord(label="evaluated")
        pruned = TimingRecord(label="pruned")
        candidate_list = list(candidate_tags) if candidate_tags is not None else None
        for user in users:
            watch = Stopwatch().start()
            result = engine.query(
                user=user,
                k=k if k is not None else self.config.k,
                method=method,
                exploration=exploration,
                epsilon=epsilon,
                delta=delta,
                candidate_tags=candidate_list,
            )
            watch.stop()
            times.add(watch.elapsed)
            spreads.add(result.spread)
            edges.add(result.edges_visited)
            evaluated.add(result.evaluated_tag_sets)
            pruned.add(result.pruned_tag_sets)
        return QueryBatchResult(
            method=method,
            dataset=dataset_name,
            group=group,
            mean_seconds=times.mean,
            mean_spread=spreads.mean,
            mean_edges_visited=edges.mean,
            mean_evaluated=evaluated.mean,
            mean_pruned=pruned.mean,
            num_queries=len(users),
        )

    def estimate_batch(
        self,
        dataset_name: str,
        method: str,
        users: Sequence[int],
        tag_set: Sequence[int],
        engine: Optional[PitexEngine] = None,
    ) -> Tuple[float, float, float]:
        """Run one influence estimation per user for a fixed tag set.

        Returns ``(mean_seconds, mean_value, mean_edges_visited)``; used by the
        edge-visit experiment (Fig. 13) where full query loops would hide the
        per-estimation cost differences.
        """
        engine = engine if engine is not None else self.engine(dataset_name)
        times = TimingRecord(label="time")
        values = TimingRecord(label="value")
        edges = TimingRecord(label="edges")
        for user in users:
            watch = Stopwatch().start()
            estimate = engine.estimate_influence(user, tag_set, method=method)
            watch.stop()
            times.add(watch.elapsed)
            values.add(estimate.value)
            edges.add(estimate.edges_visited)
        return times.mean, values.mean, edges.mean
