"""Result containers and plain-text table formatting for the benchmarks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Sequence, Tuple

from repro.utils.stats import LatencyAccumulator


@dataclass
class ExperimentResult:
    """The outcome of one experiment driver.

    Attributes
    ----------
    experiment:
        Experiment id from DESIGN.md (e.g. ``"fig7"``).
    title:
        Human-readable title (what the paper's table/figure caption says).
    columns:
        Column names of ``rows``.
    rows:
        The data rows, one tuple per line of the reproduced table/series.
    notes:
        Free-form notes (parameters used, deviations, shape checks).
    """

    experiment: str
    title: str
    columns: Tuple[str, ...]
    rows: List[tuple] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values) -> None:
        """Append one row (must match ``columns`` in length)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values but the result has {len(self.columns)} columns"
            )
        self.rows.append(tuple(values))

    def add_note(self, note: str) -> None:
        """Attach a free-form note."""
        self.notes.append(note)

    def column(self, name: str) -> List:
        """All values of one column."""
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def filter_rows(self, **criteria) -> List[tuple]:
        """Rows whose named columns equal the given values."""
        indices = {name: self.columns.index(name) for name in criteria}
        return [
            row
            for row in self.rows
            if all(row[indices[name]] == value for name, value in criteria.items())
        ]

    def cell(self, value_column: str, **criteria) -> Optional[float]:
        """The single value of ``value_column`` in the row matching ``criteria``."""
        matches = self.filter_rows(**criteria)
        if not matches:
            return None
        return matches[0][self.columns.index(value_column)]


def _format_value(value) -> str:
    if isinstance(value, float):
        if value != 0 and (abs(value) < 1e-3 or abs(value) >= 1e6):
            return f"{value:.3e}"
        return f"{value:.4f}"
    return str(value)


def format_table(result: ExperimentResult, max_rows: Optional[int] = None) -> str:
    """Render an :class:`ExperimentResult` as an aligned plain-text table."""
    rows = result.rows if max_rows is None else result.rows[:max_rows]
    rendered = [[_format_value(v) for v in row] for row in rows]
    headers = [str(c) for c in result.columns]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [f"== {result.experiment}: {result.title} =="]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    if max_rows is not None and len(result.rows) > max_rows:
        lines.append(f"... ({len(result.rows) - max_rows} more rows)")
    for note in result.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def format_results(results: Sequence[ExperimentResult]) -> str:
    """Render several results separated by blank lines."""
    return "\n\n".join(format_table(result) for result in results)


LATENCY_COLUMNS = ("label", "queries", "mean_ms", "p50_ms", "p95_ms", "p99_ms", "max_ms", "qps")


def latency_row(accumulator: LatencyAccumulator, wall_seconds: Optional[float] = None) -> tuple:
    """One :data:`LATENCY_COLUMNS` row from a latency accumulator.

    ``wall_seconds`` is the wall-clock span the observations were collected
    over; throughput falls back to the busy time (sum of latencies) when the
    caller did not measure the span, which overstates qps under concurrency.
    """
    summary = accumulator.summary()
    span = wall_seconds if wall_seconds and wall_seconds > 0 else accumulator.total
    qps = summary["count"] / span if span > 0 else 0.0
    return (
        summary["label"],
        summary["count"],
        summary["mean"] * 1000.0,
        summary["p50"] * 1000.0,
        summary["p95"] * 1000.0,
        summary["p99"] * 1000.0,
        summary["max"] * 1000.0,
        qps,
    )


def latency_result(
    experiment: str,
    title: str,
    accumulators: Sequence[LatencyAccumulator],
    wall_seconds: Optional[Mapping[str, float]] = None,
) -> ExperimentResult:
    """An :class:`ExperimentResult` latency table, one row per accumulator."""
    result = ExperimentResult(experiment=experiment, title=title, columns=LATENCY_COLUMNS)
    for accumulator in accumulators:
        span = wall_seconds.get(accumulator.label) if wall_seconds else None
        result.add_row(*latency_row(accumulator, span))
    return result
