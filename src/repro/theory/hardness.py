"""Brute-force deciders used to validate the hardness reductions.

These are exponential-time reference implementations: they only run on the tiny
instances used by the test suite, where they confirm that the reductions of
:mod:`repro.theory.reductions` preserve yes/no answers exactly as the proofs of
Lemma 1 and Theorem 1 require.
"""

from __future__ import annotations

from itertools import combinations
from typing import Optional, Set, Tuple

from repro.graph.algorithms import forward_reachable
from repro.theory.reductions import (
    LabeledGraph,
    SetCoverInstance,
    set_cover_to_pitex,
)


def brute_force_set_cover(instance: SetCoverInstance, k: int) -> bool:
    """Whether some ``k`` subsets cover the universe (exponential search)."""
    universe = set(instance.universe)
    for selection in combinations(range(instance.num_subsets), min(k, instance.num_subsets)):
        covered: Set[int] = set()
        for index in selection:
            covered.update(instance.subsets[index])
        if covered >= universe:
            return True
    return False


def brute_force_k_label_reachability(
    graph: LabeledGraph, source: int, target: int, k: int
) -> bool:
    """Whether some ``k``-label subset makes ``source`` reach ``target``."""
    labels = range(graph.num_labels)
    for selection in combinations(labels, min(k, graph.num_labels)):
        if graph.reaches(source, target, set(selection)):
            return True
    return False


def pitex_decides_reachability(
    instance: SetCoverInstance,
    k: int,
    padding: Optional[int] = None,
    probability_cut: float = 0.01,
) -> Tuple[bool, float]:
    """Theorem 1's decision procedure run on the reduced PITEX instance.

    Builds the PITEX instance from the set-cover instance and, for every
    ``k``-tag set, measures the influence spread of the query user as the
    number of vertices reachable through edges with a non-negligible
    ``p(e|W)``: because of the smoothed construction (see
    :func:`repro.theory.reductions.k_label_reachability_to_pitex`), edges of a
    *selected* label have probability around ``1/k`` while every other edge
    sits at the smoothing floor, so ``probability_cut`` separates the two
    regimes for any reasonable ``k``.  The ``spread > n - 1`` threshold from
    the proof's case analysis then decides the original instance.

    Returns ``(decision, best_spread)``.
    """
    graph, model, user, _target = set_cover_to_pitex(instance, padding)
    original_vertices = instance.num_elements + 1
    best_spread = 0.0
    for tag_set in model.candidate_tag_sets(min(k, model.num_tags)):
        probabilities = model.edge_probabilities(graph, tag_set)
        reachable = forward_reachable(graph, user, lambda e: probabilities[e] > probability_cut)
        best_spread = max(best_spread, float(len(reachable)))
    return best_spread > original_vertices - 1, best_spread
