"""Executable reductions behind the PITEX hardness proof.

Lemma 1 reduces *set cover* to *k-label s-t reachability*; Theorem 1 reduces
k-label s-t reachability to PITEX.  The constructions below follow the proofs
literally (with one representational change: our social graph disallows
parallel edges, so multi-labelled edges between the same vertex pair are merged
into a single edge whose probability vector is 1 on every carried label --
equivalent for reachability, which is all the proofs use).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.graph.digraph import TopicSocialGraph
from repro.topics.model import TagTopicModel


@dataclass(frozen=True)
class SetCoverInstance:
    """A set cover instance: a universe and a family of subsets."""

    universe: Tuple[int, ...]
    subsets: Tuple[Tuple[int, ...], ...]

    def __post_init__(self) -> None:
        universe = set(self.universe)
        covered = set()
        for subset in self.subsets:
            covered.update(subset)
        if not covered >= universe:
            raise InvalidParameterError("the subsets do not cover the universe")

    @property
    def num_elements(self) -> int:
        """Size of the universe."""
        return len(self.universe)

    @property
    def num_subsets(self) -> int:
        """Number of subsets in the family."""
        return len(self.subsets)


@dataclass
class LabeledGraph:
    """A directed multigraph with one label per edge (input of Lemma 1)."""

    num_vertices: int
    num_labels: int
    edges: List[Tuple[int, int, int]] = field(default_factory=list)

    def add_edge(self, source: int, target: int, label: int) -> None:
        """Add a labelled edge."""
        if not 0 <= source < self.num_vertices or not 0 <= target < self.num_vertices:
            raise InvalidParameterError("edge endpoints out of range")
        if not 0 <= label < self.num_labels:
            raise InvalidParameterError("edge label out of range")
        self.edges.append((source, target, label))

    def edges_with_labels(self, labels: Set[int]) -> List[Tuple[int, int]]:
        """Edges whose label belongs to ``labels``."""
        return [(u, v) for (u, v, l) in self.edges if l in labels]

    def reaches(self, source: int, target: int, labels: Set[int]) -> bool:
        """Whether ``source`` reaches ``target`` in the subgraph induced by ``labels``."""
        adjacency: Dict[int, List[int]] = {}
        for u, v in self.edges_with_labels(labels):
            adjacency.setdefault(u, []).append(v)
        frontier = [source]
        visited = {source}
        while frontier:
            vertex = frontier.pop()
            if vertex == target:
                return True
            for neighbor in adjacency.get(vertex, []):
                if neighbor not in visited:
                    visited.add(neighbor)
                    frontier.append(neighbor)
        return target in visited


def set_cover_to_k_label_reachability(instance: SetCoverInstance) -> Tuple[LabeledGraph, int, int]:
    """Lemma 1 reduction: a path whose i-th hop carries the labels of subsets containing u_i.

    Returns ``(graph, s, t)``.  A label set of size ``k`` makes ``s`` reach ``t``
    iff the corresponding ``k`` subsets cover the universe.
    """
    n = instance.num_elements
    element_position = {element: i for i, element in enumerate(instance.universe)}
    graph = LabeledGraph(num_vertices=n + 1, num_labels=instance.num_subsets)
    for label, subset in enumerate(instance.subsets):
        for element in subset:
            position = element_position[element]
            graph.add_edge(position, position + 1, label)
    return graph, 0, n


def k_label_reachability_to_pitex(
    labeled_graph: LabeledGraph,
    source: int,
    target: int,
    padding: int | None = None,
    smoothing: float = 1e-6,
) -> Tuple[TopicSocialGraph, TagTopicModel, int]:
    """Theorem 1 reduction: k-label reachability as a PITEX instance.

    One tag and one topic per label with ``p(w_i|z_i) = 1``; every labelled
    edge gets probability 1 under its label's topic; a deterministic chain of
    ``padding`` extra vertices hangs off ``target`` so that reaching ``target``
    inflates the influence spread well past the number of original vertices
    (the proof uses ``padding = n^2 - n``; tests may use a smaller value, the
    threshold argument only needs the chain to be longer than the original
    graph).

    One representational note: the paper's construction sets ``p(w_i|z_j) = 0``
    for ``i != j``, but under the strict bag-of-words product of Eqn. 1 a tag
    set spanning two different labels would then have an *empty* topic support
    (the posterior multiplies the per-tag likelihoods), collapsing every
    multi-tag query.  The construction's intent -- selecting ``k`` labels
    activates the edges of all ``k`` labels -- is realized by smoothing the off
    -diagonal entries with a tiny ``smoothing`` likelihood: the posterior then
    concentrates (up to ``O(smoothing)``) uniformly on the selected labels'
    topics, giving the selected labels' edges probability ``~1/k`` and all
    other edges probability ``~smoothing``, which the Theorem 1 threshold
    argument separates cleanly.

    Returns ``(social_graph, tag_topic_model, query_user)``.
    """
    n = labeled_graph.num_vertices
    num_labels = labeled_graph.num_labels
    if padding is None:
        padding = n * n - n
    total_vertices = n + padding
    graph = TopicSocialGraph(total_vertices, num_labels)

    # Merge parallel labelled edges into one probability vector per vertex pair.
    merged: Dict[Tuple[int, int], np.ndarray] = {}
    for u, v, label in labeled_graph.edges:
        vector = merged.setdefault((u, v), np.zeros(num_labels))
        vector[label] = 1.0
    for (u, v), vector in merged.items():
        graph.add_edge(u, v, vector)

    # Deterministic chain from the target through the padding vertices.
    ones = np.ones(num_labels)
    previous = target
    for offset in range(padding):
        chain_vertex = n + offset
        graph.add_edge(previous, chain_vertex, ones)
        previous = chain_vertex

    matrix = np.full((num_labels, num_labels), smoothing)
    np.fill_diagonal(matrix, 1.0)
    model = TagTopicModel(matrix, tags=[f"label{i}" for i in range(num_labels)])
    return graph, model, source


def set_cover_to_pitex(
    instance: SetCoverInstance, padding: int | None = None
) -> Tuple[TopicSocialGraph, TagTopicModel, int, int]:
    """Compose both reductions; returns ``(graph, model, query_user, target_vertex)``."""
    labeled_graph, source, target = set_cover_to_k_label_reachability(instance)
    graph, model, user = k_label_reachability_to_pitex(labeled_graph, source, target, padding)
    return graph, model, user, target
