"""Hardness constructions of Sec. 3.2 (Lemma 1 and Theorem 1).

The reductions are implemented as executable graph constructions so the test
suite can check, end to end, that the chain

    set cover  ->  k-label s-t reachability  ->  PITEX

behaves as the proofs claim: a set-cover instance has a cover of size ``k`` iff
the reduced PITEX instance admits a size-``k`` tag set whose influence spread
crosses the ``n - 1`` threshold used in the Theorem 1 case analysis.
"""

from repro.theory.reductions import (
    SetCoverInstance,
    LabeledGraph,
    set_cover_to_k_label_reachability,
    k_label_reachability_to_pitex,
    set_cover_to_pitex,
)
from repro.theory.hardness import (
    brute_force_set_cover,
    brute_force_k_label_reachability,
    pitex_decides_reachability,
)

__all__ = [
    "SetCoverInstance",
    "LabeledGraph",
    "set_cover_to_k_label_reachability",
    "k_label_reachability_to_pitex",
    "set_cover_to_pitex",
    "brute_force_set_cover",
    "brute_force_k_label_reachability",
    "pitex_decides_reachability",
]
