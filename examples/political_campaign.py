#!/usr/bin/env python
"""Political campaign scenario (the paper's Fig. 1 motivation).

A candidate's team wants to know which campaign topics ("hashtags") propagate
furthest through the re-tweet network, so speeches and ads can lean on the
candidate's actual selling points.  We build a small synthetic re-tweet network
with named hashtags, learn nothing (the probabilities are given, as if a TIC
learner had produced them), and run PITEX for two candidates with different
follower structures.

Run with::

    python examples/political_campaign.py
"""

from __future__ import annotations

import numpy as np

from repro import PitexEngine, TagTopicModel, TopicSocialGraph
from repro.graph.generators import power_law_topic_graph

HASHTAGS = [
    "infrastructure-rebuild",
    "income-tax-reduction",
    "social-security",
    "foreign-policy",
    "us-china-relation",
    "healthcare-reform",
    "climate-action",
    "education-funding",
]

# Topics are broad policy areas; each hashtag leans on one or two of them.
TOPICS = ["economy", "welfare", "foreign-affairs", "environment"]

TAG_TOPIC = np.array(
    [
        # economy  welfare  foreign  environment
        [0.7, 0.1, 0.0, 0.2],   # infrastructure-rebuild
        [0.9, 0.0, 0.0, 0.0],   # income-tax-reduction
        [0.2, 0.8, 0.0, 0.0],   # social-security
        [0.0, 0.0, 0.9, 0.0],   # foreign-policy
        [0.1, 0.0, 0.8, 0.0],   # us-china-relation
        [0.0, 0.9, 0.0, 0.1],   # healthcare-reform
        [0.1, 0.0, 0.0, 0.9],   # climate-action
        [0.2, 0.5, 0.0, 0.3],   # education-funding
    ]
)


def build_retweet_network(seed: int = 7) -> TopicSocialGraph:
    """A power-law re-tweet network whose communities care about different topics."""
    return power_law_topic_graph(
        num_vertices=800,
        average_degree=6.0,
        num_topics=len(TOPICS),
        base_probability=0.25,
        reciprocity=0.3,
        seed=seed,
    )


def main() -> None:
    graph = build_retweet_network()
    model = TagTopicModel(TAG_TOPIC, tags=HASHTAGS)
    engine = PitexEngine(graph, model, max_samples=300, index_samples=1500, seed=7)

    # Two "candidates": the best-connected account and a mid-tier account.
    degrees = graph.out_degrees()
    front_runner = int(np.argmax(degrees))
    mid_runner = int(np.argsort(degrees)[len(degrees) // 2])

    for name, candidate in (("front-runner", front_runner), ("challenger", mid_runner)):
        print(f"\n=== {name}: account {candidate} with {degrees[candidate]} followers ===")
        result = engine.query(user=candidate, k=3, method="indexest+")
        print(f"best 3 hashtags to push: {', '.join(result.tags)}")
        print(f"estimated reach: {result.spread:.1f} accounts "
              f"({result.evaluated_tag_sets} tag sets evaluated, "
              f"{result.pruned_tag_sets} pruned)")

        # How much worse would a uniformly "popular" message be?  Compare against
        # the globally most frequent hashtags (a social-recommender style pick),
        # estimated with the same index-based method for an apples-to-apples read.
        popular = tuple(range(3))
        popular_estimate = engine.estimate_influence(candidate, popular, method="indexest+")
        print(f"for comparison, pushing {', '.join(HASHTAGS[t] for t in popular)} "
              f"reaches ~{popular_estimate.value:.1f} accounts")


if __name__ == "__main__":
    main()
