#!/usr/bin/env python
"""Researcher "selling points" exploration (the paper's Table 4 case study).

The dblp case study asks: for a well-known researcher, which keywords describe
the work through which they actually influence the community?  This example
builds the synthetic co-authorship network with ground-truth research fields,
runs PITEX with k=5 for each of the eight researchers of Table 4, and reports
the accuracy of the returned tags against the ground truth -- the programmatic
analogue of the paper's human annotation study.

Run with::

    python examples/researcher_selling_points.py
"""

from __future__ import annotations

import numpy as np

from repro import PitexEngine
from repro.datasets import build_case_study, evaluate_case_study


def main() -> None:
    case = build_case_study(members_per_field=30, followers_per_researcher=25, seed=2017)
    print(
        f"co-author graph: {case.graph.num_vertices} researchers, "
        f"{case.graph.num_edges} influence edges, "
        f"{len(case.field_names)} fields, {case.model.num_tags} keywords"
    )

    engine = PitexEngine(
        case.graph,
        case.model,
        epsilon=0.6,
        max_samples=200,
        index_samples=1200,
        default_k=5,
        seed=2017,
    )

    rows = evaluate_case_study(case, engine, k=5, method="indexest+")
    print(f"\n{'researcher':24s}  {'accuracy':8s}  influential keywords")
    print("-" * 80)
    accuracies = []
    for researcher, tags, accuracy in rows:
        accuracies.append(accuracy)
        print(f"{researcher:24s}  {accuracy:8.2f}  {', '.join(tags)}")
    print("-" * 80)
    print(f"mean accuracy: {np.mean(accuracies):.2f}  (paper's human study reports 0.78)")

    # Ground truth for one researcher, to show what "accuracy" is measured against.
    name = rows[0][0]
    truth = sorted(case.ground_truth_tags[name])
    print(f"\nground-truth keyword pool for {name}: {', '.join(truth)}")


if __name__ == "__main__":
    main()
