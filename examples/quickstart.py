#!/usr/bin/env python
"""Quickstart: answer a PITEX query on a synthetic social network.

This is the 60-second tour of the library:

1. generate a synthetic analogue of the paper's ``lastfm`` dataset (graph with
   topic-aware edge probabilities + tag-topic model),
2. build a :class:`repro.PitexEngine`,
3. ask, for one user, which ``k`` tags maximize their influence spread,
4. compare a few of the paper's methods on the same query.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import time

from repro import PitexEngine
from repro.datasets import load_dataset


def main() -> None:
    # 1. A scaled-down lastfm-like dataset (same density, |Z|, |Omega| as Table 2).
    dataset = load_dataset("lastfm", scale=0.3, seed=42)
    print(f"dataset: {dataset.describe()}")

    # 2. The engine owns the graph, the tag-topic model and the accuracy knobs.
    engine = PitexEngine(
        dataset.graph,
        dataset.model,
        epsilon=0.7,          # paper default
        delta=1000.0,         # paper default
        max_samples=300,      # practical cap on per-tag-set samples
        index_samples=1000,   # RR-Graphs materialized by the offline index
        seed=42,
    )
    print(f"engine:  {engine.describe()}")

    # 3. Pick a mid-influence user (top 1-10% by out-degree) and explore.
    user = dataset.workload("mid", 1)[0]
    print(f"\nquery user {user} ({dataset.graph.label_of(user)}), out-degree "
          f"{dataset.graph.out_degree(user)}")

    result = engine.query(user=user, k=3, method="lazy")
    print("\nlazy propagation sampling (online):")
    print(f"  {result.describe()}")

    # 4. Same query through the offline RR-Graph index with pruning.
    started = time.perf_counter()
    indexed = engine.query(user=user, k=3, method="indexest+")
    elapsed = time.perf_counter() - started
    print("\nRR-Graph index with edge-cut pruning (IndexEst+):")
    print(f"  {indexed.describe()}")
    print(f"  (index was built lazily on first use; this call took {elapsed:.2f}s)")

    # Influence of an arbitrary tag set, for comparison.
    estimate = engine.estimate_influence(user, indexed.tag_ids, method="mc")
    print("\ncross-check of the selected tag set with plain Monte-Carlo:")
    print(f"  E[I(u|W)] ~= {estimate.value:.3f} over {estimate.num_samples} samples")


if __name__ == "__main__":
    main()
