#!/usr/bin/env python
"""Parameter-learning pipeline: from a raw propagation log to PITEX answers.

The paper assumes the topic-aware probabilities ``p(e|z)`` and ``p(w|z)`` are
learned from a "log of past propagation" (lastfm votes, diggs, tweets).  This
example runs that pipeline end to end on synthetic data:

1. a ground-truth graph + tag-topic model generate an action log by simulating
   IC cascades (this stands in for the real log),
2. the TIC learner re-estimates ``p(e|z)`` / ``p(w|z)`` from the log alone,
3. an LDA pass over per-user tag documents illustrates the twitter-style
   topic-extraction alternative,
4. PITEX queries run on the *learned* model and are compared with queries on
   the ground truth.

Run with::

    python examples/learning_pipeline.py
"""

from __future__ import annotations

import numpy as np

from repro import PitexEngine, TagTopicModel
from repro.graph.generators import power_law_topic_graph
from repro.topics.action_log import generate_action_log
from repro.topics.lda import LatentDirichletAllocation
from repro.topics.tic_learner import learn_tic_model


def main() -> None:
    # --- ground truth -------------------------------------------------------
    num_topics, num_tags = 4, 12
    truth_graph = power_law_topic_graph(
        num_vertices=400,
        average_degree=5.0,
        num_topics=num_topics,
        base_probability=0.45,   # strong enough that the log contains real cascades
        seed=5,
    )
    rng = np.random.default_rng(5)
    matrix = np.zeros((num_tags, num_topics))
    for tag in range(num_tags):
        matrix[tag, tag % num_topics] = rng.uniform(0.6, 1.0)
        matrix[tag, (tag + 1) % num_topics] = rng.uniform(0.0, 0.2)
    truth_model = TagTopicModel(matrix / matrix.sum(axis=0, keepdims=True))

    # --- 1. simulate the propagation log ------------------------------------
    log = generate_action_log(
        truth_graph, truth_model, num_items=500, tags_per_item=2, seeds_per_item=3, seed=9
    )
    print(f"action log: {log.num_items} items, {log.num_actions} adoption actions")

    # --- 2. learn TIC parameters from the log -------------------------------
    learned = learn_tic_model(truth_graph, log, num_topics=num_topics, num_tags=num_tags)
    print(
        f"TIC learning: {learned.iterations} EM iterations, "
        f"learned tag-topic density {learned.model.tag_topic_density():.2f}"
    )

    # --- 3. LDA over per-user tag documents (twitter-style pipeline) --------
    documents = []
    for user in range(truth_graph.num_vertices):
        items = log.items_of_user(user)
        document = [tag for item in items for tag in log.item_tags[item]]
        if document:
            documents.append(document)
    lda = LatentDirichletAllocation(num_topics=num_topics, iterations=15, seed=1)
    lda_result = lda.fit(documents, num_tags=num_tags)
    print(f"LDA: fitted {len(documents)} user documents, "
          f"final log-likelihood {lda_result.log_likelihood_trace[-1]:.1f}")

    # --- 4. PITEX on learned vs ground-truth parameters ---------------------
    # Query the user with the richest activity in the log: that is where the
    # learner has the most evidence about outgoing influence.
    activity = np.zeros(truth_graph.num_vertices)
    for action in log:
        activity[action.user] += 1
    user = int(np.argmax(activity * (truth_graph.out_degrees() > 0)))
    truth_engine = PitexEngine(truth_graph, truth_model, max_samples=250, index_samples=800, seed=3)
    learned_engine = PitexEngine(
        learned.graph, learned.model, max_samples=250, index_samples=800, seed=3
    )
    truth_result = truth_engine.query(user=user, k=2, method="lazy")
    learned_result = learned_engine.query(user=user, k=2, method="lazy")
    print(f"\nquery user {user} (most active user in the log)")
    print(f"  ground-truth model: tags {truth_result.tag_ids}, spread {truth_result.spread:.2f}")
    print(f"  learned model:      tags {learned_result.tag_ids}, spread {learned_result.spread:.2f}")
    overlap = len(set(truth_result.tag_ids) & set(learned_result.tag_ids))
    print(f"  overlap between the two answers: {overlap}/2 tags")


if __name__ == "__main__":
    main()
