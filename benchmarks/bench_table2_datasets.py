"""Table 2: statistics of the datasets (synthetic analogues).

Reproduces the dataset-statistics table: |V|, |E|, density |E|/|V|, |Z| and
|Omega| per dataset, plus the tag-topic density quoted in Sec. 7.3.  The shape
check is that the generated analogues preserve the paper's density / topic /
vocabulary parameters at the reduced scale.
"""

from repro.bench.experiments import experiment_table2
from repro.bench.reporting import format_table


def test_table2_dataset_statistics(benchmark, harness):
    result = benchmark.pedantic(experiment_table2, args=(harness,), rounds=1, iterations=1)
    print()
    print(format_table(result))
    # Shape checks: every configured dataset appears and matches its profile.
    for name in harness.config.datasets:
        profile = harness.dataset(name).profile
        density = result.cell("density", dataset=name)
        assert density == round(harness.dataset(name).graph.density(), 2)
        assert abs(density - profile.average_degree) / profile.average_degree < 0.6
        assert result.cell("num_topics", dataset=name) == profile.num_topics
        assert result.cell("num_tags", dataset=name) == profile.num_tags
