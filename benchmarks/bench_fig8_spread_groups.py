"""Fig. 8: influence spread of the returned tag sets when varying the user group.

Paper shape: the sampling- and index-based methods return tag sets of
comparable quality (all hold the (1-eps)/(1+eps) guarantee), while the
tree-model baseline TIM -- which has no guarantee -- returns lower-quality
answers; spreads for high out-degree users exceed those of low-degree users.
"""

import numpy as np

from repro.bench.experiments import experiment_fig8
from repro.bench.reporting import format_table


def test_fig8_spread_by_user_group(benchmark, harness):
    result = benchmark.pedantic(experiment_fig8, args=(harness,), rounds=1, iterations=1)
    print()
    print(format_table(result))
    guaranteed = [
        m
        for m in ("lazy", "lazy-batched", "mc", "indexest", "indexest+", "delaymat")
        if m in harness.config.methods
    ]
    for name in harness.config.datasets:
        high = [row[-1] for row in result.filter_rows(dataset=name, group="high") if row[2] in guaranteed]
        low = [row[-1] for row in result.filter_rows(dataset=name, group="low") if row[2] in guaranteed]
        # High-degree users spread at least as much influence as low-degree users.
        assert np.mean(high) >= np.mean(low) * 0.9
        # All guaranteed methods report a spread of at least the seed itself.
        assert min(high + low) >= 0.9
