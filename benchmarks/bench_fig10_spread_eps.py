"""Fig. 10: influence spread of the returned tag sets when varying epsilon.

Paper shape: the spreads of the different methods are close for small epsilon
and may drift apart slightly for large epsilon (fewer samples, noisier
estimates), but all stay in the same band.
"""

from repro.bench.experiments import experiment_fig10
from repro.bench.reporting import format_table


def test_fig10_spread_vs_epsilon(benchmark, harness):
    result = benchmark.pedantic(experiment_fig10, args=(harness,), rounds=1, iterations=1)
    print()
    print(format_table(result))
    for name in harness.config.datasets:
        for epsilon in (0.3, 0.5, 0.7, 0.9):
            spreads = [row[-1] for row in result.filter_rows(dataset=name, epsilon=epsilon)]
            assert spreads, (name, epsilon)
            assert min(spreads) >= 0.0
            # All methods stay within a common band (ratio bounded).
            top = max(spreads)
            bottom = max(min(spreads), 1.0)
            assert top / bottom < 3.0, (name, epsilon, spreads)
