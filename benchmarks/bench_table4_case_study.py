"""Table 4: the dblp-style researcher case study.

PITEX queries with k=5 are run for the eight renowned researchers of Table 4
on the synthetic co-authorship network with ground-truth research fields; the
accuracy of the returned keywords against the ground truth plays the role of
the paper's human annotation scores.  Paper shape: mean accuracy well above
chance (the paper reports 0.78 with human annotators).
"""

import numpy as np

from repro.bench.experiments import experiment_table4
from repro.bench.reporting import format_table


def test_table4_case_study(benchmark, harness):
    result = benchmark.pedantic(experiment_table4, args=(harness,), rounds=1, iterations=1)
    print()
    print(format_table(result))
    accuracies = result.column("accuracy")
    assert len(accuracies) == 8
    # Random selection of 5 keywords out of 45 with 10 relevant would land
    # around 0.22; the reproduced case study should do clearly better.
    assert float(np.mean(accuracies)) >= 0.5
    # Every researcher receives exactly 5 tags.
    for tags in result.column("tags"):
        assert len(tags.split(", ")) == 5
