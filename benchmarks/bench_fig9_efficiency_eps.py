"""Fig. 9: query efficiency when varying the error tolerance epsilon.

Paper shape: every method gets faster as epsilon grows (fewer samples are
needed), and the index-based methods dominate online lazy sampling across the
whole range.
"""

import numpy as np

from repro.bench.experiments import experiment_fig9
from repro.bench.reporting import format_table


def test_fig9_efficiency_vs_epsilon(benchmark, harness):
    result = benchmark.pedantic(experiment_fig9, args=(harness,), rounds=1, iterations=1)
    print()
    print(format_table(result))
    epsilons = sorted({row[1] for row in result.rows})
    assert epsilons == [0.3, 0.5, 0.7, 0.9]
    # Lazy online sampling slows down when the tolerance tightens from 0.9 to 0.3.
    for name in harness.config.datasets:
        tight = result.cell("seconds", dataset=name, epsilon=0.3, method="lazy")
        loose = result.cell("seconds", dataset=name, epsilon=0.9, method="lazy")
        assert tight >= loose * 0.8
    # Index-based estimation is never slower than lazy sampling on average.
    lazy_mean = np.mean([row[-1] for row in result.rows if row[2] == "lazy"])
    index_mean = np.mean([row[-1] for row in result.rows if row[2] == "indexest+"])
    assert index_mean <= lazy_mean * 1.5
