"""Shared fixtures for the benchmark suite.

Every benchmark file reproduces one table or figure of the paper through the
drivers in :mod:`repro.bench.experiments`.  The harness (datasets, engines,
indexes and the memoized sweeps shared by time/spread figure pairs) is session
scoped so expensive ingredients are built once for the whole ``pytest
benchmarks/`` run.

The default sizing is the ``smoke`` preset -- small synthetic analogues that
keep the full suite in the minutes range on a laptop.  Set the environment
variable ``PITEX_BENCH_PRESET=default`` (or ``full``) for larger runs.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.config import BenchmarkConfig
from repro.bench.harness import BenchmarkHarness


@pytest.fixture(scope="session")
def bench_config() -> BenchmarkConfig:
    """The sizing preset used by the whole benchmark session."""
    preset = os.environ.get("PITEX_BENCH_PRESET", "smoke")
    return BenchmarkConfig.preset(preset)


@pytest.fixture(scope="session")
def harness(bench_config: BenchmarkConfig) -> BenchmarkHarness:
    """A session-wide harness so datasets / engines / indexes are built once."""
    return BenchmarkHarness(bench_config)
