"""Shared fixtures for the benchmark suite.

Every benchmark file reproduces one table or figure of the paper through the
drivers in :mod:`repro.bench.experiments`.  The harness (datasets, engines,
indexes and the memoized sweeps shared by time/spread figure pairs) is session
scoped so expensive ingredients are built once for the whole ``pytest
benchmarks/`` run.

The default sizing is the ``smoke`` preset -- small synthetic analogues that
keep the full suite in the minutes range on a laptop.  Set the environment
variable ``PITEX_BENCH_PRESET=default`` (or ``full``) for larger runs, or pass
``--smoke`` to force the smoke preset regardless of the environment (this is
what the CI bench-smoke job does for each ``bench_*.py`` file).

Benchmark files are named ``bench_*.py`` on purpose: plain ``pytest`` from the
repository root does not discover them (tier-1 stays fast), they run when
named explicitly, e.g. ``pytest benchmarks/bench_fig12_scalability.py --smoke``.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.config import BenchmarkConfig
from repro.bench.harness import BenchmarkHarness


def pytest_addoption(parser) -> None:
    parser.addoption(
        "--smoke",
        action="store_true",
        default=False,
        help="force the tiny smoke preset regardless of PITEX_BENCH_PRESET",
    )
    parser.addoption(
        "--workers",
        action="store",
        type=int,
        default=4,
        help="worker-pool size of the parallel leg of bench_serving's "
        "frozen-engine worker sweep (the serial leg always uses 1)",
    )


@pytest.fixture(scope="session")
def bench_config(request) -> BenchmarkConfig:
    """The sizing preset used by the whole benchmark session."""
    if request.config.getoption("--smoke", default=False):
        return BenchmarkConfig.preset("smoke")
    preset = os.environ.get("PITEX_BENCH_PRESET", "smoke")
    return BenchmarkConfig.preset(preset)


@pytest.fixture(scope="session")
def harness(bench_config: BenchmarkConfig) -> BenchmarkHarness:
    """A session-wide harness so datasets / engines / indexes are built once."""
    return BenchmarkHarness(bench_config)
