"""Fig. 11: query efficiency when varying the number of selected tags k.

Paper shape: running time grows with k but far slower than the number of
candidate tag sets C(|Omega|, k), because the low tag-topic density lets the
best-effort strategy prune most unsupported tag sets.
"""

import math

from repro.bench.experiments import experiment_fig11
from repro.bench.reporting import format_table

K_VALUES = (1, 2, 3)


def test_fig11_efficiency_vs_k(benchmark, harness):
    result = benchmark.pedantic(
        experiment_fig11, args=(harness,), kwargs={"k_values": K_VALUES}, rounds=1, iterations=1
    )
    print()
    print(format_table(result))
    for name in harness.config.datasets:
        num_tags = harness.dataset(name).model.num_tags
        lazy_times = {k: result.cell("seconds", dataset=name, k=k, method="lazy") for k in K_VALUES}
        # Times are recorded for every k.
        assert all(v is not None for v in lazy_times.values())
        # Sub-combinatorial growth: going from k=1 to k=3 multiplies the number of
        # candidate sets by C(n,3)/C(n,1) but the time by far less.
        candidate_blowup = math.comb(num_tags, 3) / max(1, math.comb(num_tags, 1))
        time_blowup = lazy_times[3] / max(lazy_times[1], 1e-6)
        assert time_blowup < candidate_blowup / 5, (name, time_blowup, candidate_blowup)
