"""Fig. 11: query efficiency when varying the number of selected tags k.

Paper shape: running time grows with k but far slower than the number of
candidate tag sets C(|Omega|, k), because the low tag-topic density lets the
best-effort strategy prune most unsupported tag sets.

On top of the paper series, the ``lazy-batched`` series runs the same queries
on the multi-instance event-queue kernel; the companion ``lazykernels``
experiment gates the batched kernel at >= 3x over the sequential lazy kernel
on one isolated estimation (the whole-query series also includes exploration
overhead shared by both kernels, so its ratio is necessarily smaller).
"""

import math

from repro.bench.experiments import experiment_fig11, experiment_lazy_kernels
from repro.bench.reporting import format_table

K_VALUES = (1, 2, 3)

#: Hard gate on the batched event-queue kernel vs the sequential lazy kernel:
#: the mean speedup across the smoke datasets must reach 3x, and no single
#: dataset may fall under the per-dataset floor (absorbs CI timer noise; the
#: typical measured ratio is 3.3-4.5x).
KERNEL_SPEEDUP_GATE = 3.0
KERNEL_SPEEDUP_FLOOR = 2.5


def test_fig11_efficiency_vs_k(benchmark, harness):
    result = benchmark.pedantic(
        experiment_fig11, args=(harness,), kwargs={"k_values": K_VALUES}, rounds=1, iterations=1
    )
    print()
    print(format_table(result))
    for name in harness.config.datasets:
        num_tags = harness.dataset(name).model.num_tags
        lazy_times = {k: result.cell("seconds", dataset=name, k=k, method="lazy") for k in K_VALUES}
        batched_times = {
            k: result.cell("seconds", dataset=name, k=k, method="lazy-batched") for k in K_VALUES
        }
        # Times are recorded for every k, for both lazy kernels.
        assert all(v is not None for v in lazy_times.values())
        assert all(v is not None for v in batched_times.values())
        # Sub-combinatorial growth: going from k=1 to k=3 multiplies the number of
        # candidate sets by C(n,3)/C(n,1) but the time by far less.
        candidate_blowup = math.comb(num_tags, 3) / max(1, math.comb(num_tags, 1))
        time_blowup = lazy_times[3] / max(lazy_times[1], 1e-6)
        assert time_blowup < candidate_blowup / 5, (name, time_blowup, candidate_blowup)
        # The batched series does not fall behind the sequential lazy series.
        # Wide slack on purpose: single-iteration whole-query timings on tiny
        # smoke instances (typically batched is ~2x faster end to end); the
        # hard perf gate is test_lazy_batched_kernel_speedup_gate below.
        for k in K_VALUES:
            assert batched_times[k] <= lazy_times[k] * 1.5, (name, k, batched_times, lazy_times)


def test_lazy_batched_kernel_speedup_gate(harness):
    """The batched event-queue kernel is >= 3x faster than the lazy csr kernel.

    One isolated estimation per smoke dataset (most influential user and tag,
    theta samples), fastest of five repetitions per kernel; this is the
    kernel-for-kernel comparison the whole-query Fig. 11 series dilutes with
    shared exploration overhead.  The dict kernel stays the tested reference:
    its estimate must agree with the batched one within the (1 +- eps) band.
    """
    result = experiment_lazy_kernels(harness, theta=2000, repetitions=5)
    print()
    print(format_table(result))
    epsilon = harness.config.epsilon
    speedups = []
    for name in harness.config.datasets:
        batched = result.cell("seconds", dataset=name, kernel="batched")
        sequential = result.cell("seconds", dataset=name, kernel="csr")
        reference = result.cell("seconds", dataset=name, kernel="dict")
        assert batched is not None and sequential is not None and reference is not None
        speedup = sequential / max(batched, 1e-9)
        speedups.append(speedup)
        assert speedup >= KERNEL_SPEEDUP_FLOOR, (name, speedup, batched, sequential)
        # Estimates of all three kernels agree within the accuracy band.
        values = [
            result.cell("estimate", dataset=name, kernel=kernel)
            for kernel in ("batched", "csr", "dict")
        ]
        top, bottom = max(values), min(values)
        assert top <= bottom * (1.0 + epsilon) / max(1.0 - epsilon, 1e-9), (name, values)
    mean_speedup = sum(speedups) / len(speedups)
    assert mean_speedup >= KERNEL_SPEEDUP_GATE, (mean_speedup, speedups)
