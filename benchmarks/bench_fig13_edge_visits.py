"""Fig. 13 / Appendix D: number of edges visited by the online sampling methods.

For a fixed influential tag set, the per-estimation edge-probe counts of MC,
RR and LAZY are compared across the user groups.  Paper shape: LAZY visits at
least an order of magnitude fewer edges than MC and RR (it only touches edges
whose geometric schedule fires), and high-degree users require more probes
than low-degree users.
"""

import numpy as np

from repro.bench.experiments import experiment_fig13
from repro.bench.reporting import format_table


def test_fig13_edge_visits(benchmark, harness):
    result = benchmark.pedantic(experiment_fig13, args=(harness,), rounds=1, iterations=1)
    print()
    print(format_table(result))
    for name in harness.config.datasets:
        lazy = np.mean([row[-1] for row in result.filter_rows(dataset=name, method="lazy")])
        batched = np.mean(
            [row[-1] for row in result.filter_rows(dataset=name, method="lazy-batched")]
        )
        mc = np.mean([row[-1] for row in result.filter_rows(dataset=name, method="mc")])
        rr = np.mean([row[-1] for row in result.filter_rows(dataset=name, method="rr")])
        # Paper shape: lazy probes dramatically fewer edges than both MC and RR,
        # on the sequential and the batched event-queue kernel alike (the
        # Lemma 5 vs Lemma 7 gap does not depend on the kernel).
        assert lazy < mc / 3, (name, lazy, mc)
        assert lazy < rr, (name, lazy, rr)
        assert batched < mc / 3, (name, batched, mc)
        assert batched < rr, (name, batched, rr)
        # Both lazy kernels account edge visits the same way, so their means
        # agree up to sampling noise.
        assert batched < lazy * 1.5 and lazy < batched * 1.5, (name, lazy, batched)
        # High-degree users need at least as many probes as low-degree users (MC).
        high = result.cell("mean_edges_visited", dataset=name, group="high", method="mc")
        low = result.cell("mean_edges_visited", dataset=name, group="low", method="mc")
        assert high >= low * 0.5
