"""Fig. 6: empirical convergence of sampling-based influence estimation.

For the highest out-degree user and their most influential tag, the estimate of
MC / RR / LAZY is tracked as the sample count grows.  Paper shape: MC and LAZY
stabilize with fewer samples than RR (Bernoulli indicators are the worst case
for the Chernoff bound), and all three converge to the same value.
"""

from repro.bench.experiments import experiment_fig6
from repro.bench.reporting import format_table


def test_fig6_sampling_convergence(benchmark, harness):
    result = benchmark.pedantic(experiment_fig6, args=(harness,), rounds=1, iterations=1)
    print()
    print(format_table(result))
    for name in harness.config.datasets:
        finals = {}
        for method in ("mc", "rr", "lazy", "lazy-batched"):
            series = [row for row in result.filter_rows(dataset=name, method=method)]
            estimates = [row[-1] for row in series]
            assert len(estimates) >= 3
            finals[method] = estimates[-1]
        # All estimators (including the batched lazy kernel) converge to the
        # same quantity (within 40%).
        top, bottom = max(finals.values()), max(min(finals.values()), 1e-9)
        assert top / bottom < 1.4, finals
