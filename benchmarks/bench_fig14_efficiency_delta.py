"""Fig. 14: query efficiency when varying the confidence parameter delta.

Paper shape: the running time of every method grows only mildly
(logarithmically) as delta grows from 10 to 10000, and the index-based methods
keep their advantage over online lazy sampling across the whole range.
"""

from repro.bench.experiments import experiment_fig14
from repro.bench.reporting import format_table

DELTAS = (10.0, 100.0, 1000.0, 10000.0)


def test_fig14_efficiency_vs_delta(benchmark, harness):
    result = benchmark.pedantic(
        experiment_fig14, args=(harness,), kwargs={"delta_values": DELTAS}, rounds=1, iterations=1
    )
    print()
    print(format_table(result))
    for name in harness.config.datasets:
        lazy_times = [result.cell("seconds", dataset=name, delta=d, method="lazy") for d in DELTAS]
        assert all(t is not None for t in lazy_times)
        # No exponential blow-up: 1000x larger delta costs at most ~6x more time.
        assert max(lazy_times) <= max(min(lazy_times), 1e-6) * 6.0, (name, lazy_times)
