"""Fig. 7: query efficiency when varying the query user group.

All seven methods (RR, MC, LAZY, TIM, IndexEst, IndexEst+, DelayMat) answer
PITEX queries for users drawn from the high / mid / low out-degree groups.
Paper shape: LAZY beats MC and RR among online samplers; the index-based
methods are faster than online sampling; IndexEst+ improves on IndexEst.
"""

import numpy as np

from repro.bench.experiments import experiment_fig7
from repro.bench.reporting import format_table


def _mean_time(result, method, datasets):
    values = [row[-1] for row in result.rows if row[2] == method and row[0] in datasets]
    return float(np.mean(values)) if values else 0.0


def test_fig7_efficiency_by_user_group(benchmark, harness):
    result = benchmark.pedantic(experiment_fig7, args=(harness,), rounds=1, iterations=1)
    print()
    print(format_table(result))
    datasets = harness.config.datasets
    lazy = _mean_time(result, "lazy", datasets)
    lazy_batched = _mean_time(result, "lazy-batched", datasets)
    mc = _mean_time(result, "mc", datasets)
    rr = _mean_time(result, "rr", datasets)
    indexest = _mean_time(result, "indexest", datasets)
    indexest_plus = _mean_time(result, "indexest+", datasets)
    # Paper shape: lazy is the fastest online sampler.  Slack is wide because
    # these are single-iteration timings on tiny smoke instances where the
    # shared best-effort exploration dominates and lazy-vs-rr hovers near 1.0.
    assert lazy <= min(mc, rr) * 1.5
    # The batched event-queue kernel does not fall behind the sequential lazy
    # one.  Wide slack on purpose: these are single-iteration whole-query
    # timings on tiny smoke graphs (typically batched is ~2x faster); the hard
    # perf gate is bench_fig11's test_lazy_batched_kernel_speedup_gate.
    if lazy_batched > 0.0:
        assert lazy_batched <= lazy * 1.5, (lazy_batched, lazy)
    # Paper shape: pruning helps the index (allow slack for tiny instances).
    assert indexest_plus <= indexest * 1.5
    # Index-based estimation beats the slowest online samplers.
    assert indexest_plus < max(mc, rr)
