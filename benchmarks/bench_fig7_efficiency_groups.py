"""Fig. 7: query efficiency when varying the query user group.

All seven methods (RR, MC, LAZY, TIM, IndexEst, IndexEst+, DelayMat) answer
PITEX queries for users drawn from the high / mid / low out-degree groups.
Paper shape: LAZY beats MC and RR among online samplers; the index-based
methods are faster than online sampling; IndexEst+ improves on IndexEst.
"""

import numpy as np

from repro.bench.experiments import experiment_fig7
from repro.bench.reporting import format_table


def _mean_time(result, method, datasets):
    values = [row[-1] for row in result.rows if row[2] == method and row[0] in datasets]
    return float(np.mean(values)) if values else 0.0


def test_fig7_efficiency_by_user_group(benchmark, harness):
    result = benchmark.pedantic(experiment_fig7, args=(harness,), rounds=1, iterations=1)
    print()
    print(format_table(result))
    datasets = harness.config.datasets
    lazy = _mean_time(result, "lazy", datasets)
    mc = _mean_time(result, "mc", datasets)
    rr = _mean_time(result, "rr", datasets)
    indexest = _mean_time(result, "indexest", datasets)
    indexest_plus = _mean_time(result, "indexest+", datasets)
    # Paper shape: lazy is the fastest online sampler.
    assert lazy <= min(mc, rr) * 1.2
    # Paper shape: pruning helps the index (allow slack for tiny instances).
    assert indexest_plus <= indexest * 1.5
    # Index-based estimation beats the slowest online samplers.
    assert indexest_plus < max(mc, rr)
