"""Serving-layer benchmark: persistent index store + concurrent workload replay.

Three shape assertions back the serving subsystem (``repro.serve``):

* loading a persisted RR-Graph index from the :class:`IndexStore` is at least
  5x faster than rebuilding it from scratch (the offline/online split of
  Sec. 6 carried across process boundaries), with bitwise-equal estimates;
* a cold engine warm-started from the store answers a 50-query seeded replay
  through :class:`PitexService` with zero failures, reporting p50/p95/p99;
* the ``--workers`` axis: replaying the same stream against one *frozen*
  engine with ``--workers N`` (default 4) vs 1 worker returns bitwise
  identical answers, and -- on hosts with enough cores to make thread
  parallelism physically possible -- at least
  :data:`MIN_PARALLEL_SPEEDUP` x the single-worker throughput.  On smaller
  hosts the measured speedup is still recorded in the JSON artifact, but the
  throughput gate is skipped (a 1-core container cannot speed anything up);
* the ``--backend process`` axis: the same stream through
  :class:`ProcessShardedService` -- N forked frozen replicas on mmap'd store
  arrays -- is bitwise equal to the single-worker thread oracle, and its
  N-worker throughput clears the same speedup gate where cores allow.  Unlike
  the thread sweep, process workers escape the GIL, so this is the leg
  expected to actually scale on multi-core hosts.  The merged deterministic
  telemetry counters (``docs/observability.md``) must equal the oracle's at
  any worker count;
* the answer-cache axis: a zipfian repeat workload through a cached frozen
  service answers bitwise identically to the uncached oracle, the second
  (warm) pass hits on every query, and the warm p50 service time beats the
  cold p50 by >= :data:`MIN_WARM_SPEEDUP` x (gated where cores allow; the
  measured speedup always lands in the artifact);
* the observability tax: a traced frozen replay answers bitwise identically
  to an untraced one, and the measured throughput overhead of span recording
  lands in the JSON artifact (``trace_overhead.overhead_fraction``).

The latency/throughput report is also written as JSON -- to the path in the
``PITEX_SERVING_REPORT`` environment variable (default
``bench_serving_report.json`` in the working directory) -- which the CI
serving-smoke job uploads as a workflow artifact.
"""

import json
import os

import pytest

from repro.bench.reporting import format_table
from repro.core.engine import PitexEngine
from repro.datasets.synthetic import load_dataset
from repro.index.rr_index import RRGraphIndex
from repro.obs.trace import TraceRecorder, install_recorder
from repro.serve.replay import replay_stream
from repro.serve.service import PitexService
from repro.serve.sharded import ProcessShardedService, publish_engine_spec
from repro.serve.store import IndexStore
from repro.utils.timer import Stopwatch

REPLAY_QUERIES = 50
INDEX_SAMPLES = 800
NUM_TAGS = 25  # trimmed vocabulary keeps per-query exploration in the tens of ms
MIN_LOAD_SPEEDUP = 5.0
# Overridable without a code change (set to 0 to disable the gate on hosts
# where the GIL-bound fraction of the index matching dominates): thread
# scaling of the frozen path depends on how much of the per-query work runs
# inside GIL-releasing numpy kernels, which varies with dataset scale.
MIN_PARALLEL_SPEEDUP = float(os.environ.get("PITEX_MIN_PARALLEL_SPEEDUP", "2.0"))
MIN_CORES_FOR_SPEEDUP_GATE = 4
# Warm-vs-cold p50 gate for the fingerprint-keyed answer cache: a hit is a
# dict lookup, a miss is a full estimator run, so 5x is conservative on any
# healthy host; still overridable (0 disables) for pathological environments.
MIN_WARM_SPEEDUP = float(os.environ.get("PITEX_MIN_WARM_SPEEDUP", "5.0"))
ZIPF_S = 1.2  # head-skewed repeat traffic for the answer-cache leg


@pytest.fixture(scope="module")
def serving_dataset(harness):
    scale = harness.config.scale_of("lastfm")
    return load_dataset("lastfm", scale=scale, num_tags=NUM_TAGS, seed=harness.config.seed)


@pytest.fixture(scope="module")
def serving_store(tmp_path_factory):
    return IndexStore(tmp_path_factory.mktemp("pitex-index-store"))


@pytest.fixture(scope="module")
def report_payload():
    """Collects both tests' numbers; written as the JSON artifact at teardown."""
    payload = {}
    yield payload
    path = os.environ.get("PITEX_SERVING_REPORT", "bench_serving_report.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
    print(f"\nserving report written to {path}")


def test_store_load_is_5x_faster_than_rebuild(serving_dataset, serving_store, report_payload):
    graph, model = serving_dataset.graph, serving_dataset.model

    watch = Stopwatch().start()
    built = RRGraphIndex(graph, INDEX_SAMPLES, seed=harness_seed(serving_dataset)).build()
    watch.stop()
    build_seconds = watch.elapsed

    serving_store.save_rr_index(built, model)
    watch = Stopwatch().start()
    loaded = serving_store.load_rr_index(graph, model, INDEX_SAMPLES)
    watch.stop()
    load_seconds = watch.elapsed

    assert loaded is not None and loaded.is_built
    probabilities = model.edge_probabilities(graph, [0, 1])
    for user in range(0, graph.num_vertices, max(1, graph.num_vertices // 20)):
        original = built.estimate(user, probabilities)
        reloaded = loaded.estimate(user, probabilities)
        assert original.value == reloaded.value

    speedup = build_seconds / load_seconds if load_seconds > 0 else float("inf")
    print(
        f"\nindex build {build_seconds * 1000:.1f} ms vs load {load_seconds * 1000:.1f} ms "
        f"({speedup:.1f}x, theta={INDEX_SAMPLES})"
    )
    report_payload["index_store"] = {
        "theta": INDEX_SAMPLES,
        "build_seconds": build_seconds,
        "load_seconds": load_seconds,
        "speedup": speedup,
    }
    assert build_seconds >= MIN_LOAD_SPEEDUP * load_seconds, (
        f"loading the persisted index ({load_seconds:.3f}s) should be >={MIN_LOAD_SPEEDUP}x "
        f"faster than rebuilding it ({build_seconds:.3f}s)"
    )


def test_cold_replay_with_persisted_index(
    benchmark, serving_dataset, serving_store, report_payload, harness
):
    graph, model = serving_dataset.graph, serving_dataset.model
    # Offline phase (or a previous process): ensure the index is persisted.
    _, _, offline_seconds = serving_store.load_or_build_rr(
        graph, model, INDEX_SAMPLES, seed=harness_seed(serving_dataset)
    )
    # Online phase: a cold engine warm-started purely from the store.
    loaded = serving_store.load_rr_index(graph, model, INDEX_SAMPLES)
    assert loaded is not None
    engine = PitexEngine(
        graph,
        model,
        max_samples=harness.config.max_samples,
        index_samples=INDEX_SAMPLES,
        default_k=2,
        seed=harness.config.seed,
        rr_index=loaded,
    )
    stream = serving_dataset.query_workload.query_stream(
        REPLAY_QUERIES, seed=harness.config.seed
    )

    def run_replay():
        with PitexService.for_engine(engine, num_workers=2, max_batch=8) as service:
            return replay_stream(service, stream, method="indexest+", k=2)

    report = benchmark.pedantic(run_replay, rounds=1, iterations=1)
    print()
    print(format_table(report.to_result()))
    assert report.num_queries >= 50
    assert report.failures == 0
    assert report.overall.count == report.num_queries
    assert report.overall.percentile(99.0) >= report.overall.percentile(50.0) > 0.0
    document = report.to_json()
    document["offline_seconds"] = offline_seconds
    report_payload["replay"] = document


def test_frozen_worker_sweep_is_bitwise_equal_and_scales(
    request, serving_dataset, serving_store, report_payload, harness
):
    """The ``--workers`` axis: frozen lock-free replay, 1 worker vs N workers.

    Bitwise equality between the two legs always holds (the frozen engine's
    stateless per-query RNG derivation makes answers independent of worker
    interleaving); the >= :data:`MIN_PARALLEL_SPEEDUP` x throughput gate is
    enforced only where thread parallelism is physically possible.
    """
    workers = max(2, int(request.config.getoption("--workers")))
    graph, model = serving_dataset.graph, serving_dataset.model
    loaded, _, _ = serving_store.load_or_build_rr(
        graph, model, INDEX_SAMPLES, seed=harness_seed(serving_dataset)
    )
    engine = PitexEngine(
        graph,
        model,
        max_samples=harness.config.max_samples,
        index_samples=INDEX_SAMPLES,
        default_k=2,
        seed=harness.config.seed,
        rr_index=loaded,
    ).freeze(methods=["indexest+"])
    stream = serving_dataset.query_workload.query_stream(
        REPLAY_QUERIES, seed=harness.config.seed
    )

    reports = {}
    for pool_size in (1, workers):
        with PitexService.for_engine(engine, num_workers=pool_size, max_batch=4) as service:
            reports[pool_size] = replay_stream(service, stream, method="indexest+", k=2)

    for report in reports.values():
        assert report.failures == 0
        assert report.mode == "frozen-parallel"
    answers = {
        pool_size: [
            (resp.request.user, resp.result.tag_ids, resp.result.spread)
            for resp in report.responses
        ]
        for pool_size, report in reports.items()
    }
    assert answers[1] == answers[workers], (
        "concurrent frozen replay diverged from the single-worker oracle"
    )
    assert not engine.freeze_guard.violations

    speedup = reports[workers].throughput_qps / reports[1].throughput_qps
    print(
        f"\nfrozen replay: {reports[1].throughput_qps:.1f} qps @1 worker vs "
        f"{reports[workers].throughput_qps:.1f} qps @{workers} workers "
        f"({speedup:.2f}x, {os.cpu_count()} cores)"
    )
    report_payload["worker_sweep"] = {
        "method": "indexest+",
        "num_queries": REPLAY_QUERIES,
        "cores": os.cpu_count(),
        "workers": workers,
        "throughput_1": reports[1].throughput_qps,
        f"throughput_{workers}": reports[workers].throughput_qps,
        "speedup": speedup,
        "bitwise_equal": True,
    }
    cores = os.cpu_count() or 1
    if cores < MIN_CORES_FOR_SPEEDUP_GATE or MIN_PARALLEL_SPEEDUP <= 0:
        pytest.skip(
            f"speedup gate needs >= {MIN_CORES_FOR_SPEEDUP_GATE} cores and a positive "
            f"PITEX_MIN_PARALLEL_SPEEDUP (host has {cores} cores, gate "
            f"{MIN_PARALLEL_SPEEDUP}); measured {speedup:.2f}x recorded in the artifact"
        )
    assert speedup >= MIN_PARALLEL_SPEEDUP, (
        f"{workers}-worker frozen replay reached only {speedup:.2f}x over one worker "
        f"(gate: >= {MIN_PARALLEL_SPEEDUP}x on the index-backed methods)"
    )


def test_process_backend_matches_thread_oracle_and_scales(
    request, serving_dataset, serving_store, report_payload, harness
):
    """The ``--backend process`` axis: forked replicas vs the thread oracle.

    One serial thread-backend replay over a frozen engine is the bitwise
    reference; the process backend must return identical answers at any
    worker count (same engine seed + stateless per-query RNG derivation).
    Throughput is swept 1 vs N process workers; the
    >= :data:`MIN_PARALLEL_SPEEDUP` x gate applies only where the host has
    cores to back it, but the measured speedup always lands in the artifact.
    """
    workers = max(2, int(request.config.getoption("--workers")))
    graph, model = serving_dataset.graph, serving_dataset.model
    loaded, _, _ = serving_store.load_or_build_rr(
        graph, model, INDEX_SAMPLES, seed=harness_seed(serving_dataset)
    )
    stream = serving_dataset.query_workload.query_stream(
        REPLAY_QUERIES, seed=harness.config.seed
    )

    # Thread oracle: one worker, frozen engine, in-process arrays.
    oracle_engine = PitexEngine(
        graph,
        model,
        max_samples=harness.config.max_samples,
        index_samples=INDEX_SAMPLES,
        default_k=2,
        seed=harness.config.seed,
        rr_index=loaded,
    ).freeze(methods=["indexest+"], ks=[2])
    with PitexService.for_engine(oracle_engine, num_workers=1, max_batch=4) as service:
        oracle = replay_stream(service, stream, method="indexest+", k=2)
    oracle_deterministic = service.metrics.telemetry()["deterministic"]
    assert oracle.failures == 0

    # Process backend: replicas rebuilt in workers from the mmap'd store.
    spec = publish_engine_spec(
        serving_store,
        graph,
        model,
        engine_seed=harness.config.seed,
        index_samples=INDEX_SAMPLES,
        methods=("indexest+",),
        ks=(2,),
        max_samples=harness.config.max_samples,
        default_k=2,
        index_seed=harness_seed(serving_dataset),
    )
    reports = {}
    deterministic = {}
    for pool_size in (1, workers):
        with ProcessShardedService(spec, num_workers=pool_size) as service:
            reports[pool_size] = replay_stream(service, stream, method="indexest+", k=2)
        # Worker telemetry shards ship at close, so capture afterwards.
        deterministic[pool_size] = service.metrics.telemetry()["deterministic"]

    def answers(report):
        return [
            (resp.request.user, resp.result.tag_ids, resp.result.spread)
            for resp in report.responses
        ]

    for pool_size, report in reports.items():
        assert report.failures == 0
        assert report.mode == "process-sharded"
        assert report.backend == "process"
        assert answers(report) == answers(oracle), (
            f"{pool_size}-worker process replay diverged from the thread oracle"
        )
        # The telemetry contract mirrors the answer contract: the merged
        # algorithmic-work counters are identical to the thread oracle's at
        # any worker count.
        assert deterministic[pool_size] == oracle_deterministic, (
            f"{pool_size}-worker process telemetry diverged from the thread oracle"
        )
    assert oracle_deterministic["query.count"] == REPLAY_QUERIES

    speedup = reports[workers].throughput_qps / reports[1].throughput_qps
    print(
        f"\nprocess replay: {reports[1].throughput_qps:.1f} qps @1 worker vs "
        f"{reports[workers].throughput_qps:.1f} qps @{workers} workers "
        f"({speedup:.2f}x, {os.cpu_count()} cores)"
    )
    report_payload["process_sweep"] = {
        "method": "indexest+",
        "backend": "process",
        "num_queries": REPLAY_QUERIES,
        "cores": os.cpu_count(),
        "workers": workers,
        "throughput_1": reports[1].throughput_qps,
        f"throughput_{workers}": reports[workers].throughput_qps,
        "speedup": speedup,
        "bitwise_equal_to_thread_oracle": True,
        "telemetry_deterministic_equal": True,
    }
    cores = os.cpu_count() or 1
    if cores < MIN_CORES_FOR_SPEEDUP_GATE or MIN_PARALLEL_SPEEDUP <= 0:
        pytest.skip(
            f"speedup gate needs >= {MIN_CORES_FOR_SPEEDUP_GATE} cores and a positive "
            f"PITEX_MIN_PARALLEL_SPEEDUP (host has {cores} cores, gate "
            f"{MIN_PARALLEL_SPEEDUP}); measured {speedup:.2f}x recorded in the artifact"
        )
    assert speedup >= MIN_PARALLEL_SPEEDUP, (
        f"{workers}-worker process replay reached only {speedup:.2f}x over one worker "
        f"(gate: >= {MIN_PARALLEL_SPEEDUP}x; processes are not GIL-bound)"
    )


def test_answer_cache_warm_leg_is_bitwise_equal_and_faster(
    serving_dataset, serving_store, report_payload, harness
):
    """The answer-cache axis: zipfian repeat traffic, cached vs uncached.

    One uncached frozen replay is the bitwise oracle; a cached service then
    replays the same zipfian stream twice through one open service.  Answers
    must be byte-identical across all three legs (``answers_digest``), the
    second (warm) pass must hit on every query, and the warm p50 service
    time must beat the cold p50 by >= :data:`MIN_WARM_SPEEDUP` x.  The
    timing gate reuses the cores-based skip of the throughput gates --
    a heavily oversubscribed 1-core host can stall even a dict lookup --
    but the measured speedup always lands in the JSON artifact.
    """
    from repro.serve.answers import AnswerCache

    graph, model = serving_dataset.graph, serving_dataset.model
    loaded, _, _ = serving_store.load_or_build_rr(
        graph, model, INDEX_SAMPLES, seed=harness_seed(serving_dataset)
    )
    engine = PitexEngine(
        graph,
        model,
        max_samples=harness.config.max_samples,
        index_samples=INDEX_SAMPLES,
        default_k=2,
        seed=harness.config.seed,
        rr_index=loaded,
    ).freeze(methods=["indexest+"], ks=[2])
    stream = serving_dataset.query_workload.query_stream(
        REPLAY_QUERIES, seed=harness.config.seed, zipf_s=ZIPF_S
    )

    # Uncached oracle: the frozen engine re-executes every repeat.
    with PitexService.for_engine(engine, num_workers=2, max_batch=4) as service:
        oracle = replay_stream(service, stream, method="indexest+", k=2)
    assert oracle.failures == 0
    assert oracle.cache_hits == 0

    # Cached service: pass 1 fills the cache, pass 2 replays warm.
    with PitexService.for_engine(
        engine, num_workers=2, max_batch=4, answer_cache=AnswerCache()
    ) as service:
        cold_pass = replay_stream(service, stream, method="indexest+", k=2)
        warm_pass = replay_stream(service, stream, method="indexest+", k=2)
    for report in (cold_pass, warm_pass):
        assert report.failures == 0
    assert oracle.answers_digest == cold_pass.answers_digest == warm_pass.answers_digest, (
        "cached replay answers diverged from the uncached oracle"
    )
    unique_users = len({user for _, user in stream})
    assert cold_pass.cache_hits == REPLAY_QUERIES - unique_users
    assert warm_pass.cache_hits == REPLAY_QUERIES
    assert warm_pass.hit_rate == 1.0

    cold_p50 = cold_pass.cold.percentile(50.0)
    warm_p50 = warm_pass.warm.percentile(50.0)
    speedup = cold_p50 / warm_p50 if warm_p50 > 0 else float("inf")
    print(
        f"\nanswer cache: cold p50 {cold_p50 * 1000:.3f} ms vs warm p50 "
        f"{warm_p50 * 1000:.3f} ms ({speedup:.1f}x, zipf_s={ZIPF_S}, "
        f"{unique_users} unique users / {REPLAY_QUERIES} queries)"
    )
    report_payload["answer_cache"] = {
        "method": "indexest+",
        "num_queries": REPLAY_QUERIES,
        "zipf_s": ZIPF_S,
        "unique_users": unique_users,
        "cold_p50_seconds": cold_p50,
        "warm_p50_seconds": warm_p50,
        "warm_speedup": speedup,
        "cold_pass_hit_rate": cold_pass.hit_rate,
        "warm_pass_hit_rate": warm_pass.hit_rate,
        "bitwise_equal_to_uncached_oracle": True,
    }
    cores = os.cpu_count() or 1
    if cores < MIN_CORES_FOR_SPEEDUP_GATE or MIN_WARM_SPEEDUP <= 0:
        pytest.skip(
            f"warm-speedup gate needs >= {MIN_CORES_FOR_SPEEDUP_GATE} cores and a "
            f"positive PITEX_MIN_WARM_SPEEDUP (host has {cores} cores, gate "
            f"{MIN_WARM_SPEEDUP}); measured {speedup:.1f}x recorded in the artifact"
        )
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm p50 beat cold p50 by only {speedup:.1f}x "
        f"(gate: >= {MIN_WARM_SPEEDUP}x; a hit is a dict lookup)"
    )


def test_trace_overhead_is_small_and_recorded(
    serving_dataset, serving_store, report_payload, harness
):
    """Tracing costs ~nothing when disabled and little when enabled.

    The disabled path is a single global read returning a shared null span
    (no recorder installed -- the default for every other test in this
    file), so the replays above already measure the no-tracing cost.  This
    test replays the same frozen stream twice -- recorder installed vs not
    -- checks that tracing never perturbs answers (spans observe, never
    steer), and records the measured throughput overhead fraction in the
    JSON artifact.  The overhead is *recorded*, not gated with a tight
    timing assert: single-round wall times on a shared CI host are too
    noisy, and the artifact is the reviewable evidence.
    """
    graph, model = serving_dataset.graph, serving_dataset.model
    loaded, _, _ = serving_store.load_or_build_rr(
        graph, model, INDEX_SAMPLES, seed=harness_seed(serving_dataset)
    )
    engine = PitexEngine(
        graph,
        model,
        max_samples=harness.config.max_samples,
        index_samples=INDEX_SAMPLES,
        default_k=2,
        seed=harness.config.seed,
        rr_index=loaded,
    ).freeze(methods=["indexest+"])
    stream = serving_dataset.query_workload.query_stream(
        REPLAY_QUERIES, seed=harness.config.seed
    )

    def run_replay():
        with PitexService.for_engine(engine, num_workers=2, max_batch=4) as service:
            return replay_stream(service, stream, method="indexest+", k=2)

    untraced = run_replay()
    recorder = TraceRecorder()
    previous = install_recorder(recorder)
    try:
        traced = run_replay()
    finally:
        install_recorder(previous)

    for report in (untraced, traced):
        assert report.failures == 0
    spans = recorder.spans()
    assert len(spans) == REPLAY_QUERIES
    assert all(span["span"] == "execute" and span["seconds"] >= 0.0 for span in spans)
    answers = lambda rep: [  # noqa: E731
        (r.request.user, r.result.tag_ids, r.result.spread) for r in rep.responses
    ]
    assert answers(traced) == answers(untraced), "tracing perturbed the answers"

    overhead = (
        (traced.wall_seconds - untraced.wall_seconds) / untraced.wall_seconds
        if untraced.wall_seconds > 0
        else 0.0
    )
    print(
        f"\ntrace overhead: untraced {untraced.throughput_qps:.1f} qps vs "
        f"traced {traced.throughput_qps:.1f} qps ({overhead:+.1%} wall time, "
        f"{len(spans)} spans)"
    )
    report_payload["trace_overhead"] = {
        "method": "indexest+",
        "num_queries": REPLAY_QUERIES,
        "untraced_throughput_qps": untraced.throughput_qps,
        "traced_throughput_qps": traced.throughput_qps,
        "overhead_fraction": overhead,
        "spans_recorded": len(spans),
        "bitwise_equal": True,
    }


def harness_seed(dataset) -> int:
    """The dataset's generation seed (fallback 0 for unseeded runs)."""
    return dataset.seed if dataset.seed is not None else 0
