"""Fig. 12: scalability against the number of tags |Omega| and topics |Z|.

On the twitter-like dataset the vocabulary and topic count are swept.  Paper
shape: running time grows with |Omega| (more candidate tag sets) but does not
grow -- and often shrinks -- with |Z| (more topics means a lower tag-topic
density and therefore stronger best-effort pruning).

This file also carries the CSR-kernel acceptance benchmark: RR estimation on
the largest synthetic graph of the session must be at least 3x faster on the
vectorized CSR kernel than on the per-edge dict walker it replaced.
"""

import time

from repro.bench.experiments import experiment_fig12
from repro.bench.reporting import format_table
from repro.datasets.profiles import get_profile
from repro.sampling.base import SampleBudget
from repro.sampling.reverse_reachable import ReverseReachableEstimator

TAG_COUNTS = (30, 60, 90)
TOPIC_COUNTS = (10, 20, 30)


def test_fig12_scalability(benchmark, harness):
    dataset_name = "twitter" if "twitter" in harness.config.datasets else harness.config.datasets[0]
    result = benchmark.pedantic(
        experiment_fig12,
        args=(harness,),
        kwargs={"dataset_name": dataset_name, "tag_counts": TAG_COUNTS, "topic_counts": TOPIC_COUNTS},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(result))
    # Growth with |Omega|: the largest vocabulary is not faster than the smallest.
    small_tags = result.cell("seconds", sweep="num_tags", value=TAG_COUNTS[0], method="lazy")
    large_tags = result.cell("seconds", sweep="num_tags", value=TAG_COUNTS[-1], method="lazy")
    assert large_tags >= small_tags * 0.8
    # No blow-up with |Z|: the largest topic count costs at most ~2x the smallest.
    topic_times = [
        result.cell("seconds", sweep="num_topics", value=value, method="lazy")
        for value in TOPIC_COUNTS
    ]
    assert max(topic_times) <= max(min(topic_times), 1e-6) * 4.0


def test_fig12_rr_csr_kernel_speedup(harness):
    """RR estimation on the CSR kernel is >= 3x faster than the dict walker.

    Runs on the *largest* synthetic graph of the benchmark session: the
    biggest configured dataset profile at its full (scale 1.0) size.  Both
    kernels estimate the same query with the same sample count; wall-clock is
    the best of three repetitions to shave scheduler noise.
    """
    largest = max(
        harness.config.datasets,
        key=lambda name: get_profile(name).scaled_vertices(1.0),
    )
    dataset = harness.dataset(largest, scale=1.0)
    graph, model = dataset.graph, dataset.model
    user = dataset.workload("high", 1)[0]
    probabilities = graph.max_edge_probabilities()
    budget = SampleBudget(num_tags=model.num_tags)
    num_samples = 48
    _ = graph.csr  # build the cache outside the timed region

    def best_of(kernel: str, repetitions: int = 3) -> float:
        estimator = ReverseReachableEstimator(graph, model, budget, seed=99, kernel=kernel)
        best = float("inf")
        for _ in range(repetitions):
            start = time.perf_counter()
            estimator.estimate_with_probabilities(user, probabilities, num_samples=num_samples)
            best = min(best, time.perf_counter() - start)
        return best

    dict_seconds = best_of("dict")
    csr_seconds = best_of("csr")
    # Timing assert in CI: measured headroom is ~4-5x over the 3.0 threshold
    # (12-16x locally), and best-of-3 on a ratio shaves most scheduler noise.
    speedup = dict_seconds / max(csr_seconds, 1e-9)
    print()
    print(
        f"RR estimation on {largest} (|V|={graph.num_vertices}, |E|={graph.num_edges}): "
        f"dict {dict_seconds * 1000:.1f} ms vs csr {csr_seconds * 1000:.1f} ms "
        f"({speedup:.1f}x)"
    )
    assert speedup >= 3.0, (dict_seconds, csr_seconds)
