"""Fig. 12: scalability against the number of tags |Omega| and topics |Z|.

On the twitter-like dataset the vocabulary and topic count are swept.  Paper
shape: running time grows with |Omega| (more candidate tag sets) but does not
grow -- and often shrinks -- with |Z| (more topics means a lower tag-topic
density and therefore stronger best-effort pruning).
"""

import numpy as np

from repro.bench.experiments import experiment_fig12
from repro.bench.reporting import format_table

TAG_COUNTS = (30, 60, 90)
TOPIC_COUNTS = (10, 20, 30)


def test_fig12_scalability(benchmark, harness):
    dataset_name = "twitter" if "twitter" in harness.config.datasets else harness.config.datasets[0]
    result = benchmark.pedantic(
        experiment_fig12,
        args=(harness,),
        kwargs={"dataset_name": dataset_name, "tag_counts": TAG_COUNTS, "topic_counts": TOPIC_COUNTS},
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(result))
    # Growth with |Omega|: the largest vocabulary is not faster than the smallest.
    small_tags = result.cell("seconds", sweep="num_tags", value=TAG_COUNTS[0], method="lazy")
    large_tags = result.cell("seconds", sweep="num_tags", value=TAG_COUNTS[-1], method="lazy")
    assert large_tags >= small_tags * 0.8
    # No blow-up with |Z|: the largest topic count costs at most ~2x the smallest.
    topic_times = [
        result.cell("seconds", sweep="num_topics", value=value, method="lazy")
        for value in TOPIC_COUNTS
    ]
    assert max(topic_times) <= max(min(topic_times), 1e-6) * 4.0
