"""Table 3: index sizes (MB) and construction time (s).

Reproduces the RR-Graphs vs DelayMat comparison.  The paper's shape: the
materialized RR-Graphs index is much larger than the raw data while DelayMat
is tiny (one counter per user) and builds faster because nothing is stored.
"""

from repro.bench.experiments import experiment_table3
from repro.bench.reporting import format_table


def test_table3_index_sizes_and_build_time(benchmark, harness):
    result = benchmark.pedantic(experiment_table3, args=(harness,), rounds=1, iterations=1)
    print()
    print(format_table(result))
    for name in harness.config.datasets:
        rr_size = result.cell("size_mb", dataset=name, index="rr-graphs")
        delay_size = result.cell("size_mb", dataset=name, index="delaymat")
        # Paper shape: DelayMat is orders of magnitude smaller than RR-Graphs.
        assert delay_size < rr_size / 10
        rr_time = result.cell("build_seconds", dataset=name, index="rr-graphs")
        delay_time = result.cell("build_seconds", dataset=name, index="delaymat")
        assert rr_time > 0.0 and delay_time > 0.0
