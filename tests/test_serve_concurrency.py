"""Concurrency stress / equivalence harness for frozen read-only engines.

The contract under test (``PitexEngine.freeze``): once an engine is frozen,
its query path touches **no shared mutable state** -- every query runs on a
query-local estimator whose RNG root is derived statelessly from
``(engine seed, query fingerprint)``.  If the contract holds, then

(a) any number of concurrent threads hammering one engine return answers
    *bitwise identical* to a single-threaded oracle replay,
(b) the engine's :class:`~repro.utils.freeze.FrozenGuard` never trips, and
(c) the served latency distribution stays sane (p99 >= p95 >= p50 > 0).

The stress tests are barrier-synchronized so all workers enter the query loop
together (maximizing interleaving even under the GIL), and every thread runs
the *full* query plan so each (user, method) pair is answered concurrently by
several threads at once -- the strongest aliasing the serving layer can see.

The hypothesis property tests pin the statelessness of the RNG derivation
itself: answers are independent of arrival order, and fingerprints/seeds are
pure functions of the query configuration.
"""

import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.engine import PitexEngine
from repro.datasets.synthetic import load_dataset
from repro.exceptions import EngineFrozenError
from repro.serve.replay import replay_stream
from repro.serve.service import PitexService, QueryRequest

STRESS_METHODS = ("indexest", "indexest+", "delaymat", "lazy")
NUM_THREADS = 4


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("lastfm", scale=0.08, seed=11)


@pytest.fixture(scope="module")
def frozen_engine(dataset):
    engine = PitexEngine(
        dataset.graph, dataset.model, max_samples=40, index_samples=50, default_k=2, seed=7
    )
    return engine.freeze(methods=STRESS_METHODS)


@pytest.fixture(scope="module")
def query_plan(dataset):
    """(user, method) pairs covering every stress method on several users."""
    users = dataset.workload("mid", 3) + dataset.workload("low", 1)
    return [(user, method) for user in users for method in STRESS_METHODS]


def run_plan(engine, plan):
    """Answer the whole plan serially; return the bitwise-comparable facets."""
    results = []
    for user, method in plan:
        result = engine.query(user=user, k=2, method=method)
        results.append(
            (
                user,
                method,
                result.tag_ids,
                result.spread,
                result.evaluated_tag_sets,
                result.pruned_tag_sets,
                result.samples_drawn,
                result.edges_visited,
            )
        )
    return results


# --------------------------------------------------------------- stress tests
def test_concurrent_stress_bitwise_matches_serial_oracle(frozen_engine, query_plan):
    """N threads x the full plan == the single-threaded oracle, bit for bit."""
    oracle = run_plan(frozen_engine, query_plan)
    violations_before = len(frozen_engine.freeze_guard.violations)

    barrier = threading.Barrier(NUM_THREADS)
    outcomes = [None] * NUM_THREADS

    def worker(slot):
        barrier.wait()  # all threads enter the query loop together
        try:
            outcomes[slot] = run_plan(frozen_engine, query_plan)
        except Exception as exc:  # pragma: no cover - failure reporting only
            outcomes[slot] = exc

    threads = [threading.Thread(target=worker, args=(slot,)) for slot in range(NUM_THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    for slot, outcome in enumerate(outcomes):
        assert not isinstance(outcome, Exception), f"thread {slot} raised: {outcome!r}"
        assert outcome == oracle, f"thread {slot} diverged from the serial oracle"
    assert len(frozen_engine.freeze_guard.violations) == violations_before, (
        "the frozen guard tripped during the stress run: "
        f"{frozen_engine.freeze_guard.violations[violations_before:]}"
    )


def test_service_parallel_replay_matches_oracle_with_sane_tails(
    dataset, frozen_engine, query_plan
):
    """A 4-worker lock-free service replay == the oracle, with sane latency."""
    stream = dataset.query_workload.query_stream(24, seed=13)
    oracle = {
        user: frozen_engine.query(user=user, k=2, method="indexest+").spread
        for user in {user for _, user in stream}
    }
    violations_before = len(frozen_engine.freeze_guard.violations)

    with PitexService.for_engine(frozen_engine, num_workers=4, max_batch=4) as service:
        assert service.execution_mode() == "unknown"  # nothing observed yet
        report = replay_stream(service, stream, method="indexest+", k=2)
        assert service.execution_mode() == "frozen-parallel"

    assert report.failures == 0
    assert report.num_workers == 4
    assert report.mode == "frozen-parallel"
    for response in report.responses:
        assert response.ok
        assert response.result.spread == oracle[response.request.user]
    assert len(frozen_engine.freeze_guard.violations) == violations_before

    # (c) latency sanity: a real distribution, ordered tails, sub-second p95
    # for 24 tiny index-backed queries even on a loaded CI box.
    p50 = report.overall.percentile(50.0)
    p95 = report.overall.percentile(95.0)
    p99 = report.overall.percentile(99.0)
    assert 0.0 < p50 <= p95 <= p99
    assert p95 < 30.0


def test_service_keeps_serial_path_for_unfrozen_engines(dataset):
    """Unfrozen engines still serialize (and the report says so)."""
    engine = PitexEngine(
        dataset.graph, dataset.model, max_samples=40, index_samples=50, default_k=2, seed=7
    )
    stream = dataset.query_workload.query_stream(6, seed=5)
    with PitexService.for_engine(engine, num_workers=2, max_batch=4) as service:
        report = replay_stream(service, stream, method="indexest", k=2)
        assert service.execution_mode() == "serial"
    assert report.failures == 0
    assert report.mode == "serial"
    assert report.num_workers == 2


def test_mixed_frozen_and_unfrozen_engines_coexist(dataset):
    """One service, two keys: a frozen engine (lock-free) next to a serial one."""
    frozen = PitexEngine(
        dataset.graph, dataset.model, max_samples=40, index_samples=50, default_k=2, seed=3
    ).freeze(methods=["indexest"])
    serial = PitexEngine(
        dataset.graph, dataset.model, max_samples=40, index_samples=50, default_k=2, seed=3
    )
    engines = {"frozen": frozen, "serial": serial}
    user = dataset.workload("mid", 1)[0]
    with PitexService(engines.__getitem__, num_workers=3, max_batch=2) as service:
        futures = [
            service.submit(
                QueryRequest(user=user, k=2, method="indexest", engine_key=key)
            )
            for key in ("frozen", "serial", "frozen", "serial", "frozen")
        ]
        responses = [future.result() for future in futures]
    assert all(response.ok for response in responses)
    # Identical seeds and a warm prebuilt index on both engines: the frozen
    # stateless derivation and the serial shared-stream path agree on the
    # index methods (no RNG on the indexest query path).
    assert len({response.result.spread for response in responses}) == 1


def test_frozen_fanout_is_not_capped_by_max_batch(dataset, frozen_engine):
    """A frozen engine's backlog fans across workers even with a large max_batch.

    Batching keeps an *unfrozen* engine on one worker; for frozen engines the
    claimed batch is trimmed to a fair share (ceil(batch / workers)) and the
    tail requeued, so one greedy claim can never serialize the backlog.  With
    4 workers and max_batch=8 every executed batch must be <= ceil(8/4) = 2.
    """
    stream = dataset.query_workload.query_stream(10, seed=21)
    with PitexService.for_engine(frozen_engine, num_workers=4, max_batch=8) as service:
        report = replay_stream(service, stream, method="indexest", k=2)
    assert report.failures == 0
    assert max(response.batch_size for response in report.responses) <= 2


def test_frozen_engine_rejects_unwarmed_methods_without_guard_trips(dataset):
    """Unwarmed-method queries raise up front and never trip the guard.

    A mis-routed request is a caller error, not a shared-state mutation --
    it must not poison the zero-violations invariant the stress asserts, and
    the outcome must not depend on whether the method happens to need an
    offline index.  ``k`` / ``epsilon`` / ``delta`` overrides, by contrast,
    serve fine: the query-local estimator derives its budget and RNG
    statelessly from the request, so no warmed structure depends on them.
    """
    engine = PitexEngine(
        dataset.graph, dataset.model, max_samples=40, index_samples=40, default_k=2, seed=9
    ).freeze(methods=["indexest"])
    user = dataset.workload("mid", 1)[0]
    with pytest.raises(EngineFrozenError):  # unwarmed index-backed method
        engine.query(user=user, k=2, method="delaymat")
    with pytest.raises(EngineFrozenError):  # unwarmed sampling method (no index)
        engine.query(user=user, k=2, method="lazy")
    with pytest.raises(EngineFrozenError):
        engine.estimate_influence(user, [0, 1], method="lazy")
    assert engine.freeze_guard.violations == []

    # Warmed method with arbitrary accuracy/k overrides: served statelessly,
    # reproducibly, with zero guard trips.
    first = engine.query(user=user, k=3, method="indexest", epsilon=0.3)
    second = engine.query(user=user, k=3, method="indexest", epsilon=0.3)
    assert (first.tag_ids, first.spread) == (second.tag_ids, second.spread)
    assert engine.estimate_influence(user, [0, 1], method="indexest").value >= 1.0
    assert engine.freeze_guard.violations == []


# ------------------------------------------------- guard / lifecycle behaviour
def test_guard_trips_on_post_freeze_mutation(dataset):
    engine = PitexEngine(
        dataset.graph.copy(), dataset.model, max_samples=40, index_samples=40, default_k=2, seed=5
    )
    engine.freeze(methods=["indexest", "lazy"])
    graph = engine.graph

    with pytest.raises(EngineFrozenError):
        graph.add_edge(0, graph.num_vertices - 1, [0.1] * graph.num_topics)
    with pytest.raises(EngineFrozenError):  # unwarmed estimator key
        engine.estimator("mc", epsilon=0.5)
    with pytest.raises(EngineFrozenError):  # shared estimator RNG/counters
        engine.estimator("lazy").estimate(0, [0, 1])
    with pytest.raises(EngineFrozenError):  # unwarmed offline index
        _ = engine.delayed_index
    assert len(engine.freeze_guard.violations) == 4

    engine.thaw()
    graph.add_edge(0, graph.num_vertices - 1, [0.1] * graph.num_topics)  # mutable again
    assert engine.query(user=0, k=2, method="lazy").tag_ids
    assert len(engine.freeze_guard.violations) == 4  # history preserved


def test_freeze_is_idempotent_and_validates_arguments(dataset):
    engine = PitexEngine(
        dataset.graph, dataset.model, max_samples=40, index_samples=40, default_k=2, seed=5
    )
    with pytest.raises(Exception):
        engine.freeze(methods=["bogus"])
    engine.freeze(methods=["indexest"])
    assert engine.freeze(methods=["indexest"]) is engine  # covered -> no-op
    assert engine.frozen_methods == ("indexest",)
    assert "frozen" in engine.describe()
    # Warming *more* while frozen would mutate shared state: refuse loudly
    # instead of silently ignoring the arguments.
    with pytest.raises(EngineFrozenError):
        engine.freeze(methods=["delaymat"])
    with pytest.raises(EngineFrozenError):
        engine.freeze(methods=["indexest"], ks=[5])
    engine.thaw()
    engine.freeze(methods=["indexest", "delaymat"], ks=[2, 5])
    assert engine.frozen_methods == ("indexest", "delaymat")


def test_concurrent_freezes_over_one_graph_both_land_their_guards(dataset):
    """Two engines freezing in parallel on a shared graph must both guard it.

    The guard registry's attach is a read-modify-write on the shared object;
    without serialization one racing freeze could silently drop the other's
    guard, leaving an engine that believes it is frozen while its graph
    accepts mutations.
    """
    graph = dataset.graph.copy()
    engines = [
        PitexEngine(
            graph, dataset.model, max_samples=40, index_samples=40, default_k=2, seed=seed
        )
        for seed in (1, 2, 3, 4)
    ]
    barrier = threading.Barrier(len(engines))

    def freeze(engine):
        barrier.wait()
        engine.freeze(methods=["lazy"])

    threads = [threading.Thread(target=freeze, args=(engine,)) for engine in engines]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    # Every engine's guard must be armed on the graph: thawing all but one
    # must still leave the graph read-only, and thawing the last frees it.
    for engine in engines[:-1]:
        engine.thaw()
    with pytest.raises(EngineFrozenError):
        graph.add_edge(0, graph.num_vertices - 1, [0.1] * graph.num_topics)
    engines[-1].thaw()
    graph.add_edge(0, graph.num_vertices - 1, [0.1] * graph.num_topics)


def test_thaw_and_garbage_collection_release_shared_graph_guards(dataset):
    """A dropped or thawed engine must not keep a shared graph read-only."""
    import gc

    graph = dataset.graph.copy()
    first = PitexEngine(
        graph, dataset.model, max_samples=40, index_samples=40, default_k=2, seed=5
    ).freeze(methods=["indexest"])
    second = PitexEngine(
        graph, dataset.model, max_samples=40, index_samples=40, default_k=2, seed=6
    ).freeze(methods=["indexest"])

    with pytest.raises(EngineFrozenError):
        graph.add_edge(0, graph.num_vertices - 1, [0.1] * graph.num_topics)

    # thaw() detaches only the thawing engine's guard; the other stays armed.
    first.thaw()
    with pytest.raises(EngineFrozenError):
        graph.add_edge(0, graph.num_vertices - 1, [0.1] * graph.num_topics)

    # Dropping the remaining frozen engine without thaw() (the EngineCache
    # eviction path) releases its weakly-held guard once collected.
    del second
    gc.collect()
    graph.add_edge(0, graph.num_vertices - 1, [0.1] * graph.num_topics)  # mutable again


# --------------------------------------------- stateless derivation properties
@pytest.fixture(scope="module")
def canonical_answers(frozen_engine, query_plan):
    """The oracle answers for the first 8 plan entries, computed once."""
    plan = query_plan[:8]
    return plan, dict(zip(plan, [row[2:] for row in run_plan(frozen_engine, plan)]))


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(order=st.permutations(list(range(8))))
def test_answers_are_independent_of_arrival_order(frozen_engine, canonical_answers, order):
    """Replaying any permutation of the plan yields the canonical answers.

    This is the property the stateless ``(seed, query_fingerprint)`` RNG
    derivation buys: under the warm-up phase's shared streams, earlier
    queries shift the stream consumed by later ones, so *order* changed
    answers; on a frozen engine it cannot.
    """
    plan, canonical = canonical_answers
    permuted = [plan[i] for i in order]
    replay = dict(zip(permuted, [row[2:] for row in run_plan(frozen_engine, permuted)]))
    assert replay == canonical


@settings(max_examples=25, deadline=None)
@given(
    user=st.integers(min_value=0, max_value=10**6),
    k=st.integers(min_value=1, max_value=6),
    epsilon=st.floats(min_value=0.05, max_value=0.95, allow_nan=False),
)
def test_query_seed_is_a_pure_function_of_the_query(dataset, user, k, epsilon):
    """Same configuration -> same seed, across engines with the same root seed."""
    first = PitexEngine(dataset.graph, dataset.model, index_samples=40, seed=99)
    second = PitexEngine(dataset.graph, dataset.model, index_samples=40, seed=99)
    args = (user, "indexest+", k, epsilon, 1000.0)
    assert first.query_seed(*args) == first.query_seed(*args)
    assert first.query_seed(*args) == second.query_seed(*args)
    assert first.query_fingerprint(*args) == second.query_fingerprint(*args)
    # Distinct configurations get distinct fingerprints.
    assert first.query_fingerprint(*args) != first.query_fingerprint(
        user + 1, "indexest+", k, epsilon, 1000.0
    )
    assert first.query_fingerprint(*args) != first.query_fingerprint(
        user, "delaymat", k, epsilon, 1000.0
    )
