"""Edge-case and failure-injection tests across the public API.

These cover the awkward inputs a downstream user will eventually produce:
isolated users, out-of-range vertex ids, missing files, degenerate tag-topic
matrices, k equal to the whole vocabulary, and engines built on graphs with a
single possible influence path.
"""

import numpy as np
import pytest

from repro.core.engine import PitexEngine
from repro.exceptions import (
    GraphError,
    InvalidParameterError,
    UnknownVertexError,
)
from repro.graph.digraph import TopicSocialGraph
from repro.graph.generators import line_graph, star_fan_out_graph
from repro.graph.io import load_edge_list
from repro.sampling.base import SampleBudget
from repro.sampling.lazy import LazyPropagationEstimator
from repro.sampling.monte_carlo import MonteCarloEstimator
from repro.topics.model import TagTopicModel


def two_topic_model(num_tags: int = 4) -> TagTopicModel:
    matrix = np.zeros((num_tags, 2))
    for tag in range(num_tags):
        matrix[tag, tag % 2] = 0.8
    return TagTopicModel(matrix)


def test_estimator_rejects_unknown_vertex():
    graph = line_graph(4, probability=0.5, num_topics=2)
    estimator = MonteCarloEstimator(graph, two_topic_model(), SampleBudget(num_tags=4, k=1, max_samples=50))
    with pytest.raises(UnknownVertexError):
        estimator.estimate(99, (0,))


def test_engine_query_for_sink_user_returns_seed_only_spread():
    """A user with no outgoing edges influences only themselves, whatever the tags."""
    graph = line_graph(4, probability=0.9, num_topics=2)
    engine = PitexEngine(graph, two_topic_model(), max_samples=50, index_samples=100, seed=1)
    result = engine.query(user=3, k=2, method="lazy")
    assert result.spread == pytest.approx(1.0)
    assert len(result.tag_ids) == 2


def test_engine_query_with_k_equal_to_vocabulary():
    graph = line_graph(3, probability=0.9, num_topics=2)
    model = two_topic_model(num_tags=3)
    engine = PitexEngine(graph, model, max_samples=50, index_samples=80, seed=1)
    result = engine.query(user=0, k=3, method="lazy")
    assert result.tag_ids == (0, 1, 2)
    with pytest.raises(InvalidParameterError):
        engine.query(user=0, k=4, method="lazy")


def test_engine_query_on_star_counterexample_graph():
    """The Fig. 3(a) graph: the root's spread is ~2 regardless of the method."""
    graph = star_fan_out_graph(50, num_topics=2)
    model = two_topic_model()
    engine = PitexEngine(graph, model, epsilon=0.5, max_samples=400, index_samples=2000, seed=4)
    lazy = engine.query(user=0, k=1, method="lazy")
    indexed = engine.query(user=0, k=1, method="indexest")
    assert lazy.spread == pytest.approx(2.0, rel=0.35)
    assert indexed.spread == pytest.approx(lazy.spread, rel=0.5, abs=0.5)


def test_all_zero_tag_topic_row_is_rejected_gracefully():
    matrix = np.array([[0.0, 0.0], [0.5, 0.5]])
    model = TagTopicModel(matrix)  # allowed: the row simply supports nothing
    graph = line_graph(3, probability=0.5, num_topics=2)
    estimator = LazyPropagationEstimator(graph, model, SampleBudget(num_tags=2, k=1, max_samples=50), seed=1)
    estimate = estimator.estimate(0, (0,))
    assert estimate.value == 1.0  # unsupported tag -> zero posterior -> seed only


def test_load_edge_list_missing_file(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_edge_list(tmp_path / "does_not_exist.txt")


def test_graph_probabilities_must_match_topic_count():
    graph = TopicSocialGraph(3, 2)
    with pytest.raises(GraphError):
        graph.add_edge(0, 1, [0.5, 0.5, 0.5])


def test_exact_oracle_isolated_vertex():
    from repro.propagation.exact import exact_influence_spread

    graph = TopicSocialGraph(3, 1)
    graph.add_edge(1, 2, [0.5])
    assert exact_influence_spread(graph, 0, graph.max_edge_probabilities()) == 1.0


def test_engine_index_samples_default_uses_offline_formula():
    graph = line_graph(5, probability=0.5, num_topics=2)
    model = two_topic_model()
    engine = PitexEngine(graph, model, max_samples=100, seed=1)
    budget = SampleBudget(num_tags=model.num_tags, k=3, max_samples=100)
    assert engine.index_samples == budget.offline_samples(graph.num_vertices)


def test_engine_methods_share_dataset_level_indexes():
    graph = line_graph(6, probability=0.6, num_topics=2)
    model = two_topic_model()
    engine = PitexEngine(graph, model, max_samples=60, index_samples=200, seed=2)
    plain = engine.estimator("indexest")
    pruned = engine.estimator("indexest+")
    assert plain.index is pruned.index  # one shared RR-Graph materialization


def test_sample_budget_min_samples_enforced():
    budget = SampleBudget(num_tags=4, k=1, max_samples=1000, min_samples=128)
    assert budget.online_samples(1) >= 128


def test_result_tags_are_strings_from_the_model():
    graph = line_graph(4, probability=0.8, num_topics=2)
    model = TagTopicModel(np.array([[0.9, 0.0], [0.0, 0.9]]), tags=["alpha", "beta"])
    engine = PitexEngine(graph, model, max_samples=60, index_samples=100, seed=5)
    result = engine.query(user=0, k=1, method="lazy")
    assert result.tags[0] in ("alpha", "beta")


def test_delaymat_user_never_in_any_rr_graph():
    """A vertex unreachable by anyone still gets a well-defined (zero) estimate."""
    graph = TopicSocialGraph(4, 1)
    graph.add_edge(1, 2, [0.5])
    graph.add_edge(2, 3, [0.5])
    from repro.index.delayed import DelayedIndexEstimator, DelayedMaterializationIndex

    model = TagTopicModel(np.ones((2, 1)))
    index = DelayedMaterializationIndex(graph, num_samples=100, seed=1).build()
    estimator = DelayedIndexEstimator(graph, model, index, seed=2)
    # Vertex 0 has no outgoing edges, so it can only appear in RR-Graphs rooted
    # at itself; its containment count is positive but the estimate stays ~1.
    estimate = estimator.estimate_with_probabilities(0, graph.max_edge_probabilities())
    assert estimate.value <= 1.0 + 1e-9


def test_invalid_method_and_exploration_rejected_before_work():
    graph = line_graph(3, probability=0.5, num_topics=2)
    engine = PitexEngine(graph, two_topic_model(), max_samples=50, index_samples=60, seed=1)
    with pytest.raises(InvalidParameterError):
        engine.query(user=0, method="quantum")
    with pytest.raises(InvalidParameterError):
        engine.query(user=0, exploration="random-walk")
