"""Tests for the MC, RR and lazy propagation estimators.

The key correctness property: all three estimators converge to the exact
possible-world influence spread, and the lazy estimator visits far fewer edges
on the Fig. 3 counterexample graphs.
"""

import numpy as np
import pytest

from repro.graph.digraph import TopicSocialGraph
from repro.graph.generators import (
    celebrity_hub_graph,
    line_graph,
    random_topic_graph,
    star_fan_out_graph,
)
from repro.propagation.exact import exact_influence_spread
from repro.sampling.base import SampleBudget
from repro.sampling.instrumentation import ConvergenceTrace, EstimatorInstrumentation
from repro.sampling.lazy import LazyPropagationEstimator
from repro.sampling.monte_carlo import MonteCarloEstimator
from repro.sampling.reverse_reachable import ReverseReachableEstimator
from repro.topics.model import TagTopicModel

ESTIMATOR_CLASSES = [MonteCarloEstimator, ReverseReachableEstimator, LazyPropagationEstimator]


def single_topic_model(num_tags: int = 3) -> TagTopicModel:
    return TagTopicModel(np.ones((num_tags, 1)))


def make_estimator(cls, graph, model=None, seed=0, **kwargs):
    model = model if model is not None else single_topic_model()
    budget = SampleBudget(num_tags=model.num_tags, k=1, max_samples=4000, min_samples=50)
    if cls is LazyPropagationEstimator:
        kwargs.setdefault("early_stopping", False)
    return cls(graph, model, budget, seed=seed, **kwargs)


@pytest.mark.parametrize("cls", ESTIMATOR_CLASSES)
def test_estimators_match_exact_on_line(cls):
    graph = line_graph(4, probability=0.5)
    probabilities = np.full(3, 0.5)
    exact = exact_influence_spread(graph, 0, probabilities)
    estimator = make_estimator(cls, graph, seed=5)
    estimate = estimator.estimate_with_probabilities(0, probabilities, num_samples=6000)
    assert estimate.value == pytest.approx(exact, rel=0.08)


@pytest.mark.parametrize("cls", ESTIMATOR_CLASSES)
def test_estimators_match_exact_on_diamond(cls):
    graph = TopicSocialGraph(4, 1)
    graph.add_edge(0, 1, [0.6])
    graph.add_edge(0, 2, [0.4])
    graph.add_edge(1, 3, [0.5])
    graph.add_edge(2, 3, [0.7])
    probabilities = graph.max_edge_probabilities()
    exact = exact_influence_spread(graph, 0, probabilities)
    estimator = make_estimator(cls, graph, seed=7)
    estimate = estimator.estimate_with_probabilities(0, probabilities, num_samples=8000)
    assert estimate.value == pytest.approx(exact, rel=0.08)


@pytest.mark.parametrize("cls", ESTIMATOR_CLASSES)
def test_estimators_deterministic_graph(cls):
    graph = line_graph(5, probability=1.0)
    probabilities = np.ones(4)
    estimator = make_estimator(cls, graph, seed=1)
    estimate = estimator.estimate_with_probabilities(0, probabilities, num_samples=50)
    assert estimate.value == pytest.approx(5.0)


@pytest.mark.parametrize("cls", ESTIMATOR_CLASSES)
def test_estimators_isolated_user(cls):
    graph = line_graph(3, probability=0.5)
    probabilities = np.full(2, 0.5)
    estimator = make_estimator(cls, graph, seed=1)
    # Vertex 2 has no outgoing edges: spread is exactly 1.
    estimate = estimator.estimate_with_probabilities(2, probabilities, num_samples=100)
    assert estimate.value == pytest.approx(1.0)


@pytest.mark.parametrize("cls", ESTIMATOR_CLASSES)
def test_estimators_reproducible_with_seed(cls):
    graph = random_topic_graph(25, 1, edge_probability=0.2, seed=3)
    probabilities = graph.max_edge_probabilities()
    a = make_estimator(cls, graph, seed=11).estimate_with_probabilities(0, probabilities, num_samples=300)
    b = make_estimator(cls, graph, seed=11).estimate_with_probabilities(0, probabilities, num_samples=300)
    assert a.value == pytest.approx(b.value)


def test_estimate_uses_model_probabilities(paper_example):
    graph, model = paper_example
    budget = SampleBudget(num_tags=4, k=2, max_samples=3000, min_samples=100)
    estimator = LazyPropagationEstimator(graph, model, budget, seed=3, early_stopping=False)
    estimate = estimator.estimate(0, ("w1", "w2"))
    exact = exact_influence_spread(graph, 0, model.edge_probabilities(graph, ("w1", "w2")))
    assert estimate.value == pytest.approx(exact, rel=0.12)
    assert estimator.total_samples > 0


def test_lazy_visits_fewer_edges_than_mc_on_star():
    """Fig. 3(a): MC probes every out-edge per instance, lazy only the firing ones."""
    graph = star_fan_out_graph(100)
    probabilities = graph.max_edge_probabilities()
    num_samples = 400
    mc = make_estimator(MonteCarloEstimator, graph, seed=2)
    lazy = make_estimator(LazyPropagationEstimator, graph, seed=2)
    mc_estimate = mc.estimate_with_probabilities(0, probabilities, num_samples=num_samples)
    lazy_estimate = lazy.estimate_with_probabilities(0, probabilities, num_samples=num_samples)
    assert mc_estimate.edges_visited == pytest.approx(100 * num_samples)
    assert lazy_estimate.edges_visited < mc_estimate.edges_visited / 10
    assert lazy_estimate.value == pytest.approx(mc_estimate.value, rel=0.25)


def test_lazy_visits_fewer_edges_than_rr_on_celebrity_hub():
    """Fig. 3(b): RR probes the celebrity's incoming edges in every reverse sample."""
    graph = celebrity_hub_graph(60)
    probabilities = graph.max_edge_probabilities()
    num_samples = 300
    user = 61  # an ordinary user following the celebrity
    rr = make_estimator(ReverseReachableEstimator, graph, seed=4)
    lazy = make_estimator(LazyPropagationEstimator, graph, seed=4)
    rr_estimate = rr.estimate_with_probabilities(user, probabilities, num_samples=num_samples)
    lazy_estimate = lazy.estimate_with_probabilities(user, probabilities, num_samples=num_samples)
    assert lazy_estimate.edges_visited < rr_estimate.edges_visited / 5


def test_lazy_early_stopping_reduces_samples():
    graph = line_graph(5, probability=1.0)
    probabilities = np.ones(4)
    budget = SampleBudget(num_tags=3, k=1, max_samples=5000, min_samples=50)
    model = single_topic_model()
    eager = LazyPropagationEstimator(graph, model, budget, seed=1, early_stopping=True)
    estimate = eager.estimate_with_probabilities(0, probabilities, num_samples=5000)
    assert estimate.num_samples < 5000
    assert estimate.value == pytest.approx(5.0)


def test_lazy_sample_live_subgraph_consistency():
    graph = line_graph(4, probability=1.0)
    model = single_topic_model()
    estimator = LazyPropagationEstimator(graph, model, SampleBudget(num_tags=3, k=1), seed=1)
    activated, live_edges = estimator.sample_live_subgraph(0, np.ones(3))
    assert activated == {0, 1, 2, 3}
    assert len(live_edges) == 3


def test_running_estimates_are_monotone_in_information():
    """Running estimates share samples: later checkpoints reuse earlier draws."""
    graph = random_topic_graph(30, 1, edge_probability=0.15, seed=5)
    probabilities = graph.max_edge_probabilities()
    checkpoints = [50, 100, 200, 400]
    for cls in ESTIMATOR_CLASSES:
        estimator = make_estimator(cls, graph, seed=9)
        estimates = estimator.running_estimates(0, probabilities, checkpoints)
        assert len(estimates) == len(checkpoints)
        assert all(v >= 0.0 for v in estimates)


def test_rr_scaling_uses_reachable_set_size():
    graph = line_graph(3, probability=1.0)
    probabilities = np.ones(2)
    estimator = make_estimator(ReverseReachableEstimator, graph, seed=1)
    estimate = estimator.estimate_with_probabilities(0, probabilities, num_samples=200)
    assert estimate.reachable_size == 3
    assert estimate.value == pytest.approx(3.0)


def test_convergence_trace_helpers():
    trace = ConvergenceTrace(method="mc")
    trace.add(10, 2.0)
    trace.add(20, 2.5)
    assert trace.final_estimate() == 2.5
    assert trace.relative_spread() == pytest.approx(0.2)
    assert trace.rows() == [("mc", 10, 2.0), ("mc", 20, 2.5)]


def test_estimator_instrumentation_aggregates():
    from repro.sampling.base import InfluenceEstimate

    instrumentation = EstimatorInstrumentation()
    instrumentation.record(InfluenceEstimate(value=2.0, num_samples=10, edges_visited=100, method="mc"))
    instrumentation.record(InfluenceEstimate(value=3.0, num_samples=10, edges_visited=300, method="mc"))
    instrumentation.record(InfluenceEstimate(value=3.0, num_samples=5, edges_visited=40, method="lazy"))
    assert instrumentation.mean_edge_visits("mc") == 200.0
    assert instrumentation.mean_edge_visits("lazy") == 40.0
    assert instrumentation.mean_edge_visits("unknown") == 0.0
    rows = instrumentation.rows()
    assert ("lazy", 40, 40.0, 5) in rows
