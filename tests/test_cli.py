"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_cli_requires_a_command(capsys):
    with pytest.raises(SystemExit):
        main([])


def test_cli_query_runs_and_prints_results(capsys):
    exit_code = main(
        [
            "query",
            "--dataset",
            "lastfm",
            "--scale",
            "0.1",
            "--group",
            "mid",
            "--num-queries",
            "1",
            "--k",
            "2",
            "--method",
            "lazy",
            "--max-samples",
            "60",
            "--index-samples",
            "100",
            "--seed",
            "5",
        ]
    )
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "dataset: lastfm" in captured.out
    assert "best 2-tag set" in captured.out


def test_cli_query_rejects_unknown_method():
    with pytest.raises(SystemExit):
        main(["query", "--method", "magic"])


def test_cli_bench_single_experiment(capsys):
    exit_code = main(["bench", "--experiment", "table2", "--preset", "smoke", "--seed", "7"])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "table2" in captured.out
    assert "lastfm" in captured.out


def test_cli_bench_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["bench", "--experiment", "fig99"])
