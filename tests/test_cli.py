"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_cli_requires_a_command(capsys):
    with pytest.raises(SystemExit):
        main([])


def test_cli_query_runs_and_prints_results(capsys):
    exit_code = main(
        [
            "query",
            "--dataset",
            "lastfm",
            "--scale",
            "0.1",
            "--group",
            "mid",
            "--num-queries",
            "1",
            "--k",
            "2",
            "--method",
            "lazy",
            "--max-samples",
            "60",
            "--index-samples",
            "100",
            "--seed",
            "5",
        ]
    )
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "dataset: lastfm" in captured.out
    assert "best 2-tag set" in captured.out


def test_cli_query_rejects_unknown_method():
    with pytest.raises(SystemExit):
        main(["query", "--method", "magic"])


def test_cli_bench_single_experiment(capsys):
    exit_code = main(["bench", "--experiment", "table2", "--preset", "smoke", "--seed", "7"])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "table2" in captured.out
    assert "lastfm" in captured.out


def test_cli_bench_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["bench", "--experiment", "fig99"])


QUERY_SMOKE_ARGS = [
    "query",
    "--dataset", "lastfm",
    "--scale", "0.08",
    "--group", "mid",
    "--num-queries", "1",
    "--k", "2",
    "--method", "lazy",
    "--max-samples", "40",
    "--index-samples", "60",
    "--seed", "5",
]


def test_cli_query_kernel_flag_accepts_dict(capsys):
    exit_code = main(QUERY_SMOKE_ARGS + ["--kernel", "dict"])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "best 2-tag set" in captured.out


def test_cli_query_json_output_is_parseable(capsys):
    import json

    exit_code = main(QUERY_SMOKE_ARGS + ["--json"])
    captured = capsys.readouterr()
    assert exit_code == 0
    document = json.loads(captured.out)
    assert document["method"] == "lazy"
    assert document["kernel"] == "csr"
    assert len(document["results"]) == 1
    result = document["results"][0]
    assert len(result["tag_ids"]) == 2
    assert result["spread"] >= 1.0
    # Per-method edge-visit counters (Fig. 13 instrumentation) ride along.
    counters = document["counters"]
    (method_key,) = counters.keys()
    assert "lazy" in method_key
    assert counters[method_key]["queries"] == 1
    assert counters[method_key]["edge_visits"] == result["edges_visited"]
    assert counters[method_key]["samples"] == result["samples_drawn"] > 0


def test_cli_query_batched_kernel_and_method(capsys):
    import json

    exit_code = main(QUERY_SMOKE_ARGS + ["--kernel", "batched", "--json"])
    captured = capsys.readouterr()
    assert exit_code == 0
    document = json.loads(captured.out)
    assert document["kernel"] == "batched"
    assert document["results"][0]["spread"] >= 1.0

    args = [a if a != "lazy" else "lazy-batched" for a in QUERY_SMOKE_ARGS]
    exit_code = main(args + ["--json"])
    captured = capsys.readouterr()
    assert exit_code == 0
    document = json.loads(captured.out)
    # The lazy-batched method always reports the batched kernel, whatever the
    # engine-wide --kernel flag says.
    assert document["method"] == "lazy-batched"
    assert document["kernel"] == "batched"
    counters = document["counters"]
    assert any("lazy-batched" in key for key in counters)


def test_cli_query_rejects_unknown_kernel():
    with pytest.raises(SystemExit):
        main(["query", "--kernel", "sparse"])


def test_cli_index_build_then_serve_replay_warm_start(capsys, tmp_path):
    import json

    store = str(tmp_path / "store")
    common = [
        "--dataset", "lastfm",
        "--scale", "0.08",
        "--index-samples", "60",
        "--seed", "11",
        "--store", store,
    ]
    exit_code = main(["index-build", *common, "--kind", "rr-graphs", "--json"])
    captured = capsys.readouterr()
    assert exit_code == 0
    build_doc = json.loads(captured.out)
    assert build_doc["indexes"] == [
        {
            "kind": "rr-graphs",
            "loaded": False,
            "seconds": build_doc["indexes"][0]["seconds"],
            "memory_bytes": build_doc["indexes"][0]["memory_bytes"],
        }
    ]

    exit_code = main(
        [
            "serve-replay",
            *common,
            "--num-queries", "6",
            "--k", "2",
            "--method", "indexest",
            "--max-samples", "40",
            "--workers", "2",
            "--json",
        ]
    )
    captured = capsys.readouterr()
    assert exit_code == 0
    replay_doc = json.loads(captured.out)
    assert replay_doc["indexes"] == [
        {"kind": "rr-graphs", "loaded": True, "seconds": replay_doc["indexes"][0]["seconds"]}
    ]
    assert replay_doc["num_queries"] == 6
    assert replay_doc["failures"] == 0
    assert replay_doc["overall"]["count"] == 6
    assert replay_doc["service"]["completed"] == 6


def test_cli_serve_replay_freeze_runs_lock_free_and_reports_mode(capsys):
    import json

    exit_code = main(
        [
            "serve-replay",
            "--dataset", "lastfm",
            "--scale", "0.08",
            "--index-samples", "60",
            "--seed", "11",
            "--num-queries", "6",
            "--k", "2",
            "--method", "indexest+",
            "--max-samples", "40",
            "--workers", "4",
            "--freeze",
            "--json",
        ]
    )
    captured = capsys.readouterr()
    assert exit_code == 0
    document = json.loads(captured.out)
    assert document["failures"] == 0
    assert document["mode"] == "frozen-parallel"
    assert document["num_workers"] == 4
    assert document["overall"]["count"] == 6


def test_cli_serve_replay_without_store_builds_in_process(capsys):
    exit_code = main(
        [
            "serve-replay",
            "--dataset", "lastfm",
            "--scale", "0.08",
            "--index-samples", "60",
            "--seed", "11",
            "--num-queries", "4",
            "--k", "2",
            "--method", "lazy",
            "--max-samples", "40",
        ]
    )
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "workload replay" in captured.out
    assert "qps" in captured.out
