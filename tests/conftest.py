"""Shared fixtures for the PITEX reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.digraph import TopicSocialGraph
from repro.graph.generators import line_graph, random_topic_graph
from repro.sampling.base import SampleBudget
from repro.topics.model import TagTopicModel


@pytest.fixture
def paper_example():
    """The running example of Fig. 2 (tags w1..w4, topics z1..z3, 7 users).

    The tag-topic matrix is taken verbatim from Fig. 2(b); the graph follows
    the topology of Fig. 2(a) with representative probabilities.  The fixture
    returns ``(graph, model)``; the documented property of the example --
    ``p((u1,u2) | {w1,w2}) = 0.2`` under the uniform prior -- is asserted in
    the topics tests.
    """
    # p(w|z) rows: w1..w4, columns z1..z3.
    matrix = np.array(
        [
            [0.6, 0.4, 0.0],
            [0.4, 0.6, 0.0],
            [0.0, 0.4, 0.6],
            [0.0, 0.4, 0.6],
        ]
    )
    model = TagTopicModel(matrix, tags=["w1", "w2", "w3", "w4"])
    graph = TopicSocialGraph(7, 3, vertex_labels=[f"u{i + 1}" for i in range(7)])
    # Vertex ids: u1=0, u2=1, u3=2, u4=3, u5=4, u6=5, u7=6.
    graph.add_edge(0, 1, [0.4, 0.0, 0.0])   # u1 -> u2
    graph.add_edge(0, 2, [0.5, 0.0, 0.0])   # u1 -> u3
    graph.add_edge(2, 3, [0.0, 0.0, 0.8])   # u3 -> u4
    graph.add_edge(2, 4, [0.0, 0.5, 0.5])   # u3 -> u5
    graph.add_edge(3, 5, [0.0, 0.0, 0.5])   # u4 -> u6
    graph.add_edge(3, 6, [0.0, 0.0, 0.4])   # u4 -> u7
    graph.add_edge(5, 6, [0.0, 0.0, 0.5])   # u6 -> u7
    return graph, model


@pytest.fixture
def small_graph():
    """A 12-vertex random topic graph used by many unit tests."""
    return random_topic_graph(12, 3, edge_probability=0.2, base_probability=0.4, seed=11)


@pytest.fixture
def small_model():
    """A 6-tag / 3-topic model compatible with ``small_graph``."""
    rng = np.random.default_rng(5)
    matrix = rng.uniform(0.0, 1.0, size=(6, 3))
    matrix[matrix < 0.35] = 0.0
    matrix[0, 0] = 0.7  # make sure no all-zero row
    matrix[1, 1] = 0.6
    matrix[2, 2] = 0.5
    return TagTopicModel(matrix)


@pytest.fixture
def tiny_budget():
    """A small sampling budget keeping tests fast."""
    return SampleBudget(epsilon=0.7, delta=100.0, k=2, num_tags=6, max_samples=200, min_samples=50)


@pytest.fixture
def deterministic_line():
    """A 5-vertex line graph with probability 1 edges: exact spread is 5."""
    return line_graph(5, probability=1.0, num_topics=2)
