"""Tier-1 wrapper around the docs honesty checker (``tools/check_docs.py``).

Runs the same two checks as the CI ``docs`` job -- internal markdown links
resolve, and every ``pitex`` flag the operations runbook documents exists on
the real CLI parser -- so docs rot fails the test suite, not just CI.
"""

import importlib.util
import os

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def load_checker():
    path = os.path.join(REPO_ROOT, "tools", "check_docs.py")
    spec = importlib.util.spec_from_file_location("check_docs", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_docs_handbook_exists():
    for name in ("architecture.md", "operations.md"):
        assert os.path.exists(os.path.join(REPO_ROOT, "docs", name))


def test_docs_links_and_cli_flags_are_honest(capsys):
    checker = load_checker()
    status = checker.main()
    output = capsys.readouterr().out
    assert status == 0, f"docs check found problems:\n{output}"


def test_flag_checker_catches_an_unknown_flag(tmp_path):
    checker = load_checker()
    known = checker.pitex_flags()
    assert "--backend" in known and "--workers" in known
    rogue = tmp_path / "operations.md"
    rogue.write_text("run `pitex serve-replay --no-such-flag`\n")
    found = checker.documented_pitex_flags(str(rogue))
    assert (1, "--no-such-flag") in found
