"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import RandomSource, spawn_rng


def test_same_seed_gives_same_stream():
    a = RandomSource(42)
    b = RandomSource(42)
    assert [a.uniform() for _ in range(5)] == [b.uniform() for _ in range(5)]


def test_different_seeds_give_different_streams():
    a = RandomSource(1)
    b = RandomSource(2)
    assert [a.uniform() for _ in range(5)] != [b.uniform() for _ in range(5)]


def test_spawn_produces_independent_reproducible_children():
    parent_a = RandomSource(7)
    parent_b = RandomSource(7)
    child_a = parent_a.spawn(3)
    child_b = parent_b.spawn(3)
    assert [child_a.uniform() for _ in range(3)] == [child_b.uniform() for _ in range(3)]


def test_bernoulli_extremes():
    rng = RandomSource(0)
    assert rng.bernoulli(0.0) is False
    assert rng.bernoulli(1.0) is True


def test_bernoulli_frequency_close_to_probability():
    rng = RandomSource(123)
    draws = sum(rng.bernoulli(0.3) for _ in range(5000))
    assert 0.25 < draws / 5000 < 0.35


def test_geometric_zero_probability_is_effectively_never():
    rng = RandomSource(0)
    assert rng.geometric(0.0) > 10**12


def test_geometric_one_probability_is_immediate():
    rng = RandomSource(0)
    assert rng.geometric(1.0) == 1


def test_geometric_mean_matches_inverse_probability():
    rng = RandomSource(9)
    p = 0.2
    draws = rng.geometrics(p, 20000)
    assert abs(draws.mean() - 1.0 / p) < 0.3


def test_integer_within_bounds():
    rng = RandomSource(3)
    values = [rng.integer(2, 5) for _ in range(100)]
    assert all(2 <= v < 5 for v in values)


def test_weighted_index_respects_weights():
    rng = RandomSource(8)
    counts = np.zeros(3)
    for _ in range(6000):
        counts[rng.weighted_index([0.0, 1.0, 3.0])] += 1
    assert counts[0] == 0
    assert counts[2] > counts[1]


def test_weighted_index_rejects_all_zero_weights():
    rng = RandomSource(1)
    with pytest.raises(ValueError):
        rng.weighted_index([0.0, 0.0])


def test_choice_single_and_multiple():
    rng = RandomSource(5)
    items = ["a", "b", "c"]
    single = rng.choice(items)
    assert single in items
    several = rng.choice(items, size=2, replace=False)
    assert len(several) == 2
    assert len(set(several)) == 2


def test_shuffle_is_permutation():
    rng = RandomSource(4)
    items = list(range(20))
    shuffled = list(items)
    rng.shuffle(shuffled)
    assert sorted(shuffled) == items


def test_dirichlet_sums_to_one():
    rng = RandomSource(2)
    draw = rng.dirichlet([0.5] * 4)
    assert draw.shape == (4,)
    assert abs(draw.sum() - 1.0) < 1e-9


def test_spawn_rng_accepts_generator_and_source():
    generator = np.random.default_rng(3)
    source = spawn_rng(generator)
    assert isinstance(source, RandomSource)
    child = spawn_rng(source, salt=1)
    assert isinstance(child, RandomSource)
    assert child is not source
