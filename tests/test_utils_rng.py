"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import RandomSource, spawn_rng


def test_same_seed_gives_same_stream():
    a = RandomSource(42)
    b = RandomSource(42)
    assert [a.uniform() for _ in range(5)] == [b.uniform() for _ in range(5)]


def test_different_seeds_give_different_streams():
    a = RandomSource(1)
    b = RandomSource(2)
    assert [a.uniform() for _ in range(5)] != [b.uniform() for _ in range(5)]


def test_spawn_produces_independent_reproducible_children():
    parent_a = RandomSource(7)
    parent_b = RandomSource(7)
    child_a = parent_a.spawn(3)
    child_b = parent_b.spawn(3)
    assert [child_a.uniform() for _ in range(3)] == [child_b.uniform() for _ in range(3)]


def test_bernoulli_extremes():
    rng = RandomSource(0)
    assert rng.bernoulli(0.0) is False
    assert rng.bernoulli(1.0) is True


def test_bernoulli_frequency_close_to_probability():
    rng = RandomSource(123)
    draws = sum(rng.bernoulli(0.3) for _ in range(5000))
    assert 0.25 < draws / 5000 < 0.35


def test_geometric_zero_probability_is_effectively_never():
    rng = RandomSource(0)
    assert rng.geometric(0.0) > 10**12


def test_geometric_one_probability_is_immediate():
    rng = RandomSource(0)
    assert rng.geometric(1.0) == 1


def test_geometric_mean_matches_inverse_probability():
    rng = RandomSource(9)
    p = 0.2
    draws = rng.geometrics(p, 20000)
    assert abs(draws.mean() - 1.0 / p) < 0.3


def test_integer_within_bounds():
    rng = RandomSource(3)
    values = [rng.integer(2, 5) for _ in range(100)]
    assert all(2 <= v < 5 for v in values)


def test_weighted_index_respects_weights():
    rng = RandomSource(8)
    counts = np.zeros(3)
    for _ in range(6000):
        counts[rng.weighted_index([0.0, 1.0, 3.0])] += 1
    assert counts[0] == 0
    assert counts[2] > counts[1]


def test_weighted_index_rejects_all_zero_weights():
    rng = RandomSource(1)
    with pytest.raises(ValueError):
        rng.weighted_index([0.0, 0.0])


def test_choice_single_and_multiple():
    rng = RandomSource(5)
    items = ["a", "b", "c"]
    single = rng.choice(items)
    assert single in items
    several = rng.choice(items, size=2, replace=False)
    assert len(several) == 2
    assert len(set(several)) == 2


def test_shuffle_is_permutation():
    rng = RandomSource(4)
    items = list(range(20))
    shuffled = list(items)
    rng.shuffle(shuffled)
    assert sorted(shuffled) == items


def test_dirichlet_sums_to_one():
    rng = RandomSource(2)
    draw = rng.dirichlet([0.5] * 4)
    assert draw.shape == (4,)
    assert abs(draw.sum() - 1.0) < 1e-9


def test_spawn_rng_accepts_generator_and_source():
    generator = np.random.default_rng(3)
    source = spawn_rng(generator)
    assert isinstance(source, RandomSource)
    child = spawn_rng(source, salt=1)
    assert isinstance(child, RandomSource)
    assert child is not source


# ---------------------------------------------------------------------------
# SeedLike normalization: RandomSource accepts None / int / Generator /
# RandomSource, and each variant has a precise contract.
# ---------------------------------------------------------------------------


def test_seedlike_none_is_fresh_entropy():
    source = RandomSource(None)
    assert source.seed is None
    # Fresh OS entropy: two unseeded sources must not share a stream.
    other = RandomSource(None)
    assert [source.uniform() for _ in range(4)] != [other.uniform() for _ in range(4)]


def test_seedlike_int_matches_default_rng():
    source = RandomSource(42)
    assert source.seed == 42
    reference = np.random.default_rng(42)
    assert [source.uniform() for _ in range(5)] == [float(reference.uniform(0.0, 1.0)) for _ in range(5)]


def test_seedlike_generator_is_adopted_not_copied():
    generator = np.random.default_rng(5)
    source = RandomSource(generator)
    assert source.generator is generator
    assert source.seed is None  # the wrapper cannot know the generator's seed
    # Draws through the wrapper advance the adopted generator's stream.
    reference = np.random.default_rng(5)
    assert source.uniform() == float(reference.uniform(0.0, 1.0))
    assert float(generator.uniform(0.0, 1.0)) == float(reference.uniform(0.0, 1.0))


def test_seedlike_randomsource_shares_stream_and_seed():
    parent = RandomSource(11)
    view = RandomSource(parent)
    assert view.generator is parent.generator
    assert view.seed == parent.seed == 11
    # Interleaved draws consume one shared stream.
    reference = RandomSource(11)
    assert [parent.uniform(), view.uniform(), parent.uniform()] == [
        reference.uniform() for _ in range(3)
    ]


def test_spawn_rng_int_without_salt_is_the_root_stream():
    assert [spawn_rng(42).uniform() for _ in range(3)] == [RandomSource(42).uniform() for _ in range(3)]


def test_spawn_rng_from_source_never_aliases_the_parent():
    parent = RandomSource(6)
    child = spawn_rng(parent)  # even salt=0 must spawn, not share
    assert child.generator is not parent.generator
    assert [child.uniform() for _ in range(3)] != [RandomSource(6).uniform() for _ in range(3)]


def test_labeled_child_streams_are_deterministic_per_salt():
    salts = (1, 2, 97)
    first = {salt: RandomSource(7).spawn(salt).uniforms(4).tolist() for salt in salts}
    second = {salt: RandomSource(7).spawn(salt).uniforms(4).tolist() for salt in salts}
    assert first == second  # same parent seed + same label -> same child stream
    streams = list(first.values())
    for i in range(len(streams)):
        for j in range(i + 1, len(streams)):
            assert streams[i] != streams[j]  # distinct labels -> distinct streams


def test_child_streams_depend_on_parent_draw_position():
    fresh = RandomSource(7)
    advanced = RandomSource(7)
    advanced.uniform()  # spawn() folds in parent entropy, so position matters
    assert fresh.spawn(3).uniforms(4).tolist() != advanced.spawn(3).uniforms(4).tolist()
