"""Tests for the PitexEngine facade."""

import numpy as np
import pytest

from repro.core.engine import METHODS, PitexEngine
from repro.exceptions import InvalidParameterError
from repro.graph.digraph import TopicSocialGraph
from repro.propagation.exact import exact_best_tag_set
from repro.topics.model import TagTopicModel


@pytest.fixture(scope="module")
def engine_instance():
    """A small instance with an unambiguous optimum shared across engine tests."""
    graph = TopicSocialGraph(8, 2)
    graph.add_edge(0, 1, [0.9, 0.0])
    graph.add_edge(0, 2, [0.9, 0.0])
    graph.add_edge(1, 3, [0.8, 0.0])
    graph.add_edge(2, 4, [0.8, 0.0])
    graph.add_edge(3, 5, [0.7, 0.0])
    graph.add_edge(0, 6, [0.0, 0.3])
    graph.add_edge(6, 7, [0.0, 0.2])
    matrix = np.array([[0.9, 0.0], [0.8, 0.0], [0.0, 0.9], [0.0, 0.8]])
    model = TagTopicModel(matrix)
    engine = PitexEngine(
        graph, model, epsilon=0.5, max_samples=800, index_samples=3000, default_k=2, seed=13
    )
    return graph, model, engine


def test_engine_rejects_mismatched_model():
    graph = TopicSocialGraph(3, 2)
    graph.add_edge(0, 1, [0.5, 0.5])
    model = TagTopicModel(np.ones((4, 3)))
    with pytest.raises(InvalidParameterError):
        PitexEngine(graph, model)


def test_engine_estimator_registry(engine_instance):
    _, _, engine = engine_instance
    for method in METHODS:
        estimator = engine.estimator(method)
        assert estimator.name in (method, "indexest")
    with pytest.raises(InvalidParameterError):
        engine.estimator("bogus")
    # same accuracy parameters -> cached instance
    assert engine.estimator("lazy") is engine.estimator("lazy")
    assert engine.estimator("lazy", epsilon=0.3) is not engine.estimator("lazy")


@pytest.mark.parametrize("method", ["mc", "rr", "lazy", "indexest", "indexest+", "delaymat"])
def test_engine_query_finds_optimum_with_every_method(engine_instance, method):
    graph, model, engine = engine_instance
    expected_tags, _ = exact_best_tag_set(graph, model, 0, 2)
    result = engine.query(user=0, k=2, method=method)
    assert result.tag_ids == expected_tags
    assert result.spread > 1.0
    assert result.query.user == 0


def test_engine_tim_returns_a_plausible_result(engine_instance):
    graph, model, engine = engine_instance
    result = engine.query(user=0, k=2, method="tim")
    # TIM has no guarantee, but on this instance topic-0 tags still dominate.
    assert set(result.tag_ids).issubset({0, 1, 2, 3})
    assert result.spread > 0.0


def test_engine_enumeration_vs_best_effort(engine_instance):
    graph, model, engine = engine_instance
    enumerated = engine.query(user=0, k=2, method="lazy", exploration="enumeration")
    explored = engine.query(user=0, k=2, method="lazy", exploration="best-effort")
    assert enumerated.tag_ids == explored.tag_ids
    assert enumerated.evaluated_tag_sets == model.num_candidate_tag_sets(2)
    assert explored.evaluated_tag_sets + explored.pruned_tag_sets <= model.num_candidate_tag_sets(2)


def test_engine_candidate_tag_restriction(engine_instance):
    _, _, engine = engine_instance
    result = engine.query(user=0, k=2, method="lazy", candidate_tags=[2, 3])
    assert result.tag_ids == (2, 3)
    enumerated = engine.query(
        user=0, k=2, method="lazy", exploration="enumeration", candidate_tags=[0, 1, 2]
    )
    assert enumerated.evaluated_tag_sets == 3


def test_engine_rejects_unknown_exploration(engine_instance):
    _, _, engine = engine_instance
    with pytest.raises(InvalidParameterError):
        engine.query(user=0, k=2, exploration="depth-first")


def test_engine_estimate_influence_accepts_tag_names(engine_instance):
    _, _, engine = engine_instance
    by_id = engine.estimate_influence(0, (0, 1), method="lazy")
    by_name = engine.estimate_influence(0, ("w0", "w1"), method="lazy")
    assert by_id.value == pytest.approx(by_name.value, rel=0.3)


def test_engine_indexes_are_cached(engine_instance):
    _, _, engine = engine_instance
    first = engine.rr_index
    second = engine.rr_index
    assert first is second
    delayed_first = engine.delayed_index
    delayed_second = engine.delayed_index
    assert delayed_first is delayed_second


def test_engine_describe_mentions_sizes(engine_instance):
    graph, model, engine = engine_instance
    description = engine.describe()
    assert str(graph.num_vertices) in description
    assert str(model.num_tags) in description


def test_engine_keep_evaluations(engine_instance):
    _, _, engine = engine_instance
    result = engine.query(user=0, k=2, method="lazy", exploration="enumeration", keep_evaluations=True)
    assert len(result.evaluations) == result.evaluated_tag_sets
    assert result.top(1)[0].spread == pytest.approx(result.spread)
