"""Tests for the dataset profiles, synthetic generation, workloads and case study."""

import numpy as np
import pytest

from repro.datasets.casestudy import FIELD_KEYWORDS, RESEARCHERS, build_case_study
from repro.datasets.profiles import get_profile, profile_names
from repro.datasets.synthetic import load_dataset, make_tag_topic_matrix
from repro.datasets.workload import build_workload
from repro.exceptions import InvalidParameterError


def test_profiles_match_table2_reference_values():
    assert profile_names() == ["lastfm", "diggs", "dblp", "twitter"]
    lastfm = get_profile("lastfm")
    assert lastfm.paper_vertices == 1_300
    assert lastfm.num_topics == 20 and lastfm.num_tags == 50
    dblp = get_profile("dblp")
    assert dblp.num_topics == 9 and dblp.num_tags == 276
    twitter = get_profile("twitter")
    assert twitter.num_topics == 50 and twitter.num_tags == 250
    assert twitter.average_degree == pytest.approx(1.2)


def test_profile_lookup_and_scaling():
    with pytest.raises(InvalidParameterError):
        get_profile("facebook")
    profile = get_profile("LASTFM")
    assert profile.name == "lastfm"
    assert profile.scaled_vertices(0.5) == 650
    with pytest.raises(InvalidParameterError):
        profile.scaled_vertices(0.0)
    row = profile.table2_row(1.0)
    assert row[0] == "lastfm" and row[1] == 1300


def test_make_tag_topic_matrix_density_and_normalization():
    matrix = make_tag_topic_matrix(40, 10, density=0.2, seed=3)
    density = np.count_nonzero(matrix) / matrix.size
    assert abs(density - 0.2) < 0.05
    assert np.allclose(matrix.sum(axis=0), 1.0)
    with pytest.raises(InvalidParameterError):
        make_tag_topic_matrix(10, 5, density=0.0)


def test_generate_dataset_respects_profile(tmp_path):
    dataset = load_dataset("lastfm", scale=0.2, seed=11)
    profile = get_profile("lastfm")
    assert dataset.graph.num_vertices == profile.scaled_vertices(0.2)
    assert dataset.graph.num_topics == profile.num_topics
    assert dataset.model.num_tags == profile.num_tags
    # Density within a factor ~2 of the target (the generator tops up edges).
    assert dataset.graph.density() == pytest.approx(profile.average_degree, rel=0.5)
    # Tag-topic density close to the published value.
    assert dataset.model.tag_topic_density() == pytest.approx(profile.tag_topic_density, abs=0.06)
    row = dataset.table2_row()
    assert row[0] == "lastfm"
    assert "lastfm" in dataset.describe()


def test_generate_dataset_overrides_tags_and_topics():
    dataset = load_dataset("twitter", scale=0.05, num_tags=30, num_topics=10, seed=2)
    assert dataset.model.num_tags == 30
    assert dataset.graph.num_topics == 10


def test_generate_dataset_reproducible():
    a = load_dataset("diggs", scale=0.1, seed=5)
    b = load_dataset("diggs", scale=0.1, seed=5)
    assert a.graph.num_edges == b.graph.num_edges
    assert np.allclose(a.model.tag_topic_matrix, b.model.tag_topic_matrix)


def test_dataset_workload_and_most_influential_user():
    dataset = load_dataset("lastfm", scale=0.2, seed=11)
    users = dataset.workload("mid", 5)
    assert len(users) == 5
    degrees = dataset.graph.out_degrees()
    assert all(degrees[u] > 0 for u in users)
    top_user = dataset.most_influential_user()
    assert degrees[top_user] == degrees.max()


def test_workload_groups_and_errors():
    dataset = load_dataset("lastfm", scale=0.2, seed=11)
    workload = dataset.query_workload
    sizes = workload.group_sizes()
    assert sizes["high"] >= 1 and sizes["low"] >= 1
    high_user = workload.users("high", 1)[0]
    assert workload.group_of(high_user) == "high"
    with pytest.raises(InvalidParameterError):
        workload.users("medium", 3)
    with pytest.raises(InvalidParameterError):
        workload.users("high", 0)
    # Asking for more users than the group holds cycles deterministically.
    many = workload.users("high", sizes["high"] + 3)
    assert len(many) == sizes["high"] + 3


def test_build_workload_directly():
    dataset = load_dataset("diggs", scale=0.1, seed=1)
    workload = build_workload(dataset.graph, seed=4)
    assert set(workload.group_sizes()) == {"high", "mid", "low"}


def test_case_study_structure():
    case = build_case_study(members_per_field=10, followers_per_researcher=8, seed=3)
    assert len(case.researchers) == 8
    assert case.graph.num_topics == len(FIELD_KEYWORDS)
    assert case.model.num_tags == sum(len(v) for v in FIELD_KEYWORDS.values())
    for researcher in RESEARCHERS:
        vertex = case.vertex_of(researcher.name)
        assert case.graph.label_of(vertex) == researcher.name
        # Renowned researchers are hubs: they influence many community members.
        assert case.graph.out_degree(vertex) >= 8
        truth = case.ground_truth_tags[researcher.name]
        assert truth  # non-empty ground truth
        for keyword in truth:
            assert keyword in case.model.tags


def test_case_study_accuracy_metric():
    case = build_case_study(members_per_field=5, followers_per_researcher=4, seed=3)
    name = RESEARCHERS[0].name
    truth = sorted(case.ground_truth_tags[name])
    assert case.accuracy(name, truth[:5]) == 1.0
    assert case.accuracy(name, ["nonexistent-tag"] * 5) == 0.0
    assert case.accuracy(name, []) == 0.0
    mixed = truth[:2] + ["nonexistent-tag", "another-miss"]
    assert case.accuracy(name, mixed) == pytest.approx(0.5)
