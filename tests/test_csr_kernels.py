"""CSR-vs-dict equivalence tests for the vectorized sampling kernels.

Two kinds of guarantees are asserted:

* **Exact equivalence** for deterministic traversals: the CSR arrays describe
  the same adjacency as the dict-of-lists storage, and threshold reachability
  (``R_W(u)``) is identical under both kernels on arbitrary random graphs.
* **Statistical equivalence** for sampled traversals: with fixed seeds, spread
  estimates produced by the vectorized possible-world kernels agree with the
  per-edge reference walkers (and with the exact oracle on tiny graphs) within
  tight tolerances.  Batched coin flipping consumes uniforms in a different
  order, so per-seed sample paths legitimately differ -- the distributions must
  not.
"""

import numpy as np
import pytest

from repro.graph.algorithms import (
    live_edge_world,
    reachable_mask,
    reachable_vertices,
    reachable_with_probabilities,
    reverse_live_edge_world,
    reverse_reachable,
)
from repro.graph.digraph import TopicSocialGraph
from repro.graph.generators import random_topic_graph
from repro.index.delayed import DelayedMaterializationIndex
from repro.index.rr_graph import generate_rr_graph, tag_aware_reachable
from repro.propagation.exact import exact_influence_spread
from repro.sampling.base import SampleBudget
from repro.sampling.lazy import LazyPropagationEstimator
from repro.sampling.monte_carlo import MonteCarloEstimator
from repro.sampling.reverse_reachable import ReverseReachableEstimator
from repro.utils.rng import RandomSource


def random_graphs(count=6, max_vertices=30, seed0=100):
    """A spread of random graphs of varying size/density, plus an empty one."""
    graphs = [TopicSocialGraph(4, 2)]  # no edges at all
    for i in range(count):
        graphs.append(
            random_topic_graph(
                8 + 4 * i,
                3,
                edge_probability=0.1 + 0.05 * i,
                base_probability=0.5,
                seed=seed0 + i,
            )
        )
    return graphs


# ------------------------------------------------------------- CSR structure


def test_csr_arrays_match_adjacency_lists():
    for graph in random_graphs():
        csr = graph.csr
        assert csr.num_vertices == graph.num_vertices
        assert csr.num_edges == graph.num_edges
        for vertex in graph.vertices():
            edge_ids, targets = csr.out_slice(vertex)
            assert edge_ids.tolist() == graph.out_edges(vertex)
            assert targets.tolist() == graph.out_neighbors(vertex)
            in_ids, sources = csr.in_slice(vertex)
            assert in_ids.tolist() == graph.in_edges(vertex)
            assert sources.tolist() == graph.in_neighbors(vertex)
        for edge in graph.edges():
            assert int(csr.edge_sources[edge.edge_id]) == edge.source
            assert int(csr.edge_targets[edge.edge_id]) == edge.target


def test_csr_cache_is_reused_and_invalidated_on_mutation():
    graph = TopicSocialGraph(4, 2)
    graph.add_edge(0, 1, [0.5, 0.1])
    graph.add_edge(1, 2, [0.2, 0.6])
    first = graph.csr
    assert graph.csr is first  # cached
    version = graph.version
    graph.add_edge(2, 3, [0.3, 0.3])
    assert graph.version == version + 1
    rebuilt = graph.csr
    assert rebuilt is not first
    assert rebuilt.num_edges == first.num_edges + 1
    # The stale reference still describes the pre-mutation snapshot.
    assert first.num_edges == rebuilt.num_edges - 1


def test_adjacency_accessors_return_defensive_copies():
    graph = random_topic_graph(8, 2, edge_probability=0.4, seed=5)
    out_before = graph.out_edges(0)
    graph.out_edges(0).append(10_000)
    graph.in_edges(0).clear()
    graph.out_neighbors(0).append(-1)
    assert graph.out_edges(0) == out_before
    # The CSR cache stays consistent with the (unchanged) graph.
    edge_ids, _ = graph.csr.out_slice(0)
    assert edge_ids.tolist() == out_before


# ------------------------------------------------------ exact reachability


def test_reachable_with_probabilities_kernels_agree():
    for graph in random_graphs():
        if graph.num_edges == 0:
            probabilities = np.zeros(0)
        else:
            probabilities = graph.max_edge_probabilities().copy()
            probabilities[:: max(1, graph.num_edges // 3)] = 0.0  # knock out some edges
        for source in range(0, graph.num_vertices, 3):
            via_dict = reachable_with_probabilities(graph, source, probabilities, kernel="dict")
            via_csr = reachable_with_probabilities(graph, source, probabilities, kernel="csr")
            assert via_csr == via_dict
            mask = reachable_mask(graph, source, probabilities)
            assert set(np.flatnonzero(mask).tolist()) == via_dict
            assert reachable_vertices(graph, source, probabilities).tolist() == sorted(via_dict)


def test_reachable_threshold_matches_dict_kernel():
    graph = random_topic_graph(20, 3, edge_probability=0.25, base_probability=0.6, seed=42)
    probabilities = graph.max_edge_probabilities()
    for threshold in (0.0, 0.2, 0.5, 0.9):
        assert reachable_with_probabilities(
            graph, 0, probabilities, threshold=threshold, kernel="csr"
        ) == reachable_with_probabilities(graph, 0, probabilities, threshold=threshold, kernel="dict")


# -------------------------------------------------- sampled world kernels


def test_live_edge_world_extremes_match_structure():
    graph = random_topic_graph(15, 2, edge_probability=0.3, seed=9)
    rng = RandomSource(1)
    ones = np.ones(graph.num_edges)
    activated, live_edges, probes = live_edge_world(graph, 0, ones, rng, collect_edges=True)
    assert set(np.flatnonzero(activated).tolist()) == reachable_with_probabilities(graph, 0, ones)
    assert probes == len(live_edges)  # every probed edge is alive under p=1
    zeros = np.zeros(graph.num_edges)
    activated, live_edges, probes = live_edge_world(graph, 0, zeros, rng, collect_edges=True)
    assert np.flatnonzero(activated).tolist() == [0]
    assert probes == 0 and len(live_edges) == 0
    # Under p=1 the reverse world is exactly structural reverse reachability.
    reached, _ = reverse_live_edge_world(graph, 3, ones, rng)
    assert set(np.flatnonzero(reached).tolist()) == reverse_reachable(graph, 3)


def test_live_edges_are_valid_and_alive_only_for_positive_probabilities():
    graph = random_topic_graph(20, 3, edge_probability=0.3, base_probability=0.5, seed=21)
    probabilities = graph.max_edge_probabilities().copy()
    probabilities[::2] = 0.0
    rng = RandomSource(7)
    activated, live_edges, _ = live_edge_world(graph, 1, probabilities, rng, collect_edges=True)
    for edge_id in live_edges.tolist():
        assert probabilities[edge_id] > 0.0
        source, target = graph.edge_endpoints(edge_id)
        assert activated[source] and activated[target]


# ----------------------------------------------- estimator-level agreement


@pytest.mark.parametrize("kernel", ["csr", "dict"])
def test_mc_estimator_matches_exact_oracle_on_line(kernel, deterministic_line, small_model):
    budget = SampleBudget(num_tags=6, max_samples=50, min_samples=10)
    estimator = MonteCarloEstimator(
        deterministic_line, small_model, budget, seed=3, kernel=kernel
    )
    estimate = estimator.estimate_with_probabilities(0, np.ones(deterministic_line.num_edges), 20)
    assert estimate.value == pytest.approx(5.0)


def test_mc_estimators_statistically_agree():
    graph = random_topic_graph(18, 3, edge_probability=0.25, base_probability=0.5, seed=77)
    probabilities = graph.max_edge_probabilities()
    budget = SampleBudget(num_tags=6)
    samples = 4000
    # estimate_with_probabilities never touches the tag-topic model
    csr = MonteCarloEstimator(graph, None, budget, seed=11, kernel="csr")
    dict_est = MonteCarloEstimator(graph, None, budget, seed=12, kernel="dict")
    value_csr = csr.estimate_with_probabilities(2, probabilities, samples).value
    value_dict = dict_est.estimate_with_probabilities(2, probabilities, samples).value
    assert value_csr == pytest.approx(value_dict, rel=0.08)
    if graph.num_edges <= 22:
        exact = exact_influence_spread(graph, 2, probabilities)
        assert value_csr == pytest.approx(exact, rel=0.12)


def test_rr_estimators_statistically_agree(small_graph, small_model, tiny_budget):
    probabilities = small_graph.max_edge_probabilities()
    samples = 3000
    csr = ReverseReachableEstimator(small_graph, small_model, tiny_budget, seed=5, kernel="csr")
    dict_est = ReverseReachableEstimator(small_graph, small_model, tiny_budget, seed=6, kernel="dict")
    value_csr = csr.estimate_with_probabilities(0, probabilities, samples).value
    value_dict = dict_est.estimate_with_probabilities(0, probabilities, samples).value
    assert value_csr == pytest.approx(value_dict, rel=0.10, abs=0.25)


def test_lazy_estimators_statistically_agree_across_kernels(small_graph, small_model, tiny_budget):
    probabilities = small_graph.max_edge_probabilities()
    samples = 3000
    values = {}
    for kernel, seed in (("csr", 14), ("dict", 15)):
        lazy = LazyPropagationEstimator(
            small_graph, small_model, tiny_budget, seed=seed, early_stopping=False, kernel=kernel
        )
        values[kernel] = lazy.estimate_with_probabilities(0, probabilities, samples).value
    assert values["csr"] == pytest.approx(values["dict"], rel=0.10, abs=0.25)


def test_lazy_estimator_matches_mc_with_csr_kernels(small_graph, small_model, tiny_budget):
    probabilities = small_graph.max_edge_probabilities()
    lazy = LazyPropagationEstimator(
        small_graph, small_model, tiny_budget, seed=8, early_stopping=False
    )
    mc = MonteCarloEstimator(small_graph, small_model, tiny_budget, seed=9, kernel="csr")
    samples = 3000
    lazy_value = lazy.estimate_with_probabilities(0, probabilities, samples).value
    mc_value = mc.estimate_with_probabilities(0, probabilities, samples).value
    assert lazy_value == pytest.approx(mc_value, rel=0.10, abs=0.25)


def test_lazy_sample_live_subgraph_consistency(small_graph, small_model, tiny_budget):
    lazy = LazyPropagationEstimator(small_graph, small_model, tiny_budget, seed=10)
    probabilities = small_graph.max_edge_probabilities()
    visited, live_edges = lazy.sample_live_subgraph(0, probabilities)
    assert 0 in visited
    for edge_id in live_edges:
        source, target = small_graph.edge_endpoints(edge_id)
        assert source in visited and target in visited
        assert probabilities[edge_id] > 0.0


# --------------------------------------------------------------- RR-Graphs


def test_generate_rr_graph_kernels_structurally_agree():
    graph = random_topic_graph(25, 3, edge_probability=0.2, base_probability=0.6, seed=31)
    maxima = graph.max_edge_probabilities()
    for kernel in ("csr", "dict"):
        rr = generate_rr_graph(graph, 5, RandomSource(17), kernel=kernel)
        assert rr.root == 5
        assert 5 in rr.vertices
        for local, edge_id in enumerate(rr.edge_ids):
            assert rr.edge_thresholds[local] <= maxima[edge_id]
            source, target = graph.edge_endpoints(edge_id)
            assert source == rr.edge_sources[local]
            assert target == rr.edge_targets[local]
            assert target in rr.vertices
        # every non-root stored vertex reaches the root through stored edges
        from repro.index.rr_graph import structurally_reachable

        for vertex in rr.vertices:
            assert rr.root in structurally_reachable(rr, vertex)


def test_generate_rr_graph_mean_size_matches_between_kernels():
    graph = random_topic_graph(30, 3, edge_probability=0.2, base_probability=0.5, seed=57)
    draws = 300
    sizes = {}
    for kernel, seed in (("csr", 2), ("dict", 3)):
        rng = RandomSource(seed)
        sizes[kernel] = np.mean(
            [generate_rr_graph(graph, root % 30, rng, kernel=kernel).num_vertices for root in range(draws)]
        )
    assert sizes["csr"] == pytest.approx(sizes["dict"], rel=0.12, abs=0.6)


def test_tag_aware_reachable_handles_out_of_sync_vertices():
    # Regression: a hand-assembled RRGraph whose `vertices` set was not kept
    # in sync with its edges used to crash the csr kernel (endpoint ids were
    # mapped past the member array); both kernels must agree instead.
    from repro.index.rr_graph import RRGraph

    rr = RRGraph(root=0, vertices={0, 5})
    rr.add_edge(0, 5, 0, 0.1)
    rr.add_edge(1, 9, 5, 0.1)
    probabilities = np.full(2, 0.9)
    assert tag_aware_reachable(rr, 5, probabilities, kernel="csr")[0] is True
    assert tag_aware_reachable(rr, 5, probabilities, kernel="dict")[0] is True


def test_tag_aware_reachable_kernels_agree():
    graph = random_topic_graph(25, 3, edge_probability=0.25, base_probability=0.7, seed=43)
    rng = RandomSource(23)
    query_rng = np.random.default_rng(4)
    for root in range(0, 25, 4):
        rr = generate_rr_graph(graph, root, rng)
        probabilities = graph.max_edge_probabilities() * query_rng.uniform(
            0.0, 1.0, size=graph.num_edges
        )
        for user in range(0, 25, 3):
            via_csr, _ = tag_aware_reachable(rr, user, probabilities, kernel="csr")
            via_dict, _ = tag_aware_reachable(rr, user, probabilities, kernel="dict")
            assert via_csr == via_dict, (root, user)


def test_indexes_go_stale_when_graph_mutates(small_graph):
    from repro.exceptions import IndexNotBuiltError
    from repro.index.rr_index import RRGraphIndex

    graph = small_graph.copy()
    index = RRGraphIndex(graph, num_samples=40, seed=2).build()
    assert index.is_built
    index.estimate(0, graph.max_edge_probabilities())  # queryable while fresh
    free_pair = next(
        (s, t)
        for s in graph.vertices()
        for t in graph.vertices()
        if s != t and not graph.has_edge(s, t)
    )
    graph.add_edge(*free_pair, [0.5] * graph.num_topics)
    assert not index.is_built  # stale: stored RR-Graphs describe the old graph
    with pytest.raises(IndexNotBuiltError):
        index.estimate(0, graph.max_edge_probabilities())
    index.build()  # rebuild clears the staleness
    assert index.is_built


def test_delayed_recovery_invariants(small_graph):
    index = DelayedMaterializationIndex(small_graph, num_samples=40, seed=12).build()
    maxima = small_graph.max_edge_probabilities()
    users = [v for v in small_graph.vertices() if small_graph.out_degree(v) > 0]
    rr = index.recover_rr_graph(users[0], RandomSource(3))
    assert rr.root in rr.vertices
    assert rr.recovery_weight >= 1.0
    for local, edge_id in enumerate(rr.edge_ids):
        assert 0.0 <= rr.edge_thresholds[local] <= maxima[edge_id]
        assert rr.edge_sources[local] in rr.vertices
        assert rr.edge_targets[local] in rr.vertices


# --------------------------------------------------------------- RNG sugar


def test_geometric_array_matches_scalar_distribution():
    rng = RandomSource(2024)
    probabilities = np.array([1.0, 0.0, 0.5])
    draws = rng.geometric_array(probabilities)
    assert draws[0] == 1
    assert draws[1] == np.iinfo(np.int64).max
    assert draws[2] >= 1
    # distributional check: mean of Geometric(p) is 1/p
    many = rng.geometric_array(np.full(20000, 0.25))
    assert np.mean(many) == pytest.approx(4.0, rel=0.05)


def test_geometric_array_tiny_probabilities_do_not_overflow():
    # Regression: inverse-CDF draws for minuscule p used to overflow the int64
    # cast and could produce negative fire times (edges firing immediately).
    rng = RandomSource(6)
    draws = rng.geometric_array(np.array([1e-300, 1e-18, 1e-12, 1e-6]))
    assert np.all(draws >= 1)
    assert np.all(draws <= 2**62)


def test_uniforms_upto_respects_bounds():
    rng = RandomSource(8)
    highs = np.array([0.1, 0.5, 1.0, 0.0])
    draws = rng.uniforms_upto(highs)
    assert np.all(draws >= 0.0)
    assert np.all(draws <= highs)
