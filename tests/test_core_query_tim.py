"""Tests for the query value objects and the TIM tree-model baseline."""

import numpy as np
import pytest

from repro.core.query import PitexQuery, PitexResult, TagSetEvaluation
from repro.core.tim import TreeModelEstimator
from repro.exceptions import InvalidParameterError
from repro.graph.digraph import TopicSocialGraph
from repro.graph.generators import line_graph, random_topic_graph
from repro.propagation.exact import exact_influence_spread
from repro.sampling.base import SampleBudget
from repro.topics.model import TagTopicModel


def test_query_defaults_and_validation():
    query = PitexQuery(user=3)
    assert query.k == 3 and query.epsilon == 0.7 and query.delta == 1000.0
    with pytest.raises(InvalidParameterError):
        PitexQuery(user=-1)
    with pytest.raises(InvalidParameterError):
        PitexQuery(user=0, k=0)
    with pytest.raises(InvalidParameterError):
        PitexQuery(user=0, epsilon=1.5)
    with pytest.raises(InvalidParameterError):
        PitexQuery(user=0, delta=0.5)


def test_tag_set_evaluation_ordering():
    small = TagSetEvaluation(tag_ids=(0,), spread=1.0)
    large = TagSetEvaluation(tag_ids=(1,), spread=2.0)
    assert small < large
    assert max([small, large]).spread == 2.0


def test_result_top_and_describe():
    query = PitexQuery(user=1, k=2)
    result = PitexResult(
        query=query,
        tag_ids=(0, 1),
        tags=("a", "b"),
        spread=3.5,
        method="lazy",
        evaluations=[
            TagSetEvaluation(tag_ids=(0, 1), spread=3.5),
            TagSetEvaluation(tag_ids=(0, 2), spread=1.0),
        ],
    )
    top = result.top(1)
    assert top[0].spread == 3.5
    description = result.describe()
    assert "a, b" in description
    assert "lazy" in description


def test_tree_model_exact_on_a_path():
    """On a path there is a single path to every vertex: tree model is exact."""
    graph = line_graph(4, probability=0.5)
    model = TagTopicModel(np.ones((2, 1)))
    estimator = TreeModelEstimator(graph, model, SampleBudget(num_tags=2, k=1), path_threshold=1e-9)
    probabilities = np.full(3, 0.5)
    estimate = estimator.estimate_with_probabilities(0, probabilities)
    assert estimate.value == pytest.approx(1 + 0.5 + 0.25 + 0.125)
    assert estimate.method == "tim"


def test_tree_model_underestimates_with_multiple_paths():
    """With several disjoint paths the tree model ignores all but the best one."""
    graph = TopicSocialGraph(4, 1)
    graph.add_edge(0, 1, [0.5])
    graph.add_edge(0, 2, [0.5])
    graph.add_edge(1, 3, [0.5])
    graph.add_edge(2, 3, [0.5])
    probabilities = graph.max_edge_probabilities()
    model = TagTopicModel(np.ones((2, 1)))
    estimator = TreeModelEstimator(graph, model, SampleBudget(num_tags=2, k=1), path_threshold=1e-9)
    tree_value = estimator.estimate_with_probabilities(0, probabilities).value
    exact = exact_influence_spread(graph, 0, probabilities)
    assert tree_value < exact
    # Specifically the probability of reaching vertex 3 is 1-(1-0.25)^2 = 0.4375 but
    # the tree model only credits the best path (0.25).
    assert tree_value == pytest.approx(1 + 0.5 + 0.5 + 0.25)


def test_tree_model_threshold_prunes_far_vertices():
    graph = line_graph(8, probability=0.3)
    model = TagTopicModel(np.ones((2, 1)))
    loose = TreeModelEstimator(graph, model, path_threshold=1e-9)
    tight = TreeModelEstimator(graph, model, path_threshold=0.01)
    probabilities = np.full(7, 0.3)
    tight_value = tight.estimate_with_probabilities(0, probabilities).value
    assert tight_value <= loose.estimate_with_probabilities(0, probabilities).value


def test_tree_model_is_deterministic():
    graph = random_topic_graph(30, 2, edge_probability=0.2, seed=3)
    model = TagTopicModel(np.ones((3, 2)))
    estimator = TreeModelEstimator(graph, model)
    probabilities = graph.max_edge_probabilities()
    first = estimator.estimate_with_probabilities(0, probabilities).value
    second = estimator.estimate_with_probabilities(0, probabilities).value
    assert first == second
