"""Tests for repro.topics.model (Eqn. 1 and the Lemma 8 bounds)."""

import numpy as np
import pytest

from repro.exceptions import ModelError, UnknownTagError
from repro.topics.model import TagTopicModel


def test_paper_running_example_edge_probability(paper_example):
    """Fig. 2: p((u1,u2) | {w1,w2}) = 0.2 under the uniform prior."""
    graph, model = paper_example
    probability = model.edge_probability(graph, 0, 1, ("w1", "w2"))
    assert probability == pytest.approx(0.2)


def test_paper_running_example_posterior(paper_example):
    _, model = paper_example
    posterior = model.topic_posterior(("w1", "w2"))
    # p(z|{w1,w2}) = (0.5, 0.5, 0.0): both z1 and z2 support the pair equally.
    assert posterior == pytest.approx([0.5, 0.5, 0.0])
    posterior_34 = model.topic_posterior(("w3", "w4"))
    # {w3,w4}: likelihoods (0, 0.16, 0.36) -> normalized (0, 0.308, 0.692); the
    # paper's Fig. 2(b) rounds this to (0, 0.33, 0.67).
    assert posterior_34[0] == pytest.approx(0.0)
    assert posterior_34[1] == pytest.approx(0.16 / 0.52)
    assert posterior_34[2] == pytest.approx(0.36 / 0.52)


def test_posterior_is_a_distribution_or_zero(small_model):
    for tag_set in [(0,), (0, 1), (2, 3), (0, 1, 2)]:
        posterior = small_model.topic_posterior(tag_set)
        total = posterior.sum()
        assert total == pytest.approx(1.0) or total == pytest.approx(0.0)
        assert np.all(posterior >= 0.0)


def test_empty_tag_set_returns_prior(small_model):
    assert np.allclose(small_model.topic_posterior(()), small_model.topic_prior)


def test_unsupported_tag_set_gives_zero_posterior():
    matrix = np.array([[1.0, 0.0], [0.0, 1.0]])
    model = TagTopicModel(matrix)
    posterior = model.topic_posterior((0, 1))
    assert np.allclose(posterior, 0.0)


def test_resolve_tags_mixed_names_and_ids(paper_example):
    _, model = paper_example
    assert model.resolve_tags(["w1", 2]) == (0, 2)
    assert model.resolve_tags(["w2", "w2"]) == (1,)
    with pytest.raises(UnknownTagError):
        model.resolve_tags(["nope"])
    with pytest.raises(UnknownTagError):
        model.resolve_tags([99])


def test_tag_names_lookup(paper_example):
    _, model = paper_example
    assert model.tag_names([0, 3]) == ["w1", "w4"]
    assert model.tag_id("w3") == 2
    with pytest.raises(UnknownTagError):
        model.tag_name(17)


def test_constructor_validation():
    with pytest.raises(ModelError):
        TagTopicModel(np.array([1.0, 2.0]))  # not 2-D
    with pytest.raises(ModelError):
        TagTopicModel(np.array([[-0.1, 0.2]]))
    with pytest.raises(ModelError):
        TagTopicModel(np.ones((2, 2)), topic_prior=[1.0])
    with pytest.raises(ModelError):
        TagTopicModel(np.ones((2, 2)), topic_prior=[0.0, 0.0])
    with pytest.raises(ModelError):
        TagTopicModel(np.ones((2, 2)), tags=["a"])
    with pytest.raises(ModelError):
        TagTopicModel(np.ones((2, 2)), tags=["a", "a"])


def test_prior_is_normalized():
    model = TagTopicModel(np.ones((2, 2)), topic_prior=[2.0, 6.0])
    assert model.topic_prior == pytest.approx([0.25, 0.75])


def test_candidate_tag_sets_counts(paper_example):
    _, model = paper_example
    assert model.num_candidate_tag_sets(2) == 6
    assert len(list(model.candidate_tag_sets(2))) == 6
    with pytest.raises(ModelError):
        list(model.candidate_tag_sets(0))
    with pytest.raises(ModelError):
        list(model.candidate_tag_sets(9))


def test_edge_probabilities_reject_mismatched_graph(paper_example, small_graph):
    _, model = paper_example  # 3 topics
    # small_graph also has 3 topics so build an incompatible model instead
    bad_model = TagTopicModel(np.ones((4, 2)))
    with pytest.raises(ModelError):
        bad_model.edge_probabilities(small_graph, (0,))


def test_upper_bound_dominates_exact_probability(paper_example):
    """Lemma 8: p+(e|W) >= p(e|W') for every completion W' of W."""
    graph, model = paper_example
    k = 2
    for partial in [(), (0,), (1,), (2,), (3,)]:
        bounds = model.upper_bound_edge_probabilities(graph, partial, k)
        for completion in model.candidate_tag_sets(k):
            if not set(partial).issubset(completion):
                continue
            exact = model.edge_probabilities(graph, completion)
            assert np.all(bounds >= exact - 1e-9), (partial, completion)


def test_upper_bound_empty_partial_equals_max_rule(paper_example):
    """p+(e|empty) never exceeds max_z p(e|z) (the W.L.O.G. clause of Lemma 8)."""
    graph, model = paper_example
    bounds = model.upper_bound_edge_probabilities(graph, (), 2)
    assert np.all(bounds <= graph.max_edge_probabilities() + 1e-12)


def test_upper_bound_full_partial_is_still_valid(paper_example):
    graph, model = paper_example
    full = (2, 3)
    bounds = model.upper_bound_edge_probabilities(graph, full, 2)
    exact = model.edge_probabilities(graph, full)
    assert np.all(bounds >= exact - 1e-9)


def test_upper_bound_rejects_oversized_partial(paper_example):
    graph, model = paper_example
    with pytest.raises(ModelError):
        model.upper_bound_edge_probabilities(graph, (0, 1, 2), 2)


def test_jensen_ratios_shape_and_nonnegativity(paper_example):
    _, model = paper_example
    ratios = model.jensen_ratios()
    assert ratios.shape == (4, 3)
    assert np.all(ratios >= 0.0)


def test_tag_topic_density(paper_example):
    _, model = paper_example
    # Fig. 2(b) has 8 non-zero entries out of 12.
    assert model.tag_topic_density() == pytest.approx(8 / 12)


def test_restrict_tags(paper_example):
    _, model = paper_example
    restricted = model.restrict_tags([0, 2])
    assert restricted.num_tags == 2
    assert restricted.tags == ["w1", "w3"]
    assert np.allclose(restricted.tag_topic_matrix, model.tag_topic_matrix[[0, 2], :])


def test_content_hash_tracks_matrix_prior_and_tags(paper_example):
    _, model = paper_example
    base = model.content_hash()
    assert base == model.content_hash()  # deterministic
    same = TagTopicModel(model.tag_topic_matrix.copy(), tags=model.tags)
    assert same.content_hash() == base
    other_matrix = model.tag_topic_matrix.copy()
    other_matrix[0, 0] += 0.01
    assert TagTopicModel(other_matrix, tags=model.tags).content_hash() != base
    renamed = TagTopicModel(model.tag_topic_matrix.copy(), tags=["a", "b", "c", "d"])
    assert renamed.content_hash() != base
    reprior = TagTopicModel(model.tag_topic_matrix.copy(), topic_prior=[0.5, 0.3, 0.2], tags=model.tags)
    assert reprior.content_hash() != base
