"""Tests for repro.utils.heap."""

import numpy as np

from repro.utils.heap import BatchedEventQueue, LazyEdgeHeap, MaxHeap, MinHeap, concat_ranges
from repro.utils.rng import RandomSource


def make_queue(out_indptr, out_targets, world_probabilities, seed=1):
    """A queue over explicit CSR arrays with edge ids 0..E-1 in slot order."""
    out_indptr = np.asarray(out_indptr, dtype=np.int64)
    out_targets = np.asarray(out_targets, dtype=np.int64)
    edge_ids = np.arange(len(out_targets), dtype=np.int64)
    return BatchedEventQueue(
        out_indptr,
        out_targets,
        edge_ids,
        np.asarray(world_probabilities, dtype=float),
        RandomSource(seed),
    )


def test_min_heap_orders_by_priority():
    heap = MinHeap()
    heap.push(3.0, "c")
    heap.push(1.0, "a")
    heap.push(2.0, "b")
    assert heap.pop() == (1.0, "a")
    assert heap.pop() == (2.0, "b")
    assert heap.pop() == (3.0, "c")


def test_min_heap_handles_equal_priorities_with_uncomparable_items():
    heap = MinHeap()
    heap.push(1.0, {"x": 1})
    heap.push(1.0, {"y": 2})
    first_priority, _ = heap.pop()
    second_priority, _ = heap.pop()
    assert first_priority == second_priority == 1.0


def test_min_heap_peek_does_not_remove():
    heap = MinHeap()
    heap.push(5.0, "x")
    assert heap.peek() == (5.0, "x")
    assert len(heap) == 1


def test_max_heap_orders_descending():
    heap = MaxHeap()
    for value in (1.0, 5.0, 3.0):
        heap.push(value, value)
    assert heap.pop()[0] == 5.0
    assert heap.peek()[0] == 3.0
    assert len(heap) == 2


def test_min_heap_iteration_yields_priority_order_without_mutation():
    heap = MinHeap()
    for priority, item in ((4.0, "d"), (1.0, "a"), (3.0, "c"), (2.0, "b")):
        heap.push(priority, item)
    # Iteration is sorted by priority, not the internal heapq array layout.
    assert list(heap) == [(1.0, "a"), (2.0, "b"), (3.0, "c"), (4.0, "d")]
    # Iterating twice gives the same answer: the heap itself is untouched.
    assert list(heap) == [(1.0, "a"), (2.0, "b"), (3.0, "c"), (4.0, "d")]
    assert len(heap) == 4
    assert heap.pop() == (1.0, "a")


def test_min_heap_iteration_ties_resolve_by_insertion_without_comparing_items():
    heap = MinHeap()
    first, second = {"x": 1}, {"y": 2}  # dicts are not orderable
    heap.push(1.0, first)
    heap.push(1.0, second)
    assert [item for _, item in heap] == [first, second]


def test_max_heap_iteration_yields_descending_priority():
    heap = MaxHeap()
    for priority in (1.0, 5.0, 3.0):
        heap.push(priority, priority)
    assert [priority for priority, _ in heap] == [5.0, 3.0, 1.0]
    assert len(heap) == 3


def test_lazy_edge_heap_drops_zero_probability_edges():
    rng = RandomSource(1)
    heap = LazyEdgeHeap([1, 2, 3], [0.5, 0.0, 0.3], rng.geometric)
    assert heap.pending() == 2


def test_lazy_edge_heap_probability_one_fires_every_visit():
    rng = RandomSource(1)
    heap = LazyEdgeHeap([7], [1.0], rng.geometric)
    for _ in range(5):
        assert heap.visit() == [7]


def test_lazy_edge_heap_fire_frequency_matches_probability():
    rng = RandomSource(3)
    probability = 0.25
    heap = LazyEdgeHeap([0], [probability], rng.geometric)
    visits = 20000
    fires = sum(len(heap.visit()) for _ in range(visits))
    assert abs(fires / visits - probability) < 0.02


def test_lazy_edge_heap_next_fire_none_when_empty():
    rng = RandomSource(1)
    heap = LazyEdgeHeap([], [], rng.geometric)
    assert heap.next_fire() is None
    assert heap.visit() == []


def test_lazy_edge_heap_multiple_edges_independent_rates():
    rng = RandomSource(11)
    heap = LazyEdgeHeap([0, 1], [0.5, 0.1], rng.geometric)
    counts = {0: 0, 1: 0}
    for _ in range(10000):
        for neighbor in heap.visit():
            counts[neighbor] += 1
    assert abs(counts[0] / 10000 - 0.5) < 0.03
    assert abs(counts[1] / 10000 - 0.1) < 0.02


# --------------------------------------------------------- BatchedEventQueue


def test_concat_ranges_matches_python_ranges():
    starts = np.array([5, 0, 9], dtype=np.int64)
    counts = np.array([2, 0, 3], dtype=np.int64)
    expected = [5, 6, 9, 10, 11]
    assert concat_ranges(starts, counts).tolist() == expected
    assert concat_ranges(np.empty(0, np.int64), np.empty(0, np.int64)).tolist() == []


def test_batched_queue_drops_zero_probability_edges():
    # Vertex 0 has three out-edges; the middle one has probability zero.
    queue = make_queue([0, 3, 3, 3, 3], [1, 2, 3], [[0.5, 0.0, 0.3]])
    queue.advance(np.zeros(1, np.int64), np.zeros(1, np.int64), np.zeros(1, np.int64))
    assert queue.pending(0, 0) == 2
    assert int(queue.scheduled_events[0]) == 2
    fires = queue.next_fires(0, 0)
    assert np.all(fires >= 1)


def test_batched_queue_probability_one_fires_for_every_instance():
    queue = make_queue([0, 1, 1], [1], [[1.0]])
    for round_index in range(3):
        instances = np.arange(4, dtype=np.int64) + 10 * round_index
        fired_instances, fired_targets = queue.advance(
            np.zeros(4, np.int64), instances, np.zeros(4, np.int64)
        )
        # Every instance's visit fires the edge, attributed in ascending order.
        assert fired_instances.tolist() == sorted(instances.tolist())
        assert fired_targets.tolist() == [1, 1, 1, 1]
    assert queue.visit_count(0, 0) == 12
    assert int(queue.fired_events[0]) == 12
    assert queue.edge_visits() == 1 + 12  # one scheduled event + twelve fires


def test_batched_queue_worlds_are_isolated():
    # World 0 never fires, world 1 always fires.
    queue = make_queue([0, 1, 1], [1], [[0.0], [1.0]])
    worlds = np.array([0, 0, 1, 1], dtype=np.int64)
    instances = np.array([0, 1, 0, 1], dtype=np.int64)
    vertices = np.zeros(4, dtype=np.int64)
    fired_instances, fired_targets = queue.advance(worlds, instances, vertices)
    assert fired_instances.tolist() == [0, 1]
    assert fired_targets.tolist() == [1, 1]
    assert queue.pending(0, 0) == 0  # zero-probability edge never scheduled
    assert queue.pending(1, 0) == 1
    assert queue.edge_visits(0) == 0
    assert queue.edge_visits(1) == 1 + 2
    assert queue.visit_count(0, 0) == 2 and queue.visit_count(1, 0) == 2


def test_batched_queue_fire_rate_matches_probability():
    probability = 0.25
    queue = make_queue([0, 1, 1], [1], [[probability]], seed=3)
    visits = 20000
    fires = 0
    chunk = 50
    for round_index in range(visits // chunk):
        fired, _ = queue.advance(
            np.zeros(chunk, np.int64),
            np.arange(chunk, dtype=np.int64),
            np.zeros(chunk, np.int64),
        )
        fires += fired.size
    assert abs(fires / visits - probability) < 0.02


def test_batched_queue_next_fires_stay_ahead_of_visits():
    queue = make_queue([0, 2, 2, 2], [1, 2], [[0.4, 0.7]], seed=9)
    for _ in range(20):
        queue.advance(np.zeros(3, np.int64), np.arange(3, dtype=np.int64), np.zeros(3, np.int64))
        # After a round every scheduled fire lies strictly beyond the visits
        # consumed so far (fires inside the window were resolved and re-drawn).
        assert np.all(queue.next_fires(0, 0) > queue.visit_count(0, 0))


def test_batched_queue_is_deterministic_per_seed():
    outcomes = []
    for _ in range(2):
        queue = make_queue([0, 2, 2, 2], [1, 2], [[0.3, 0.6]], seed=17)
        trace = []
        for _ in range(5):
            fired_instances, fired_targets = queue.advance(
                np.zeros(6, np.int64), np.arange(6, dtype=np.int64), np.zeros(6, np.int64)
            )
            trace.append((fired_instances.tolist(), fired_targets.tolist()))
        outcomes.append(trace)
    assert outcomes[0] == outcomes[1]


def test_batched_queue_empty_round_is_a_noop():
    queue = make_queue([0, 1, 1], [1], [[0.5]])
    fired_instances, fired_targets = queue.advance(
        np.empty(0, np.int64), np.empty(0, np.int64), np.empty(0, np.int64)
    )
    assert fired_instances.size == 0 and fired_targets.size == 0
    assert queue.visit_count(0, 0) == 0
    assert queue.pending(0, 0) == 0  # untouched vertices are never scheduled
