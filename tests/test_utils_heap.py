"""Tests for repro.utils.heap."""


from repro.utils.heap import LazyEdgeHeap, MaxHeap, MinHeap
from repro.utils.rng import RandomSource


def test_min_heap_orders_by_priority():
    heap = MinHeap()
    heap.push(3.0, "c")
    heap.push(1.0, "a")
    heap.push(2.0, "b")
    assert heap.pop() == (1.0, "a")
    assert heap.pop() == (2.0, "b")
    assert heap.pop() == (3.0, "c")


def test_min_heap_handles_equal_priorities_with_uncomparable_items():
    heap = MinHeap()
    heap.push(1.0, {"x": 1})
    heap.push(1.0, {"y": 2})
    first_priority, _ = heap.pop()
    second_priority, _ = heap.pop()
    assert first_priority == second_priority == 1.0


def test_min_heap_peek_does_not_remove():
    heap = MinHeap()
    heap.push(5.0, "x")
    assert heap.peek() == (5.0, "x")
    assert len(heap) == 1


def test_max_heap_orders_descending():
    heap = MaxHeap()
    for value in (1.0, 5.0, 3.0):
        heap.push(value, value)
    assert heap.pop()[0] == 5.0
    assert heap.peek()[0] == 3.0
    assert len(heap) == 2


def test_lazy_edge_heap_drops_zero_probability_edges():
    rng = RandomSource(1)
    heap = LazyEdgeHeap([1, 2, 3], [0.5, 0.0, 0.3], rng.geometric)
    assert heap.pending() == 2


def test_lazy_edge_heap_probability_one_fires_every_visit():
    rng = RandomSource(1)
    heap = LazyEdgeHeap([7], [1.0], rng.geometric)
    for _ in range(5):
        assert heap.visit() == [7]


def test_lazy_edge_heap_fire_frequency_matches_probability():
    rng = RandomSource(3)
    probability = 0.25
    heap = LazyEdgeHeap([0], [probability], rng.geometric)
    visits = 20000
    fires = sum(len(heap.visit()) for _ in range(visits))
    assert abs(fires / visits - probability) < 0.02


def test_lazy_edge_heap_next_fire_none_when_empty():
    rng = RandomSource(1)
    heap = LazyEdgeHeap([], [], rng.geometric)
    assert heap.next_fire() is None
    assert heap.visit() == []


def test_lazy_edge_heap_multiple_edges_independent_rates():
    rng = RandomSource(11)
    heap = LazyEdgeHeap([0, 1], [0.5, 0.1], rng.geometric)
    counts = {0: 0, 1: 0}
    for _ in range(10000):
        for neighbor in heap.visit():
            counts[neighbor] += 1
    assert abs(counts[0] / 10000 - 0.5) < 0.03
    assert abs(counts[1] / 10000 - 0.1) < 0.02
