"""Ablation tests for the design choices called out in DESIGN.md.

These are small, deterministic studies rather than benchmarks: they check that
each optimization actually contributes what the paper claims it contributes,
on instances where the effect is measurable.

* edge-cut choice: picking the better of the source-side / target-side cut
  never prunes less than either fixed choice alone;
* best-effort bound method: the sampled bound evaluates no more tag sets than
  the loose reachability bound;
* lazy sampling vs MC: identical estimates, far fewer edge probes;
* delayed materialization: same answers as the materialized index at a tiny
  fraction of the memory.
"""

import numpy as np
import pytest

from repro.core.best_effort import BestEffortExplorer
from repro.core.query import PitexQuery
from repro.graph.generators import power_law_topic_graph, star_fan_out_graph
from repro.index.pruning import PrunedIndexEstimator, build_edge_cut, choose_edge_cut
from repro.index.rr_index import RRGraphIndex
from repro.sampling.base import SampleBudget
from repro.sampling.lazy import LazyPropagationEstimator
from repro.sampling.monte_carlo import MonteCarloEstimator
from repro.topics.model import TagTopicModel


@pytest.fixture(scope="module")
def ablation_instance():
    graph = power_law_topic_graph(150, 4.0, 3, base_probability=0.3, seed=41)
    matrix = np.array(
        [
            [0.9, 0.0, 0.0],
            [0.7, 0.2, 0.0],
            [0.0, 0.9, 0.0],
            [0.0, 0.6, 0.3],
            [0.0, 0.0, 0.9],
            [0.2, 0.0, 0.7],
        ]
    )
    model = TagTopicModel(matrix)
    index = RRGraphIndex(graph, num_samples=800, seed=9).build()
    return graph, model, index


def test_choose_edge_cut_is_at_least_as_good_as_either_side(ablation_instance):
    graph, _, index = ablation_instance
    maxima = graph.max_edge_probabilities()
    users = [v for v in graph.vertices() if graph.out_degree(v) > 0][:5]
    for user in users:
        for rr_position in index.graphs_containing(user)[:20]:
            rr_graph = index.rr_graphs[rr_position]
            source_cut = build_edge_cut(rr_graph, user, rr_position, "source")
            target_cut = build_edge_cut(rr_graph, user, rr_position, "target")
            chosen = choose_edge_cut(rr_graph, user, rr_position, maxima)
            best = max(
                source_cut.pruning_probability(maxima), target_cut.pruning_probability(maxima)
            )
            assert chosen.pruning_probability(maxima) == pytest.approx(best)


def test_pruned_index_estimates_equal_unpruned_for_many_tag_sets(ablation_instance):
    """The filter may only remove RR-Graphs that could never match."""
    graph, model, index = ablation_instance
    from repro.index.rr_index import IndexEstimator

    plain = IndexEstimator(graph, model, index)
    pruned = PrunedIndexEstimator(graph, model, index)
    user = max(graph.vertices(), key=graph.out_degree)
    for tag_set in [(0,), (1, 2), (3, 4), (0, 5), (2, 3, 4)]:
        probabilities = model.edge_probabilities(graph, tag_set)
        assert pruned.estimate_with_probabilities(user, probabilities).value == pytest.approx(
            plain.estimate_with_probabilities(user, probabilities).value
        )


def test_sampled_bound_evaluates_no_more_than_reach_bound(ablation_instance):
    graph, model, _ = ablation_instance
    user = max(graph.vertices(), key=graph.out_degree)
    budget = SampleBudget(num_tags=model.num_tags, k=2, max_samples=200, min_samples=60)
    results = {}
    for bound_method in ("reach", "sample"):
        estimator = LazyPropagationEstimator(graph, model, budget, seed=7, early_stopping=False)
        explorer = BestEffortExplorer(model, estimator, bound_method=bound_method)
        results[bound_method] = explorer.explore(PitexQuery(user=user, k=2, epsilon=0.7))
    # The sampled bound is tighter, so it should not evaluate more tag sets
    # (allow a small slack for sampling noise in the incumbent).
    assert results["sample"].evaluated_tag_sets <= results["reach"].evaluated_tag_sets + 2
    # Both return tag sets of comparable quality.
    assert results["sample"].spread == pytest.approx(results["reach"].spread, rel=0.5)


def test_lazy_matches_mc_value_with_fraction_of_probes():
    graph = star_fan_out_graph(200, num_topics=2)
    model = TagTopicModel(np.ones((3, 2)))
    budget = SampleBudget(num_tags=3, k=1, max_samples=500, min_samples=500)
    probabilities = graph.max_edge_probabilities()
    mc = MonteCarloEstimator(graph, model, budget, seed=3).estimate_with_probabilities(
        0, probabilities, num_samples=500
    )
    lazy = LazyPropagationEstimator(
        graph, model, budget, seed=3, early_stopping=False
    ).estimate_with_probabilities(0, probabilities, num_samples=500)
    assert lazy.value == pytest.approx(mc.value, rel=0.3)
    assert lazy.edges_visited < mc.edges_visited / 20


def test_delaymat_memory_vs_materialized_index(ablation_instance):
    graph, _, index = ablation_instance
    from repro.index.delayed import DelayedMaterializationIndex

    delayed = DelayedMaterializationIndex(graph, num_samples=index.num_samples, seed=9).build()
    assert delayed.memory_bytes() < index.memory_bytes() / 20
