"""Statistical-equivalence and determinism tests for the batched lazy kernel.

Three layers of guarantees, mirroring :mod:`tests.test_csr_kernels`:

* **Statistical equivalence**: the batched event-queue kernel draws from the
  same process (Lemma 6) as the sequential csr/dict kernels and as plain
  Bernoulli probing, so spread estimates agree across kernels and with the
  exact oracle on tiny graphs -- within the ``(1 +- eps)`` band and far
  tighter in practice.  A hypothesis property test checks that per-edge fire
  marginals stay geometric/Bernoulli under batched rescheduling.
* **Seed determinism**: the batched kernel is pure array code over a seeded
  generator; the same seed reproduces bitwise-identical estimates across runs
  and across engines, including after adopting a prebuilt index via
  ``attach_*_index`` (index attachment must not perturb the sampling streams).
* **Edge-visit accounting**: the batched kernel books edge visits exactly like
  the sequential kernels (schedule size at creation + one per fire), so
  :class:`~repro.sampling.instrumentation.EstimatorInstrumentation` counters
  agree across lazy kernels and exhibit the Lemma 5 vs Lemma 7 gap against
  Monte-Carlo probing (the Fig. 13 shape).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import PitexEngine
from repro.graph.generators import random_topic_graph
from repro.index.rr_index import RRGraphIndex
from repro.propagation.exact import exact_influence_spread
from repro.sampling.base import SampleBudget
from repro.sampling.instrumentation import EstimatorInstrumentation
from repro.sampling.lazy import LazyPropagationEstimator
from repro.sampling.monte_carlo import MonteCarloEstimator
from repro.utils.heap import BatchedEventQueue
from repro.utils.rng import RandomSource


def single_edge_queue(probability: float, seed: int) -> BatchedEventQueue:
    """A queue over the 2-vertex graph ``0 -> 1`` with one world."""
    out_indptr = np.array([0, 1, 1], dtype=np.int64)
    out_targets = np.array([1], dtype=np.int64)
    out_edge_ids = np.array([0], dtype=np.int64)
    probabilities = np.array([[probability]], dtype=float)
    return BatchedEventQueue(
        out_indptr, out_targets, out_edge_ids, probabilities, RandomSource(seed)
    )


# ------------------------------------------------- statistical equivalence


def test_batched_kernel_statistically_agrees_with_reference_kernels(
    small_graph, small_model, tiny_budget
):
    probabilities = small_graph.max_edge_probabilities()
    samples = 3000
    values = {}
    for kernel, seed in (("batched", 14), ("csr", 15), ("dict", 16)):
        estimator = LazyPropagationEstimator(
            small_graph, small_model, tiny_budget, seed=seed, early_stopping=False, kernel=kernel
        )
        values[kernel] = estimator.estimate_with_probabilities(0, probabilities, samples).value
    assert values["batched"] == pytest.approx(values["dict"], rel=0.10, abs=0.25)
    assert values["batched"] == pytest.approx(values["csr"], rel=0.10, abs=0.25)


def test_batched_kernel_matches_exact_oracle_within_eps_band():
    budget = SampleBudget(epsilon=0.7, delta=100.0, k=2, num_tags=6, max_samples=4000)
    for seed in (100, 101, 102):
        graph = random_topic_graph(
            8, 2, edge_probability=0.2, base_probability=0.5, seed=seed
        )
        probabilities = graph.max_edge_probabilities()
        if graph.num_edges == 0 or graph.num_edges > 20:
            continue
        exact = exact_influence_spread(graph, 0, probabilities)
        estimator = LazyPropagationEstimator(
            graph, None, budget, seed=7, early_stopping=False, kernel="batched"
        )
        estimate = estimator.estimate_with_probabilities(0, probabilities, 4000)
        # The theoretical guarantee band ...
        assert exact * (1 - budget.epsilon) <= estimate.value <= exact * (1 + budget.epsilon)
        # ... and the much tighter practical agreement at 4000 samples.
        assert estimate.value == pytest.approx(exact, rel=0.15, abs=0.2)


def test_batched_kernel_on_deterministic_line_is_exact(deterministic_line, small_model):
    budget = SampleBudget(num_tags=6, max_samples=50, min_samples=10)
    estimator = LazyPropagationEstimator(
        deterministic_line, small_model, budget, seed=3, early_stopping=False, kernel="batched"
    )
    estimate = estimator.estimate_with_probabilities(
        0, np.ones(deterministic_line.num_edges), 20
    )
    assert estimate.value == pytest.approx(5.0)
    assert estimate.kernel == "batched"
    assert estimate.method == "lazy-batched"


def test_estimate_many_matches_independent_estimates(small_graph, small_model, tiny_budget):
    probabilities = small_graph.max_edge_probabilities()
    rows = np.stack([probabilities, probabilities * 0.5, np.zeros_like(probabilities)])
    batched = LazyPropagationEstimator(
        small_graph, small_model, tiny_budget, seed=8, early_stopping=False, kernel="batched"
    )
    many = batched.estimate_many_with_probabilities(0, rows, 3000)
    assert len(many) == 3
    # The all-zero world is answered without sampling.
    assert many[2].value == 1.0 and many[2].num_samples == 0 and many[2].edges_visited == 0
    for world, row in ((0, rows[0]), (1, rows[1])):
        single = LazyPropagationEstimator(
            small_graph, small_model, tiny_budget, seed=20 + world, early_stopping=False,
            kernel="batched",
        ).estimate_with_probabilities(0, row, 3000)
        assert many[world].value == pytest.approx(single.value, rel=0.10, abs=0.25)
        assert many[world].reachable_size == single.reachable_size


@given(
    probability=st.floats(min_value=0.05, max_value=1.0),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    instances_per_round=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=30, deadline=None)
def test_per_edge_fire_marginals_stay_geometric_under_rescheduling(
    probability, seed, instances_per_round
):
    """Every visit of the source is a Bernoulli(p) trial for the edge.

    The geometric schedule (initial draw + batched rescheduling, including the
    within-window Bernoulli expansion) realizes a renewal process whose
    per-visit fire marginal is exactly ``p``; the empirical fire rate over many
    visits must match within a 6-sigma binomial bound, and the gaps between
    consecutive fire visit-indices (the re-drawn geometric variables) must
    average ``1/p`` within a 6-sigma bound of the geometric distribution.
    """
    queue = single_edge_queue(probability, seed)
    rounds = max(1, 3000 // instances_per_round)
    fire_times = []
    for round_index in range(rounds):
        instances = np.arange(instances_per_round, dtype=np.int64)
        fired_instances, fired_targets = queue.advance(
            np.zeros(instances_per_round, dtype=np.int64),
            instances,
            np.zeros(instances_per_round, dtype=np.int64),
        )
        assert np.all(fired_targets == 1) if fired_targets.size else True
        # Instance j of this round holds visit round*m + j + 1.
        fire_times.extend(
            (round_index * instances_per_round + fired_instances + 1).tolist()
        )
    visits = rounds * instances_per_round
    assert queue.visit_count(0, 0) == visits
    fires = len(fire_times)
    sigma = np.sqrt(probability * (1.0 - probability) / visits)
    assert abs(fires / visits - probability) <= 6.0 * sigma + 1e-9
    fire_times = np.asarray(sorted(fire_times))
    # Fire visit-indices are strictly increasing: one fire per visit at most.
    assert np.all(np.diff(fire_times) >= 1)
    if fires >= 30:
        gaps = np.diff(fire_times)
        gap_sigma = np.sqrt((1.0 - probability) / probability**2 / len(gaps))
        assert abs(gaps.mean() - 1.0 / probability) <= 6.0 * gap_sigma + 1e-9


# --------------------------------------------------------- seed determinism


def _estimate_tuple(estimate):
    return (
        estimate.value,
        estimate.num_samples,
        estimate.edges_visited,
        estimate.reachable_size,
        estimate.method,
        estimate.kernel,
    )


def test_same_seed_is_bitwise_identical_across_runs(small_graph, small_model, tiny_budget):
    probabilities = small_graph.max_edge_probabilities()
    outcomes = []
    for _ in range(2):
        estimator = LazyPropagationEstimator(
            small_graph, small_model, tiny_budget, seed=42, kernel="batched"
        )
        outcomes.append(
            _estimate_tuple(estimator.estimate_with_probabilities(0, probabilities, 500))
        )
    assert outcomes[0] == outcomes[1]


def test_estimate_many_is_deterministic_per_seed(small_graph, small_model, tiny_budget):
    probabilities = small_graph.max_edge_probabilities()
    rows = np.stack([probabilities, probabilities * 0.7])
    outcomes = []
    for _ in range(2):
        estimator = LazyPropagationEstimator(
            small_graph, small_model, tiny_budget, seed=31, kernel="batched"
        )
        outcomes.append(
            [
                _estimate_tuple(e)
                for e in estimator.estimate_many_with_probabilities(0, rows, 400)
            ]
        )
    assert outcomes[0] == outcomes[1]


def _fresh_engine(seed=5):
    graph = random_topic_graph(14, 3, edge_probability=0.25, base_probability=0.5, seed=77)
    rng = np.random.default_rng(9)
    matrix = rng.uniform(0.0, 1.0, size=(6, 3))
    matrix[matrix < 0.4] = 0.0
    matrix[0, 0] = 0.7
    from repro.topics.model import TagTopicModel

    model = TagTopicModel(matrix)
    return PitexEngine(
        graph, model, max_samples=200, index_samples=40, seed=seed, kernel="batched"
    )


def test_engine_lazy_batched_estimates_are_seed_deterministic():
    estimates = [
        _fresh_engine().estimate_influence(0, [0, 1], method="lazy-batched") for _ in range(2)
    ]
    assert _estimate_tuple(estimates[0]) == _estimate_tuple(estimates[1])


def test_attach_index_does_not_perturb_batched_sampling_stream():
    """Adopting a prebuilt index must not shift the lazy-batched seed path.

    Mirrors the ``attach_*_index`` warm-start of the serving layer: an engine
    that attaches a store-loaded index answers batched lazy estimations
    bitwise-identically to a cold engine with the same seed.
    """
    cold = _fresh_engine()
    warm = _fresh_engine()
    index = RRGraphIndex(warm.graph, num_samples=40, seed=9).build()
    warm.attach_rr_index(index)
    for user in (0, 3):
        cold_estimate = cold.estimate_influence(user, [0, 1], method="lazy-batched")
        warm_estimate = warm.estimate_influence(user, [0, 1], method="lazy-batched")
        assert _estimate_tuple(cold_estimate) == _estimate_tuple(warm_estimate)


def test_engine_query_lazy_batched_is_seed_deterministic():
    results = [
        _fresh_engine().query(user=0, k=2, method="lazy-batched") for _ in range(2)
    ]
    assert results[0].tag_ids == results[1].tag_ids
    assert results[0].spread == results[1].spread
    assert results[0].edges_visited == results[1].edges_visited
    assert results[0].method == "best-effort:lazy-batched"


# ----------------------------------------------------- edge-visit accounting


def test_instrumentation_counters_agree_between_batched_and_dict_lazy(
    small_graph, small_model, tiny_budget
):
    """Fig. 13 accounting: both lazy kernels book schedule + fire visits.

    The counts are random variables on independent streams, so they agree in
    expectation, not bitwise; the Lemma 5 vs Lemma 7 inequality against MC
    probing must hold strictly for both (this is the shape ``bench_fig13``
    gates on the smoke datasets).
    """
    probabilities = small_graph.max_edge_probabilities()
    samples = 2000
    instrumentation = EstimatorInstrumentation()
    users = [0, 2, 4]
    estimators = {
        "mc": MonteCarloEstimator(small_graph, small_model, tiny_budget, seed=5, kernel="csr"),
        "lazy": LazyPropagationEstimator(
            small_graph, small_model, tiny_budget, seed=6, early_stopping=False, kernel="dict"
        ),
        "lazy-batched": LazyPropagationEstimator(
            small_graph, small_model, tiny_budget, seed=7, early_stopping=False, kernel="batched"
        ),
    }
    for estimator in estimators.values():
        for user in users:
            instrumentation.record(
                estimator.estimate_with_probabilities(user, probabilities, samples)
            )
    assert instrumentation.query_counts == {"mc": 3, "lazy": 3, "lazy-batched": 3}
    batched_mean = instrumentation.mean_edge_visits("lazy-batched")
    dict_mean = instrumentation.mean_edge_visits("lazy")
    assert batched_mean == pytest.approx(dict_mean, rel=0.15)
    # Lemma 5 vs Lemma 7: lazy propagation (any kernel) touches strictly fewer
    # edges than Bernoulli-probing every positive out-edge per activation.
    mc_mean = instrumentation.mean_edge_visits("mc")
    assert batched_mean < mc_mean
    assert dict_mean < mc_mean
    assert instrumentation.mean_samples("mc") == samples
    rows = {row[0]: row for row in instrumentation.rows()}
    assert set(rows) == {"mc", "lazy", "lazy-batched"}


def test_estimate_stamps_kernel_and_accumulates_totals(small_graph, small_model, tiny_budget):
    estimator = LazyPropagationEstimator(
        small_graph, small_model, tiny_budget, seed=11, kernel="batched"
    )
    estimate = estimator.estimate(0, [0, 1])
    assert estimate.kernel == "batched"
    assert estimator.total_edges_visited == estimate.edges_visited
    assert estimator.total_samples == estimate.num_samples
    many = estimator.estimate_many(0, [[0, 1], [2]])
    assert estimator.total_edges_visited == estimate.edges_visited + sum(
        e.edges_visited for e in many
    )


def test_early_stopping_tracks_sequential_stopping_point(small_graph, small_model):
    """Rate-adapted chunks stop close to where the sequential kernel stops."""
    budget = SampleBudget(epsilon=0.7, delta=100.0, k=2, num_tags=6, max_samples=2000)
    probabilities = small_graph.max_edge_probabilities()
    sequential = LazyPropagationEstimator(
        small_graph, small_model, budget, seed=3, early_stopping=True, kernel="csr"
    ).estimate_with_probabilities(0, probabilities)
    batched = LazyPropagationEstimator(
        small_graph, small_model, budget, seed=4, early_stopping=True, kernel="batched"
    ).estimate_with_probabilities(0, probabilities)
    assert batched.value == pytest.approx(sequential.value, rel=0.15, abs=0.3)
    # The batched run does not blow past the sequential stopping point.
    assert batched.num_samples <= max(64, int(sequential.num_samples * 1.6) + 8)


# -------------------------------------------------------- best-effort batching


def test_best_effort_queries_agree_across_kernels():
    graph = random_topic_graph(16, 3, edge_probability=0.25, base_probability=0.5, seed=55)
    rng = np.random.default_rng(3)
    matrix = rng.uniform(0.0, 1.0, size=(8, 3))
    matrix[matrix < 0.45] = 0.0
    matrix[0, 0] = 0.8
    from repro.topics.model import TagTopicModel

    model = TagTopicModel(matrix)
    spreads = {}
    for kernel in ("batched", "csr"):
        engine = PitexEngine(
            graph, model, max_samples=400, index_samples=40, seed=13, kernel=kernel
        )
        result = engine.query(user=0, k=2, method="lazy")
        assert len(result.tag_ids) == 2
        assert result.evaluated_tag_sets + result.pruned_tag_sets > 0
        spreads[kernel] = result.spread
    # Different kernels pick possibly different (tied) tag sets, but the
    # reported spreads stay within the accuracy band of each other.
    assert spreads["batched"] == pytest.approx(spreads["csr"], rel=0.35, abs=0.6)


def test_running_estimates_batched_matches_sequential_convergence(
    small_graph, small_model, tiny_budget
):
    probabilities = small_graph.max_edge_probabilities()
    checkpoints = [50, 100, 400, 1600]
    series = {}
    for kernel, seed in (("batched", 5), ("csr", 6)):
        estimator = LazyPropagationEstimator(
            small_graph, small_model, tiny_budget, seed=seed, early_stopping=False, kernel=kernel
        )
        series[kernel] = estimator.running_estimates(0, probabilities, checkpoints)
    assert len(series["batched"]) == len(checkpoints)
    assert all(value >= 1.0 for value in series["batched"])
    # Both kernels converge to the same quantity (Fig. 6 shape).
    assert series["batched"][-1] == pytest.approx(series["csr"][-1], rel=0.15, abs=0.3)


def test_sample_live_subgraph_consistent_on_all_kernels(small_graph, small_model, tiny_budget):
    probabilities = small_graph.max_edge_probabilities()
    for kernel in ("batched", "csr", "dict"):
        estimator = LazyPropagationEstimator(
            small_graph, small_model, tiny_budget, seed=10, kernel=kernel
        )
        visited, live_edges = estimator.sample_live_subgraph(0, probabilities)
        assert 0 in visited
        for edge_id in live_edges:
            source, target = small_graph.edge_endpoints(edge_id)
            assert source in visited and target in visited
            assert probabilities[edge_id] > 0.0


def test_unknown_kernel_is_rejected(small_graph, small_model, tiny_budget):
    from repro.exceptions import InvalidParameterError

    with pytest.raises(InvalidParameterError):
        LazyPropagationEstimator(
            small_graph, small_model, tiny_budget, seed=1, kernel="sparse"
        )
    with pytest.raises(InvalidParameterError):
        PitexEngine(small_graph, small_model, kernel="sparse")


def test_instrumentation_query_results_and_dict_round_trip():
    from repro.sampling.instrumentation import ConvergenceTrace

    instrumentation = EstimatorInstrumentation()
    instrumentation.record_query_result("best-effort:lazy-batched", edges_visited=120)
    instrumentation.record_query_result("best-effort:lazy-batched", edges_visited=80)
    instrumentation.record_query_result("", edges_visited=5)  # falls back to "unknown"
    as_dict = instrumentation.as_dict()
    assert as_dict["best-effort:lazy-batched"]["edge_visits"] == 200
    assert as_dict["best-effort:lazy-batched"]["mean_edge_visits"] == 100.0
    assert as_dict["best-effort:lazy-batched"]["queries"] == 2
    assert as_dict["unknown"]["edge_visits"] == 5
    assert instrumentation.mean_edge_visits("missing") == 0.0
    assert instrumentation.mean_samples("missing") == 0.0

    trace = ConvergenceTrace(method="lazy-batched")
    assert trace.final_estimate() == 0.0 and trace.relative_spread() == 0.0
    trace.add(10, 4.0)
    trace.add(20, 5.0)
    assert trace.final_estimate() == 5.0
    assert trace.relative_spread() == pytest.approx(0.2)
    assert trace.rows() == [("lazy-batched", 10, 4.0), ("lazy-batched", 20, 5.0)]


def test_lazy_batched_method_works_under_enumeration():
    graph = random_topic_graph(10, 2, edge_probability=0.3, base_probability=0.5, seed=21)
    rng = np.random.default_rng(8)
    matrix = rng.uniform(0.0, 1.0, size=(4, 2))
    matrix[matrix < 0.3] = 0.0
    matrix[0, 0] = 0.6
    from repro.topics.model import TagTopicModel

    model = TagTopicModel(matrix)
    engine = PitexEngine(graph, model, max_samples=120, index_samples=30, seed=2)
    result = engine.query(user=0, k=2, method="lazy-batched", exploration="enumeration")
    assert len(result.tag_ids) == 2
    assert result.method == "enumeration:lazy-batched"
