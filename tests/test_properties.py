"""Property-based tests (hypothesis) on the core invariants.

These cover the probabilistic machinery the whole system rests on:

* the Eqn. 1 posterior is always a distribution (or identically zero),
* adding tags never enlarges the topic support,
* edge probabilities always stay inside [0, 1] and below ``p(e)``,
* the Lemma 8 upper bound dominates every completion,
* geometric-schedule sampling (Lemma 6) is statistically consistent with
  Bernoulli trials,
* the exact influence oracle is monotone in edge probabilities and bounded by
  the reachable-set size.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph.digraph import TopicSocialGraph
from repro.propagation.exact import exact_influence_spread
from repro.topics.model import TagTopicModel
from repro.utils.rng import RandomSource
from repro.utils.stats import RunningMean

# --------------------------------------------------------------------- helpers

MAX_TAGS = 5
MAX_TOPICS = 4


@st.composite
def tag_topic_matrices(draw):
    """Random sparse-ish tag-topic matrices with at least one positive entry per tag."""
    num_tags = draw(st.integers(min_value=2, max_value=MAX_TAGS))
    num_topics = draw(st.integers(min_value=1, max_value=MAX_TOPICS))
    values = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=num_tags * num_topics,
            max_size=num_tags * num_topics,
        )
    )
    matrix = np.array(values).reshape(num_tags, num_topics)
    # guarantee every tag has some support so the model is well formed
    for tag in range(num_tags):
        if matrix[tag].sum() == 0.0:
            matrix[tag, draw(st.integers(min_value=0, max_value=num_topics - 1))] = 0.5
    return matrix


@st.composite
def small_topic_graphs(draw):
    """Small random DAG-ish graphs with per-edge topic probabilities.

    Capped at 5 vertices so even a complete digraph has 20 edges, safely below
    the exact-influence oracle's 2^22 possible-world enumeration limit.
    """
    num_vertices = draw(st.integers(min_value=2, max_value=5))
    num_topics = draw(st.integers(min_value=1, max_value=MAX_TOPICS))
    graph = TopicSocialGraph(num_vertices, num_topics)
    for source in range(num_vertices):
        for target in range(num_vertices):
            if source == target:
                continue
            if draw(st.booleans()):
                probabilities = draw(
                    st.lists(
                        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
                        min_size=num_topics,
                        max_size=num_topics,
                    )
                )
                graph.add_edge(source, target, probabilities)
    return graph


# ------------------------------------------------------------------ posteriors


@given(matrix=tag_topic_matrices(), data=st.data())
@settings(max_examples=60, deadline=None)
def test_posterior_is_distribution_or_zero(matrix, data):
    model = TagTopicModel(matrix)
    size = data.draw(st.integers(min_value=1, max_value=model.num_tags))
    tags = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=model.num_tags - 1),
            min_size=size,
            max_size=size,
        )
    )
    posterior = model.topic_posterior(tags)
    assert np.all(posterior >= 0.0)
    total = posterior.sum()
    assert total == pytest.approx(1.0, abs=1e-9) or total == pytest.approx(0.0, abs=1e-12)


@given(matrix=tag_topic_matrices(), data=st.data())
@settings(max_examples=60, deadline=None)
def test_adding_tags_shrinks_support(matrix, data):
    model = TagTopicModel(matrix)
    base_size = data.draw(st.integers(min_value=1, max_value=model.num_tags))
    base = tuple(
        data.draw(
            st.lists(
                st.integers(min_value=0, max_value=model.num_tags - 1),
                min_size=base_size,
                max_size=base_size,
                unique=True,
            )
        )
    )
    extra = data.draw(st.integers(min_value=0, max_value=model.num_tags - 1))
    support_base = set(np.flatnonzero(model.posterior_support(base)))
    support_more = set(np.flatnonzero(model.posterior_support(base + (extra,))))
    assert support_more.issubset(support_base)


@given(graph=small_topic_graphs(), matrix=tag_topic_matrices(), data=st.data())
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_edge_probabilities_bounded(graph, matrix, data):
    if matrix.shape[1] != graph.num_topics:
        matrix = np.resize(matrix, (matrix.shape[0], graph.num_topics))
        matrix = np.clip(matrix, 0.0, 1.0)
    model = TagTopicModel(matrix)
    size = data.draw(st.integers(min_value=1, max_value=model.num_tags))
    tags = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=model.num_tags - 1),
            min_size=size,
            max_size=size,
        )
    )
    probabilities = model.edge_probabilities(graph, tags)
    assert np.all(probabilities >= -1e-12)
    assert np.all(probabilities <= 1.0 + 1e-12)
    assert np.all(probabilities <= graph.max_edge_probabilities() + 1e-9)


@given(graph=small_topic_graphs(), matrix=tag_topic_matrices(), data=st.data())
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_lemma8_bound_dominates_random_completions(graph, matrix, data):
    if matrix.shape[1] != graph.num_topics:
        matrix = np.resize(matrix, (matrix.shape[0], graph.num_topics))
        matrix = np.clip(matrix, 0.0, 1.0)
    model = TagTopicModel(matrix)
    k = data.draw(st.integers(min_value=1, max_value=min(3, model.num_tags)))
    partial_size = data.draw(st.integers(min_value=0, max_value=k))
    partial = tuple(
        data.draw(
            st.lists(
                st.integers(min_value=0, max_value=model.num_tags - 1),
                min_size=partial_size,
                max_size=partial_size,
                unique=True,
            )
        )
    )
    available = [t for t in range(model.num_tags) if t not in partial]
    need = k - len(partial)
    if need > len(available):
        return
    completion_extra = tuple(
        data.draw(
            st.lists(
                st.sampled_from(available) if available else st.nothing(),
                min_size=need,
                max_size=need,
                unique=True,
            )
        )
        if need > 0
        else []
    )
    completion = tuple(sorted(partial + completion_extra))
    bound = model.upper_bound_edge_probabilities(graph, partial, k)
    exact = model.edge_probabilities(graph, completion)
    assert np.all(bound >= exact - 1e-9)


# ------------------------------------------------------------ geometric schedule


@given(
    probability=st.floats(min_value=0.05, max_value=0.95),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=25, deadline=None)
def test_geometric_schedule_matches_bernoulli_rate(probability, seed):
    """Lemma 6: scheduled firing frequency equals the Bernoulli success rate."""
    from repro.utils.heap import LazyEdgeHeap

    rng = RandomSource(seed)
    heap = LazyEdgeHeap([0], [probability], rng.geometric)
    trials = 3000
    fires = sum(len(heap.visit()) for _ in range(trials))
    observed = fires / trials
    # three-sigma band of a binomial proportion
    sigma = (probability * (1 - probability) / trials) ** 0.5
    assert abs(observed - probability) < 5 * sigma + 1e-9


# ---------------------------------------------------------------- exact oracle


@given(graph=small_topic_graphs(), data=st.data())
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_exact_influence_bounds_and_monotonicity(graph, data):
    source = data.draw(st.integers(min_value=0, max_value=graph.num_vertices - 1))
    if graph.num_edges == 0:
        assert exact_influence_spread(graph, source, np.zeros(0)) == 1.0
        return
    probabilities = graph.max_edge_probabilities()
    spread = exact_influence_spread(graph, source, probabilities)
    assert 1.0 <= spread <= graph.num_vertices + 1e-9
    # Scaling all probabilities down can only reduce the spread.
    reduced = exact_influence_spread(graph, source, probabilities * 0.5)
    assert reduced <= spread + 1e-9


@given(
    values=st.lists(st.floats(min_value=-100, max_value=100), min_size=2, max_size=50)
)
@settings(max_examples=50, deadline=None)
def test_running_mean_matches_numpy(values):
    running = RunningMean()
    running.extend(values)
    assert running.mean == pytest.approx(float(np.mean(values)), abs=1e-9)
    assert running.variance == pytest.approx(float(np.var(values, ddof=1)), abs=1e-6)
