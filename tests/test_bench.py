"""Tests for the benchmark configuration, harness and reporting helpers.

The heavyweight experiment drivers themselves run under ``benchmarks/``; here
we check the plumbing (caching, aggregation, table formatting) and run the two
cheapest drivers end to end on a miniature configuration.
"""

import pytest

from repro.bench.config import BenchmarkConfig
from repro.bench.experiments import (
    EXPERIMENTS,
    experiment_table2,
    experiment_table3,
)
from repro.bench.harness import BenchmarkHarness
from repro.bench.reporting import ExperimentResult, format_results, format_table
from repro.exceptions import InvalidParameterError


@pytest.fixture(scope="module")
def mini_harness():
    config = BenchmarkConfig(
        datasets=("lastfm",),
        scales={"lastfm": 0.1},
        queries_per_group=1,
        k=2,
        max_samples=60,
        index_samples=120,
        seed=3,
    )
    return BenchmarkHarness(config)


def test_config_presets():
    smoke = BenchmarkConfig.preset("smoke")
    default = BenchmarkConfig.preset("default")
    full = BenchmarkConfig.preset("full")
    assert smoke.queries_per_group < default.queries_per_group < full.queries_per_group
    assert full.scales["twitter"] == 1.0
    with pytest.raises(InvalidParameterError):
        BenchmarkConfig.preset("huge")


def test_config_scale_and_overrides():
    config = BenchmarkConfig()
    assert config.scale_of("lastfm") == 0.35
    assert config.scale_of("unknown") == 1.0
    other = config.with_overrides(k=5)
    assert other.k == 5 and config.k == 2


def test_harness_caches_datasets_and_engines(mini_harness):
    first = mini_harness.dataset("lastfm")
    second = mini_harness.dataset("lastfm")
    assert first is second
    engine_a = mini_harness.engine("lastfm")
    engine_b = mini_harness.engine("lastfm")
    assert engine_a is engine_b
    # Different parameterizations are cached separately.
    other = mini_harness.dataset("lastfm", num_tags=20)
    assert other is not first
    assert other.model.num_tags == 20


def test_harness_query_users_and_batch(mini_harness):
    users = mini_harness.query_users("lastfm", "mid", 2)
    assert len(users) == 2
    batch = mini_harness.run_query_batch("lastfm", "lazy", users[:1], group="mid")
    assert batch.method == "lazy"
    assert batch.num_queries == 1
    assert batch.mean_seconds > 0.0
    assert batch.mean_spread >= 1.0


def test_harness_estimate_batch(mini_harness):
    users = mini_harness.query_users("lastfm", "mid", 1)
    seconds, value, edges = mini_harness.estimate_batch("lastfm", "lazy", users, (0, 1))
    assert seconds >= 0.0
    assert value >= 0.0
    assert edges >= 0.0


def test_experiment_registry_covers_all_tables_and_figures():
    expected = {
        "table2",
        "table3",
        "table4",
        "lazykernels",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "fig14",
    }
    assert set(EXPERIMENTS) == expected


def test_experiment_table2_rows(mini_harness):
    result = experiment_table2(mini_harness)
    assert result.columns[0] == "dataset"
    assert len(result.rows) == 1
    assert result.rows[0][0] == "lastfm"
    assert result.cell("num_vertices", dataset="lastfm") == mini_harness.dataset("lastfm").graph.num_vertices


def test_experiment_table3_shape(mini_harness):
    result = experiment_table3(mini_harness)
    indexes = result.column("index")
    assert indexes.count("rr-graphs") == 1
    assert indexes.count("delaymat") == 1
    rr_size = result.cell("size_mb", dataset="lastfm", index="rr-graphs")
    delay_size = result.cell("size_mb", dataset="lastfm", index="delaymat")
    assert delay_size < rr_size


def test_experiment_result_helpers():
    result = ExperimentResult(
        experiment="x", title="demo", columns=("a", "b")
    )
    result.add_row(1, 2.0)
    result.add_row(1, 4.0)
    with pytest.raises(ValueError):
        result.add_row(1)
    assert result.column("b") == [2.0, 4.0]
    assert result.filter_rows(a=1)[0] == (1, 2.0)
    assert result.cell("b", a=1) == 2.0
    assert result.cell("b", a=99) is None
    result.add_note("shape check")
    text = format_table(result)
    assert "demo" in text and "shape check" in text
    limited = format_table(result, max_rows=1)
    assert "more rows" in limited
    combined = format_results([result, result])
    assert combined.count("demo") == 2
