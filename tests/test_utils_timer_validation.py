"""Tests for repro.utils.timer and repro.utils.validation."""

import time

import pytest

from repro.exceptions import InvalidParameterError
from repro.utils.timer import Counter, Stopwatch, TimingRecord
from repro.utils.validation import (
    ensure_in_range,
    ensure_non_empty,
    ensure_non_negative_int,
    ensure_positive_int,
    ensure_probability,
    ensure_unique,
)


def test_stopwatch_measures_elapsed_time():
    watch = Stopwatch()
    with watch:
        time.sleep(0.01)
    assert watch.elapsed >= 0.005


def test_stopwatch_accumulates_over_multiple_intervals():
    watch = Stopwatch()
    with watch:
        time.sleep(0.005)
    first = watch.elapsed
    with watch:
        time.sleep(0.005)
    assert watch.elapsed > first


def test_stopwatch_stop_before_start_raises():
    with pytest.raises(RuntimeError):
        Stopwatch().stop()


def test_counter_increment_and_reset():
    counter = Counter()
    counter.increment("edges")
    counter.increment("edges", 4)
    assert counter["edges"] == 5
    assert counter.get("missing") == 0
    counter.reset("edges")
    assert counter["edges"] == 0
    counter.increment("a")
    counter.increment("b")
    counter.reset()
    assert counter.as_dict() == {}


def test_timing_record_statistics():
    record = TimingRecord(label="x")
    for value in (1.0, 2.0, 3.0, 4.0):
        record.add(value)
    assert record.count == 4
    assert record.mean == 2.5
    assert record.minimum == 1.0
    assert record.maximum == 4.0
    assert record.percentile(50) == 2.5
    assert record.percentile(0) == 1.0
    assert record.percentile(100) == 4.0


def test_timing_record_empty_defaults():
    record = TimingRecord(label="empty")
    assert record.mean == 0.0
    assert record.percentile(50) == 0.0


def test_timing_record_merge():
    a = TimingRecord(label="a")
    a.add(1.0)
    b = TimingRecord(label="a")
    b.add(3.0)
    merged = a.merge(b)
    assert merged.count == 2
    assert merged.mean == 2.0


def test_ensure_positive_int_accepts_and_rejects():
    assert ensure_positive_int(3, "x") == 3
    with pytest.raises(InvalidParameterError):
        ensure_positive_int(0, "x")
    with pytest.raises(InvalidParameterError):
        ensure_positive_int(True, "x")
    with pytest.raises(InvalidParameterError):
        ensure_positive_int(1.5, "x")


def test_ensure_non_negative_int():
    assert ensure_non_negative_int(0, "x") == 0
    with pytest.raises(InvalidParameterError):
        ensure_non_negative_int(-1, "x")


def test_ensure_probability_bounds():
    assert ensure_probability(0.0, "p") == 0.0
    assert ensure_probability(1.0, "p") == 1.0
    with pytest.raises(InvalidParameterError):
        ensure_probability(1.2, "p")
    with pytest.raises(InvalidParameterError):
        ensure_probability("not-a-number", "p")


def test_ensure_in_range_inclusive_and_exclusive():
    assert ensure_in_range(0.5, "x", 0.0, 1.0) == 0.5
    with pytest.raises(InvalidParameterError):
        ensure_in_range(0.0, "x", 0.0, 1.0, inclusive=False)
    with pytest.raises(InvalidParameterError):
        ensure_in_range(2.0, "x", 0.0, 1.0)


def test_ensure_non_empty_and_unique():
    assert ensure_non_empty([1], "items") == [1]
    with pytest.raises(InvalidParameterError):
        ensure_non_empty([], "items")
    ensure_unique([1, 2, 3], "items")
    with pytest.raises(InvalidParameterError):
        ensure_unique([1, 1], "items")
