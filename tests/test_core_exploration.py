"""Tests for the enumeration framework and best-effort exploration."""

import numpy as np
import pytest

from repro.core.best_effort import BestEffortExplorer
from repro.core.enumeration import EnumerationExplorer
from repro.core.query import PitexQuery
from repro.exceptions import InvalidParameterError
from repro.graph.digraph import TopicSocialGraph
from repro.propagation.exact import exact_best_tag_set
from repro.sampling.base import SampleBudget
from repro.sampling.lazy import LazyPropagationEstimator
from repro.sampling.monte_carlo import MonteCarloEstimator
from repro.topics.model import TagTopicModel


@pytest.fixture
def topical_instance():
    """A small instance where the optimal tag set is unambiguous.

    Topic 0 edges reach many vertices, topic 1 edges reach few; tags 0/1 map to
    topic 0, tags 2/3 to topic 1, so the optimal 2-tag set is {0, 1}.
    """
    graph = TopicSocialGraph(7, 2)
    graph.add_edge(0, 1, [0.9, 0.0])
    graph.add_edge(0, 2, [0.9, 0.0])
    graph.add_edge(1, 3, [0.8, 0.0])
    graph.add_edge(2, 4, [0.8, 0.0])
    graph.add_edge(0, 5, [0.0, 0.3])
    graph.add_edge(5, 6, [0.0, 0.2])
    matrix = np.array(
        [
            [0.9, 0.0],
            [0.8, 0.0],
            [0.0, 0.9],
            [0.0, 0.8],
        ]
    )
    model = TagTopicModel(matrix)
    return graph, model


def make_lazy(graph, model, seed=3):
    budget = SampleBudget(num_tags=model.num_tags, k=2, max_samples=1500, min_samples=200)
    return LazyPropagationEstimator(graph, model, budget, seed=seed, early_stopping=False)


def test_enumeration_finds_exact_optimum(topical_instance):
    graph, model = topical_instance
    estimator = make_lazy(graph, model)
    explorer = EnumerationExplorer(model, estimator, keep_evaluations=True)
    result = explorer.explore(PitexQuery(user=0, k=2, epsilon=0.5))
    expected_tags, expected_spread = exact_best_tag_set(graph, model, 0, 2)
    assert result.tag_ids == expected_tags
    assert result.spread == pytest.approx(expected_spread, rel=0.2)
    assert result.evaluated_tag_sets == model.num_candidate_tag_sets(2)
    assert len(result.evaluations) == result.evaluated_tag_sets
    assert result.elapsed_seconds > 0.0


def test_enumeration_with_candidate_restriction(topical_instance):
    graph, model = topical_instance
    estimator = make_lazy(graph, model)
    explorer = EnumerationExplorer(model, estimator)
    result = explorer.explore(PitexQuery(user=0, k=2), candidate_tag_sets=[(2, 3)])
    assert result.tag_ids == (2, 3)
    assert result.evaluated_tag_sets == 1


def test_enumeration_rejects_oversized_k(topical_instance):
    graph, model = topical_instance
    explorer = EnumerationExplorer(model, make_lazy(graph, model))
    with pytest.raises(InvalidParameterError):
        explorer.explore(PitexQuery(user=0, k=10))


@pytest.mark.parametrize("bound_method", ["reach", "sample"])
def test_best_effort_matches_enumeration_optimum(topical_instance, bound_method):
    graph, model = topical_instance
    estimator = make_lazy(graph, model)
    explorer = BestEffortExplorer(model, estimator, bound_method=bound_method)
    result = explorer.explore(PitexQuery(user=0, k=2, epsilon=0.5))
    expected_tags, expected_spread = exact_best_tag_set(graph, model, 0, 2)
    assert result.tag_ids == expected_tags
    assert result.spread == pytest.approx(expected_spread, rel=0.2)


def test_best_effort_prunes_with_reach_bound(topical_instance):
    """The reach bound is deterministic, so pruning accounting must be consistent."""
    graph, model = topical_instance
    estimator = make_lazy(graph, model)
    explorer = BestEffortExplorer(model, estimator, bound_method="reach")
    result = explorer.explore(PitexQuery(user=0, k=2, epsilon=0.5))
    total_candidates = model.num_candidate_tag_sets(2)
    assert result.evaluated_tag_sets + result.pruned_tag_sets <= total_candidates
    assert result.evaluated_tag_sets >= 1


def test_best_effort_prunes_unsupported_tag_sets():
    """With a sparse tag-topic matrix many completions have zero support and are pruned."""
    graph = TopicSocialGraph(4, 3)
    graph.add_edge(0, 1, [0.8, 0.0, 0.0])
    graph.add_edge(0, 2, [0.0, 0.8, 0.0])
    graph.add_edge(0, 3, [0.0, 0.0, 0.8])
    matrix = np.zeros((9, 3))
    for tag in range(9):
        matrix[tag, tag % 3] = 0.9  # each tag supported by exactly one topic
    model = TagTopicModel(matrix)
    estimator = make_lazy(graph, model)
    explorer = BestEffortExplorer(model, estimator, bound_method="reach")
    result = explorer.explore(PitexQuery(user=0, k=2, epsilon=0.5))
    # Only same-topic pairs have non-zero influence beyond the seed; mixed pairs
    # can be pruned wholesale.  9 tags -> 36 pairs, 9 of them same-topic.
    assert result.spread > 1.0
    assert result.evaluated_tag_sets < 36


def test_best_effort_respects_candidate_tags(topical_instance):
    graph, model = topical_instance
    estimator = make_lazy(graph, model)
    explorer = BestEffortExplorer(model, estimator, bound_method="reach")
    result = explorer.explore(PitexQuery(user=0, k=2), candidate_tags=[2, 3])
    assert result.tag_ids == (2, 3)


def test_best_effort_validates_inputs(topical_instance):
    graph, model = topical_instance
    estimator = make_lazy(graph, model)
    with pytest.raises(InvalidParameterError):
        BestEffortExplorer(model, estimator, bound_method="bogus")
    explorer = BestEffortExplorer(model, estimator)
    with pytest.raises(InvalidParameterError):
        explorer.explore(PitexQuery(user=0, k=9))
    with pytest.raises(InvalidParameterError):
        explorer.explore(PitexQuery(user=0, k=3), candidate_tags=[0, 1])


def test_best_effort_works_with_mc_estimator(topical_instance):
    graph, model = topical_instance
    budget = SampleBudget(num_tags=model.num_tags, k=2, max_samples=800, min_samples=150)
    estimator = MonteCarloEstimator(graph, model, budget, seed=5)
    explorer = BestEffortExplorer(model, estimator, bound_method="sample")
    result = explorer.explore(PitexQuery(user=0, k=2, epsilon=0.5))
    expected_tags, _ = exact_best_tag_set(graph, model, 0, 2)
    assert result.tag_ids == expected_tags
