"""Tests for the hardness reductions of Sec. 3.2."""

import pytest

from repro.exceptions import InvalidParameterError
from repro.theory.hardness import (
    brute_force_k_label_reachability,
    brute_force_set_cover,
    pitex_decides_reachability,
)
from repro.theory.reductions import (
    LabeledGraph,
    SetCoverInstance,
    k_label_reachability_to_pitex,
    set_cover_to_k_label_reachability,
    set_cover_to_pitex,
)


@pytest.fixture
def coverable_instance():
    """Universe {0..3}; subsets {0,1}, {2,3}, {1,2}: covered by 2 subsets."""
    return SetCoverInstance(universe=(0, 1, 2, 3), subsets=((0, 1), (2, 3), (1, 2)))


@pytest.fixture
def hard_instance():
    """Universe {0..3}; each subset covers one element: needs all 4 subsets."""
    return SetCoverInstance(universe=(0, 1, 2, 3), subsets=((0,), (1,), (2,), (3,)))


def test_set_cover_instance_validation():
    with pytest.raises(InvalidParameterError):
        SetCoverInstance(universe=(0, 1, 2), subsets=((0,),))


def test_brute_force_set_cover(coverable_instance, hard_instance):
    assert brute_force_set_cover(coverable_instance, 2)
    assert not brute_force_set_cover(hard_instance, 2)
    assert brute_force_set_cover(hard_instance, 4)


def test_labeled_graph_reachability():
    graph = LabeledGraph(num_vertices=3, num_labels=2)
    graph.add_edge(0, 1, 0)
    graph.add_edge(1, 2, 1)
    assert graph.reaches(0, 2, {0, 1})
    assert not graph.reaches(0, 2, {0})
    with pytest.raises(InvalidParameterError):
        graph.add_edge(0, 5, 0)
    with pytest.raises(InvalidParameterError):
        graph.add_edge(0, 1, 7)


def test_lemma1_reduction_preserves_answers(coverable_instance, hard_instance):
    for instance, k, expected in [
        (coverable_instance, 2, True),
        (coverable_instance, 1, False),
        (hard_instance, 3, False),
        (hard_instance, 4, True),
    ]:
        graph, source, target = set_cover_to_k_label_reachability(instance)
        assert brute_force_k_label_reachability(graph, source, target, k) is expected
        # ...and the reachability answer matches the set cover answer directly.
        assert brute_force_set_cover(instance, k) is expected


def test_theorem1_reduction_structure(coverable_instance):
    labeled, source, target = set_cover_to_k_label_reachability(coverable_instance)
    graph, model, user = k_label_reachability_to_pitex(labeled, source, target, padding=6)
    assert user == source
    assert graph.num_vertices == labeled.num_vertices + 6
    assert model.num_tags == labeled.num_labels
    assert model.num_topics == labeled.num_labels
    # Selecting tag i concentrates the posterior on topic i (up to the
    # smoothing floor used to keep multi-tag supports non-empty).
    posterior = model.topic_posterior((0,))
    assert posterior[0] == pytest.approx(1.0, abs=1e-4)
    assert posterior.sum() == pytest.approx(1.0)


def test_theorem1_padding_defaults_to_quadratic(coverable_instance):
    labeled, source, target = set_cover_to_k_label_reachability(coverable_instance)
    graph, _, _ = k_label_reachability_to_pitex(labeled, source, target)
    n = labeled.num_vertices
    assert graph.num_vertices == n + n * n - n


def test_pitex_decides_set_cover(coverable_instance, hard_instance):
    decision, spread = pitex_decides_reachability(coverable_instance, 2, padding=8)
    assert decision is True
    # Reaching t drags the whole padding chain along: spread far exceeds n-1.
    assert spread >= coverable_instance.num_elements + 1 + 8
    decision, spread = pitex_decides_reachability(coverable_instance, 1, padding=8)
    assert decision is False
    assert spread <= coverable_instance.num_elements
    decision, _ = pitex_decides_reachability(hard_instance, 3, padding=8)
    assert decision is False
    decision, _ = pitex_decides_reachability(hard_instance, 4, padding=8)
    assert decision is True


def test_set_cover_to_pitex_composition(coverable_instance):
    graph, model, user, target = set_cover_to_pitex(coverable_instance, padding=4)
    assert user == 0
    assert target == coverable_instance.num_elements
    assert graph.num_vertices == coverable_instance.num_elements + 1 + 4
    assert model.num_tags == coverable_instance.num_subsets
