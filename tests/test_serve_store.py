"""Tests for the persistent index store (repro.serve.store).

The load-bearing property: a loaded index answers *bitwise identically* to the
index that was saved, and a store lookup never matches across a graph
mutation, a different model, or different sampling parameters.
"""

import json

import pytest

from repro.core.engine import PitexEngine
from repro.datasets.synthetic import load_dataset
from repro.exceptions import InvalidParameterError
from repro.index.delayed import DelayedIndexEstimator, DelayedMaterializationIndex
from repro.index.rr_index import RRGraphIndex
from repro.serve.store import MANIFEST_NAME, IndexStore, index_cache_key


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("lastfm", scale=0.08, seed=11)


@pytest.fixture
def store(tmp_path):
    return IndexStore(tmp_path / "store")


def _sample_probabilities(dataset):
    return dataset.model.edge_probabilities(dataset.graph, [0, 1])


def test_rr_index_roundtrip_is_bitwise_equal(dataset, store):
    graph, model = dataset.graph, dataset.model
    built = RRGraphIndex(graph, 80, seed=3).build()
    store.save_rr_index(built, model)
    loaded = store.load_rr_index(graph, model, 80)
    assert loaded is not None and loaded.is_built
    assert loaded.num_samples == built.num_samples
    assert loaded.containment == built.containment
    assert [rr.root for rr in loaded.rr_graphs] == [rr.root for rr in built.rr_graphs]
    assert [rr.vertices for rr in loaded.rr_graphs] == [rr.vertices for rr in built.rr_graphs]
    probabilities = _sample_probabilities(dataset)
    for user in range(0, graph.num_vertices, 7):
        original = built.estimate(user, probabilities)
        reloaded = loaded.estimate(user, probabilities)
        assert original.value == reloaded.value
        assert original.num_samples == reloaded.num_samples
        assert original.edges_visited == reloaded.edges_visited


def test_delayed_index_roundtrip_matches_with_shared_seed(dataset, store):
    graph, model = dataset.graph, dataset.model
    built = DelayedMaterializationIndex(graph, 80, seed=3).build()
    store.save_delayed_index(built, model)
    loaded = store.load_delayed_index(graph, model, 80)
    assert loaded is not None and loaded.is_built
    assert loaded.containment_counts == built.containment_counts
    probabilities = _sample_probabilities(dataset)
    users = [u for u in range(graph.num_vertices) if built.containment_counts.get(u)][:4]
    for user in users:
        original = DelayedIndexEstimator(graph, model, built, seed=21)
        reloaded = DelayedIndexEstimator(graph, model, loaded, seed=21)
        a = original.estimate_with_probabilities(user, probabilities)
        b = reloaded.estimate_with_probabilities(user, probabilities)
        assert a.value == b.value


def test_engine_query_results_equal_with_loaded_index(dataset, store):
    graph, model = dataset.graph, dataset.model
    built = RRGraphIndex(graph, 80, seed=3).build()
    store.save_rr_index(built, model)
    loaded = store.load_rr_index(graph, model, 80)
    warm = PitexEngine(graph, model, max_samples=50, index_samples=80, default_k=2, seed=9, rr_index=loaded)
    cold = PitexEngine(graph, model, max_samples=50, index_samples=80, default_k=2, seed=9, rr_index=built)
    for user in dataset.workload("mid", 2):
        a = warm.query(user=user, k=2, method="indexest")
        b = cold.query(user=user, k=2, method="indexest")
        assert a.tag_ids == b.tag_ids
        assert a.spread == b.spread


def test_lookup_misses_when_graph_version_changes(dataset, store):
    graph, model = dataset.graph, dataset.model
    key_before = index_cache_key("rr-graphs", graph, model, 40)
    mutated = graph.copy()
    index = RRGraphIndex(mutated, 40, seed=1).build()
    store.save_rr_index(index, model)
    assert store.load_rr_index(mutated, model, 40) is not None
    source, target = next(
        (s, t)
        for s in mutated.vertices()
        for t in mutated.vertices()
        if s != t and not mutated.has_edge(s, t)
    )
    mutated.add_edge(source, target, [0.1] * mutated.num_topics)
    assert store.load_rr_index(mutated, model, 40) is None
    assert index_cache_key("rr-graphs", mutated, model, 40) != key_before


def test_lookup_keyed_on_model_and_theta(dataset, store):
    graph, model = dataset.graph, dataset.model
    index = RRGraphIndex(graph, 40, seed=1).build()
    store.save_rr_index(index, model)
    assert store.load_rr_index(graph, model, 40) is not None
    assert store.load_rr_index(graph, model, 41) is None
    other_matrix = model.tag_topic_matrix.copy()
    other_matrix[0, 0] += 0.05
    from repro.topics.model import TagTopicModel

    other_model = TagTopicModel(other_matrix, tags=model.tags)
    assert store.load_rr_index(graph, other_model, 40) is None


def test_corrupted_manifest_degrades_to_miss(dataset, store):
    graph, model = dataset.graph, dataset.model
    index = RRGraphIndex(graph, 30, seed=1).build()
    entry = store.save_rr_index(index, model)
    manifest = json.loads((entry.path / MANIFEST_NAME).read_text())
    manifest["graph_fingerprint"] = "tampered"
    (entry.path / MANIFEST_NAME).write_text(json.dumps(manifest))
    assert store.load_rr_index(graph, model, 30) is None


def test_load_or_build_builds_once_then_loads(dataset, store):
    graph, model = dataset.graph, dataset.model
    first, loaded_first, _ = store.load_or_build_rr(graph, model, 40, seed=2)
    assert not loaded_first and first.is_built
    second, loaded_second, _ = store.load_or_build_rr(graph, model, 40, seed=2)
    assert loaded_second
    assert second.containment == first.containment
    delayed, loaded_delayed, _ = store.load_or_build_delayed(graph, model, 40, seed=2)
    assert not loaded_delayed and delayed.is_built
    again, loaded_again, _ = store.load_or_build_delayed(graph, model, 40, seed=2)
    assert loaded_again and again.containment_counts == delayed.containment_counts


def test_entries_and_clear(dataset, store):
    graph, model = dataset.graph, dataset.model
    store.save_rr_index(RRGraphIndex(graph, 20, seed=1).build(), model)
    store.save_delayed_index(DelayedMaterializationIndex(graph, 20, seed=1).build(), model)
    kinds = sorted(entry.kind for entry in store.entries())
    assert kinds == ["delaymat", "rr-graphs"]
    assert store.clear() == 2
    assert store.entries() == []


def test_unknown_kind_rejected(dataset):
    with pytest.raises(InvalidParameterError):
        index_cache_key("bogus", dataset.graph, dataset.model, 10)


def test_prebuilt_index_must_match_graph_instance(dataset):
    graph, model = dataset.graph, dataset.model
    other = graph.copy()
    index = RRGraphIndex(other, 20, seed=1).build()
    with pytest.raises(InvalidParameterError):
        PitexEngine(graph, model, index_samples=20, rr_index=index)


def test_prebuilt_index_must_match_engine_theta(dataset):
    graph, model = dataset.graph, dataset.model
    index = RRGraphIndex(graph, 20, seed=1).build()
    with pytest.raises(InvalidParameterError, match="index_samples"):
        PitexEngine(graph, model, index_samples=50, rr_index=index)
