"""Tests for the observability subsystem (src/repro/obs).

Covers the three obs primitives in isolation -- the counter/gauge registry
with its sum/max merge algebra, the trace recorder with its JSONL output and
its disabled fast path, and the clock seam -- plus the merge-semantics
satellite: shard merging must be commutative and lossless, so the process
backend's telemetry cannot depend on worker shutdown order.
"""

from __future__ import annotations

import json
import threading

from repro.obs.clock import DEFAULT_CLOCK, Clock, monotonic, wall_clock
from repro.obs.telemetry import (
    DETERMINISTIC_PREFIXES,
    Telemetry,
    counter,
    deterministic_counters,
    gauge,
    get_telemetry,
    install,
    merge_snapshots,
)
from repro.obs.trace import (
    TraceRecorder,
    get_recorder,
    install_recorder,
    trace_span,
    tracing_enabled,
)


class ScriptedClock(Clock):
    """A clock replaying a fixed sequence of monotonic readings."""

    def __init__(self, readings):
        self._readings = list(readings)

    def monotonic(self):
        return self._readings.pop(0)


# --------------------------------------------------------------------------
# Telemetry registry
# --------------------------------------------------------------------------


class TestTelemetry:
    def test_counter_accumulates_and_returns_total(self):
        telemetry = Telemetry()
        assert telemetry.counter("a") == 1
        assert telemetry.counter("a", 4) == 5
        assert telemetry.counters() == {"a": 5}

    def test_gauge_stores_latest_value(self):
        telemetry = Telemetry()
        telemetry.gauge("depth", 3.0)
        assert telemetry.gauge("depth", 1.5) == 1.5
        assert telemetry.gauges() == {"depth": 1.5}

    def test_snapshot_is_a_decoupled_copy(self):
        telemetry = Telemetry()
        telemetry.counter("a")
        snapshot = telemetry.snapshot()
        telemetry.counter("a")
        assert snapshot == {"counters": {"a": 1}, "gauges": {}}

    def test_merge_sums_counters_and_maxes_gauges(self):
        telemetry = Telemetry()
        telemetry.counter("a", 2)
        telemetry.gauge("peak", 5.0)
        telemetry.merge({"counters": {"a": 3, "b": 1}, "gauges": {"peak": 2.0, "other": 7.0}})
        assert telemetry.counters() == {"a": 5, "b": 1}
        assert telemetry.gauges() == {"peak": 5.0, "other": 7.0}

    def test_merge_is_commutative(self):
        shards = [
            {"counters": {"a": 1, "b": 2}, "gauges": {"g": 1.0}},
            {"counters": {"b": 3, "c": 4}, "gauges": {"g": 9.0}},
            {"counters": {"a": 10}, "gauges": {"h": 0.5}},
        ]
        forward = merge_snapshots(*shards)
        backward = merge_snapshots(*reversed(shards))
        assert forward == backward
        assert forward["counters"] == {"a": 11, "b": 5, "c": 4}
        assert forward["gauges"] == {"g": 9.0, "h": 0.5}

    def test_merge_is_lossless_over_a_dropped_shard(self):
        # Satellite (c): losing a shard must change exactly that shard's
        # contribution -- the surviving shards still merge to their own sum.
        survivors = [{"counters": {"q": 5}}, {"counters": {"q": 7}}]
        lost = {"counters": {"q": 11}}
        with_all = merge_snapshots(*survivors, lost)
        without = merge_snapshots(*survivors)
        assert with_all["counters"]["q"] - without["counters"]["q"] == 11

    def test_reset_clears_everything(self):
        telemetry = Telemetry()
        telemetry.counter("a")
        telemetry.gauge("g", 1.0)
        telemetry.reset()
        assert telemetry.snapshot() == {"counters": {}, "gauges": {}}

    def test_concurrent_increments_are_exact(self):
        telemetry = Telemetry()
        threads = [
            threading.Thread(target=lambda: [telemetry.counter("n") for _ in range(500)])
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert telemetry.counters()["n"] == 4000

    def test_deterministic_counters_filters_and_sorts(self):
        counters = {
            "query.count": 3,
            "engine_cache.hit": 2,
            "worker.deaths": 1,
            "store.load_or_build.built": 1,
            "estimator.lazy.samples": 9,
            "guard.trips": 0,
        }
        filtered = deterministic_counters(counters)
        assert list(filtered) == sorted(filtered)
        assert set(filtered) == {
            "query.count",
            "engine_cache.hit",
            "estimator.lazy.samples",
            "guard.trips",
        }
        assert all(name.startswith(DETERMINISTIC_PREFIXES) for name in filtered)

    def test_install_swaps_and_restores_the_active_registry(self):
        fresh = Telemetry()
        previous = install(fresh)
        try:
            counter("swapped", 2)
            gauge("swapped.gauge", 1.0)
            assert get_telemetry() is fresh
            assert fresh.counters() == {"swapped": 2}
            assert previous.counters().get("swapped") is None
        finally:
            assert install(previous) is fresh
        assert get_telemetry() is previous


# --------------------------------------------------------------------------
# Trace spans
# --------------------------------------------------------------------------


class TestTrace:
    def test_span_records_duration_and_fields(self):
        recorder = TraceRecorder(clock=ScriptedClock([10.0, 10.25]))
        previous = install_recorder(recorder)
        try:
            with trace_span("execute", user=7, method="lazy"):
                pass
        finally:
            install_recorder(previous)
        (span,) = recorder.spans()
        assert span == {"span": "execute", "seconds": 0.25, "user": 7, "method": "lazy"}

    def test_span_records_even_when_the_body_raises(self):
        recorder = TraceRecorder(clock=ScriptedClock([1.0, 3.0]))
        previous = install_recorder(recorder)
        try:
            try:
                with trace_span("boom"):
                    raise ValueError("expected")
            except ValueError:
                pass
        finally:
            install_recorder(previous)
        assert recorder.spans()[0]["seconds"] == 2.0

    def test_disabled_tracing_is_a_shared_noop(self):
        assert get_recorder() is None
        assert not tracing_enabled()
        first = trace_span("a", x=1)
        second = trace_span("b")
        assert first is second  # the shared null singleton: no allocation
        with first:
            pass

    def test_install_recorder_returns_previous(self):
        recorder = TraceRecorder()
        assert install_recorder(recorder) is None
        assert tracing_enabled()
        assert install_recorder(None) is recorder
        assert not tracing_enabled()

    def test_extend_merges_worker_span_shards(self):
        recorder = TraceRecorder()
        recorder.record({"span": "parent", "seconds": 0.1})
        recorder.extend([{"span": "worker", "seconds": 0.2, "worker": 1}])
        assert [span["span"] for span in recorder.spans()] == ["parent", "worker"]

    def test_write_jsonl_round_trips(self, tmp_path):
        recorder = TraceRecorder(clock=ScriptedClock([0.0, 1.0, 1.0, 1.5]))
        previous = install_recorder(recorder)
        try:
            with trace_span("first", user=1):
                pass
            with trace_span("second", user=2):
                pass
        finally:
            install_recorder(previous)
        path = tmp_path / "trace.jsonl"
        assert recorder.write_jsonl(path) == 2
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [line["span"] for line in lines] == ["first", "second"]
        assert lines[0]["seconds"] == 1.0 and lines[1]["seconds"] == 0.5


# --------------------------------------------------------------------------
# Clock seam
# --------------------------------------------------------------------------


class TestClock:
    def test_monotonic_never_decreases(self):
        readings = [monotonic() for _ in range(5)]
        assert readings == sorted(readings)
        assert DEFAULT_CLOCK.monotonic() >= readings[-1]

    def test_wall_clock_is_a_plausible_unix_timestamp(self):
        stamp = wall_clock()
        assert stamp > 1_500_000_000  # after 2017: a real epoch reading

    def test_clock_is_substitutable(self):
        clock = ScriptedClock([1.0, 2.5])
        assert clock.monotonic() == 1.0
        assert clock.monotonic() == 2.5
