"""Tests for repro.graph.digraph."""

import numpy as np
import pytest

from repro.exceptions import GraphError, UnknownEdgeError, UnknownVertexError
from repro.graph.digraph import TopicSocialGraph


def make_triangle():
    graph = TopicSocialGraph(3, 2)
    graph.add_edge(0, 1, [0.5, 0.2])
    graph.add_edge(1, 2, [0.0, 0.9])
    graph.add_edge(2, 0, [0.3, 0.3])
    return graph


def test_basic_sizes_and_density():
    graph = make_triangle()
    assert graph.num_vertices == 3
    assert graph.num_edges == 3
    assert graph.num_topics == 2
    assert graph.density() == pytest.approx(1.0)


def test_constructor_rejects_bad_sizes():
    with pytest.raises(GraphError):
        TopicSocialGraph(0, 2)
    with pytest.raises(GraphError):
        TopicSocialGraph(3, 0)


def test_constructor_rejects_wrong_label_count():
    with pytest.raises(GraphError):
        TopicSocialGraph(3, 2, vertex_labels=["a", "b"])


def test_add_edge_rejects_self_loop_duplicate_and_bad_probabilities():
    graph = TopicSocialGraph(3, 2)
    with pytest.raises(GraphError):
        graph.add_edge(0, 0, [0.1, 0.1])
    graph.add_edge(0, 1, [0.1, 0.1])
    with pytest.raises(GraphError):
        graph.add_edge(0, 1, [0.2, 0.2])
    with pytest.raises(GraphError):
        graph.add_edge(1, 2, [0.1])
    with pytest.raises(GraphError):
        graph.add_edge(1, 2, [1.5, 0.0])
    with pytest.raises(UnknownVertexError):
        graph.add_edge(0, 9, [0.1, 0.1])


def test_neighbors_and_degrees():
    graph = make_triangle()
    assert graph.out_neighbors(0) == [1]
    assert graph.in_neighbors(0) == [2]
    assert graph.out_degree(0) == 1
    assert graph.in_degree(0) == 1
    assert list(graph.out_degrees()) == [1, 1, 1]
    assert list(graph.in_degrees()) == [1, 1, 1]


def test_edge_lookup_and_endpoints():
    graph = make_triangle()
    edge_id = graph.edge_id(1, 2)
    assert graph.edge_endpoints(edge_id) == (1, 2)
    assert graph.has_edge(1, 2)
    assert not graph.has_edge(2, 1)
    with pytest.raises(UnknownEdgeError):
        graph.edge_id(2, 1)
    with pytest.raises(UnknownEdgeError):
        graph.edge_endpoints(99)


def test_probability_matrix_and_max_probabilities():
    graph = make_triangle()
    matrix = graph.probability_matrix
    assert matrix.shape == (3, 2)
    maxima = graph.max_edge_probabilities()
    assert maxima[graph.edge_id(1, 2)] == pytest.approx(0.9)
    assert graph.max_edge_probability(graph.edge_id(0, 1)) == pytest.approx(0.5)


def test_edge_probabilities_under_posterior():
    graph = make_triangle()
    posterior = np.array([0.25, 0.75])
    probabilities = graph.edge_probabilities_under(posterior)
    expected = graph.probability_matrix @ posterior
    assert np.allclose(probabilities, expected)
    single = graph.edge_probability_under(graph.edge_id(0, 1), posterior)
    assert single == pytest.approx(0.5 * 0.25 + 0.2 * 0.75)


def test_edge_probabilities_under_wrong_length_raises():
    graph = make_triangle()
    with pytest.raises(GraphError):
        graph.edge_probabilities_under([0.5])


def test_labels_roundtrip():
    graph = TopicSocialGraph(2, 1, vertex_labels=["alice", "bob"])
    graph.add_edge(0, 1, [0.3])
    assert graph.label_of(0) == "alice"
    assert graph.vertex_by_label("bob") == 1
    with pytest.raises(UnknownVertexError):
        graph.vertex_by_label("carol")


def test_copy_is_deep():
    graph = make_triangle()
    clone = graph.copy()
    assert clone.num_edges == graph.num_edges
    clone.add_edge(0, 2, [0.1, 0.1])
    assert clone.num_edges == graph.num_edges + 1


def test_subgraph_with_min_probability():
    graph = make_triangle()
    filtered = graph.subgraph_with_min_probability(0.4)
    # only edges with max prob > 0.4 survive: (0,1) max 0.5 and (1,2) max 0.9
    assert filtered.num_edges == 2
    assert filtered.has_edge(0, 1)
    assert filtered.has_edge(1, 2)


def test_from_edges_builder_and_memory():
    graph = TopicSocialGraph.from_edges(3, 1, [(0, 1, [0.5]), (1, 2, [0.5])])
    assert graph.num_edges == 2
    assert graph.memory_bytes() > 0


def test_probability_matrix_empty_graph():
    graph = TopicSocialGraph(3, 2)
    assert graph.probability_matrix.shape == (0, 2)
    assert graph.max_edge_probabilities().shape == (0,)
    assert graph.edge_probabilities_under([0.5, 0.5]).shape == (0,)


def test_fingerprint_is_stable_and_content_addressed():
    graph = make_triangle()
    first = graph.fingerprint()
    assert first == graph.fingerprint()  # cached per version, stable
    twin = make_triangle()
    assert twin.fingerprint() == first  # same construction => same fingerprint
    reordered = TopicSocialGraph(3, 2)
    reordered.add_edge(1, 2, [0.0, 0.9])
    reordered.add_edge(0, 1, [0.5, 0.2])
    reordered.add_edge(2, 0, [0.3, 0.3])
    assert reordered.fingerprint() != first  # edge ids differ => different index keys


def test_fingerprint_changes_on_mutation():
    graph = make_triangle()
    before = graph.fingerprint()
    version = graph.version
    graph.add_edge(0, 2, [0.1, 0.1])
    assert graph.version == version + 1
    assert graph.fingerprint() != before
