"""Tests for repro.utils.stats."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.stats import (
    LatencyAccumulator,
    RunningMean,
    Series,
    chernoff_failure_probability,
    chernoff_lower_tail,
    chernoff_upper_tail,
    hoeffding_sample_size,
    log_binomial,
    log_sum_binomials,
    percentiles,
    relative_error,
)


def test_chernoff_tails_decrease_with_delta():
    assert chernoff_upper_tail(0.5) > chernoff_upper_tail(1.0)
    assert chernoff_lower_tail(0.5) > chernoff_lower_tail(1.0)


def test_chernoff_tails_reject_negative_delta():
    with pytest.raises(ValueError):
        chernoff_upper_tail(-0.1)
    with pytest.raises(ValueError):
        chernoff_lower_tail(-0.1)


def test_chernoff_failure_probability_decreases_with_samples():
    p_small = chernoff_failure_probability(100, 0.5, 0.2)
    p_large = chernoff_failure_probability(1000, 0.5, 0.2)
    assert p_large < p_small <= 1.0


def test_chernoff_failure_probability_degenerate_inputs():
    assert chernoff_failure_probability(0, 0.5, 0.2) == 1.0
    assert chernoff_failure_probability(100, 0.0, 0.2) == 1.0


def test_hoeffding_sample_size_monotone_in_accuracy():
    assert hoeffding_sample_size(0.05, 0.05) > hoeffding_sample_size(0.1, 0.05)
    assert hoeffding_sample_size(0.1, 0.01) > hoeffding_sample_size(0.1, 0.1)


def test_hoeffding_sample_size_validates_inputs():
    with pytest.raises(ValueError):
        hoeffding_sample_size(1.5, 0.1)
    with pytest.raises(ValueError):
        hoeffding_sample_size(0.1, 0.0)


def test_log_binomial_matches_math_comb():
    assert abs(log_binomial(10, 3) - math.log(math.comb(10, 3))) < 1e-9
    assert abs(log_binomial(50, 25) - math.log(math.comb(50, 25))) < 1e-6


def test_log_binomial_out_of_range_is_minus_infinity():
    assert log_binomial(5, 7) == float("-inf")
    assert log_binomial(5, -1) == float("-inf")


def test_log_sum_binomials_matches_direct_sum():
    direct = sum(math.comb(20, i) for i in range(1, 4))
    assert abs(log_sum_binomials(20, 3) - math.log(direct)) < 1e-9


def test_relative_error_handles_zero_truth():
    assert relative_error(0.5, 0.0) == 0.5
    assert relative_error(5.0, 4.0) == 0.25


def test_running_mean_matches_batch_statistics():
    values = [1.0, 2.0, 3.0, 4.0, 10.0]
    running = RunningMean()
    running.extend(values)
    assert abs(running.mean - sum(values) / len(values)) < 1e-12
    mean = sum(values) / len(values)
    expected_variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
    assert abs(running.variance - expected_variance) < 1e-12
    assert running.std == pytest.approx(expected_variance**0.5)


def test_running_mean_confidence_shrinks_with_samples():
    small = RunningMean()
    small.extend([1.0, 2.0, 3.0])
    large = RunningMean()
    large.extend([1.0, 2.0, 3.0] * 50)
    assert large.confidence_halfwidth() < small.confidence_halfwidth()


def test_series_rows():
    series = Series(label="lazy")
    series.add(1, 2.0)
    series.add(2, 3.0)
    assert series.as_rows() == [("lazy", 1.0, 2.0), ("lazy", 2.0, 3.0)]


def test_percentiles_match_numpy_linear_interpolation():
    np = pytest.importorskip("numpy")
    values = [5.0, 1.0, 9.0, 3.0, 7.0, 2.0, 8.0]
    qs = [0.0, 25.0, 50.0, 95.0, 99.0, 100.0]
    expected = np.percentile(values, qs)
    computed = percentiles(values, qs)
    for got, want in zip(computed, expected):
        assert got == pytest.approx(float(want))


def test_percentiles_reject_empty_and_out_of_range():
    with pytest.raises(ValueError):
        percentiles([], [50.0])
    with pytest.raises(ValueError):
        percentiles([1.0], [101.0])


def test_latency_accumulator_summary_and_merge():
    accumulator = LatencyAccumulator(label="svc")
    accumulator.extend([0.010, 0.020, 0.030, 0.040])
    summary = accumulator.summary()
    assert summary["label"] == "svc"
    assert summary["count"] == 4
    assert summary["mean"] == pytest.approx(0.025)
    assert summary["p50"] == pytest.approx(0.025)
    assert summary["min"] == 0.010 and summary["max"] == 0.040
    assert accumulator.total == pytest.approx(0.100)
    other = LatencyAccumulator(label="other")
    other.add(0.100)
    accumulator.merge(other)
    assert accumulator.count == 5
    assert accumulator.percentile(100.0) == pytest.approx(0.100)


def test_latency_accumulator_empty_summary_is_zeroed():
    summary = LatencyAccumulator().summary()
    assert summary["count"] == 0
    assert summary["p99"] == 0.0 and summary["mean"] == 0.0


# One latency observation: non-negative, finite, service-scale seconds.
_latency = st.floats(min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False)


@settings(max_examples=60, deadline=None)
@given(
    shards=st.lists(
        st.lists(_latency, min_size=0, max_size=40), min_size=1, max_size=6
    )
)
def test_latency_merge_of_per_thread_shards_matches_global_accumulator(shards):
    """Per-worker accumulators merged == one global accumulator over all obs.

    This is the invariant concurrent serving relies on: each worker records
    into its own (unlocked) accumulator and the service merges at snapshot
    time.  Below the reservoir cap the merge must be *exact* -- count, moments,
    min/max and every percentile -- regardless of how observations were
    sharded across workers.
    """
    merged = LatencyAccumulator(label="merged")
    for shard in shards:
        worker = LatencyAccumulator(label="worker")
        worker.extend(shard)
        merged.merge(worker)

    flat = [value for shard in shards for value in shard]
    global_accumulator = LatencyAccumulator(label="global")
    global_accumulator.extend(flat)

    assert merged.count == global_accumulator.count == len(flat)
    if not flat:
        return
    assert merged.mean == pytest.approx(global_accumulator.mean, rel=1e-9, abs=1e-12)
    assert merged._running.std == pytest.approx(
        global_accumulator._running.std, rel=1e-9, abs=1e-9
    )
    merged_summary = merged.summary()
    global_summary = global_accumulator.summary()
    assert merged_summary["min"] == global_summary["min"]
    assert merged_summary["max"] == global_summary["max"]
    # Below the reservoir cap both hold the same multiset of samples, so the
    # percentile snapshots agree exactly (sorting removes shard order).
    for q in (50.0, 95.0, 99.0):
        assert merged.percentile(q) == pytest.approx(
            global_accumulator.percentile(q), rel=1e-12, abs=1e-12
        )


@settings(max_examples=30, deadline=None)
@given(
    left=st.lists(_latency, min_size=1, max_size=30),
    right=st.lists(_latency, min_size=1, max_size=30),
)
def test_latency_merge_is_commutative_in_moments(left, right):
    """merge(a, b) and merge(b, a) agree on count/mean/std/min/max."""
    ab = LatencyAccumulator()
    ab.extend(left)
    other = LatencyAccumulator()
    other.extend(right)
    ab.merge(other)

    ba = LatencyAccumulator()
    ba.extend(right)
    other = LatencyAccumulator()
    other.extend(left)
    ba.merge(other)

    assert ab.count == ba.count
    assert ab.mean == pytest.approx(ba.mean, rel=1e-9, abs=1e-12)
    assert ab._running.variance == pytest.approx(ba._running.variance, rel=1e-9, abs=1e-9)
    assert ab._min == ba._min and ab._max == ba._max


def test_latency_accumulator_reservoir_bounds_memory():
    accumulator = LatencyAccumulator(max_samples=16)
    accumulator.extend(float(i) for i in range(1000))
    assert accumulator.count == 1000
    assert len(accumulator._samples) == 16  # reservoir never exceeds the cap
    summary = accumulator.summary()
    assert summary["min"] == 0.0 and summary["max"] == 999.0  # exact despite sampling
    assert summary["mean"] == pytest.approx(499.5)
    assert 0.0 <= summary["p50"] <= 999.0
