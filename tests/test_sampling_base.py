"""Tests for repro.sampling.base: sample sizes and the SampleBudget."""

import math

import pytest

from repro.exceptions import InvalidParameterError
from repro.sampling.base import (
    InfluenceEstimate,
    SampleBudget,
    sample_size_offline,
    sample_size_online,
)
from repro.utils.stats import log_binomial, log_sum_binomials


def test_sample_size_online_matches_eqn2():
    epsilon, delta, num_tags, k, reachable = 0.5, 1000.0, 50, 3, 200
    expected = math.ceil(
        (2 + epsilon) / epsilon**2 * reachable * (math.log(delta) + log_binomial(num_tags, k) + math.log(2))
    )
    assert sample_size_online(epsilon, delta, num_tags, k, reachable) == expected


def test_sample_size_online_scales_with_reachable_size():
    small = sample_size_online(0.5, 1000.0, 50, 3, 10)
    large = sample_size_online(0.5, 1000.0, 50, 3, 100)
    assert large == pytest.approx(10 * small, rel=0.01)


def test_sample_size_online_shrinks_with_epsilon_and_spread():
    loose = sample_size_online(0.9, 1000.0, 50, 3, 100)
    tight = sample_size_online(0.3, 1000.0, 50, 3, 100)
    assert tight > loose
    with_spread = sample_size_online(0.5, 1000.0, 50, 3, 100, spread_lower_bound=10.0)
    without_spread = sample_size_online(0.5, 1000.0, 50, 3, 100)
    assert with_spread == pytest.approx(without_spread / 10, rel=0.01)


def test_sample_size_online_validates_inputs():
    with pytest.raises(InvalidParameterError):
        sample_size_online(0.0, 1000.0, 50, 3, 100)
    with pytest.raises(InvalidParameterError):
        sample_size_online(0.5, 0.5, 50, 3, 100)
    with pytest.raises(InvalidParameterError):
        sample_size_online(0.5, 1000.0, 0, 3, 100)


def test_sample_size_offline_matches_eqn7():
    epsilon, delta, num_tags, max_k, vertices = 0.7, 1000.0, 50, 5, 1000
    expected = math.ceil(
        (2 + epsilon) / epsilon**2 * vertices * (math.log(delta) + log_sum_binomials(num_tags, max_k) + math.log(2))
    )
    assert sample_size_offline(epsilon, delta, num_tags, max_k, vertices) == expected


def test_sample_size_offline_grows_with_max_k():
    small = sample_size_offline(0.7, 1000.0, 50, 1, 100)
    large = sample_size_offline(0.7, 1000.0, 50, 5, 100)
    assert large > small


def test_budget_defaults_match_paper():
    budget = SampleBudget()
    assert budget.epsilon == 0.7
    assert budget.delta == 1000.0
    assert budget.k == 3


def test_budget_caps_and_floors_sample_counts():
    budget = SampleBudget(num_tags=50, k=3, max_samples=500, min_samples=64)
    assert budget.online_samples(10**6) == 500
    assert budget.online_samples(0) >= 64
    assert budget.offline_samples(10**6) == 500


def test_budget_no_cap_when_disabled():
    budget = SampleBudget(num_tags=10, k=2, max_samples=None, min_samples=1)
    assert budget.online_samples(100) == sample_size_online(0.7, 1000.0, 10, 2, 100)


def test_budget_validation():
    with pytest.raises(InvalidParameterError):
        SampleBudget(epsilon=1.5)
    with pytest.raises(InvalidParameterError):
        SampleBudget(delta=0.5)
    with pytest.raises(InvalidParameterError):
        SampleBudget(k=0)
    with pytest.raises(InvalidParameterError):
        SampleBudget(max_samples=0)


def test_budget_approximation_ratio():
    budget = SampleBudget(epsilon=0.5)
    assert budget.approximation_ratio() == pytest.approx(1.0 / 3.0)


def test_budget_with_overrides_copies():
    budget = SampleBudget(epsilon=0.7, k=3)
    other = budget.with_overrides(epsilon=0.3, k=2)
    assert other.epsilon == 0.3 and other.k == 2
    assert budget.epsilon == 0.7 and budget.k == 3


def test_zero_posterior_fast_path(small_graph):
    """A tag set supported by no topic returns spread 1 with zero samples."""
    import numpy as np

    from repro.sampling.monte_carlo import MonteCarloEstimator
    from repro.topics.model import TagTopicModel

    matrix = np.array([[1.0, 0.0, 0.0], [0.0, 1.0, 0.0]])
    model = TagTopicModel(matrix)
    estimator = MonteCarloEstimator(small_graph, model, SampleBudget(num_tags=2, k=2, max_samples=50), seed=1)
    estimate = estimator.estimate(0, (0, 1))
    assert estimate.value == 1.0
    assert estimate.num_samples == 0
    assert estimate.edges_visited == 0


def test_influence_estimate_dataclass_defaults():
    estimate = InfluenceEstimate(value=2.5, num_samples=10)
    assert estimate.edges_visited == 0
    assert estimate.method == ""
