"""Tests for the fingerprint-keyed answer cache and its service integration.

Unit coverage for :mod:`repro.serve.answers` (LRU behaviour, byte accounting,
epoch invalidation, single-flight determinism, telemetry mirroring) plus the
tentpole's end-to-end gate: a cached service replay must answer bitwise
identically to the uncached oracle, with hits split out of the execute
percentiles and a hit rate that rises with the workload's zipf skew.
"""

import pickle
import threading
import time

import pytest

from repro.core.engine import PitexEngine
from repro.datasets.synthetic import load_dataset
from repro.exceptions import InvalidParameterError
from repro.obs.telemetry import Telemetry, get_telemetry, install
from repro.serve.answers import AnswerCache, answer_digest, answer_key
from repro.serve.replay import replay_stream
from repro.serve.service import PitexService, QueryRequest


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("lastfm", scale=0.08, seed=11)


def make_engine(dataset, seed=7):
    return PitexEngine(
        dataset.graph, dataset.model, max_samples=40, index_samples=40, default_k=2, seed=seed
    )


def key_for(engine_key="e", version=1, model_hash="m", fingerprint="fp"):
    return (engine_key, version, model_hash, fingerprint)


# ------------------------------------------------------------------ unit: LRU
def test_answer_cache_hit_miss_and_telemetry_mirror():
    previous = install(Telemetry())
    try:
        cache = AnswerCache(capacity=4)
        result, hit = cache.get_or_compute(key_for(fingerprint="a"), lambda: "answer-a")
        assert (result, hit) == ("answer-a", False)
        result, hit = cache.get_or_compute(
            key_for(fingerprint="a"), lambda: pytest.fail("compute re-ran on a hit")
        )
        assert (result, hit) == ("answer-a", True)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5
        assert cache.stats.bytes_cached == len(pickle.dumps("answer-a"))
        counters = get_telemetry().counters()
        assert counters["answer_cache.hit"] == 1
        assert counters["answer_cache.miss"] == 1
        assert counters["answer_cache.bytes"] == cache.stats.bytes_cached
        assert cache.stats.as_dict() == {
            "hits": 1,
            "misses": 1,
            "evictions": 0,
            "invalidations": 0,
            "bytes_cached": cache.stats.bytes_cached,
            "single_flight_waits": 0,
        }
    finally:
        install(previous)


def test_answer_cache_lru_eviction_and_byte_accounting():
    previous = install(Telemetry())
    try:
        cache = AnswerCache(capacity=2)
        for name in ("a", "b", "c"):
            cache.get_or_compute(key_for(fingerprint=name), lambda name=name: f"answer-{name}")
        assert cache.stats.evictions == 1
        assert len(cache) == 2
        # "a" was least recently used; "b" and "c" stay resident.
        _, hit = cache.get_or_compute(key_for(fingerprint="b"), lambda: "rebuilt-b")
        assert hit
        _, hit = cache.get_or_compute(key_for(fingerprint="a"), lambda: "rebuilt-a")
        assert not hit  # evicted earlier, so it recomputes (and evicts "c")
        assert cache.stats.evictions == 2
        resident = len(pickle.dumps("answer-b")) + len(pickle.dumps("rebuilt-a"))
        assert cache.stats.bytes_cached == resident
        assert get_telemetry().counters()["answer_cache.eviction"] == 2
    finally:
        install(previous)


def test_answer_cache_rejects_nonpositive_capacity():
    with pytest.raises(InvalidParameterError):
        AnswerCache(capacity=0)


# --------------------------------------------------------- unit: invalidation
def test_answer_cache_invalidates_on_epoch_roll():
    """A new (graph.version, model hash) epoch sweeps the stale entries."""
    previous = install(Telemetry())
    try:
        cache = AnswerCache(capacity=8)
        cache.get_or_compute(key_for(version=1, fingerprint="a"), lambda: "v1-a")
        cache.get_or_compute(key_for(version=1, fingerprint="b"), lambda: "v1-b")
        cache.get_or_compute(key_for("other", version=1, fingerprint="a"), lambda: "other-a")
        # First lookup at version 2 rolls the epoch for engine key "e" only.
        result, hit = cache.get_or_compute(key_for(version=2, fingerprint="a"), lambda: "v2-a")
        assert (result, hit) == ("v2-a", False)
        assert cache.stats.invalidations == 2  # both v1 entries of "e"
        assert get_telemetry().counters()["answer_cache.invalidation"] == 2
        # The stale v1 entry can never hit again even if asked for directly.
        result, hit = cache.get_or_compute(key_for(version=1, fingerprint="a"), lambda: "v1-a2")
        assert not hit
        # The other engine key's epoch was untouched.
        _, hit = cache.get_or_compute(key_for("other", version=1, fingerprint="a"), lambda: None)
        assert hit
    finally:
        install(previous)


def test_answer_cache_clear_counts_invalidations():
    previous = install(Telemetry())
    try:
        cache = AnswerCache(capacity=4)
        for name in ("a", "b", "c"):
            cache.get_or_compute(key_for(fingerprint=name), lambda name=name: f"answer-{name}")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.invalidations == 3
        assert cache.stats.bytes_cached == 0
        assert get_telemetry().counters()["answer_cache.invalidation"] == 3
        # Stats survive the clear; the next lookup is a clean miss.
        _, hit = cache.get_or_compute(key_for(fingerprint="a"), lambda: "again")
        assert not hit
    finally:
        install(previous)


# -------------------------------------------------------- unit: single-flight
def test_answer_cache_single_flight_computes_once_and_waits_stay_local():
    """Concurrent misses on one key: one compute, the rest wait then hit.

    The deterministic-accounting contract: U unique keys and N occurrences
    record exactly U misses and N - U hits no matter the interleaving, and
    the waits are visible in stats but never mirrored into telemetry (they
    are scheduling noise).
    """
    previous = install(Telemetry())
    try:
        cache = AnswerCache(capacity=4)
        compute_calls = []
        compute_started = threading.Event()

        def slow_compute():
            compute_calls.append(threading.get_ident())
            compute_started.set()
            time.sleep(0.05)  # hold the gate while the waiters pile up
            return "shared-answer"

        results = [None] * 4

        def owner():
            results[0] = cache.get_or_compute(key_for(), slow_compute)

        def waiter(slot):
            compute_started.wait(timeout=5.0)
            results[slot] = cache.get_or_compute(
                key_for(), lambda: pytest.fail("waiter must not compute")
            )

        threads = [threading.Thread(target=owner)]
        threads += [threading.Thread(target=waiter, args=(slot,)) for slot in (1, 2, 3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(compute_calls) == 1
        assert all(result == ("shared-answer", slot > 0) for slot, result in enumerate(results))
        assert cache.stats.misses == 1
        assert cache.stats.hits == 3
        counters = get_telemetry().counters()
        assert counters["answer_cache.miss"] == 1
        assert counters["answer_cache.hit"] == 3
        assert "answer_cache.single_flight_wait" not in counters
    finally:
        install(previous)


def test_answer_cache_failure_propagates_and_is_not_cached():
    cache = AnswerCache(capacity=4)
    attempts = []

    def flaky():
        attempts.append(1)
        if len(attempts) == 1:
            raise RuntimeError("transient")
        return "recovered"

    with pytest.raises(RuntimeError):
        cache.get_or_compute(key_for(), flaky)
    result, hit = cache.get_or_compute(key_for(), flaky)
    assert (result, hit) == ("recovered", False)
    assert len(attempts) == 2
    assert cache.stats.misses == 2


# ------------------------------------------------------------- keys & digests
def test_answer_key_resolves_budget_defaults(dataset):
    engine = make_engine(dataset)
    user = dataset.workload("mid", 1)[0]
    defaulted = QueryRequest(user=user, k=None, method="lazy")
    explicit = QueryRequest(
        user=user,
        k=engine.budget.k,
        method="lazy",
        epsilon=engine.budget.epsilon,
        delta=engine.budget.delta,
    )
    assert answer_key(engine, defaulted) == answer_key(engine, explicit)
    assert answer_key(engine, defaulted) != answer_key(
        engine, QueryRequest(user=user, k=None, method="indexest")
    )
    key = answer_key(engine, defaulted, engine_key="override")
    assert key[0] == "override"
    assert key[1] == engine.graph.version
    assert key[2] == engine.model.content_hash()


def test_answer_digest_orders_and_marks_failures(dataset):
    engine = make_engine(dataset).freeze(methods=["lazy"])
    users = dataset.workload("mid", 2)
    results = [engine.query(user=user, k=2, method="lazy") for user in users]
    assert answer_digest(results) == answer_digest(list(results))
    assert answer_digest(results) != answer_digest(list(reversed(results)))
    assert answer_digest([results[0], None]) != answer_digest([results[0], results[1]])


# -------------------------------------------------------- service integration
def test_cached_replay_is_bitwise_equal_to_uncached_oracle(dataset):
    """The tentpole gate: memoized answers == the no-cache oracle, byte for byte."""
    engine = make_engine(dataset).freeze(methods=["indexest"], ks=[2])
    stream = dataset.query_workload.query_stream(20, seed=5, zipf_s=1.2)
    unique = len({user for _, user in stream})
    assert unique < len(stream)  # the zipf skew must actually create repeats

    with PitexService.for_engine(engine, num_workers=2, max_batch=4) as service:
        oracle = replay_stream(service, stream, method="indexest", k=2)
    assert oracle.failures == 0
    assert oracle.cache_hits == 0
    assert oracle.warm.count == 0

    cache = AnswerCache()
    with PitexService.for_engine(
        engine, num_workers=2, max_batch=4, answer_cache=cache
    ) as service:
        cached = replay_stream(service, stream, method="indexest", k=2)
    assert cached.failures == 0
    assert cached.answers_digest == oracle.answers_digest
    # Single-flight accounting: exactly one miss per unique fingerprint.
    assert cache.stats.misses == unique
    assert cache.stats.hits == len(stream) - unique
    assert cached.cache_hits == len(stream) - unique
    assert cached.hit_rate == pytest.approx((len(stream) - unique) / len(stream))
    assert cached.cold.count == unique
    assert cached.warm.count == len(stream) - unique

    # The metrics split: hits never pollute the execute percentiles.
    snapshot = service.metrics.snapshot()
    assert snapshot["execute"]["count"] == unique
    assert snapshot["answer_hits"]["count"] == len(stream) - unique
    assert snapshot["latency"]["count"] == len(stream)


def test_unfrozen_engine_never_consults_the_answer_cache(dataset):
    """Unfrozen answers are not pure functions of the fingerprint: no caching."""
    engine = make_engine(dataset)
    user = dataset.workload("mid", 1)[0]
    cache = AnswerCache()
    with PitexService.for_engine(engine, answer_cache=cache) as service:
        for _ in range(2):
            response = service.submit(QueryRequest(user=user, k=2, method="lazy")).result()
            assert response.ok and not response.cache_hit
    assert len(cache) == 0
    assert cache.stats.hits == cache.stats.misses == 0


def test_cache_hits_skip_query_telemetry_and_spans(dataset):
    """A hit never touches the engine: no query.* counters, no execute span."""
    from repro.obs.trace import TraceRecorder, install_recorder

    engine = make_engine(dataset).freeze(methods=["lazy"], ks=[2])
    user = dataset.workload("mid", 1)[0]
    previous = install(Telemetry())
    recorder = TraceRecorder()
    previous_recorder = install_recorder(recorder)
    try:
        with PitexService.for_engine(engine, answer_cache=AnswerCache()) as service:
            for _ in range(3):
                assert service.submit(QueryRequest(user=user, k=2, method="lazy")).result().ok
        counters = get_telemetry().counters()
        assert counters["query.count"] == 1  # only the miss executed
        assert counters["answer_cache.miss"] == 1
        assert counters["answer_cache.hit"] == 2
    finally:
        install_recorder(previous_recorder)
        install(previous)
    assert len(recorder.spans()) == 1  # one execute span for the one miss


def test_hit_rate_rises_with_zipf_skew(dataset):
    """Satellite: the answer-cache hit rate is monotone in the zipf exponent."""
    engine = make_engine(dataset).freeze(methods=["lazy"], ks=[2])
    rates = []
    for zipf_s in (0.0, 0.9, 2.0):
        stream = dataset.query_workload.query_stream(30, seed=17, zipf_s=zipf_s)
        with PitexService.for_engine(engine, answer_cache=AnswerCache()) as service:
            report = replay_stream(service, stream, method="lazy", k=2)
        assert report.failures == 0
        unique = len({user for _, user in stream})
        assert report.hit_rate == pytest.approx(1.0 - unique / len(stream))
        rates.append(report.hit_rate)
    assert rates[0] <= rates[1] <= rates[2]
    assert rates[2] > rates[0], "zipf skew never moved the hit rate"


# ---------------------------------------------------- freeze-time user tables
def test_freeze_builds_per_user_tables_and_thaw_drops_them(dataset):
    engine = make_engine(dataset)
    assert engine.frozen_user_tables is None
    engine.freeze(methods=["indexest+", "delaymat"], ks=[2])
    tables = engine.frozen_user_tables
    assert tables is not None
    assert tables.pruning and tables.delayed_graphs and tables.delayed_filters
    sizes = tables.num_users()
    assert sizes["indexest+"] > 0 and sizes["delaymat"] > 0
    engine.thaw()
    assert engine.frozen_user_tables is None


def test_freeze_without_table_methods_or_disabled_skips_tables(dataset):
    engine = make_engine(dataset).freeze(methods=["lazy"], ks=[2])
    assert engine.frozen_user_tables is None  # no table-backed method warmed
    engine.thaw()
    engine.freeze(methods=["indexest+"], ks=[2], precompute_tables=False)
    assert engine.frozen_user_tables is None


def test_precomputed_tables_answer_bitwise_like_lazy_derivation(dataset):
    """IndexEst+ tables are bitwise-neutral: with vs without precompute agree."""
    users = dataset.workload("mid", 3)

    def answers(precompute):
        engine = make_engine(dataset).freeze(
            methods=["indexest+"], ks=[2], precompute_tables=precompute
        )
        return [
            (result.tag_ids, result.spread, result.samples_drawn, result.edges_visited)
            for result in (
                engine.query(user=user, k=2, method="indexest+") for user in users
            )
        ]

    assert answers(True) == answers(False)


def test_delaymat_tables_are_replica_consistent(dataset):
    """Two same-seed frozen engines share identical precomputed delaymat answers."""
    users = dataset.workload("mid", 2)

    def answers():
        engine = make_engine(dataset, seed=7).freeze(methods=["delaymat"], ks=[2])
        assert engine.frozen_user_tables.delayed_graphs
        return [
            (result.tag_ids, result.spread, result.samples_drawn)
            for result in (
                engine.query(user=user, k=2, method="delaymat") for user in users
            )
        ]

    assert answers() == answers()
