"""Tests for repro.graph.generators and repro.graph.io."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graph.generators import (
    celebrity_hub_graph,
    complete_topic_graph,
    line_graph,
    power_law_topic_graph,
    random_topic_graph,
    star_fan_out_graph,
)
from repro.graph.io import load_edge_list, save_edge_list


def test_star_fan_out_graph_matches_fig3a():
    graph = star_fan_out_graph(10)
    assert graph.num_vertices == 11
    assert graph.num_edges == 10
    assert graph.out_degree(0) == 10
    for edge in graph.edges():
        assert graph.max_edge_probability(edge.edge_id) == pytest.approx(0.1)


def test_celebrity_hub_graph_matches_fig3b():
    n = 8
    graph = celebrity_hub_graph(n)
    assert graph.num_vertices == 2 * n + 1
    assert graph.out_degree(0) == n           # celebrity -> followers with prob 1
    assert graph.in_degree(0) == n            # ordinary users -> celebrity with prob 1/n
    follower_edge = graph.edge_id(0, 1)
    assert graph.max_edge_probability(follower_edge) == pytest.approx(1.0)
    ordinary_edge = graph.edge_id(n + 1, 0)
    assert graph.max_edge_probability(ordinary_edge) == pytest.approx(1.0 / n)


def test_line_and_complete_graphs():
    line = line_graph(5, probability=0.7, num_topics=2)
    assert line.num_edges == 4
    complete = complete_topic_graph(4, 2, probability=0.2)
    assert complete.num_edges == 12


def test_random_topic_graph_probabilities_in_range():
    graph = random_topic_graph(20, 3, edge_probability=0.2, seed=1)
    matrix = graph.probability_matrix
    assert matrix.shape[1] == 3
    assert np.all(matrix >= 0.0) and np.all(matrix <= 1.0)


def test_random_topic_graph_reproducible():
    a = random_topic_graph(15, 2, edge_probability=0.3, seed=42)
    b = random_topic_graph(15, 2, edge_probability=0.3, seed=42)
    assert a.num_edges == b.num_edges
    assert np.allclose(a.probability_matrix, b.probability_matrix)


def test_power_law_graph_density_and_skew():
    graph = power_law_topic_graph(300, 5.0, 4, seed=9)
    density = graph.density()
    assert 3.5 <= density <= 6.5
    in_degrees = graph.in_degrees()
    # heavy tail: the most popular vertex receives far more than the average
    assert in_degrees.max() >= 4 * max(1.0, in_degrees.mean())


def test_power_law_graph_rejects_tiny_instances():
    with pytest.raises(ValueError):
        power_law_topic_graph(2, 2.0, 2)


def test_power_law_graph_reproducible():
    a = power_law_topic_graph(100, 4.0, 3, seed=7)
    b = power_law_topic_graph(100, 4.0, 3, seed=7)
    assert a.num_edges == b.num_edges
    assert np.allclose(a.probability_matrix, b.probability_matrix)


def test_edge_list_roundtrip(tmp_path):
    graph = random_topic_graph(10, 2, edge_probability=0.3, seed=3)
    path = tmp_path / "graph.txt"
    save_edge_list(graph, path)
    loaded = load_edge_list(path)
    assert loaded.num_vertices == graph.num_vertices
    assert loaded.num_edges == graph.num_edges
    assert loaded.num_topics == graph.num_topics
    for edge in graph.edges():
        assert loaded.has_edge(edge.source, edge.target)
        original = graph.topic_probabilities(edge.edge_id)
        reloaded = loaded.topic_probabilities(loaded.edge_id(edge.source, edge.target))
        assert np.allclose(original, reloaded)


def test_edge_list_preserves_labels(tmp_path):
    graph = line_graph(3, probability=0.5)
    graph.vertex_labels[0] = "alice"
    path = tmp_path / "labelled.txt"
    save_edge_list(graph, path)
    loaded = load_edge_list(path)
    assert loaded.label_of(0) == "alice"
    assert loaded.label_of(1) == "u1"


def test_load_edge_list_rejects_foreign_files(tmp_path):
    path = tmp_path / "not_a_graph.txt"
    path.write_text("hello world\n")
    with pytest.raises(GraphError):
        load_edge_list(path)


def test_load_edge_list_rejects_malformed_edges(tmp_path):
    path = tmp_path / "broken.txt"
    path.write_text("# pitex-graph v1\n# vertices 3 topics 2\n0 1 0.5\n")
    with pytest.raises(GraphError):
        load_edge_list(path)
