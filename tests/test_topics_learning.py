"""Tests for the action log, the TIC learner and the LDA implementation."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.graph.generators import random_topic_graph
from repro.topics.action_log import Action, ActionLog, generate_action_log
from repro.topics.lda import LatentDirichletAllocation
from repro.topics.model import TagTopicModel
from repro.topics.tic_learner import learn_tic_model


@pytest.fixture
def learning_setup():
    graph = random_topic_graph(30, 3, edge_probability=0.15, base_probability=0.5, seed=21)
    matrix = np.array(
        [
            [0.9, 0.0, 0.0],
            [0.8, 0.1, 0.0],
            [0.0, 0.9, 0.0],
            [0.0, 0.7, 0.2],
            [0.0, 0.0, 0.9],
            [0.1, 0.0, 0.8],
        ]
    )
    model = TagTopicModel(matrix)
    log = generate_action_log(graph, model, num_items=40, tags_per_item=2, seeds_per_item=2, seed=5)
    return graph, model, log


def test_action_log_bookkeeping():
    log = ActionLog()
    log.add_item(0, (1, 2))
    log.add_item(1, (3,))
    log.add_action(5, 0, 0)
    log.add_action(6, 0, 1)
    log.add_action(5, 1, 0)
    assert log.num_items == 2
    assert log.num_actions == 3
    assert log.adopters(0) == {5, 6}
    assert log.items_of_user(5) == {0, 1}
    grouped = log.actions_by_item()
    assert [a.user for a in grouped[0]] == [5, 6]
    assert list(iter(log))[0] == Action(user=5, item=0, time=0)


def test_generate_action_log_structure(learning_setup):
    graph, model, log = learning_setup
    assert log.num_items == 40
    assert log.num_actions >= 40  # at least the seeds
    for item, tags in log.item_tags.items():
        assert 1 <= len(tags) <= 2
        assert all(0 <= t < model.num_tags for t in tags)
    for action in log:
        assert 0 <= action.user < graph.num_vertices
        assert action.time >= 0


def test_generate_action_log_reproducible(learning_setup):
    graph, model, _ = learning_setup
    a = generate_action_log(graph, model, num_items=10, seed=3)
    b = generate_action_log(graph, model, num_items=10, seed=3)
    assert [(x.user, x.item, x.time) for x in a] == [(x.user, x.item, x.time) for x in b]


def test_learn_tic_model_shapes_and_ranges(learning_setup):
    graph, model, log = learning_setup
    result = learn_tic_model(graph, log, num_topics=3, num_tags=model.num_tags, iterations=3)
    assert result.graph.num_vertices == graph.num_vertices
    assert result.graph.num_edges == graph.num_edges
    assert result.graph.num_topics == 3
    learned = result.graph.probability_matrix
    assert np.all(learned >= 0.0) and np.all(learned <= 0.9)
    assert result.model.num_tags == model.num_tags
    assert result.model.num_topics == 3
    assert result.topic_responsibilities.shape[1] == 3
    assert result.iterations >= 1


def test_learn_tic_model_recovers_active_edges(learning_setup):
    """Edges along which propagation was observed should get positive probability."""
    graph, model, log = learning_setup
    result = learn_tic_model(graph, log, num_topics=3, num_tags=model.num_tags)
    learned_max = result.graph.max_edge_probabilities()
    # At least some edges are learned to be influential (the log is non-trivial).
    assert learned_max.max() > 0.0


def test_learn_tic_model_rejects_empty_log(learning_setup):
    graph, _, _ = learning_setup
    with pytest.raises(ModelError):
        learn_tic_model(graph, ActionLog(), num_topics=2)
    with pytest.raises(ModelError):
        learn_tic_model(graph, ActionLog(), num_topics=0)


def test_lda_recovers_block_structure():
    """Two disjoint tag communities should end up dominated by different topics."""
    rng = np.random.default_rng(0)
    documents = []
    for _ in range(40):
        documents.append(list(rng.choice([0, 1, 2], size=6)))
    for _ in range(40):
        documents.append(list(rng.choice([3, 4, 5], size=6)))
    lda = LatentDirichletAllocation(num_topics=2, iterations=30, seed=1)
    result = lda.fit(documents, num_tags=6)
    assert result.tag_topic.shape == (6, 2)
    assert np.allclose(result.tag_topic.sum(axis=0), 1.0)
    assert np.allclose(result.document_topic.sum(axis=1), 1.0)
    # Documents from the two halves should lean towards different topics.
    first_half = result.document_topic[:40].mean(axis=0)
    second_half = result.document_topic[40:].mean(axis=0)
    assert np.argmax(first_half) != np.argmax(second_half)
    # The likelihood trace should not collapse.
    assert result.log_likelihood_trace[-1] >= result.log_likelihood_trace[0] - 1e-6


def test_lda_to_model_roundtrip():
    documents = [[0, 1], [1, 2], [2, 0], [3, 3]]
    lda = LatentDirichletAllocation(num_topics=2, iterations=10, seed=2)
    result = lda.fit(documents)
    model = result.to_model(tags=["a", "b", "c", "d"])
    assert model.num_tags == 4
    assert model.num_topics == 2
    posterior = model.topic_posterior(("a",))
    assert posterior.sum() == pytest.approx(1.0)


def test_lda_input_validation():
    with pytest.raises(ModelError):
        LatentDirichletAllocation(num_topics=0)
    with pytest.raises(ModelError):
        LatentDirichletAllocation(num_topics=2, alpha=0.0)
    lda = LatentDirichletAllocation(num_topics=2, iterations=2, seed=0)
    with pytest.raises(ModelError):
        lda.fit([])
    with pytest.raises(ModelError):
        lda.fit([[0, 1]], num_tags=1)
