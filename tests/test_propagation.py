"""Tests for the propagation models (IC, LT, triggering) and the exact oracle."""

import numpy as np
import pytest

from repro.exceptions import EstimationError
from repro.graph.digraph import TopicSocialGraph
from repro.graph.generators import line_graph, random_topic_graph, star_fan_out_graph
from repro.propagation.cascade import CascadeTrace
from repro.propagation.exact import (
    exact_activation_probabilities,
    exact_best_tag_set,
    exact_influence_spread,
)
from repro.propagation.ic import IndependentCascadeModel, simulate_ic_cascade
from repro.propagation.lt import LinearThresholdModel, simulate_lt_cascade
from repro.propagation.triggering import (
    TriggeringModel,
    exclusive_triggering_sampler,
    simulate_triggering_cascade,
)
from repro.topics.model import TagTopicModel
from repro.utils.rng import RandomSource


def test_cascade_trace_bookkeeping():
    trace = CascadeTrace(seeds={0})
    trace.activation_step = {0: 0, 1: 1, 2: 1, 3: 2}
    assert trace.size == 4
    assert trace.num_steps == 2
    assert trace.activated_at(1) == [1, 2]
    assert trace.frontier_sizes() == [1, 2, 1]


def test_ic_deterministic_line_activates_everything(deterministic_line):
    probabilities = np.ones(deterministic_line.num_edges)
    trace = simulate_ic_cascade(deterministic_line, [0], probabilities, RandomSource(1))
    assert trace.size == 5
    assert trace.activation_step[4] == 4


def test_ic_zero_probabilities_only_seed(deterministic_line):
    probabilities = np.zeros(deterministic_line.num_edges)
    trace = simulate_ic_cascade(deterministic_line, [0], probabilities, RandomSource(1))
    assert trace.activated == {0}


def test_ic_max_steps_caps_depth(deterministic_line):
    probabilities = np.ones(deterministic_line.num_edges)
    trace = simulate_ic_cascade(deterministic_line, [0], probabilities, RandomSource(1), max_steps=2)
    assert trace.size == 3


def test_ic_multiple_seeds(deterministic_line):
    probabilities = np.zeros(deterministic_line.num_edges)
    trace = simulate_ic_cascade(deterministic_line, [0, 3], probabilities, RandomSource(1))
    assert trace.activated == {0, 3}


def test_ic_estimate_matches_exact_on_line():
    graph = line_graph(4, probability=0.5)
    probabilities = np.full(3, 0.5)
    model = IndependentCascadeModel(graph, seed=7)
    estimate = model.estimate_spread([0], probabilities, num_samples=8000)
    exact = exact_influence_spread(graph, 0, probabilities)
    assert estimate == pytest.approx(exact, rel=0.05)


def test_ic_activation_frequencies_match_exact():
    graph = line_graph(3, probability=0.6)
    probabilities = np.full(2, 0.6)
    model = IndependentCascadeModel(graph, seed=3)
    frequencies = model.activation_frequencies([0], probabilities, num_samples=8000)
    exact = exact_activation_probabilities(graph, 0, probabilities)
    assert np.allclose(frequencies, exact, atol=0.03)


def test_exact_influence_on_star():
    graph = star_fan_out_graph(5)  # each edge probability 1/5
    probabilities = graph.max_edge_probabilities()
    exact = exact_influence_spread(graph, 0, probabilities)
    assert exact == pytest.approx(1.0 + 5 * 0.2)


def test_exact_influence_rejects_large_instances():
    graph = random_topic_graph(30, 2, edge_probability=0.5, seed=1)
    probabilities = np.full(graph.num_edges, 0.5)
    with pytest.raises(EstimationError):
        exact_influence_spread(graph, 0, probabilities)


def test_exact_best_tag_set_tiny_instance():
    graph = TopicSocialGraph(3, 2)
    graph.add_edge(0, 1, [0.9, 0.0])
    graph.add_edge(0, 2, [0.0, 0.9])
    model = TagTopicModel(np.array([[1.0, 0.0], [0.0, 1.0]]))
    best_tags, best_spread = exact_best_tag_set(graph, model, 0, 1)
    assert best_spread == pytest.approx(1.9)
    assert best_tags in ((0,), (1,))


def test_lt_deterministic_when_weights_saturate():
    graph = line_graph(4, probability=1.0)
    probabilities = np.ones(3)
    trace = simulate_lt_cascade(graph, [0], probabilities, RandomSource(5))
    assert trace.size == 4


def test_lt_weight_normalization_keeps_incoming_mass_bounded():
    graph = TopicSocialGraph(4, 1)
    graph.add_edge(0, 3, [0.9])
    graph.add_edge(1, 3, [0.9])
    graph.add_edge(2, 3, [0.9])
    model = LinearThresholdModel(graph, seed=11)
    spread = model.estimate_spread([0], np.full(3, 0.9), num_samples=4000)
    # Only vertex 0 is seeded; normalized weight of (0,3) is 0.3, so the spread
    # should hover around 1.3 rather than 1.9.
    assert 1.15 <= spread <= 1.45


def test_triggering_ic_sampler_matches_ic_distribution():
    graph = line_graph(3, probability=0.5)
    probabilities = np.full(2, 0.5)
    model = TriggeringModel(graph, seed=13)
    spread = model.estimate_spread([0], probabilities, num_samples=8000)
    exact = exact_influence_spread(graph, 0, probabilities)
    assert spread == pytest.approx(exact, rel=0.06)


def test_triggering_exclusive_sampler_runs():
    graph = random_topic_graph(15, 2, edge_probability=0.3, seed=2)
    probabilities = graph.max_edge_probabilities()
    trace = simulate_triggering_cascade(
        graph, [0], probabilities, RandomSource(3), sampler=exclusive_triggering_sampler
    )
    assert 0 in trace.activated
    assert trace.size >= 1


def test_models_record_edge_probes(deterministic_line):
    probabilities = np.ones(deterministic_line.num_edges)
    ic_trace = simulate_ic_cascade(deterministic_line, [0], probabilities, RandomSource(1))
    lt_trace = simulate_lt_cascade(deterministic_line, [0], probabilities, RandomSource(1))
    assert ic_trace.edges_probed == deterministic_line.num_edges
    assert lt_trace.edges_probed == deterministic_line.num_edges
