"""Fork-safety / equivalence tests for the process-sharded serving backend.

The contract under test (``repro.serve.sharded``): a frozen engine replica
reconstructed in another process from the :class:`IndexStore` -- shared graph
bundle plus offline indexes, all through read-only ``mmap`` -- answers
bitwise identically to the in-process thread oracle, because a frozen
engine's answer is a pure function of ``(engine seed, query fingerprint)``.

Three failure families are pinned alongside the happy path:

* *mapping*: ``to_shared_arrays``/``from_shared_arrays`` round-trip the graph
  exactly, ``mmap`` and in-memory replicas agree, and the mapped arrays are
  genuinely read-only;
* *death*: a killed worker surfaces a clean ``WorkerError``-tagged response
  (never a hang), in-flight and after the fact, while surviving shards keep
  serving; a broken spec fails construction with the worker's real error;
* *accounting*: per-worker latency shards merge into the parent metrics on
  close, and replay reports carry ``backend`` + ``host_cores``.

The worker loop (:func:`_serve_requests`, :func:`_worker_main`) is also
driven in-process over real ``multiprocessing`` pipes, so its branches --
including the unpicklable-result degrade path -- are exercised under
coverage, which cannot see forked children.
"""

import dataclasses
import os
import threading

import multiprocessing
import numpy as np
import pytest

from repro.core.engine import PitexEngine
from repro.datasets.synthetic import load_dataset
from repro.exceptions import GraphError, StoreError, WorkerError
from repro.graph.digraph import TopicSocialGraph
from repro.obs.telemetry import Telemetry, get_telemetry, install
from repro.serve.replay import replay_stream
from repro.serve.service import PitexService, QueryRequest
from repro.serve.sharded import (
    EngineSpec,
    ProcessShardedService,
    _serve_requests,
    _worker_main,
    build_engine_from_spec,
    publish_engine_spec,
)
from repro.serve.store import IndexStore, graph_bundle_key

METHODS = ("indexest", "indexest+", "delaymat")
ENGINE_SEED = 7


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("lastfm", scale=0.08, seed=11)


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    return IndexStore(tmp_path_factory.mktemp("pitex-process-store"))


@pytest.fixture(scope="module")
def spec(dataset, store):
    return publish_engine_spec(
        store,
        dataset.graph,
        dataset.model,
        engine_seed=ENGINE_SEED,
        index_samples=50,
        methods=METHODS,
        ks=(2,),
        max_samples=40,
        default_k=2,
        index_seed=11,
    )


@pytest.fixture(scope="module")
def reference_engine(dataset, store, spec):
    """The in-process oracle: same seed, same store-built indexes, frozen."""
    graph, model = dataset.graph, dataset.model
    rr_index = store.load_rr_index(graph, model, 50)
    delayed_index = store.load_delayed_index(graph, model, 50)
    engine = PitexEngine(
        graph,
        model,
        max_samples=40,
        index_samples=50,
        default_k=2,
        seed=ENGINE_SEED,
        rr_index=rr_index,
        delayed_index=delayed_index,
    )
    return engine.freeze(methods=METHODS, ks=(2,))


def answer_plan(engine, users):
    """Bitwise-comparable answers for every (user, method) pair."""
    return [
        (user, method) + facet(engine.query(user=user, k=2, method=method))
        for user in users
        for method in METHODS
    ]


def facet(result):
    return (result.tag_ids, result.spread, result.samples_drawn, result.edges_visited)


# ----------------------------------------------------------- shared arrays
def test_graph_shared_arrays_roundtrip_is_exact(dataset):
    graph = dataset.graph
    arrays = graph.to_shared_arrays()
    rebuilt = TopicSocialGraph.from_shared_arrays(arrays)
    assert rebuilt.fingerprint() == graph.fingerprint()
    assert rebuilt.version == graph.version
    assert rebuilt.num_vertices == graph.num_vertices
    assert rebuilt.num_edges == graph.num_edges
    np.testing.assert_array_equal(rebuilt.csr.out_indptr, graph.csr.out_indptr)
    np.testing.assert_array_equal(rebuilt.csr.in_indptr, graph.csr.in_indptr)
    np.testing.assert_array_equal(rebuilt.probability_matrix, graph.probability_matrix)


def test_graph_shared_arrays_header_mismatch_raises(dataset):
    arrays = dict(dataset.graph.to_shared_arrays())
    header = arrays["shape"].copy()
    header[2] += 1  # claim one more edge than the arrays carry
    arrays["shape"] = header
    with pytest.raises(GraphError):
        TopicSocialGraph.from_shared_arrays(arrays)


def test_graph_bundle_mmap_arrays_are_read_only(dataset, store, spec):
    graph, model, manifest = store.load_graph_bundle(spec.bundle_key, mmap=True)
    assert manifest["graph_fingerprint"] == dataset.graph.fingerprint()
    assert isinstance(graph.probability_matrix, np.memmap)
    with pytest.raises(ValueError):
        graph.probability_matrix[0, 0] = 0.5
    assert model.content_hash() == dataset.model.content_hash()


def test_graph_bundle_key_is_stable_and_save_idempotent(dataset, store, spec):
    key = graph_bundle_key(dataset.graph, dataset.model)
    assert key == spec.bundle_key
    assert store.save_graph_bundle(dataset.graph, dataset.model).key == key


def test_load_graph_bundle_missing_key_raises(store):
    with pytest.raises(StoreError):
        store.load_graph_bundle("0" * 32)


# ----------------------------------------------------------- replica builds
def test_mmap_and_in_memory_replicas_match_reference(reference_engine, spec, dataset):
    users = dataset.workload("mid", 3) + dataset.workload("low", 1)
    oracle = answer_plan(reference_engine, users)
    mapped = build_engine_from_spec(spec)
    in_memory = build_engine_from_spec(dataclasses.replace(spec, mmap=False))
    assert answer_plan(mapped, users) == oracle
    assert answer_plan(in_memory, users) == oracle
    assert mapped.freeze_guard.violations == []


def test_build_engine_from_spec_missing_index_raises(spec):
    broken = dataclasses.replace(spec, index_samples=51)  # never persisted
    with pytest.raises(StoreError):
        build_engine_from_spec(broken)


# ------------------------------------------------------------- full service
def test_process_replay_bitwise_equals_thread_oracle(dataset, reference_engine, spec):
    stream = dataset.query_workload.query_stream(24, seed=13)
    with PitexService.for_engine(reference_engine, num_workers=1, max_batch=4) as service:
        oracle = replay_stream(service, stream, method="indexest+", k=2)
    oracle_telemetry = service.metrics.telemetry()
    assert oracle.failures == 0

    with ProcessShardedService(spec, num_workers=3) as service:
        report = replay_stream(service, stream, method="indexest+", k=2)
    snapshot = service.metrics.snapshot()

    assert report.failures == 0
    assert report.mode == "process-sharded"
    assert report.backend == "process"
    assert report.num_workers == 3
    facets = lambda rep: [  # noqa: E731
        (r.request.user, r.result.tag_ids, r.result.spread) for r in rep.responses
    ]
    assert facets(report) == facets(oracle)

    # Worker latency shards ship at shutdown and must cover every query once.
    shards = snapshot["worker_shards"]
    assert sum(shard["count"] for shard in shards.values()) == len(stream)
    assert snapshot["worker_execute"]["count"] == len(stream)

    # The tentpole invariant: the deterministic counter subset is *exactly*
    # equal across backends -- not approximately, not modulo worker counters.
    # Wall-clock durations are the only telemetry allowed to differ.
    process_telemetry = service.metrics.telemetry()
    deterministic = process_telemetry["deterministic"]
    assert deterministic == oracle_telemetry["deterministic"]
    assert deterministic["query.count"] == len(stream)
    assert deterministic["query.indexest+.count"] == len(stream)
    assert deterministic["query.indexest+.samples"] > 0
    # The process run aggregates one telemetry shard per worker; the thread
    # oracle runs in-process and therefore has none.
    assert set(process_telemetry["workers"]) == {"worker-0", "worker-1", "worker-2"}
    assert oracle_telemetry["workers"] == {}
    assert snapshot["telemetry"]["deterministic"] == deterministic

    # Worker telemetry shards also only arrive at close, so a complete report
    # re-captures the section afterwards (the documented ReplayReport caveat).
    report.telemetry = process_telemetry
    document = report.to_json()
    assert document["backend"] == "process"
    assert document["host_cores"] == int(os.cpu_count() or 1)
    assert document["telemetry"]["deterministic"] == deterministic


def test_process_answer_cache_bitwise_equals_thread_cached_oracle(
    dataset, reference_engine, spec
):
    """Per-worker answer caches: bitwise answers + identical answer_cache.*.

    The process backend shards requests by user, so each fingerprint lands on
    exactly one worker and the per-worker cache tallies must sum to the
    shared thread-backend cache's totals -- which puts ``answer_cache.hit``,
    ``.miss`` and ``.bytes`` in the deterministic counter subset compared
    here.
    """
    from repro.serve.answers import AnswerCache

    stream = dataset.query_workload.query_stream(24, seed=13, zipf_s=1.3)
    unique = len({user for _, user in stream})
    assert unique < len(stream)

    with PitexService.for_engine(
        reference_engine, num_workers=1, max_batch=4, answer_cache=AnswerCache()
    ) as service:
        oracle = replay_stream(service, stream, method="indexest+", k=2)
    oracle_deterministic = service.metrics.telemetry()["deterministic"]
    assert oracle.failures == 0
    assert oracle.cache_hits == len(stream) - unique

    with ProcessShardedService(spec, num_workers=3, answer_cache=True) as service:
        report = replay_stream(service, stream, method="indexest+", k=2)
    process_deterministic = service.metrics.telemetry()["deterministic"]

    assert report.failures == 0
    assert report.answers_digest == oracle.answers_digest
    assert report.cache_hits == oracle.cache_hits
    assert process_deterministic == oracle_deterministic
    assert process_deterministic["answer_cache.miss"] == unique
    assert process_deterministic["answer_cache.hit"] == len(stream) - unique
    assert process_deterministic["answer_cache.bytes"] > 0
    # Hits skip the engine on both backends: query.count counts misses only.
    assert process_deterministic["query.count"] == unique


def user_sharded_to(service, worker_id, method="indexest+"):
    """A user id whose requests land on ``worker_id``."""
    for user in range(10_000):
        if service.shard_of(QueryRequest(user=user, k=2, method=method)) == worker_id:
            return user
    raise AssertionError("no user shards to this worker")


def test_killed_worker_surfaces_clean_errors_and_peers_survive(spec):
    # Isolate the global registry so the loss accounting below is exact.
    previous = install(Telemetry())
    try:
        with ProcessShardedService(spec, num_workers=2) as service:
            victim_user = user_sharded_to(service, 0)
            survivor_user = user_sharded_to(service, 1)

            # In-flight: the request may complete or fail depending on timing,
            # but it must resolve -- never hang.
            in_flight = service.submit(QueryRequest(user=victim_user, k=2, method="indexest+"))
            service._processes[0].kill()
            in_flight.result(timeout=60.0)

            # After EOF detection the shard is marked dead: immediate clean error.
            deadline = 60.0
            while service._reply_conns[0] is not None and deadline > 0:
                threading.Event().wait(0.05)
                deadline -= 0.05
            late = service.submit(QueryRequest(user=victim_user, k=2, method="indexest+")).result(
                timeout=60.0
            )
            assert not late.ok
            assert "WorkerError" in late.error and "worker 0" in late.error

            # The surviving shard keeps answering.
            alive = service.submit(QueryRequest(user=survivor_user, k=2, method="indexest+")).result(
                timeout=60.0
            )
            assert alive.ok

        # Satellite (c), loss accounting: the kill is not silent.  Worker 0
        # died after readiness without shipping its telemetry shard, so the
        # parent counts both the death and the lost shard; worker 1 closed
        # cleanly, so exactly one of each.
        counters = get_telemetry().counters()
        assert counters["worker.deaths"] == 1
        assert counters["worker.shards_lost"] == 1
        # Merging stays lossless over the death: the survivor's shard arrived
        # and still contributes its queries to the merged telemetry.
        telemetry = service.metrics.telemetry()
        assert set(telemetry["workers"]) == {"worker-1"}
        assert telemetry["workers"]["worker-1"]["query.count"] >= 1
        assert telemetry["deterministic"]["query.count"] >= 1
    finally:
        install(previous)


def test_broken_spec_fails_construction_with_the_workers_error(spec):
    bogus = dataclasses.replace(spec, bundle_key="f" * 32)
    with pytest.raises(WorkerError) as excinfo:
        ProcessShardedService(bogus, num_workers=2)
    assert "StoreError" in str(excinfo.value)


def test_submit_after_close_is_rejected(spec):
    service = ProcessShardedService(spec, num_workers=1)
    service.close()
    with pytest.raises(RuntimeError):
        service.submit(QueryRequest(user=0, k=2, method="indexest+"))


def test_query_convenience_wrapper_unwraps_or_raises(spec, reference_engine, dataset):
    user = dataset.workload("mid", 1)[0]
    with ProcessShardedService(spec, num_workers=1) as service:
        result = service.query(user=user, k=2, method="indexest+")
        oracle = reference_engine.query(user=user, k=2, method="indexest+")
        assert facet(result) == facet(oracle)
        with pytest.raises(WorkerError):
            service.query(user=user, k=2, method="mc")  # not a frozen method


# --------------------------------------------- worker loop driven in-process
class _StubEngine:
    """Programmable stand-in for the frozen engine inside ``_serve_requests``."""

    def __init__(self, behavior):
        self._behavior = behavior

    def query(self, **kwargs):
        return self._behavior(kwargs)


def drive_serve_requests(engine, messages):
    """Run ``_serve_requests`` in a thread against real pipe ends."""
    context = multiprocessing.get_context()
    request_recv, request_send = context.Pipe(duplex=False)
    reply_recv, reply_send = context.Pipe(duplex=False)
    outcome = {}

    def run():
        outcome["shard"], outcome["completed"], outcome["failed"] = _serve_requests(
            engine, 9, request_recv, reply_send
        )
        reply_send.close()

    thread = threading.Thread(target=run)
    thread.start()
    for message in messages:
        request_send.send(message)
    request_send.close()
    replies = []
    while True:
        try:
            replies.append(reply_recv.recv())
        except EOFError:
            break
    thread.join(timeout=30.0)
    assert not thread.is_alive()
    return replies, outcome


def test_serve_requests_happy_error_and_unpicklable_paths():
    request = QueryRequest(user=3, k=2, method="indexest+")

    replies, outcome = drive_serve_requests(
        _StubEngine(lambda kwargs: ("answer", kwargs["user"])),
        [("query", 0, request), ("stop",)],
    )
    assert replies[0][:4] == ("result", 9, 0, None)
    assert replies[0][4] == ("answer", 3)
    assert (outcome["completed"], outcome["failed"]) == (1, 0)
    assert outcome["shard"].count == 1

    def boom(kwargs):
        raise ValueError("bad query")

    replies, outcome = drive_serve_requests(_StubEngine(boom), [("query", 1, request)])
    assert replies[0][3] == "ValueError: bad query"
    assert (outcome["completed"], outcome["failed"]) == (0, 1)

    replies, outcome = drive_serve_requests(
        _StubEngine(lambda kwargs: lambda: None),  # a lambda cannot pickle
        [("query", 2, request), ("stop",)],
    )
    assert replies[0][0] == "result"
    assert "could not serialize" in replies[0][3]
    assert (outcome["completed"], outcome["failed"]) == (0, 1)


def test_worker_main_in_process_reports_ready_results_and_shard(spec, dataset):
    context = multiprocessing.get_context()
    request_recv, request_send = context.Pipe(duplex=False)
    reply_recv, reply_send = context.Pipe(duplex=False)
    thread = threading.Thread(target=_worker_main, args=(4, spec, request_recv, reply_send))
    thread.start()
    user = dataset.workload("mid", 1)[0]
    request_send.send(("query", 0, QueryRequest(user=user, k=2, method="indexest")))
    request_send.send(("stop",))
    request_send.close()
    messages = []
    while True:
        try:
            messages.append(reply_recv.recv())
        except EOFError:
            break
    thread.join(timeout=60.0)
    assert not thread.is_alive()
    kinds = [message[0] for message in messages]
    assert kinds == ["ready", "result", "shard"]
    assert messages[1][3] is None and messages[1][4] is not None
    assert messages[2][2].count == 1  # the latency shard saw the one query


def test_worker_main_reports_fatal_on_broken_spec(spec):
    context = multiprocessing.get_context()
    request_recv, request_send = context.Pipe(duplex=False)
    reply_recv, reply_send = context.Pipe(duplex=False)
    bogus = dataclasses.replace(spec, bundle_key="e" * 32)
    thread = threading.Thread(target=_worker_main, args=(5, bogus, request_recv, reply_send))
    thread.start()
    message = reply_recv.recv()
    thread.join(timeout=30.0)
    assert message[0] == "fatal" and message[1] == 5
    assert "StoreError" in message[2]
    request_send.close()


# ------------------------------------------------------------------- params
def test_invalid_worker_counts_are_rejected(spec):
    from repro.exceptions import InvalidParameterError

    with pytest.raises(InvalidParameterError):
        ProcessShardedService(spec, num_workers=0)


def test_engine_spec_is_picklable_and_frozen(spec):
    import pickle

    clone = pickle.loads(pickle.dumps(spec))
    assert clone == spec
    with pytest.raises(dataclasses.FrozenInstanceError):
        spec.engine_seed = 1
