"""Tests for the pitexlint static invariant checker (tools/pitexlint).

Three layers of coverage:

1. the fixture corpus -- every rule fires on its ``fixtures/bad/`` file and
   stays quiet on its ``fixtures/good/`` counterpart (suppressed findings
   allowed, unsuppressed ones not);
2. rule/suppression semantics on inline scratch sources, including the
   acceptance criterion that reintroducing the PR 4 ``hash()``-salted
   seeding pattern is flagged;
3. the real tree: ``src tests benchmarks`` must lint clean (exit 0), which is
   the same invariant the CI ``pitexlint`` job enforces.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
TOOLS_DIR = REPO_ROOT / "tools"
if str(TOOLS_DIR) not in sys.path:  # tests run with PYTHONPATH=src only
    sys.path.insert(0, str(TOOLS_DIR))

from pitexlint.cli import main  # noqa: E402
from pitexlint.core import lint_file, lint_paths, lint_source  # noqa: E402
from pitexlint.registry import GUARDED_CLASSES, RULES  # noqa: E402

FIXTURES = TOOLS_DIR / "pitexlint" / "fixtures"
BAD = FIXTURES / "bad"
GOOD = FIXTURES / "good"

# fixture file -> the rule it must fire (and the only rule it may fire)
BAD_EXPECTATIONS = {
    "det001_direct_rng.py": "DET001",
    "det002_stdlib_random.py": "DET002",
    "det003_hash_salted_seed.py": "DET003",
    "det004_wall_clock.py": "DET004",
    "frz001_mutation_escape.py": "FRZ001",
    "lck001_unlocked_write.py": "LCK001",
    "obs001_direct_timer.py": "OBS001",
    "sup001_bad_pragmas.py": "SUP001",
    "parse001_syntax_error.py": "PARSE001",
}


def unsuppressed(findings):
    return [finding for finding in findings if not finding.suppressed]


# --------------------------------------------------------------------------
# 1. Fixture corpus
# --------------------------------------------------------------------------


def test_every_rule_has_a_bad_fixture():
    assert set(BAD_EXPECTATIONS.values()) == set(RULES)


def test_fixture_corpus_is_complete_on_disk():
    assert sorted(p.name for p in BAD.glob("*.py")) == sorted(BAD_EXPECTATIONS)
    assert len(list(GOOD.glob("*.py"))) >= len(RULES)


@pytest.mark.parametrize("name,rule", sorted(BAD_EXPECTATIONS.items()))
def test_bad_fixture_fires(name, rule):
    findings = unsuppressed(lint_file(BAD / name, root=REPO_ROOT))
    assert findings, f"{name} produced no findings"
    assert {finding.rule for finding in findings} == {rule}
    for finding in findings:
        assert finding.file.endswith(f"fixtures/bad/{name}")
        assert finding.line >= 1


@pytest.mark.parametrize("path", sorted(GOOD.glob("*.py")), ids=lambda p: p.name)
def test_good_fixture_is_quiet(path):
    findings = lint_file(path, root=REPO_ROOT)
    assert unsuppressed(findings) == []


def test_good_suppression_fixture_records_reasons():
    findings = lint_file(GOOD / "sup001_wellformed_pragma.py", root=REPO_ROOT)
    suppressed = [finding for finding in findings if finding.suppressed]
    assert len(suppressed) == 2  # same-line and standalone line-above pragmas
    assert all(finding.rule == "DET002" and finding.reason for finding in suppressed)


# --------------------------------------------------------------------------
# 2. Rule and suppression semantics on scratch sources
# --------------------------------------------------------------------------


def lint_scratch(source, scope_path="src/repro/sampling/scratch.py"):
    return lint_source(source, "scratch.py", scope_path=scope_path)


def test_pr4_hash_salted_seeding_pattern_is_flagged():
    # Acceptance criterion: the exact PR 4 regression shape must fire DET003.
    source = (
        "def stream_seed(base_seed, label):\n"
        "    return (base_seed ^ hash(label)) & 0xFFFFFFFFFFFFFFFF\n"
    )
    findings = lint_scratch(source)
    assert [finding.rule for finding in findings] == ["DET003"]


def test_rules_scope_to_library_paths():
    source = "import random\n\n\ndef jitter():\n    return random.random()\n"
    assert lint_scratch(source, scope_path="tests/test_scratch.py") == []
    assert lint_scratch(source, scope_path="benchmarks/bench_scratch.py") == []
    assert [f.rule for f in lint_scratch(source, scope_path="src/repro/utils/scratch.py")] == ["DET002"]


def test_path_pragma_overrides_scope():
    source = (
        "# pitexlint: path=src/repro/sampling/virtual.py\n"
        "import numpy as np\n\n\n"
        "def draw():\n"
        "    return np.random.default_rng()\n"
    )
    findings = lint_source(source, "tools/anywhere/scratch.py")
    assert [finding.rule for finding in findings] == ["DET001"]


def test_wall_clock_scoped_to_compute_core_and_serving():
    source = "import time\n\n\ndef stamp():\n    return time.time()\n"
    assert [f.rule for f in lint_scratch(source, "src/repro/index/scratch.py")] == ["DET004"]
    # The serving layer joined the wall-clock scope when the obs subsystem
    # landed: store.py's manifest timestamps route through wall_clock() now,
    # so a raw time.time() there is a finding, not an allowlisted exception.
    assert [f.rule for f in lint_scratch(source, "src/repro/serve/store.py")] == ["DET004"]
    # The single sanctioned wall-clock home stays quiet.
    assert lint_scratch(source, "src/repro/obs/clock.py") == []
    # utils/ is in determinism scope but not in the wall-clock scope.
    assert lint_scratch(source, "src/repro/utils/scratch.py") == []


def test_obs001_perf_counter_scoped_to_serving_and_core():
    source = "import time\n\n\ndef measure():\n    return time.perf_counter()\n"
    for scoped in ("src/repro/serve/scratch.py", "src/repro/core/scratch.py"):
        assert [f.rule for f in lint_scratch(source, scoped)] == ["OBS001"]
    # The sanctioned timing homes (and the compute core's Stopwatch users)
    # are outside the OBS001 scope.
    for exempt in (
        "src/repro/obs/clock.py",
        "src/repro/utils/timer.py",
        "src/repro/sampling/scratch.py",
        "benchmarks/bench_scratch.py",
    ):
        assert lint_scratch(source, exempt) == []
    # from-import aliases are caught too.
    aliased = "from time import perf_counter as tick\n\n\ndef measure():\n    return tick()\n"
    assert [f.rule for f in lint_scratch(aliased, "src/repro/serve/scratch.py")] == ["OBS001"]
    # time.monotonic() stays legal in the serving layer (queue timestamps).
    monotonic = "import time\n\n\ndef age(t0):\n    return time.monotonic() - t0\n"
    assert lint_scratch(monotonic, "src/repro/serve/scratch.py") == []


def test_same_line_suppression_requires_reason():
    offending = "import random\n\n\ndef f():\n    return random.random()  {pragma}\n"
    good = lint_scratch(offending.format(pragma="# pitexlint: ignore[DET002] -- scratch justification"))
    assert [f.rule for f in unsuppressed(good)] == []
    assert [(f.rule, f.suppressed, f.reason) for f in good] == [("DET002", True, "scratch justification")]
    bad = lint_scratch(offending.format(pragma="# pitexlint: ignore[DET002]"))
    assert sorted(f.rule for f in unsuppressed(bad)) == ["DET002", "SUP001"]


def test_standalone_pragma_covers_next_line_only():
    source = (
        "import random\n\n\n"
        "def f():\n"
        "    # pitexlint: ignore[DET002] -- first draw is justified scratch\n"
        "    a = random.random()\n"
        "    b = random.random()\n"
        "    return a + b\n"
    )
    findings = lint_scratch(source)
    assert [(f.line, f.suppressed) for f in findings] == [(6, True), (7, False)]


def test_trailing_pragma_does_not_leak_to_next_line():
    source = (
        "import random\n\n\n"
        "def f():\n"
        "    a = random.random()  # pitexlint: ignore[DET002] -- this line only\n"
        "    b = random.random()\n"
        "    return a + b\n"
    )
    findings = lint_scratch(source)
    assert [(f.line, f.suppressed) for f in findings] == [(5, True), (6, False)]


def test_suppression_only_matches_named_rules():
    source = (
        "import random\n\n\n"
        "def f():\n"
        "    return random.random()  # pitexlint: ignore[DET001] -- names the wrong rule\n"
    )
    findings = lint_scratch(source)
    assert [(f.rule, f.suppressed) for f in findings] == [("DET002", False)]


def test_sup001_cannot_be_suppressed():
    source = (
        "# pitexlint: ignore[*] -- blanket attempt\n"
        "X = 1  # pitexlint: ignore[DET002]\n"
    )
    findings = lint_scratch(source)
    assert [(f.rule, f.suppressed) for f in findings] == [("SUP001", False)]


def test_pragma_inside_string_literal_is_inert():
    source = 'DOC = "# pitexlint: ignore[DET002]"\n'
    assert lint_scratch(source) == []


def test_frz001_guard_idioms_accepted():
    template = (
        "class RRGraphIndex:\n"
        "    def rebuild(self):\n"
        "{body}"
        "        self._tables = []\n"
    )
    flagged = lint_scratch(template.format(body=""), "src/repro/index/scratch.py")
    assert [f.rule for f in flagged] == ["FRZ001"]
    free_fn = template.format(body='        guard_check(self, "rebuild")\n')
    assert lint_scratch(free_fn, "src/repro/index/scratch.py") == []
    method = template.format(body='        self._guard.check("rebuild")\n')
    assert lint_scratch(method, "src/repro/index/scratch.py") == []


def test_frz001_registry_covers_engine_classes():
    for expected in ("TopicSocialGraph", "PitexEngine", "RRGraphIndex", "DelayedMaterializationIndex"):
        assert expected in GUARDED_CLASSES


def test_lck001_requires_lock_ownership():
    unlocked = (
        "class Scratch:\n"
        "    def bump(self):\n"
        "        self.count = 1\n"
    )
    assert lint_scratch(unlocked, "src/repro/serve/scratch.py") == []
    owning = (
        "import threading\n\n\n"
        "class Scratch:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self.count = 0\n\n"
        "    def bump(self):\n"
        "        self.count += 1\n"
    )
    assert [f.rule for f in lint_scratch(owning, "src/repro/serve/scratch.py")] == ["LCK001"]
    locked = owning.replace("        self.count += 1", "        with self._lock:\n            self.count += 1")
    assert lint_scratch(locked, "src/repro/serve/scratch.py") == []


# --------------------------------------------------------------------------
# 3. The real tree, the report, and the CLI
# --------------------------------------------------------------------------


def test_real_tree_lints_clean():
    report = lint_paths(
        [REPO_ROOT / "src", REPO_ROOT / "tests", REPO_ROOT / "benchmarks"], root=REPO_ROOT
    )
    assert report.files_scanned > 50
    rendered = "\n".join(finding.render() for finding in report.findings)
    assert report.exit_code == 0, f"tree has unsuppressed findings:\n{rendered}"
    # The two GIL-atomic serve-layer writes stay visible as justified suppressions.
    assert all(finding.reason for finding in report.suppressed)


def test_json_report_shape():
    report = lint_paths([BAD], root=REPO_ROOT)
    payload = report.as_dict()
    assert payload["tool"] == "pitexlint"
    assert payload["files_scanned"] == len(BAD_EXPECTATIONS)
    assert payload["summary"]["findings"] == len(payload["findings"]) > 0
    assert set(payload["summary"]["by_rule"]) == set(RULES)
    first = payload["findings"][0]
    assert set(first) == {"file", "line", "col", "rule", "message", "suppressed", "reason"}


def test_cli_exit_codes_and_output(tmp_path, capsys):
    assert main([str(GOOD)]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out and "2 suppressed" in out

    report_path = tmp_path / "report.json"
    assert main([str(BAD), "--json", str(report_path)]) == 1
    out = capsys.readouterr().out
    assert f"{len(BAD_EXPECTATIONS)} files" in out
    payload = json.loads(report_path.read_text())
    assert payload["summary"]["findings"] > 0

    assert main([str(tmp_path / "missing_dir")]) == 2
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in RULES:
        assert rule in out


def test_findings_render_as_file_line_col_rule():
    findings = unsuppressed(lint_file(BAD / "det001_direct_rng.py", root=REPO_ROOT))
    line = findings[0].render()
    prefix, rest = line.split(" ", 1)
    file_part, line_part, col_part, _ = prefix.split(":")
    assert file_part.endswith(".py") and int(line_part) >= 1 and int(col_part) >= 0
    assert rest.startswith("DET001 ")
